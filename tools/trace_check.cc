// trace_check — structural validator for traces written by --trace.
//
// Reads a Chrome trace_event JSON file, checks that it is well-formed
// (parseable JSON, correctly shaped events), and optionally that it
// contains events from a required set of subsystem categories. CI uses
// this to assert that a traced sweep really exercised the instrumented
// layers (sim, hm, service, core).
//
//   trace_check trace.json [--require sim,hm,service,core]
//               [--min-events N] [--min-flows N] [--quiet]
//
// --min-flows gates merged distributed traces: flow events only exist
// when trace_merge linked spans across processes, so requiring them
// asserts the cross-process stitching actually happened.
//
// Exit codes: 0 valid (and requirements met), 1 structural or coverage
// failure, 2 usage / unreadable file.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/validate.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_check <trace.json> [--require cat1,cat2,...]"
               " [--min-events N] [--min-flows N] [--quiet]\n");
  return 2;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  std::size_t min_events = 1;
  std::size_t min_flows = 0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(Usage());
      return argv[++i];
    };
    if (arg == "--require") {
      required = SplitCsv(next());
    } else if (arg == "--min-events") {
      min_events = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--min-flows") {
      min_flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "trace_check: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::string json;
  char buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    json.append(buf, n);
  }
  std::fclose(f);

  const merch::obs::TraceValidation v =
      merch::obs::ValidateChromeTrace(json);
  if (!v.ok) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(),
                 v.error.c_str());
    return 1;
  }
  if (v.events < min_events) {
    std::fprintf(stderr,
                 "trace_check: %s: %zu events, expected at least %zu\n",
                 path.c_str(), v.events, min_events);
    return 1;
  }
  if (v.flows < min_flows) {
    std::fprintf(stderr,
                 "trace_check: %s: %zu flow events, expected at least %zu "
                 "(was this merged by trace_merge?)\n",
                 path.c_str(), v.flows, min_flows);
    return 1;
  }
  int missing = 0;
  for (const std::string& cat : required) {
    if (v.categories.count(cat) == 0) {
      std::fprintf(stderr,
                   "trace_check: %s: no events from category '%s'\n",
                   path.c_str(), cat.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;
  if (!quiet) {
    std::string cats;
    for (const std::string& c : v.categories) {
      if (!cats.empty()) cats += ",";
      cats += c;
    }
    std::printf("%s: %zu events (%zu spans, %zu instants, %zu flows) "
                "categories %s\n",
                path.c_str(), v.events, v.spans, v.instants, v.flows,
                cats.c_str());
  }
  return 0;
}
