#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library, tool, and bench
# sources using the CMake compilation database.
#
#   tools/run_lint.sh [build-dir] [-- extra clang-tidy args]
#
# The build directory must have been configured (CMakeLists.txt exports
# compile_commands.json unconditionally). Exits non-zero when clang-tidy
# reports any warning, so CI can gate on it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift || true
[ "${1:-}" = "--" ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_lint.sh: clang-tidy not found on PATH; skipping lint" >&2
  exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_lint.sh: $build/compile_commands.json missing —" \
       "configure first: cmake -B $build -S $repo" >&2
  exit 2
fi

# Library + tool sources only; tests inherit the same checks through the
# header filter when their headers are touched.
mapfile -t sources < <(find "$repo/src" "$repo/tools" "$repo/bench" \
  -name '*.cc' -o -name '*.cpp' | sort)

status=0
clang-tidy -p "$build" --quiet "$@" "${sources[@]}" || status=$?
exit $status
