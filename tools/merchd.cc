// merchd — batch placement-query driver ("Merchandiser daemon, offline").
//
// Reads a newline-delimited request file (see service/batch.h for the
// grammar), answers every request through the concurrent PlacementService,
// and prints one result line per request plus a throughput summary. The
// same file answered twice (--repeat 2) demonstrates the result cache:
// the second pass is pure cache hits.
//
//   merchd --file requests.txt [--threads N] [--cache N] [--repeat R]
//          [--placements] [--quiet] [--log-level debug|info|warn|error]
//          [--trace FILE.json]
//          [--metrics-file FILE.prom] [--metrics-interval SECONDS]
//
// --metrics-file enables a periodic snapshot writer: a background thread
// rewrites the file (Prometheus text format, atomically via rename) every
// --metrics-interval seconds while the batch runs, and once more at exit,
// so an external scraper tailing the file sees live queue depth and
// request counters.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch.h"
#include "service/placement_service.h"

namespace {

using namespace merch;

int Usage() {
  std::fprintf(stderr,
               "usage: merchd --file requests.txt [--threads N] [--cache N]"
               " [--repeat R] [--placements] [--quiet]\n"
               "              [--log-level debug|info|warn|error]"
               " [--trace FILE.json]\n"
               "              [--metrics-file FILE.prom]"
               " [--metrics-interval SECONDS]\n");
  return 2;
}

/// Writes the metrics registry to `path` (Prometheus text format) via a
/// temp file + rename so readers never observe a torn snapshot.
bool WriteMetricsFile(const std::string& path) {
  const std::string tmp = path + ".tmp";
  const std::string text = obs::MetricsRegistry::Instance().PrometheusText();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Background periodic metrics-snapshot writer.
class MetricsWriter {
 public:
  MetricsWriter(std::string path, double interval_seconds)
      : path_(std::move(path)), interval_(interval_seconds) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~MetricsWriter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    if (!WriteMetricsFile(path_)) {  // final snapshot at exit
      std::fprintf(stderr, "merchd: cannot write metrics file '%s'\n",
                   path_.c_str());
    }
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto period = std::chrono::duration<double>(interval_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      lock.unlock();
      WriteMetricsFile(path_);
      lock.lock();
    }
  }

  std::string path_;
  double interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 1;
  std::size_t cache = 128;
  std::size_t repeat = 1;
  bool placements = false;
  bool quiet = false;
  std::string trace_file;
  std::string metrics_file;
  double metrics_interval = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(Usage());
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache") {
      cache = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--repeat") {
      repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(next())));
    } else if (arg == "--placements") {
      placements = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--metrics-file") {
      metrics_file = next();
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::atof(next());
      if (metrics_interval <= 0) {
        std::fprintf(stderr, "merchd: --metrics-interval must be > 0\n");
        return 2;
      }
    } else if (arg == "--log-level") {
      const std::string value = next();
      if (value == "debug") SetLogLevel(LogLevel::kDebug);
      else if (value == "info") SetLogLevel(LogLevel::kInfo);
      else if (value == "warn") SetLogLevel(LogLevel::kWarn);
      else if (value == "error") SetLogLevel(LogLevel::kError);
      else {
        std::fprintf(stderr, "merchd: unknown log level '%s'\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "merchd: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (file.empty()) return Usage();

  std::vector<service::PlacementRequest> requests;
  std::string err;
  if (!service::LoadRequestFile(file, &requests, &err)) {
    std::fprintf(stderr, "merchd: %s\n", err.c_str());
    return 2;
  }
  if (requests.empty()) {
    std::fprintf(stderr, "merchd: %s contains no requests\n", file.c_str());
    return 2;
  }
  for (auto& req : requests) {
    if (std::string cerr = service::CanonicalizeRequest(req); !cerr.empty()) {
      std::fprintf(stderr, "merchd: %s\n", cerr.c_str());
      return 2;
    }
  }

  if (!trace_file.empty()) obs::TraceRecorder::Instance().Start();
  std::unique_ptr<MetricsWriter> metrics_writer;
  if (!metrics_file.empty()) {
    metrics_writer =
        std::make_unique<MetricsWriter>(metrics_file, metrics_interval);
  }

  service::PlacementService svc({.threads = threads, .cache_capacity = cache});
  int failures = 0;
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    const service::BatchReport report = service::RunBatch(svc, requests);
    std::size_t pass_hits = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const auto& r = report.results[i];
      if (report.cache_hits[i]) ++pass_hits;
      if (!r.ok()) {
        if (pass == 0) ++failures;
        std::printf("%-10s %-9s scale %-7.3g ERROR: %s\n",
                    r.request.app.c_str(), r.request.policy.c_str(),
                    r.request.scale, r.error.c_str());
        continue;
      }
      if (quiet || pass > 0) continue;
      std::printf("%-10s %-9s scale %-7.3g seed %-6llu makespan %9.2fs  "
                  "task-CoV %.3f  migrated %s\n",
                  r.request.app.c_str(), r.request.policy.c_str(),
                  r.request.scale,
                  static_cast<unsigned long long>(r.request.seed),
                  r.makespan_seconds, r.task_cov,
                  FormatBytes(r.migrated_bytes).c_str());
      if (placements) {
        for (const auto& p : r.placements) {
          std::printf("    %-24s %-10s DRAM %.0f%%\n", p.object.c_str(),
                      FormatBytes(p.bytes).c_str(), 100.0 * p.dram_fraction);
        }
      }
    }
    std::printf("pass %zu: %zu requests in %.2fs  (%.2f jobs/s, %zu served "
                "from cache)\n",
                pass + 1, requests.size(), report.wall_seconds,
                report.jobs_per_second, pass_hits);
  }
  const service::ServiceStats stats = svc.Stats();
  std::printf("service: threads %zu  simulated %llu  coalesced %llu  cache "
              "hits %llu / misses %llu / evictions %llu\n",
              stats.threads,
              static_cast<unsigned long long>(stats.simulated),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions));

  // Join the workers before the final snapshot: a job's future resolves
  // before its worker updates the post-job gauges, so writing the exit
  // snapshot while threads still run could freeze `merch_pool_active` at
  // a non-zero value.
  svc.Shutdown();
  metrics_writer.reset();  // final metrics snapshot
  if (!trace_file.empty()) {
    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    rec.Stop();
    std::string werr;
    if (!rec.WriteChromeJson(trace_file, &werr)) {
      std::fprintf(stderr, "merchd: %s\n", werr.c_str());
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}
