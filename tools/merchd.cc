// merchd — batch placement-query driver ("Merchandiser daemon, offline").
//
// Reads a newline-delimited request file (see service/batch.h for the
// grammar), answers every request through the concurrent PlacementService,
// and prints one result line per request plus a throughput summary. The
// same file answered twice (--repeat 2) demonstrates the result cache:
// the second pass is pure cache hits.
//
//   merchd --file requests.txt [--threads N] [--cache N] [--repeat R]
//          [--placements] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "service/batch.h"
#include "service/placement_service.h"

namespace {

using namespace merch;

int Usage() {
  std::fprintf(stderr,
               "usage: merchd --file requests.txt [--threads N] [--cache N]"
               " [--repeat R] [--placements] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 1;
  std::size_t cache = 128;
  std::size_t repeat = 1;
  bool placements = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(Usage());
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache") {
      cache = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--repeat") {
      repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(next())));
    } else if (arg == "--placements") {
      placements = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "merchd: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (file.empty()) return Usage();

  std::vector<service::PlacementRequest> requests;
  std::string err;
  if (!service::LoadRequestFile(file, &requests, &err)) {
    std::fprintf(stderr, "merchd: %s\n", err.c_str());
    return 2;
  }
  if (requests.empty()) {
    std::fprintf(stderr, "merchd: %s contains no requests\n", file.c_str());
    return 2;
  }
  for (auto& req : requests) {
    if (std::string cerr = service::CanonicalizeRequest(req); !cerr.empty()) {
      std::fprintf(stderr, "merchd: %s\n", cerr.c_str());
      return 2;
    }
  }

  service::PlacementService svc({.threads = threads, .cache_capacity = cache});
  int failures = 0;
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    const service::BatchReport report = service::RunBatch(svc, requests);
    std::size_t pass_hits = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const auto& r = report.results[i];
      if (report.cache_hits[i]) ++pass_hits;
      if (!r.ok()) {
        if (pass == 0) ++failures;
        std::printf("%-10s %-9s scale %-7.3g ERROR: %s\n",
                    r.request.app.c_str(), r.request.policy.c_str(),
                    r.request.scale, r.error.c_str());
        continue;
      }
      if (quiet || pass > 0) continue;
      std::printf("%-10s %-9s scale %-7.3g seed %-6llu makespan %9.2fs  "
                  "task-CoV %.3f  migrated %s\n",
                  r.request.app.c_str(), r.request.policy.c_str(),
                  r.request.scale,
                  static_cast<unsigned long long>(r.request.seed),
                  r.makespan_seconds, r.task_cov,
                  FormatBytes(r.migrated_bytes).c_str());
      if (placements) {
        for (const auto& p : r.placements) {
          std::printf("    %-24s %-10s DRAM %.0f%%\n", p.object.c_str(),
                      FormatBytes(p.bytes).c_str(), 100.0 * p.dram_fraction);
        }
      }
    }
    std::printf("pass %zu: %zu requests in %.2fs  (%.2f jobs/s, %zu served "
                "from cache)\n",
                pass + 1, requests.size(), report.wall_seconds,
                report.jobs_per_second, pass_hits);
  }
  const service::ServiceStats stats = svc.Stats();
  std::printf("service: threads %zu  simulated %llu  coalesced %llu  cache "
              "hits %llu / misses %llu / evictions %llu\n",
              stats.threads,
              static_cast<unsigned long long>(stats.simulated),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions));
  return failures == 0 ? 0 : 1;
}
