// merchd — the Merchandiser placement daemon.
//
// Three modes:
//
//   Batch (the original driver): answer a newline-delimited request file
//   through the concurrent PlacementService and print one line per result.
//
//     merchd --file requests.txt [--threads N] [--cache N] [--repeat R]
//            [--placements] [--quiet]
//
//   Server: serve the binary wire protocol (src/net) on a TCP socket.
//
//     merchd --listen [--host H] [--port P] [--port-file F]
//            [--threads N] [--cache N] [--max-conns N] [--max-inflight N]
//            [--max-queue-depth N] [--deadline-ms D]
//            [--snapshot-load F] [--snapshot-save F]
//
//   Router: spawn N `merchd --listen` worker processes and route requests
//   to shards by hashing the canonical request key (restart-on-crash).
//
//     merchd --router [--shards N] [--host H] [--port P] [--port-file F]
//            [--threads N] [--cache N] [--snapshot-load F]
//            [--snapshot-save F] [--max-conns N]
//
// Common: [--log-level debug|info|warn|error] [--trace FILE.json]
//         [--metrics-file FILE.prom] [--metrics-interval SECONDS]
//
// All modes handle SIGINT/SIGTERM gracefully: in-flight requests drain,
// the final --metrics-file snapshot is flushed (the periodic writer alone
// could lose the last interval), servers save their cache snapshot, and
// the router SIGTERMs its workers so they do the same.
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/distributed/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch.h"
#include "service/placement_service.h"

namespace {

using namespace merch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: merchd --file requests.txt [--threads N] [--cache N]"
      " [--repeat R] [--placements] [--quiet]\n"
      "       merchd --listen [--host H] [--port P] [--port-file F]"
      " [--threads N] [--cache N]\n"
      "              [--max-conns N] [--max-inflight N]"
      " [--max-queue-depth N] [--deadline-ms D]\n"
      "              [--snapshot-load F] [--snapshot-save F]\n"
      "       merchd --router [--shards N] [--host H] [--port P]"
      " [--port-file F] [--threads N]\n"
      "              [--cache N] [--snapshot-load F] [--snapshot-save F]"
      " [--max-conns N]\n"
      "common: [--log-level debug|info|warn|error] [--trace FILE.json]\n"
      "        [--metrics-file FILE.prom] [--metrics-interval SECONDS]\n"
      "        [--metrics-aggregate]  # router: write the federated fleet "
      "export\n"
      "        [--process-name NAME]  # identity in traces/pongs/metrics\n");
  return 2;
}

/// Writes `text` to `path` via a temp file + rename so readers never
/// observe a torn snapshot.
bool WriteMetricsFile(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Background periodic metrics-snapshot writer. Writes once immediately
/// (so short-lived runs still leave a file before the first interval
/// elapses), then every interval; the destructor (and, on signal,
/// FlushFinal) writes one last snapshot so the tail interval is never
/// lost. The text source defaults to the local registry and can be
/// swapped (SetProducer) for e.g. the router's federated export.
class MetricsWriter {
 public:
  using Producer = std::function<std::string()>;

  MetricsWriter(std::string path, double interval_seconds)
      : path_(std::move(path)), interval_(interval_seconds) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~MetricsWriter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    FlushFinal();
  }

  /// Swap the text source; writes a snapshot immediately so the file
  /// reflects the new producer without waiting out an interval. Pass
  /// nullptr to fall back to the local registry (do this before the
  /// producer's captures die).
  void SetProducer(Producer producer) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      producer_ = std::move(producer);
    }
    if (!flushed_.load()) WriteSnapshot();
  }

  /// Idempotent final snapshot (signal paths call this before _exit-style
  /// returns; the destructor calls it again harmlessly).
  void FlushFinal() {
    if (flushed_.exchange(true)) return;
    if (!WriteSnapshot()) {
      std::fprintf(stderr, "merchd: cannot write metrics file '%s'\n",
                   path_.c_str());
    }
  }

 private:
  std::string Render() {
    Producer producer;
    {
      std::lock_guard<std::mutex> lock(mu_);
      producer = producer_;
    }
    return producer ? producer()
                    : obs::MetricsRegistry::Instance().PrometheusText();
  }

  bool WriteSnapshot() { return WriteMetricsFile(path_, Render()); }

  void Loop() {
    WriteSnapshot();  // first interval: a file exists from the start
    std::unique_lock<std::mutex> lock(mu_);
    const auto period = std::chrono::duration<double>(interval_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      lock.unlock();
      WriteSnapshot();
      lock.lock();
    }
  }

  std::string path_;
  double interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  Producer producer_;
  bool stop_ = false;
  std::atomic<bool> flushed_{false};
  std::thread thread_;
};

struct Options {
  // mode
  bool listen = false;
  bool router = false;
  std::string file;
  // shared service knobs
  std::size_t threads = 1;
  std::size_t cache = 128;
  // batch
  std::size_t repeat = 1;
  bool placements = false;
  bool quiet = false;
  // net
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t shards = 2;
  std::size_t max_conns = 256;
  std::size_t max_inflight = 128;
  std::size_t max_queue_depth = 256;
  std::uint32_t deadline_ms = 30000;
  std::string snapshot_load;
  std::string snapshot_save;
  // observability
  std::string trace_file;
  std::string metrics_file;
  double metrics_interval = 1.0;
  bool metrics_aggregate = false;
  std::string process_name;  // "" = per-mode default (merchd / router)
};

bool WritePortFile(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return true;
}

/// Block until SIGINT/SIGTERM (via the ShutdownSignal self-pipe).
void WaitForShutdownSignal() {
  for (;;) {
    pollfd pfd{net::ShutdownSignal::fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 500);
    if (net::ShutdownSignal::requested()) return;
    if (ready < 0 && errno != EINTR) return;
  }
}

int BatchMode(const Options& opt, MetricsWriter* metrics_writer) {
  std::vector<service::PlacementRequest> requests;
  std::string err;
  if (!service::LoadRequestFile(opt.file, &requests, &err)) {
    std::fprintf(stderr, "merchd: %s\n", err.c_str());
    return 2;
  }
  if (requests.empty()) {
    std::fprintf(stderr, "merchd: %s contains no requests\n",
                 opt.file.c_str());
    return 2;
  }
  for (auto& req : requests) {
    if (std::string cerr = service::CanonicalizeRequest(req); !cerr.empty()) {
      std::fprintf(stderr, "merchd: %s\n", cerr.c_str());
      return 2;
    }
  }

  service::PlacementService svc(
      {.threads = opt.threads, .cache_capacity = opt.cache});

  // Graceful SIGINT/SIGTERM: drain everything the pool accepted, flush the
  // final metrics interval, exit 130. The watcher owns the exit so a
  // signal mid-batch cannot lose the tail snapshot; it is joined before
  // `svc` is destroyed so it never races teardown.
  std::atomic<bool> batch_done{false};
  std::thread signal_watcher([&svc, &batch_done, metrics_writer] {
    while (!batch_done.load(std::memory_order_acquire)) {
      pollfd pfd{net::ShutdownSignal::fd(), POLLIN, 0};
      ::poll(&pfd, 1, 200);
      if (net::ShutdownSignal::requested()) {
        std::fprintf(stderr, "merchd: signal received, draining in-flight "
                             "requests...\n");
        svc.Shutdown();
        if (metrics_writer != nullptr) metrics_writer->FlushFinal();
        std::fflush(nullptr);
        std::_Exit(130);
      }
    }
  });

  int failures = 0;
  for (std::size_t pass = 0; pass < opt.repeat; ++pass) {
    const service::BatchReport report = service::RunBatch(svc, requests);
    std::size_t pass_hits = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const auto& r = report.results[i];
      if (report.cache_hits[i]) ++pass_hits;
      if (!r.ok()) {
        if (pass == 0) ++failures;
        std::printf("%-10s %-9s scale %-7.3g ERROR: %s\n",
                    r.request.app.c_str(), r.request.policy.c_str(),
                    r.request.scale, r.error.c_str());
        continue;
      }
      if (opt.quiet || pass > 0) continue;
      std::printf("%-10s %-9s scale %-7.3g seed %-6llu makespan %9.2fs  "
                  "task-CoV %.3f  migrated %s\n",
                  r.request.app.c_str(), r.request.policy.c_str(),
                  r.request.scale,
                  static_cast<unsigned long long>(r.request.seed),
                  r.makespan_seconds, r.task_cov,
                  FormatBytes(r.migrated_bytes).c_str());
      if (opt.placements) {
        for (const auto& p : r.placements) {
          std::printf("    %-24s %-10s DRAM %.0f%%\n", p.object.c_str(),
                      FormatBytes(p.bytes).c_str(), 100.0 * p.dram_fraction);
        }
      }
    }
    std::printf("pass %zu: %zu requests in %.2fs  (%.2f jobs/s, %zu served "
                "from cache)\n",
                pass + 1, requests.size(), report.wall_seconds,
                report.jobs_per_second, pass_hits);
  }
  const service::ServiceStats stats = svc.Stats();
  std::printf("service: threads %zu  simulated %llu  coalesced %llu  cache "
              "hits %llu / misses %llu / evictions %llu\n",
              stats.threads,
              static_cast<unsigned long long>(stats.simulated),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions));

  // Join the workers before the final snapshot: a job's future resolves
  // before its worker updates the post-job gauges, so writing the exit
  // snapshot while threads still run could freeze `merch_pool_active` at
  // a non-zero value.
  svc.Shutdown();
  batch_done.store(true, std::memory_order_release);
  signal_watcher.join();
  return failures == 0 ? 0 : 1;
}

int ListenMode(const Options& opt) {
  net::ServerConfig cfg;
  cfg.host = opt.host;
  cfg.port = opt.port;
  cfg.threads = opt.threads;
  cfg.cache_capacity = opt.cache;
  cfg.max_connections = opt.max_conns;
  cfg.max_inflight = opt.max_inflight;
  cfg.max_queue_depth = opt.max_queue_depth;
  cfg.default_deadline_ms = opt.deadline_ms;
  cfg.snapshot_load = opt.snapshot_load;
  cfg.snapshot_save = opt.snapshot_save;
  if (!opt.process_name.empty()) cfg.process_name = opt.process_name;

  net::PlacementServer server(cfg);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "merchd: %s\n", err.c_str());
    return 1;
  }
  if (!opt.port_file.empty() && !WritePortFile(opt.port_file, server.port())) {
    std::fprintf(stderr, "merchd: cannot write port file '%s'\n",
                 opt.port_file.c_str());
    return 1;
  }
  std::printf("merchd: listening on %s:%u (threads %zu, cache %zu, "
              "max-inflight %zu)\n",
              opt.host.c_str(), server.port(), opt.threads, opt.cache,
              opt.max_inflight);
  std::fflush(stdout);

  WaitForShutdownSignal();
  std::fprintf(stderr, "merchd: signal received, draining...\n");
  server.Stop();

  const net::ServerStats stats = server.stats();
  std::printf("server: conns %llu  requests %llu  responses %llu  shed %llu"
              "  timeouts %llu  protocol-errors %llu\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}

int RouterMode(const Options& opt, const char* self,
               MetricsWriter* metrics_writer,
               std::vector<obs::PeerClock>* peer_clocks) {
  net::RouterConfig cfg;
  cfg.host = opt.host;
  cfg.port = opt.port;
  cfg.shards = opt.shards;
  cfg.max_client_connections = opt.max_conns;
  if (!opt.process_name.empty()) cfg.process_name = opt.process_name;
  // Distributed tracing: the shards inherit the router's trace path with
  // a per-shard suffix, and the router ping-syncs their clocks so
  // tools/trace_merge can align all the exports afterwards.
  if (!opt.trace_file.empty()) cfg.worker_trace_prefix = opt.trace_file;

  // Workers re-exec this binary in --listen mode. A shared --snapshot-load
  // pre-warms every shard from one file; --snapshot-save gets a per-shard
  // suffix so workers never clobber each other.
  cfg.worker_command = {self, "--threads", std::to_string(opt.threads),
                        "--cache", std::to_string(opt.cache),
                        "--max-inflight", std::to_string(opt.max_inflight),
                        "--max-queue-depth",
                        std::to_string(opt.max_queue_depth),
                        "--deadline-ms", std::to_string(opt.deadline_ms)};
  if (!opt.snapshot_load.empty()) {
    cfg.worker_command.insert(cfg.worker_command.end(),
                              {"--snapshot-load", opt.snapshot_load});
  }
  cfg.worker_snapshot_save_prefix = opt.snapshot_save;

  net::ShardRouter router(cfg);
  std::string err;
  if (!router.Start(&err)) {
    std::fprintf(stderr, "merchd: %s\n", err.c_str());
    return 1;
  }
  if (!opt.port_file.empty() && !WritePortFile(opt.port_file, router.port())) {
    std::fprintf(stderr, "merchd: cannot write port file '%s'\n",
                 opt.port_file.c_str());
    return 1;
  }
  std::printf("merchd: routing %s:%u across %zu shards\n", opt.host.c_str(),
              router.port(), opt.shards);
  std::fflush(stdout);

  if (opt.metrics_aggregate && metrics_writer != nullptr) {
    metrics_writer->SetProducer([&router] {
      std::string text, ferr;
      if (router.FederatedPrometheus(&text, &ferr)) return text;
      MERCH_LOG(kWarn) << "router: metrics federation failed: " << ferr;
      return obs::MetricsRegistry::Instance().PrometheusText();
    });
  }

  WaitForShutdownSignal();
  std::fprintf(stderr, "merchd: signal received, stopping router...\n");
  if (peer_clocks != nullptr) *peer_clocks = router.worker_clocks();
  if (opt.metrics_aggregate && metrics_writer != nullptr) {
    // Final federated snapshot while the shards can still answer, then
    // detach the producer before the router object goes away.
    metrics_writer->FlushFinal();
    metrics_writer->SetProducer(nullptr);
  }
  router.Stop();

  const net::RouterStats stats = router.stats();
  std::printf("router: conns %llu  forwarded %llu  worker-errors %llu  "
              "restarts %llu\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.worker_errors),
              static_cast<unsigned long long>(stats.restarts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(Usage());
      return argv[++i];
    };
    if (arg == "--file") {
      opt.file = next();
    } else if (arg == "--listen") {
      opt.listen = true;
    } else if (arg == "--router") {
      opt.router = true;
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--port-file") {
      opt.port_file = next();
    } else if (arg == "--shards") {
      opt.shards = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(next())));
    } else if (arg == "--max-conns") {
      opt.max_conns = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-inflight") {
      opt.max_inflight = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-queue-depth") {
      opt.max_queue_depth = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--snapshot-load") {
      opt.snapshot_load = next();
    } else if (arg == "--snapshot-save") {
      opt.snapshot_save = next();
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache") {
      opt.cache = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--repeat") {
      opt.repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(next())));
    } else if (arg == "--placements") {
      opt.placements = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--trace") {
      opt.trace_file = next();
    } else if (arg == "--metrics-file") {
      opt.metrics_file = next();
    } else if (arg == "--metrics-aggregate") {
      opt.metrics_aggregate = true;
    } else if (arg == "--process-name") {
      opt.process_name = next();
    } else if (arg == "--metrics-interval") {
      opt.metrics_interval = std::atof(next());
      if (opt.metrics_interval <= 0) {
        std::fprintf(stderr, "merchd: --metrics-interval must be > 0\n");
        return 2;
      }
    } else if (arg == "--log-level") {
      const std::string value = next();
      if (value == "debug") SetLogLevel(LogLevel::kDebug);
      else if (value == "info") SetLogLevel(LogLevel::kInfo);
      else if (value == "warn") SetLogLevel(LogLevel::kWarn);
      else if (value == "error") SetLogLevel(LogLevel::kError);
      else {
        std::fprintf(stderr, "merchd: unknown log level '%s'\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "merchd: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  const int modes = (opt.file.empty() ? 0 : 1) + (opt.listen ? 1 : 0) +
                    (opt.router ? 1 : 0);
  if (modes != 1) {
    std::fprintf(stderr,
                 "merchd: pick exactly one of --file, --listen, --router\n");
    return Usage();
  }
  if (opt.metrics_aggregate && (!opt.router || opt.metrics_file.empty())) {
    std::fprintf(stderr,
                 "merchd: --metrics-aggregate needs --router and "
                 "--metrics-file\n");
    return 2;
  }

  net::ShutdownSignal::Install();
  if (!opt.trace_file.empty()) obs::TraceRecorder::Instance().Start();
  std::unique_ptr<MetricsWriter> metrics_writer;
  if (!opt.metrics_file.empty()) {
    metrics_writer = std::make_unique<MetricsWriter>(opt.metrics_file,
                                                     opt.metrics_interval);
  }

  int rc;
  std::vector<obs::PeerClock> peer_clocks;
  if (opt.listen) {
    rc = ListenMode(opt);
  } else if (opt.router) {
    rc = RouterMode(opt, argv[0], metrics_writer.get(), &peer_clocks);
  } else {
    rc = BatchMode(opt, metrics_writer.get());
  }

  metrics_writer.reset();  // final metrics snapshot
  if (!opt.trace_file.empty()) {
    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    rec.Stop();
    obs::ProcessExportMeta meta;
    meta.process_name = !opt.process_name.empty()
                            ? opt.process_name
                            : (opt.router ? "router" : "merchd");
    meta.peers = std::move(peer_clocks);
    std::string werr;
    if (!obs::WriteProcessTrace(rec, opt.trace_file, meta, &werr)) {
      std::fprintf(stderr, "merchd: %s\n", werr.c_str());
      return 1;
    }
  }
  return rc;
}
