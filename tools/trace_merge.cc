// trace_merge — stitch per-process Chrome traces into one Perfetto
// timeline.
//
//   trace_merge --out merged.json client.json router.json shard0.json ...
//
// Each input must have been exported with process metadata
// (obs::WriteProcessTrace): a merchMeta block naming the process/pid and
// its measured peer-clock offsets. The merger puts every file on one
// time axis (shifts propagate through the peer-clock graph from the root
// process — the one no other file lists as a peer), keeps per-process
// pid lanes, and synthesizes flow arrows connecting the spans that share
// a trace_id across processes (client → router → shard → response).
// The output loads in Perfetto / chrome://tracing as one timeline.
//
// Exit codes: 0 merged, 1 merge failure (missing process metadata,
// duplicate pids, structurally broken input), 2 usage / unreadable file.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/distributed/merge.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_merge --out merged.json trace1.json "
               "trace2.json [...]\n");
  return 2;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  out->clear();
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) return Usage();
      out_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "trace_merge: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (out_path.empty() || paths.empty()) return Usage();

  std::vector<std::string> jsons(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!ReadWholeFile(paths[i], &jsons[i])) {
      std::fprintf(stderr, "trace_merge: cannot read '%s'\n",
                   paths[i].c_str());
      return 2;
    }
  }

  std::string merged, error;
  merch::obs::MergeSummary summary;
  if (!merch::obs::MergeTraces(jsons, &merged, &error, &summary)) {
    std::fprintf(stderr, "trace_merge: %s\n", error.c_str());
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_merge: cannot write '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::fwrite(merged.data(), 1, merged.size(), f);
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "trace_merge: cannot write '%s'\n",
                 out_path.c_str());
    return 2;
  }

  std::string unanchored;
  if (summary.unanchored != 0) {
    unanchored = ", " + std::to_string(summary.unanchored) +
                 " unanchored file(s)";
  }
  std::printf("%s: %zu files, %zu events, %zu flow arrows across %zu "
              "cross-process traces (root %s%s)\n",
              out_path.c_str(), summary.files, summary.events, summary.flows,
              summary.linked_traces, summary.root_process.c_str(),
              unanchored.c_str());
  return 0;
}
