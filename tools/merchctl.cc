// merchctl — command-line driver for the Merchandiser simulator.
//
// Runs any bundled application under any placement policy at a chosen
// scale and prints makespan, per-task balance, and bandwidth statistics;
// `sweep` answers whole app x policy x scale grids through the concurrent
// placement service.
//
//   merchctl list
//   merchctl run --app SpGEMM [--policy all|pm|mm|mo|merch|sparta|warpx-pm]
//                [--scale 1.0] [--work 1.0] [--train-regions 281]
//                [--tasks]      # per-task execution times
//                [--bandwidth]  # bandwidth timeline summary
//   merchctl sweep [--apps all|A,B,...] [--policies all|p,q,...]
//                  [--scales 1.0,0.5,...] [--work W] [--train-regions N]
//                  [--seed S] [--threads T] [--cache N] [--repeat R]
//                  [--file requests.txt] [--placements] [--fused]
//   merchctl analyze <file.kir> [--json]
//   merchctl analyze <file.kir> --dag [--json|--dot]
//   merchctl remote --port P [--host H] [--app A] [--policy p] [--scale S]
//                   [--file requests.txt] [--deadline-ms D] [--placements]
//                   [--ping]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/lint.h"
#include "analysis/parser.h"
#include "analysis/passes.h"
#include "analysis/report.h"
#include "analysis/summaries.h"
#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "common/log.h"
#include "common/stats.h"
#include "net/client.h"
#include "net/frame.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "obs/distributed/context.h"
#include "obs/distributed/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch.h"
#include "service/placement_service.h"
#include "sim/engine.h"

namespace {

using namespace merch;

/// Peer clocks measured by `remote` (via ping round trips), attached to
/// the trace export so tools/trace_merge can align the server's timeline
/// with ours.
std::vector<obs::PeerClock> g_peer_clocks;

struct Options {
  std::string command;
  std::string app = "SpGEMM";
  std::string policy = "all";
  double scale = 1.0;
  double work = 1.0;
  std::size_t train_regions = 281;
  std::uint64_t seed = 42;
  bool show_tasks = false;
  bool show_bandwidth = false;
  // sweep-only
  std::string apps = "all";
  std::string policies = "pm,mm,mo,merch";
  std::string scales;
  std::string file;
  std::size_t threads = 1;
  std::size_t cache = 128;
  std::size_t repeat = 1;
  bool show_placements = false;
  /// Route the sweep through SubmitFused: one pool job (one app build +
  /// analysis pass) per shared application instance. Off by default; the
  /// per-request results are bit-identical either way.
  bool fused = false;
  /// Route the sweep through SubmitIncremental: fused grouping plus
  /// cross-point delta simulation (one engine per ladder, checkpoint forks
  /// on divergence; see sim/incremental.h). Bit-identical answers; the
  /// MERCH_CKPT=0 environment hatch falls back to the fused path.
  bool incremental = false;
  // analyze-only
  std::string kir_file;
  bool json = false;
  bool dag = false;
  bool dot = false;
  // remote-only
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t deadline_ms = 0;  // 0 = server default
  bool ping = false;
  // observability
  std::string trace_file;
  std::string metrics_file;
};

int Usage() {
  std::fprintf(stderr,
               "usage: merchctl list\n"
               "       merchctl run --app <name> [--policy all|pm|mm|mo|"
               "merch|sparta|warpx-pm]\n"
               "                    [--scale S] [--work W] "
               "[--train-regions N] [--seed N] [--tasks] [--bandwidth]\n"
               "       merchctl sweep [--apps all|A,B,...] "
               "[--policies all|p,q,...] [--scales S1,S2,...]\n"
               "                      [--work W] [--train-regions N] "
               "[--seed N] [--threads T]\n"
               "                      [--cache N] [--repeat R] "
               "[--file requests.txt] [--placements]\n"
               "                      [--fused]   # one job per shared app "
               "instance\n"
               "                      [--incremental]   # fused + cross-point "
               "delta simulation (MERCH_CKPT=0 disables)\n"
               "       merchctl analyze <file.kir> [--json]\n"
               "       merchctl analyze <file.kir> --dag [--json|--dot]\n"
               "       merchctl remote --port P [--host H] [--app A] "
               "[--policy p] [--scale S]\n"
               "                       [--work W] [--train-regions N] "
               "[--seed N] [--file requests.txt]\n"
               "                       [--deadline-ms D] [--placements] "
               "[--ping]\n"
               "common: [--trace FILE.json] [--metrics FILE.prom]\n"
               "        [--log-level debug|info|warn|error]\n");
  return 2;
}

/// Parse a --log-level value; unknown values are a usage error (exit 2).
bool ParseLogLevel(const char* value, LogLevel* out) {
  const std::string v = value;
  if (v == "debug") *out = LogLevel::kDebug;
  else if (v == "info") *out = LogLevel::kInfo;
  else if (v == "warn") *out = LogLevel::kWarn;
  else if (v == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Canonicalize (app, policy, ...) through the service's validator;
/// prints the error and returns false on a bad field.
bool ValidateRequest(service::PlacementRequest& req) {
  if (const std::string err = service::CanonicalizeRequest(req);
      !err.empty()) {
    std::fprintf(stderr, "merchctl: %s\n", err.c_str());
    return false;
  }
  return true;
}

sim::SimResult RunPolicy(const Options& opt, const apps::AppBundle& bundle,
                         const sim::MachineSpec& machine,
                         const sim::SimConfig& cfg, const std::string& name,
                         const core::MerchandiserSystem* system) {
  if (name == "pm") {
    baselines::PmOnlyPolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "mm") {
    baselines::MemoryModePolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "mo") {
    baselines::MemoryOptimizerPolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "sparta") {
    baselines::StaticPriorityPolicy p("Sparta-like", bundle.sparta_priority);
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "warpx-pm") {
    baselines::StaticPriorityPolicy p("WarpX-PM", bundle.lifetime_priority);
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "merch") {
    auto p = system->MakePolicy(bundle.workload, machine);
    return sim::Engine(bundle.workload, machine, cfg, p.get()).Run();
  }
  std::fprintf(stderr, "merchctl: unknown policy '%s'\n", name.c_str());
  std::exit(2);
  (void)opt;
}

void Report(const Options& opt, const sim::SimResult& r, double pm_baseline) {
  std::printf("%-16s makespan %9.2fs  speedup %5.3fx  task-CoV %.3f  "
              "migrated %s\n",
              r.policy.c_str(), r.total_seconds,
              pm_baseline > 0 ? pm_baseline / r.total_seconds : 1.0,
              r.AverageCoV(),
              FormatBytes(r.migration.bytes_to_dram + r.migration.bytes_to_pm)
                  .c_str());
  if (opt.show_tasks) {
    for (std::size_t ri = 0; ri < r.regions.size(); ++ri) {
      std::printf("  instance %zu (%.2fs):", ri, r.regions[ri].duration);
      for (const auto& ts : r.regions[ri].tasks) {
        std::printf(" %.2f", ts.exec_seconds);
      }
      std::printf("\n");
    }
  }
  if (opt.show_bandwidth) {
    std::vector<double> dram, pm;
    for (const auto& s : r.bandwidth) {
      dram.push_back(s.dram_gbps);
      pm.push_back(s.pm_gbps);
    }
    std::printf("  bandwidth: DRAM avg %.2f / max %.2f GB/s,  PM avg %.2f "
                "/ max %.2f GB/s\n",
                Mean(dram), Max(dram), Mean(pm), Max(pm));
  }
}

int RunCommand(const Options& opt) {
  service::PlacementRequest proto{opt.app,  opt.policy == "all" ? "pm"
                                                                : opt.policy,
                                  opt.scale, opt.work, opt.train_regions,
                                  opt.seed};
  if (!ValidateRequest(proto)) return 2;

  const apps::AppBundle bundle =
      apps::BuildApp(proto.app, opt.scale, opt.work);
  const sim::MachineSpec machine =
      service::PlacementService::RequestMachine(proto);
  const sim::SimConfig cfg =
      service::PlacementService::RequestSimConfig(proto);

  std::unique_ptr<core::MerchandiserSystem> system;
  const bool needs_system = opt.policy == "all" || opt.policy == "merch";
  if (needs_system) {
    workloads::TrainingConfig training;
    training.num_regions = opt.train_regions;
    std::fprintf(stderr, "training correlation function (%zu regions)...\n",
                 training.num_regions);
    system = std::make_unique<core::MerchandiserSystem>(
        core::MerchandiserSystem::Train(training));
  }

  std::printf("%s @ footprint scale %.3g (%s), work scale %.3g\n",
              proto.app.c_str(), opt.scale,
              FormatBytes(bundle.workload.TotalBytes()).c_str(), opt.work);
  if (opt.policy == "all") {
    const auto pm = RunPolicy(opt, bundle, machine, cfg, "pm", nullptr);
    Report(opt, pm, pm.total_seconds);
    for (const char* p : {"mm", "mo", "merch"}) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, p, system.get()),
             pm.total_seconds);
    }
    if (!bundle.sparta_priority.empty()) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, "sparta", nullptr),
             pm.total_seconds);
    }
    if (!bundle.lifetime_priority.empty()) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, "warpx-pm", nullptr),
             pm.total_seconds);
    }
  } else {
    Report(opt,
           RunPolicy(opt, bundle, machine, cfg, proto.policy, system.get()),
           0.0);
  }
  return 0;
}

int SweepCommand(const Options& opt) {
  std::vector<service::PlacementRequest> requests;
  if (!opt.file.empty()) {
    std::string err;
    if (!service::LoadRequestFile(opt.file, &requests, &err)) {
      std::fprintf(stderr, "merchctl: %s\n", err.c_str());
      return 2;
    }
  } else {
    const std::vector<std::string> app_list =
        opt.apps == "all" ? apps::AppNames() : SplitCsv(opt.apps);
    const std::vector<std::string> policy_list =
        opt.policies == "all" ? std::vector<std::string>{"pm", "mm", "mo",
                                                         "merch"}
                              : SplitCsv(opt.policies);
    const std::string scales = opt.scales.empty()
                                   ? std::to_string(opt.scale)
                                   : opt.scales;
    for (const auto& app : app_list) {
      for (const auto& policy : policy_list) {
        for (const auto& scale : SplitCsv(scales)) {
          requests.push_back({app, policy, std::atof(scale.c_str()), opt.work,
                              opt.train_regions, opt.seed});
        }
      }
    }
  }
  if (requests.empty()) {
    std::fprintf(stderr, "merchctl: sweep has no requests\n");
    return 2;
  }
  // Reject bad fields up front — one typo should not cost a half-run sweep.
  for (auto& req : requests) {
    if (!ValidateRequest(req)) return 2;
  }

  service::PlacementService svc(
      {.threads = opt.threads, .cache_capacity = opt.cache});
  int failures = 0;
  for (std::size_t pass = 0; pass < opt.repeat; ++pass) {
    const service::BatchMode mode =
        opt.incremental ? service::BatchMode::kIncremental
        : opt.fused     ? service::BatchMode::kFused
                        : service::BatchMode::kPerRequest;
    const service::BatchReport report = service::RunBatch(svc, requests, mode);
    if (pass == 0) {
      for (std::size_t i = 0; i < report.results.size(); ++i) {
        const auto& r = report.results[i];
        if (!r.ok()) {
          ++failures;
          std::printf("%-10s %-9s scale %-7.3g ERROR: %s\n",
                      r.request.app.c_str(), r.request.policy.c_str(),
                      r.request.scale, r.error.c_str());
          continue;
        }
        std::printf("%-10s %-9s scale %-7.3g makespan %9.2fs  task-CoV %.3f"
                    "  migrated %-10s%s\n",
                    r.request.app.c_str(), r.request.policy.c_str(),
                    r.request.scale, r.makespan_seconds, r.task_cov,
                    FormatBytes(r.migrated_bytes).c_str(),
                    report.cache_hits[i] ? "  [cached]" : "");
        if (opt.show_placements) {
          for (const auto& p : r.placements) {
            std::printf("    %-24s %-10s DRAM %.0f%%\n", p.object.c_str(),
                        FormatBytes(p.bytes).c_str(),
                        100.0 * p.dram_fraction);
          }
        }
      }
    }
    std::printf("pass %zu: %zu requests in %.2fs  (%.2f jobs/s)\n", pass + 1,
                requests.size(), report.wall_seconds,
                report.jobs_per_second);
  }
  const service::ServiceStats stats = svc.Stats();
  std::printf("service: threads %zu  simulated %llu  coalesced %llu  "
              "cache hits %llu / misses %llu / evictions %llu\n",
              stats.threads,
              static_cast<unsigned long long>(stats.simulated),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions));
  return failures == 0 ? 0 : 1;
}

/// Static analysis of a textual kernel IR: parse, derive per-object
/// pattern/alpha/footprint, lint against the declared registrations.
/// `--dag` adds whole-program dependence analysis: per-task access
/// summaries, inferred RAW/WAR/WAW edges vs the declared `after` order,
/// race / over-synchronization / placement-interference findings, and the
/// graph itself as text, JSON, or Graphviz DOT.
/// Exit codes: 0 clean, 1 error-severity findings, 2 parse failure.
int AnalyzeCommand(const Options& opt) {
  if (opt.kir_file.empty()) {
    std::fprintf(stderr, "merchctl: analyze needs a .kir file\n");
    return Usage();
  }
  const analysis::ParseResult parsed = analysis::ParseKirFile(opt.kir_file);
  if (!parsed.ok()) {
    for (const analysis::ParseError& err : parsed.errors) {
      std::fprintf(stderr, "%s\n",
                   analysis::FormatParseError(opt.kir_file, err).c_str());
    }
    return 2;
  }
  const analysis::ModuleAnalysis result = analysis::Analyze(parsed.module);
  std::vector<analysis::Finding> findings =
      analysis::Lint(parsed.module, result);
  std::string report;
  if (opt.dag) {
    const analysis::TaskGraph graph = analysis::BuildTaskGraph(
        parsed.module, analysis::Summarize(parsed.module));
    std::vector<analysis::Finding> dep = analysis::LintDependences(
        parsed.module, graph, hm::HmSpec::PaperOptane());
    if (opt.dot) {
      report = analysis::DagDotReport(parsed.module, graph);
    } else if (opt.json) {
      report = analysis::DagJsonReport(opt.kir_file, parsed.module, graph,
                                       dep);
    } else {
      report = analysis::DagTextReport(opt.kir_file, parsed.module, graph,
                                       dep);
    }
    // Dependence errors gate the exit code together with the lint's.
    findings.insert(findings.end(), dep.begin(), dep.end());
  } else {
    report = opt.json ? analysis::JsonReport(opt.kir_file, parsed.module,
                                             result, findings)
                      : analysis::TextReport(opt.kir_file, parsed.module,
                                             result, findings);
  }
  std::fputs(report.c_str(), stdout);
  return analysis::HasErrors(findings) ? 1 : 0;
}

/// Answer requests through a remote merchd (server or router) over the
/// binary wire protocol. Output mirrors `sweep` so the two are diffable.
int RemoteCommand(const Options& opt) {
  if (opt.port == 0) {
    std::fprintf(stderr, "merchctl: remote needs --port\n");
    return 2;
  }
  net::Client client;
  std::string err;
  if (!client.Connect(opt.host, opt.port, &err)) {
    std::fprintf(stderr, "merchctl: %s\n", err.c_str());
    return 1;
  }
  if (opt.ping) {
    net::PongPayload pong;
    if (client.Ping(&err, &pong) != net::Client::Status::kOk) {
      std::fprintf(stderr, "merchctl: ping failed: %s\n", err.c_str());
      return 1;
    }
    if (pong.pid != 0) {
      std::printf("pong from %s:%u (%s, pid %llu)\n", opt.host.c_str(),
                  static_cast<unsigned>(opt.port), pong.process_name.c_str(),
                  static_cast<unsigned long long>(pong.pid));
    } else {
      std::printf("pong from %s:%u\n", opt.host.c_str(),
                  static_cast<unsigned>(opt.port));
    }
    return 0;
  }

  // Under --trace, measure the server's trace-clock offset first (so
  // trace_merge can put both timelines on one axis), then give every
  // request its own trace context: the server and its workers attach
  // their spans to the id we send.
  obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
  if (rec.enabled()) {
    obs::PeerClock peer;
    if (EstimatePeerClock(client, 8, &peer, &err)) {
      g_peer_clocks.push_back(peer);
    } else {
      std::fprintf(stderr,
                   "merchctl: warning: clock sync failed (%s); the merged "
                   "trace will not be time-aligned\n",
                   err.c_str());
    }
  }

  std::vector<service::PlacementRequest> requests;
  if (!opt.file.empty()) {
    if (!service::LoadRequestFile(opt.file, &requests, &err)) {
      std::fprintf(stderr, "merchctl: %s\n", err.c_str());
      return 2;
    }
  } else {
    requests.push_back({opt.app, opt.policy == "all" ? "pm" : opt.policy,
                        opt.scale, opt.work, opt.train_regions, opt.seed});
  }
  if (requests.empty()) {
    std::fprintf(stderr, "merchctl: remote has no requests\n");
    return 2;
  }
  // Validate locally before paying a round trip — the server would reject
  // these with the same message anyway.
  for (auto& req : requests) {
    if (!ValidateRequest(req)) return 2;
  }

  int failures = 0;
  for (const auto& req : requests) {
    service::PlacementResult result;
    net::ErrorCode code;
    // One trace per request: a fresh root context rides to the server in
    // the v2 payload, and the local "remote.call" span anchors the
    // client's side of the timeline.
    obs::TraceContext ctx;
    std::uint64_t call_t0 = 0;
    if (rec.enabled()) {
      ctx.trace_id = obs::NewTraceId();
      ctx.parent_span_id = obs::NewSpanId();
      call_t0 = rec.NowNs();
    }
    obs::TraceContextScope scope(ctx);
    const net::Client::Status status =
        client.Call(req, opt.deadline_ms, &result, &code, &err);
    if (ctx.valid() && rec.enabled()) {
      const std::uint64_t now = rec.NowNs();
      rec.RecordSpan(obs::Category::kNet, "remote.call", call_t0,
                     now > call_t0 ? now - call_t0 : 0, "ok",
                     status == net::Client::Status::kOk ? 1 : 0);
    }
    if (status == net::Client::Status::kTransportError) {
      std::fprintf(stderr, "merchctl: %s\n", err.c_str());
      return 1;
    }
    if (status == net::Client::Status::kRemoteError) {
      ++failures;
      std::printf("%-10s %-9s scale %-7.3g %s: %s\n", req.app.c_str(),
                  req.policy.c_str(), req.scale, net::ErrorCodeName(code),
                  err.c_str());
      continue;
    }
    if (!result.ok()) {
      ++failures;
      std::printf("%-10s %-9s scale %-7.3g ERROR: %s\n", req.app.c_str(),
                  req.policy.c_str(), req.scale, result.error.c_str());
      continue;
    }
    std::printf("%-10s %-9s scale %-7.3g makespan %9.2fs  task-CoV %.3f  "
                "migrated %s\n",
                result.request.app.c_str(), result.request.policy.c_str(),
                result.request.scale, result.makespan_seconds, result.task_cov,
                FormatBytes(result.migrated_bytes).c_str());
    if (opt.show_placements) {
      for (const auto& p : result.placements) {
        std::printf("    %-24s %-10s DRAM %.0f%%\n", p.object.c_str(),
                    FormatBytes(p.bytes).c_str(), 100.0 * p.dram_fraction);
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc < 2) return Usage();
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      opt.app = next();
    } else if (arg == "--policy") {
      opt.policy = next();
    } else if (arg == "--scale") {
      opt.scale = std::atof(next());
    } else if (arg == "--work") {
      opt.work = std::atof(next());
    } else if (arg == "--train-regions") {
      opt.train_regions = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--tasks") {
      opt.show_tasks = true;
    } else if (arg == "--bandwidth") {
      opt.show_bandwidth = true;
    } else if (arg == "--apps") {
      opt.apps = next();
    } else if (arg == "--policies") {
      opt.policies = next();
    } else if (arg == "--scales") {
      opt.scales = next();
    } else if (arg == "--file") {
      opt.file = next();
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache") {
      opt.cache = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--repeat") {
      opt.repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(next())));
    } else if (arg == "--placements") {
      opt.show_placements = true;
    } else if (arg == "--fused") {
      opt.fused = true;
    } else if (arg == "--incremental") {
      opt.incremental = true;
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--ping") {
      opt.ping = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--dag") {
      opt.dag = true;
    } else if (arg == "--dot") {
      opt.dot = true;
    } else if (arg == "--trace") {
      opt.trace_file = next();
    } else if (arg == "--metrics") {
      opt.metrics_file = next();
    } else if (arg == "--log-level") {
      const char* value = next();
      LogLevel level;
      if (!ParseLogLevel(value, &level)) {
        std::fprintf(stderr, "merchctl: unknown log level '%s'\n", value);
        return 2;
      }
      SetLogLevel(level);
    } else if (opt.command == "analyze" && arg.rfind("--", 0) != 0 &&
               opt.kir_file.empty()) {
      opt.kir_file = arg;
    } else {
      std::fprintf(stderr, "merchctl: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  if (opt.command == "list") {
    std::printf("applications:\n");
    for (const auto& name : apps::AppNames()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("policies: pm mm mo merch sparta warpx-pm all\n");
    return 0;
  }

  const bool tracing = !opt.trace_file.empty();
#if !defined(MERCH_OBS_ENABLED)
  if (tracing && opt.command == "remote") {
    // A distributed trace without span hooks is an empty timeline; fail
    // loudly instead of shipping a useless file into trace_merge.
    std::fprintf(stderr,
                 "merchctl: remote --trace needs observability compiled in; "
                 "this binary was built with -DMERCH_OBS=OFF\n");
    return 2;
  }
#endif
  if (tracing) obs::TraceRecorder::Instance().Start();

  int rc;
  if (opt.command == "run") {
    rc = RunCommand(opt);
  } else if (opt.command == "sweep") {
    rc = SweepCommand(opt);
  } else if (opt.command == "analyze") {
    rc = AnalyzeCommand(opt);
  } else if (opt.command == "remote") {
    rc = RemoteCommand(opt);
  } else {
    std::fprintf(stderr, "merchctl: unknown command '%s'\n",
                 opt.command.c_str());
    return Usage();
  }

  if (tracing) {
    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    rec.Stop();
    obs::ProcessExportMeta meta;
    meta.process_name = "merchctl";
    meta.peers = g_peer_clocks;
    std::string err;
    if (!obs::WriteProcessTrace(rec, opt.trace_file, meta, &err)) {
      std::fprintf(stderr, "merchctl: %s\n", err.c_str());
      return rc != 0 ? rc : 1;
    }
    std::fprintf(stderr, "merchctl: wrote %zu trace events to %s (%llu "
                 "dropped)\n",
                 rec.Snapshot().size(), opt.trace_file.c_str(),
                 static_cast<unsigned long long>(rec.dropped()));
  }
  if (!opt.metrics_file.empty()) {
    const auto& registry = obs::MetricsRegistry::Instance();
    const bool as_json =
        opt.metrics_file.size() >= 5 &&
        opt.metrics_file.rfind(".json") == opt.metrics_file.size() - 5;
    const std::string text =
        as_json ? registry.Json() : registry.PrometheusText();
    std::FILE* f = std::fopen(opt.metrics_file.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "merchctl: cannot write metrics file '%s'\n",
                   opt.metrics_file.c_str());
      return rc != 0 ? rc : 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return rc;
}
