// merchctl — command-line driver for the Merchandiser simulator.
//
// Runs any bundled application under any placement policy at a chosen
// scale and prints makespan, per-task balance, and bandwidth statistics.
//
//   merchctl list
//   merchctl run --app SpGEMM [--policy all|pm|mm|mo|merch|sparta|warpx-pm]
//                [--scale 1.0] [--work 1.0] [--train-regions 281]
//                [--tasks]      # per-task execution times
//                [--bandwidth]  # bandwidth timeline summary
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace {

using namespace merch;

struct Options {
  std::string command;
  std::string app = "SpGEMM";
  std::string policy = "all";
  double scale = 1.0;
  double work = 1.0;
  std::size_t train_regions = 281;
  bool show_tasks = false;
  bool show_bandwidth = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: merchctl list\n"
               "       merchctl run --app <name> [--policy all|pm|mm|mo|"
               "merch|sparta|warpx-pm]\n"
               "                    [--scale S] [--work W] "
               "[--train-regions N] [--tasks] [--bandwidth]\n");
  return 2;
}

sim::SimResult RunPolicy(const Options& opt, const apps::AppBundle& bundle,
                         const sim::MachineSpec& machine,
                         const sim::SimConfig& cfg, const std::string& name,
                         const core::MerchandiserSystem* system) {
  if (name == "pm") {
    baselines::PmOnlyPolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "mm") {
    baselines::MemoryModePolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "mo") {
    baselines::MemoryOptimizerPolicy p;
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "sparta") {
    baselines::StaticPriorityPolicy p("Sparta-like", bundle.sparta_priority);
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "warpx-pm") {
    baselines::StaticPriorityPolicy p("WarpX-PM", bundle.lifetime_priority);
    return sim::Engine(bundle.workload, machine, cfg, &p).Run();
  }
  if (name == "merch") {
    auto p = system->MakePolicy(bundle.workload, machine);
    return sim::Engine(bundle.workload, machine, cfg, p.get()).Run();
  }
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
  (void)opt;
}

void Report(const Options& opt, const sim::SimResult& r, double pm_baseline) {
  std::printf("%-16s makespan %9.2fs  speedup %5.3fx  task-CoV %.3f  "
              "migrated %s\n",
              r.policy.c_str(), r.total_seconds,
              pm_baseline > 0 ? pm_baseline / r.total_seconds : 1.0,
              r.AverageCoV(),
              FormatBytes(r.migration.bytes_to_dram + r.migration.bytes_to_pm)
                  .c_str());
  if (opt.show_tasks) {
    for (std::size_t ri = 0; ri < r.regions.size(); ++ri) {
      std::printf("  instance %zu (%.2fs):", ri, r.regions[ri].duration);
      for (const auto& ts : r.regions[ri].tasks) {
        std::printf(" %.2f", ts.exec_seconds);
      }
      std::printf("\n");
    }
  }
  if (opt.show_bandwidth) {
    std::vector<double> dram, pm;
    for (const auto& s : r.bandwidth) {
      dram.push_back(s.dram_gbps);
      pm.push_back(s.pm_gbps);
    }
    std::printf("  bandwidth: DRAM avg %.2f / max %.2f GB/s,  PM avg %.2f "
                "/ max %.2f GB/s\n",
                Mean(dram), Max(dram), Mean(pm), Max(pm));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc < 2) return Usage();
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      opt.app = next();
    } else if (arg == "--policy") {
      opt.policy = next();
    } else if (arg == "--scale") {
      opt.scale = std::atof(next());
    } else if (arg == "--work") {
      opt.work = std::atof(next());
    } else if (arg == "--train-regions") {
      opt.train_regions = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--tasks") {
      opt.show_tasks = true;
    } else if (arg == "--bandwidth") {
      opt.show_bandwidth = true;
    } else {
      return Usage();
    }
  }

  if (opt.command == "list") {
    std::printf("applications:\n");
    for (const auto& name : apps::AppNames()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("policies: pm mm mo merch sparta warpx-pm all\n");
    return 0;
  }
  if (opt.command != "run") return Usage();

  const apps::AppBundle bundle = apps::BuildApp(opt.app, opt.scale, opt.work);
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  machine.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(machine.hm[hm::Tier::kDram].capacity_bytes) *
      opt.scale);
  machine.hm[hm::Tier::kPm].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(machine.hm[hm::Tier::kPm].capacity_bytes) *
      opt.scale);
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.05;
  cfg.page_bytes = opt.scale >= 0.5
                       ? 2 * MiB
                       : std::max<std::uint64_t>(
                             64 * KiB,
                             static_cast<std::uint64_t>(2.0 * MiB * opt.scale *
                                                        16));
  cfg.migration_gbps = 2.0;

  std::unique_ptr<core::MerchandiserSystem> system;
  const bool needs_system = opt.policy == "all" || opt.policy == "merch";
  if (needs_system) {
    workloads::TrainingConfig training;
    training.num_regions = opt.train_regions;
    std::fprintf(stderr, "training correlation function (%zu regions)...\n",
                 training.num_regions);
    system = std::make_unique<core::MerchandiserSystem>(
        core::MerchandiserSystem::Train(training));
  }

  std::printf("%s @ footprint scale %.3g (%s), work scale %.3g\n",
              opt.app.c_str(), opt.scale,
              FormatBytes(bundle.workload.TotalBytes()).c_str(), opt.work);
  if (opt.policy == "all") {
    const auto pm = RunPolicy(opt, bundle, machine, cfg, "pm", nullptr);
    Report(opt, pm, pm.total_seconds);
    for (const char* p : {"mm", "mo", "merch"}) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, p, system.get()),
             pm.total_seconds);
    }
    if (!bundle.sparta_priority.empty()) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, "sparta", nullptr),
             pm.total_seconds);
    }
    if (!bundle.lifetime_priority.empty()) {
      Report(opt, RunPolicy(opt, bundle, machine, cfg, "warpx-pm", nullptr),
             pm.total_seconds);
    }
  } else {
    Report(opt, RunPolicy(opt, bundle, machine, cfg, opt.policy, system.get()),
           0.0);
  }
  return 0;
}
