// bench_diff: regression gate between two BENCH_*.json files.
//
//   bench_diff <baseline.json> <current.json> [--threshold F]
//
// Joins the two files' "runs" arrays on (app, policy, scale, dram_quota,
// variant) and prints every matched run's speedup delta, then compares
// every top-level aggregate whose name ends in "speedup". Exits 1 if any
// aggregate regressed by more than the threshold (default 0.10 = 10%),
// 2 on usage/parse errors. Runs only present on one side are listed but
// never gate — a bench gaining or losing a variant rung must not fail the
// diff. CI redirects stdout to an artifact.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace merch {
namespace {

double NumberField(const obs::JsonValue& obj, const char* key,
                   double fallback = 0) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string StringField(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->str : "";
}

/// Join key of one run row. dram_quota defaults to 1 so files written
/// before the quota axis existed still match.
std::string RunKey(const obs::JsonValue& run) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s|%s|%g|%g|%s",
                StringField(run, "app").c_str(),
                StringField(run, "policy").c_str(),
                NumberField(run, "scale", 1.0),
                NumberField(run, "dram_quota", 1.0),
                StringField(run, "variant").c_str());
  return buf;
}

bool LoadJson(const char* path, obs::JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  if (!obs::ParseJson(text.str(), out, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, error.c_str());
    return false;
  }
  if (!out->is_object()) {
    std::fprintf(stderr, "bench_diff: %s: top level is not an object\n",
                 path);
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace
}  // namespace merch

int main(int argc, char** argv) {
  using namespace merch;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <baseline.json> <current.json> "
                   "[--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <current.json> [--threshold F]\n",
                 argv[0]);
    return 2;
  }

  obs::JsonValue baseline, current;
  if (!LoadJson(baseline_path, &baseline) || !LoadJson(current_path, &current))
    return 2;

  // Per-run speedup deltas (informational).
  const obs::JsonValue* base_runs = baseline.Find("runs");
  const obs::JsonValue* cur_runs = current.Find("runs");
  std::printf("== per-run speedup deltas (current vs baseline) ==\n");
  std::size_t matched = 0, only_current = 0;
  if (base_runs != nullptr && base_runs->is_array() && cur_runs != nullptr &&
      cur_runs->is_array()) {
    for (const obs::JsonValue& cur : cur_runs->items) {
      const std::string key = RunKey(cur);
      const obs::JsonValue* base = nullptr;
      for (const obs::JsonValue& b : base_runs->items) {
        if (RunKey(b) == key) {
          base = &b;
          break;
        }
      }
      if (base == nullptr) {
        std::printf("  %-55s  (new run, no baseline)\n", key.c_str());
        ++only_current;
        continue;
      }
      const double bs = NumberField(*base, "speedup");
      const double cs = NumberField(cur, "speedup");
      std::printf("  %-55s  %7.3fx -> %7.3fx  (%+.1f%%)\n", key.c_str(), bs,
                  cs, bs > 0 ? 100.0 * (cs - bs) / bs : 0.0);
      ++matched;
    }
    for (const obs::JsonValue& b : base_runs->items) {
      const std::string key = RunKey(b);
      bool found = false;
      for (const obs::JsonValue& cur : cur_runs->items) {
        if (RunKey(cur) == key) {
          found = true;
          break;
        }
      }
      if (!found) std::printf("  %-55s  (dropped from current)\n",
                              key.c_str());
    }
  }
  std::printf("matched %zu run(s), %zu new\n\n", matched, only_current);

  // Aggregate gate: every top-level *speedup number present in BOTH files.
  std::printf("== aggregate gate (threshold %.0f%%) ==\n", 100.0 * threshold);
  int regressions = 0;
  for (const auto& [name, value] : baseline.fields) {
    if (!EndsWith(name, "speedup") || !value.is_number()) continue;
    const obs::JsonValue* cur = current.Find(name);
    if (cur == nullptr || !cur->is_number()) {
      std::printf("  %-40s  baseline %.3fx, missing from current — SKIP\n",
                  name.c_str(), value.number);
      continue;
    }
    const bool regressed = cur->number < value.number * (1.0 - threshold);
    std::printf("  %-40s  %7.3fx -> %7.3fx  %s\n", name.c_str(), value.number,
                cur->number, regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  if (regressions > 0) {
    std::printf("\n%d aggregate(s) regressed beyond %.0f%%\n", regressions,
                100.0 * threshold);
    return 1;
  }
  std::printf("\nno aggregate regression\n");
  return 0;
}
