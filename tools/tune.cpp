// Throwaway tuning harness: dynamics of one app under all policies.
#include <cstdio>
#include <cstring>
#include "apps/registry.h"
#include "baselines/memory_optimizer.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/pm_only.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

using namespace merch;

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "SpGEMM";
  const double fscale = argc > 2 ? atof(argv[2]) : 1.0/64;
  const double wscale = argc > 3 ? atof(argv[3]) : 1.0/8;

  auto bundle = apps::BuildApp(app, fscale, wscale);
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  machine.hm[hm::Tier::kDram].capacity_bytes = (std::uint64_t)(machine.hm[hm::Tier::kDram].capacity_bytes * fscale);
  machine.hm[hm::Tier::kPm].capacity_bytes = (std::uint64_t)(machine.hm[hm::Tier::kPm].capacity_bytes * fscale);
  sim::SimConfig cfg;
  cfg.page_bytes = fscale >= 0.5 ? 2 * MiB
                                  : (std::uint64_t)(2.0 * MiB * fscale * 16);
  if (cfg.page_bytes < 64*KiB) cfg.page_bytes = 64*KiB;
  cfg.epoch_seconds = 0.05;

  auto pm = sim::SimulateHomogeneous(bundle.workload, machine, hm::Tier::kPm, cfg);
  auto dram = sim::SimulateHomogeneous(bundle.workload, machine, hm::Tier::kDram, cfg);
  printf("%s: PM-only %.1fs  DRAM-only %.1fs  ratio %.2f  dram/footprint %.2f\n",
         app, pm.total_seconds, dram.total_seconds, pm.total_seconds/dram.total_seconds,
         (double)machine.hm.dram_capacity()/bundle.workload.TotalBytes());

  auto run = [&](sim::PlacementPolicy* p){
    sim::Engine e(bundle.workload, machine, cfg, p);
    auto r = e.Run();
    printf("  %-16s total %.1fs  speedup %.3f  ACV %.3f  migGB %.1f\n",
           r.policy.c_str(), r.total_seconds, pm.total_seconds/r.total_seconds,
           r.AverageCoV(), (r.migration.bytes_to_dram+r.migration.bytes_to_pm)/1e9);
  };
  baselines::PmOnlyPolicy pmp; run(&pmp);
  baselines::MemoryModePolicy mm; run(&mm);
  baselines::MemoryOptimizerPolicy mo; run(&mo);
  workloads::TrainingConfig tc; tc.num_regions = 48;
  auto system = core::MerchandiserSystem::Train(tc);
  printf("  [GBR R2=%.3f]\n", system.correlation().test_r2());
  auto merch_policy = system.MakePolicy(bundle.workload, machine);
  {
    sim::Engine e(bundle.workload, machine, cfg, merch_policy.get());
    auto r = e.Run();
    printf("  %-16s total %.1fs  speedup %.3f  ACV %.3f  migGB %.1f\n",
           r.policy.c_str(), r.total_seconds, pm.total_seconds/r.total_seconds,
           r.AverageCoV(), (r.migration.bytes_to_dram+r.migration.bytes_to_pm)/1e9);
    for (auto& d : merch_policy->decisions()) {
      printf("   region %zu rounds %d:\n", d.region, d.greedy_rounds);
      for (size_t i = 0; i < d.tasks.size(); ++i) {
        double actual = 0;
        for (auto& ts : r.regions[d.region].tasks) if (ts.task==d.tasks[i]) actual = ts.exec_seconds;
        printf("    task %u r=%.2f pred=%.3f tpm=%.3f tdram=%.3f est_acc=%.2e actual=%.3f\n",
               d.tasks[i], d.dram_fraction[i], d.predicted_seconds[i],
               d.t_pm_only[i], d.t_dram_only[i], d.estimated_accesses[i], actual);
      }
      if (d.region >= 2) break;
    }
    printf("   region0 (base) task times: ");
    for (auto& ts : r.regions[0].tasks) printf("%.2f ", ts.exec_seconds);
    printf("\n   avg alpha=%.2f\n", merch_policy->AverageAlpha());
  }
  {
    core::MerchandiserConfig mc;
    mc.proactive_placement = true;
    auto pro = system.MakePolicy(bundle.workload, machine, mc);
    sim::Engine e(bundle.workload, machine, cfg, pro.get());
    auto r = e.Run();
    printf("  %-16s total %.1fs  speedup %.3f  ACV %.3f  migGB %.1f\n",
           "Merch+proactive", r.total_seconds, pm.total_seconds/r.total_seconds,
           r.AverageCoV(), (r.migration.bytes_to_dram+r.migration.bytes_to_pm)/1e9);
  }
  return 0;
}
