// Shared infrastructure for the table/figure reproduction binaries.
//
// Every bench binary reproduces one table or figure of the paper at the
// paper's scale (Table 2 footprints, 192 GB DRAM / 1.5 TB PM machine) and
// prints the measured rows next to the paper's reported values where the
// paper gives them. Results are deterministic (fixed seeds).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "apps/registry.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace merch::bench {

/// Summary of N repeats of one timed measurement (--repeat N in the speed
/// benches). The min is the tracked number — least scheduling noise on a
/// deterministic workload; the median is reported alongside as a sanity
/// check on run-to-run spread.
struct RepeatTiming {
  double min_seconds = 0;
  double median_seconds = 0;
  int repeats = 0;
};

/// Call `sample` `repeats` times (clamped to >= 1); each call returns one
/// wall-clock sample in seconds.
RepeatTiming MeasureRepeated(int repeats,
                             const std::function<double()>& sample);

/// The evaluation machine (paper Section 7).
sim::MachineSpec PaperMachine();

/// Simulation knobs used by every paper-scale run.
sim::SimConfig PaperSimConfig();

/// Correlation-function system trained once per process at the paper's
/// training scale (281 code regions x 10 placements).
const core::MerchandiserSystem& TrainedSystem();

/// Cached application bundles at paper scale.
const apps::AppBundle& Bundle(const std::string& name);

/// Policy names used across benches.
inline constexpr const char* kPmOnly = "PM-only";
inline constexpr const char* kMemoryMode = "MemoryMode";
inline constexpr const char* kMemoryOptimizer = "MemoryOptimizer";
inline constexpr const char* kMerchandiser = "Merchandiser";

/// Run one application under one policy; results cached per process so
/// figure benches sharing runs don't recompute.
const sim::SimResult& Run(const std::string& app, const std::string& policy);

}  // namespace merch::bench
