// Shared infrastructure for the table/figure reproduction binaries.
//
// Every bench binary reproduces one table or figure of the paper at the
// paper's scale (Table 2 footprints, 192 GB DRAM / 1.5 TB PM machine) and
// prints the measured rows next to the paper's reported values where the
// paper gives them. Results are deterministic (fixed seeds).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "apps/registry.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace merch::bench {

/// The evaluation machine (paper Section 7).
sim::MachineSpec PaperMachine();

/// Simulation knobs used by every paper-scale run.
sim::SimConfig PaperSimConfig();

/// Correlation-function system trained once per process at the paper's
/// training scale (281 code regions x 10 placements).
const core::MerchandiserSystem& TrainedSystem();

/// Cached application bundles at paper scale.
const apps::AppBundle& Bundle(const std::string& name);

/// Policy names used across benches.
inline constexpr const char* kPmOnly = "PM-only";
inline constexpr const char* kMemoryMode = "MemoryMode";
inline constexpr const char* kMemoryOptimizer = "MemoryOptimizer";
inline constexpr const char* kMerchandiser = "Merchandiser";

/// Run one application under one policy; results cached per process so
/// figure benches sharing runs don't recompute.
const sim::SimResult& Run(const std::string& app, const std::string& policy);

}  // namespace merch::bench
