// Placement-service throughput: jobs/sec for a fixed request grid at pool
// widths 1, 2, 4 and 8, plus the cache-hit speedup of answering the same
// sweep again against a warm service.
//
// The grid is every application under the three untrained policies at two
// downscaled footprints — 30 independent simulations. Jobs are
// embarrassingly parallel (each owns its Engine/PageTable), so on an
// 8-core host the 8-thread row should land near 8x the 1-thread row
// (>= 3x is the acceptance floor); the warm pass answers the whole sweep
// from the LRU cache without simulating and should be >= 10x faster than
// the cold pass.
#include <cstdio>
#include <vector>

#include "apps/registry.h"
#include "service/batch.h"
#include "service/placement_service.h"
#include "service/request.h"

namespace {

using namespace merch;

std::vector<service::PlacementRequest> Grid() {
  std::vector<service::PlacementRequest> requests;
  for (const auto& app : apps::AppNames()) {
    for (const char* policy : {"pm", "mm", "mo"}) {
      for (double scale : {0.02, 0.01}) {
        service::PlacementRequest req;
        req.app = app;
        req.policy = policy;
        req.scale = scale;
        req.work = 0.05;
        requests.push_back(req);
      }
    }
  }
  return requests;
}

}  // namespace

int main() {
  const std::vector<service::PlacementRequest> requests = Grid();
  std::printf("service_throughput: %zu requests (%zu apps x 3 policies x 2 "
              "scales)\n\n",
              requests.size(), apps::AppNames().size());
  std::printf("%-8s %12s %12s %10s\n", "threads", "wall [s]", "jobs/s",
              "speedup");

  double base_jobs_per_second = 0;
  double cold_wall = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    service::PlacementService svc(
        {.threads = threads, .cache_capacity = requests.size()});
    const service::BatchReport cold = service::RunBatch(svc, requests);
    if (threads == 1) base_jobs_per_second = cold.jobs_per_second;
    std::printf("%-8zu %12.2f %12.2f %9.2fx\n", threads, cold.wall_seconds,
                cold.jobs_per_second,
                base_jobs_per_second > 0
                    ? cold.jobs_per_second / base_jobs_per_second
                    : 1.0);
    if (threads == 8) {
      cold_wall = cold.wall_seconds;
      const service::BatchReport warm = service::RunBatch(svc, requests);
      const service::ServiceStats stats = svc.Stats();
      std::printf("\nwarm repeat (8 threads): %.4fs  (%.0f jobs/s)  "
                  "cache-hit speedup %.0fx\n",
                  warm.wall_seconds, warm.jobs_per_second,
                  warm.wall_seconds > 0 ? cold_wall / warm.wall_seconds : 0);
      std::printf("cache: hits %llu  misses %llu  evictions %llu\n",
                  static_cast<unsigned long long>(stats.cache.hits),
                  static_cast<unsigned long long>(stats.cache.misses),
                  static_cast<unsigned long long>(stats.cache.evictions));
    }
  }
  return 0;
}
