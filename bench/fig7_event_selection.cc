// Figure 7 reproduction: correlation-function accuracy as a function of
// the number of performance events used as model input, for regular- and
// irregular-pattern code.
//
// Paper reference: with the top 8 events the accuracy is 93.7% (regular)
// and 93.2% (irregular), within a point of using all events (94.8% /
// 94.1%) — hence the 8-event selection.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/correlation.h"
#include "ml/gbr.h"
#include "ml/importance.h"

int main() {
  using namespace merch;
  workloads::TrainingConfig cfg;  // paper scale: 281 regions x 10
  const auto samples = workloads::GenerateTrainingSamples(cfg);
  std::fprintf(stderr, "[bench] %zu training samples\n", samples.size());

  // Split samples into regular vs irregular code by prefetch-miss ratio
  // (the PMU signature of irregular access, cf. Section 5.1's PRF_Miss
  // discussion).
  std::vector<workloads::TrainingSample> regular, irregular;
  for (const auto& s : samples) {
    (s.pmcs[sim::kPrfMiss] < 0.4 ? regular : irregular).push_back(s);
  }

  // Rank all events by Gini importance of a model trained on everything.
  ml::Dataset full = workloads::ToDataset(samples);
  Rng rng(11);
  auto [train_full, test_full] = full.Split(0.7, rng);
  ml::GradientBoostedRegressor ranker(ml::GbrConfig{}, 11);
  ranker.Fit(train_full);
  auto importance = ranker.FeatureImportance();
  importance.resize(sim::kNumPmcEvents);  // drop the trailing r feature
  const auto order = ml::RankFeatures(importance);

  std::printf(
      "=== Figure 7: correlation-function accuracy vs number of events "
      "===\n");
  TextTable table({"events", "top event added", "R^2 regular",
                   "R^2 irregular"});
  const std::vector<std::size_t> counts = {1, 2, 4, 6, 8, 12, 16, 24};
  double r8_reg = 0, r8_irr = 0, rall_reg = 0, rall_irr = 0;
  for (const std::size_t count : counts) {
    std::vector<std::size_t> events(order.begin(),
                                    order.begin() + static_cast<long>(count));
    auto score = [&](const std::vector<workloads::TrainingSample>& set) {
      core::CorrelationFunction::Config fcfg;
      fcfg.events = events;
      core::CorrelationFunction f(fcfg);
      f.Train(set);
      return f.test_r2();
    };
    const double r_reg = score(regular);
    const double r_irr = score(irregular);
    table.AddRow({std::to_string(count), sim::PmcEventName(order[count - 1]),
                  TextTable::Num(r_reg), TextTable::Num(r_irr)});
    if (count == 8) {
      r8_reg = r_reg;
      r8_irr = r_irr;
    }
    if (count == 24) {
      rall_reg = r_reg;
      rall_irr = r_irr;
    }
  }
  table.Print();
  std::printf(
      "\ntop-8 accuracy: regular %s (paper 93.7%%), irregular %s (paper "
      "93.2%%); all-events: regular %s (paper 94.8%%), irregular %s (paper "
      "94.1%%)\n",
      TextTable::Pct(r8_reg).c_str(), TextTable::Pct(r8_irr).c_str(),
      TextTable::Pct(rall_reg).c_str(), TextTable::Pct(rall_irr).c_str());
  std::printf("importance-ranked top 8 events:");
  for (int i = 0; i < 8; ++i) {
    std::printf(" %s", sim::PmcEventName(order[i]).c_str());
  }
  std::printf("\n(paper's selection: LLC_MPKI IPC PRF_Miss MEM_WCY "
              "L2_LD_Miss BR_MSP VEC_INS L3_LD_Miss)\n");
  return 0;
}
