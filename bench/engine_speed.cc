// Engine hot-path benchmark: measures what the residency index, timing-base
// memoization, SIMD cost kernels, and parallel epoch arbitration buy on
// real runs.
//
// Each run executes in several engine variants:
//   legacy    — sweep_index=false, timing_memo=false: the pre-index
//               engine's cost profile (full TimeKernel per task per
//               fixed-point iteration; linear page/extent scans for
//               page->object lookup, MoveHottest, and EvictColdest;
//               strided PageEntry tier loads). SIMD lanes are forced off
//               on this path by the engine's resolution rule.
//   scalar    — index + memo on, SIMD lanes off, one arbitration thread:
//               isolates the algorithmic wins from vectorization.
//   simd      — scalar plus the SIMD lane kernels (MERCH_SIMD default).
//   parallel  — simd plus timing_threads = --threads N: the full engine,
//               and the headline "optimized" configuration.
//   incremental — the fork-tree sweep driver (sim/incremental.h) answering
//               ALL of an app's policies on one shared engine with a
//               single arbitration thread: checkpoint forks on divergence,
//               epochs shared across points. Reported per point as the
//               amortized share of the ladder's wall clock, with
//               checkpoint_forks / epochs_skipped / epochs_executed.
// Results are bit-identical across every variant (the bench exits 1 on any
// sim_seconds divergence; tests/engine_equiv_test.cc proves the same over a
// randomized matrix); only the wall clock and hot-path counters differ.
//
//   1. The tracked number: a fig4-style sweep — Engine::Run of the five
//      paper applications under all four policies {pm-only, MemoryMode,
//      MemoryOptimizer, Merchandiser} at full scale, legacy vs the full
//      optimized engine.
//   2. The same sweep at a second (quarter) scale (legacy + optimized
//      only; the variant curves are measured at the tracked scale).
//   3. A PlacementService batch (five apps x {pm, mm, mo}) with the
//      legacy pass driven through the MERCH_SWEEP_INDEX /
//      MERCH_ENGINE_MEMO escape hatches, end-to-end through the service,
//      plus the same batch submitted through SubmitFused (one pool job
//      per shared-app group).
//
// Writes BENCH_engine.json (override with --out <path>); --quick shrinks
// scales for CI smoke runs; --threads N sets the parallel variant's
// arbitration workers (default 4); --repeat N takes min wall clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "bench/bench_util.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "service/placement_service.h"
#include "sim/engine.h"
#include "sim/incremental.h"
#include "workloads/training.h"

namespace merch {
namespace {

const std::vector<std::string>& Policies() {
  static const std::vector<std::string> kPolicies = {"pm", "mm", "mo",
                                                     "merch"};
  return kPolicies;
}

/// One engine configuration under measurement.
struct Variant {
  const char* name;
  bool indexed;        // sweep_index + timing_memo
  bool simd;           // SIMD lane kernels (only meaningful when indexed)
  std::size_t threads; // arbitration workers
};

struct RunRow {
  std::string app;
  std::string policy;
  double scale = 1.0;
  double dram_quota = 1.0;  // DRAM capacity fraction (sweep ladder axis)
  std::string variant;
  double wall_seconds = 0;         // min over --repeat runs
  double wall_median_seconds = 0;  // median over --repeat runs
  double sim_seconds = 0;  // simulated makespan (must match across variants)
  std::uint64_t epochs = 0;
  double epochs_per_sec = 0;
  std::uint64_t timing_evals = 0;
  std::uint64_t base_builds = 0;
  std::uint64_t partial_refreshes = 0;
  // Fork-tree reuse stats (incremental rung only; zero elsewhere).
  std::uint64_t checkpoint_forks = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t epochs_executed = 0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One correlation system per process: engine speed, not training speed,
/// is under test, so a reduced training budget keeps the bench short.
const core::MerchandiserSystem& TrainedSystem(bool quick) {
  static const core::MerchandiserSystem* kSystem = [quick] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = quick ? 8 : 40;
    std::fprintf(stderr, "[engine_speed] training correlation (%zu x %zu)\n",
                 cfg.num_regions, cfg.placements_per_region);
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

/// The evaluation machine with its DRAM capacity scaled by `dram_quota`
/// (bandwidths untouched) — the sweep ladder's quota axis.
sim::MachineSpec QuotaMachine(const service::PlacementRequest& req,
                              double dram_quota) {
  sim::MachineSpec machine = service::PlacementService::RequestMachine(req);
  machine.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(machine.hm[hm::Tier::kDram].capacity_bytes) *
      dram_quota);
  return machine;
}

RunRow TimeEngineRun(const std::string& app, const std::string& policy,
                     double scale, double work, const Variant& v, bool quick,
                     double dram_quota = 1.0) {
  service::PlacementRequest req;
  req.app = app;
  req.scale = scale;
  req.work = work;
  const apps::AppBundle bundle = apps::BuildApp(app, scale, work);
  const sim::MachineSpec machine = QuotaMachine(req, dram_quota);
  sim::SimConfig cfg = service::PlacementService::RequestSimConfig(req);
  cfg.sweep_index = v.indexed;
  cfg.timing_memo = v.indexed;
  cfg.simd = v.simd;
  cfg.timing_threads = v.threads;

  // Policy construction (incl. Merchandiser's offline steps) happens
  // outside the timed section: the engine's epoch loop is what is tracked.
  baselines::PmOnlyPolicy pm;
  baselines::MemoryModePolicy mm;
  baselines::MemoryOptimizerPolicy mo;
  std::unique_ptr<core::MerchandiserPolicy> merch;
  sim::PlacementPolicy* p = nullptr;
  if (policy == "pm") {
    p = &pm;
  } else if (policy == "mm") {
    p = &mm;
  } else if (policy == "mo") {
    p = &mo;
  } else {
    merch = TrainedSystem(quick).MakePolicy(bundle.workload, machine);
    p = merch.get();
  }

  sim::Engine engine(bundle.workload, machine, cfg, p);
  const double t0 = Now();
  const sim::SimResult result = engine.Run();
  const double wall = Now() - t0;
  const sim::EngineCounters c = engine.counters();

  RunRow row;
  row.app = app;
  row.policy = policy;
  row.scale = scale;
  row.dram_quota = dram_quota;
  row.variant = v.name;
  row.wall_seconds = wall;
  row.sim_seconds = result.total_seconds;
  row.epochs = c.epochs;
  row.epochs_per_sec = wall > 0 ? static_cast<double>(c.epochs) / wall : 0;
  row.timing_evals = c.timing_evals;
  row.base_builds = c.base_builds;
  row.partial_refreshes = c.partial_refreshes;
  row.wall_median_seconds = wall;
  return row;
}

/// TimeEngineRun under --repeat: min/median wall clock over `repeats`
/// otherwise-identical runs (deterministic, so every other field agrees).
/// Every derived rate is recomputed from the min-of-N sample — one
/// repetition's wall clock must never be paired with another's rate.
RunRow TimeEngineRunRepeated(const std::string& app, const std::string& policy,
                             double scale, double work, const Variant& v,
                             bool quick, int repeats,
                             double dram_quota = 1.0) {
  RunRow row;
  const bench::RepeatTiming t = bench::MeasureRepeated(repeats, [&] {
    row = TimeEngineRun(app, policy, scale, work, v, quick, dram_quota);
    return row.wall_seconds;
  });
  row.wall_seconds = t.min_seconds;
  row.wall_median_seconds = t.median_seconds;
  row.epochs_per_sec = t.min_seconds > 0
                           ? static_cast<double>(row.epochs) / t.min_seconds
                           : 0;
  return row;
}

/// DRAM quota fractions of one incremental sweep ladder (descending — the
/// full machine drives, tighter quotas fork off when capacity binds).
const std::vector<double>& Quotas() {
  static const std::vector<double> kQuotas = {1.0, 0.75, 0.5, 0.25};
  return kQuotas;
}

/// The incremental rung: one fork-tree ladder (sim/incremental.h) over the
/// DRAM-quota axis of one (app, policy) sweep point, single arbitration
/// thread. Adjacent quotas share their placement-trajectory prefix on one
/// engine until capacity binds; the ladder runs jointly, so each point's
/// wall_seconds is the equal amortized share of the ladder's wall clock —
/// their sum is the real cost of answering all points. sim_seconds must
/// match `legacy_sim` per quota (divergence gate); forks/skipped/executed
/// come from the sweep driver.
std::vector<RunRow> TimeIncrementalLadder(
    const std::string& app, const std::string& policy, double scale,
    double work, bool quick, int repeats,
    const std::vector<double>& legacy_sim) {
  service::PlacementRequest req;
  req.app = app;
  req.scale = scale;
  req.work = work;
  const apps::AppBundle bundle = apps::BuildApp(app, scale, work);
  sim::SimConfig cfg = service::PlacementService::RequestSimConfig(req);
  cfg.sweep_index = true;
  cfg.timing_memo = true;
  cfg.simd = true;
  cfg.timing_threads = 1;

  std::vector<sim::MachineSpec> machines;
  for (double quota : Quotas()) machines.push_back(QuotaMachine(req, quota));

  std::vector<sim::SweepPointOutcome> outcomes;
  const bench::RepeatTiming t = bench::MeasureRepeated(repeats, [&] {
    // Fresh per-quota policy objects per repetition: only the sweep itself
    // is timed, and every sweep point needs its own policy instance.
    std::vector<std::unique_ptr<sim::PlacementPolicy>> policies;
    for (const sim::MachineSpec& machine : machines) {
      if (policy == "pm") {
        policies.push_back(std::make_unique<baselines::PmOnlyPolicy>());
      } else if (policy == "mm") {
        policies.push_back(std::make_unique<baselines::MemoryModePolicy>());
      } else if (policy == "mo") {
        policies.push_back(
            std::make_unique<baselines::MemoryOptimizerPolicy>());
      } else {
        policies.push_back(
            TrainedSystem(quick).MakePolicy(bundle.workload, machine));
      }
    }
    std::vector<sim::SweepPointSpec> specs;
    for (std::size_t i = 0; i < machines.size(); ++i) {
      specs.push_back(sim::SweepPointSpec{machines[i], policies[i].get()});
    }
    const double t0 = Now();
    outcomes = sim::RunIncrementalSweep(bundle.workload, cfg, specs);
    return Now() - t0;
  });

  std::vector<RunRow> rows;
  const double share = t.min_seconds / static_cast<double>(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const sim::SweepPointOutcome& o = outcomes[i];
    if (o.result.total_seconds != legacy_sim[i]) {
      std::fprintf(
          stderr,
          "%s/%s/incremental quota %g: diverged from legacy (%.9g vs %.9g)\n",
          app.c_str(), policy.c_str(), Quotas()[i], o.result.total_seconds,
          legacy_sim[i]);
      std::exit(1);
    }
    RunRow row;
    row.app = app;
    row.policy = policy;
    row.scale = scale;
    row.dram_quota = Quotas()[i];
    row.variant = "incremental";
    row.wall_seconds = share;
    row.wall_median_seconds =
        t.median_seconds / static_cast<double>(outcomes.size());
    row.sim_seconds = o.result.total_seconds;
    row.epochs = o.epochs_skipped + o.epochs_executed;
    row.epochs_per_sec =
        share > 0 ? static_cast<double>(row.epochs) / share : 0;
    row.checkpoint_forks = o.checkpoint_forks;
    row.epochs_skipped = o.epochs_skipped;
    row.epochs_executed = o.epochs_executed;
    rows.push_back(row);
  }
  return rows;
}

/// Wall seconds for a five-app x {pm, mm, mo} batch through the service:
/// one Submit per request, SubmitFused (one pool job per shared-app
/// group), or SubmitIncremental (fused + cross-point delta simulation).
enum class SubmitMode { kPerRequest, kFused, kIncremental };

double TimeServiceBatch(double scale, double work, SubmitMode mode) {
  service::PlacementService service({.threads = 2});
  std::vector<service::PlacementRequest> reqs;
  for (const std::string& app : apps::AppNames()) {
    for (const char* policy : {"pm", "mm", "mo"}) {
      service::PlacementRequest req;
      req.app = app;
      req.policy = policy;
      req.scale = scale;
      req.work = work;
      reqs.push_back(req);
    }
  }
  std::vector<service::PlacementService::Ticket> tickets;
  switch (mode) {
    case SubmitMode::kFused:
      tickets = service.SubmitFused(reqs);
      break;
    case SubmitMode::kIncremental:
      tickets = service.SubmitIncremental(reqs);
      break;
    case SubmitMode::kPerRequest:
      for (const service::PlacementRequest& req : reqs) {
        tickets.push_back(service.Submit(req));
      }
      break;
  }
  const double t0 = Now();
  for (auto& t : tickets) t.future.wait();
  const double wall = Now() - t0;
  for (auto& t : tickets) {
    const service::PlacementResult& r = t.future.get();
    if (!r.ok()) {
      std::fprintf(stderr, "service run failed: %s\n", r.error.c_str());
      std::exit(1);
    }
  }
  return wall;
}

void WriteJson(const char* path, const std::vector<RunRow>& rows,
               double sweep_speedup, double sweep_incremental_speedup,
               double service_legacy_wall, double service_optimized_wall,
               double service_fused_wall, double service_incremental_wall,
               bool quick, std::size_t threads) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_speed\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", threads);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    double legacy_wall = 0;
    for (const RunRow& o : rows) {
      if (o.app == r.app && o.policy == r.policy && o.scale == r.scale &&
          o.dram_quota == r.dram_quota && o.variant == "legacy") {
        legacy_wall = o.wall_seconds;
      }
    }
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"policy\": \"%s\", \"scale\": %g, "
        "\"dram_quota\": %g, "
        "\"variant\": \"%s\", \"wall_seconds\": %.6f, "
        "\"wall_median_seconds\": %.6f, "
        "\"sim_seconds\": %.9g, \"epochs\": %llu, \"epochs_per_sec\": %.1f, "
        "\"timing_evals\": %llu, \"base_builds\": %llu, "
        "\"partial_refreshes\": %llu, "
        "\"checkpoint_forks\": %llu, \"epochs_skipped\": %llu, "
        "\"epochs_executed\": %llu, "
        "\"speedup\": %.3f}%s\n",
        r.app.c_str(), r.policy.c_str(), r.scale, r.dram_quota,
        r.variant.c_str(),
        r.wall_seconds, r.wall_median_seconds, r.sim_seconds,
        static_cast<unsigned long long>(r.epochs), r.epochs_per_sec,
        static_cast<unsigned long long>(r.timing_evals),
        static_cast<unsigned long long>(r.base_builds),
        static_cast<unsigned long long>(r.partial_refreshes),
        static_cast<unsigned long long>(r.checkpoint_forks),
        static_cast<unsigned long long>(r.epochs_skipped),
        static_cast<unsigned long long>(r.epochs_executed),
        r.wall_seconds > 0 ? legacy_wall / r.wall_seconds : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"five_app_sweep_speedup\": %.3f,\n", sweep_speedup);
  std::fprintf(f, "  \"five_app_sweep_incremental_speedup\": %.3f,\n",
               sweep_incremental_speedup);
  std::fprintf(f,
               "  \"service_batch\": {\"legacy_wall_seconds\": %.6f, "
               "\"optimized_wall_seconds\": %.6f, "
               "\"fused_wall_seconds\": %.6f, "
               "\"incremental_wall_seconds\": %.6f, \"speedup\": %.3f, "
               "\"fused_speedup\": %.3f, "
               "\"incremental_speedup\": %.3f}\n",
               service_legacy_wall, service_optimized_wall, service_fused_wall,
               service_incremental_wall,
               service_optimized_wall > 0
                   ? service_legacy_wall / service_optimized_wall
                   : 0.0,
               service_fused_wall > 0
                   ? service_legacy_wall / service_fused_wall
                   : 0.0,
               service_incremental_wall > 0
                   ? service_legacy_wall / service_incremental_wall
                   : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace merch

int main(int argc, char** argv) {
  using namespace merch;
  bool quick = false;
  int repeats = 1;
  std::size_t threads = 4;
  const char* out = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--quick] [--repeat N] [--threads N] [--out <path>]\n",
          argv[0]);
      return 2;
    }
  }
  if (threads == 0) threads = 1;

  const Variant kLegacy{"legacy", false, false, 1};
  const Variant kScalar{"scalar", true, false, 1};
  const Variant kSimd{"simd", true, true, 1};
  const Variant kParallel{"optimized", true, true, threads};

  // (scale, work) pairs; the first is the tracked fig4-scale measurement.
  std::vector<std::pair<double, double>> scales;
  if (quick) {
    scales = {{0.05, 0.05}, {0.02, 0.03}};
  } else {
    scales = {{1.0, 1.0}, {0.25, 0.25}};
  }
  const double service_scale = quick ? 0.02 : 0.05;
  const double service_work = quick ? 0.03 : 0.05;

  std::vector<RunRow> rows;
  double sweep_legacy = 0, sweep_optimized = 0;
  double ladder_legacy = 0, ladder_incremental = 0;
  std::printf("=== engine_speed: five apps x {pm, mm, mo, merch}, "
              "%zu arbitration thread(s) ===\n", threads);
  TextTable table({"application", "policy", "scale", "legacy s", "scalar s",
                   "simd s", "optimized s", "speedup", "ladder leg s",
                   "ladder incr s", "ladder x", "forks", "ep skipped"});
  for (std::size_t s = 0; s < scales.size(); ++s) {
    for (const std::string& app : apps::AppNames()) {
      for (const std::string& policy : Policies()) {
        const double scale = scales[s].first;
        const double work = scales[s].second;
        const RunRow legacy = TimeEngineRunRepeated(app, policy, scale, work,
                                                    kLegacy, quick, repeats);
        rows.push_back(legacy);
        // Variant curves (scalar / simd) only at the tracked scale; the
        // secondary scale tracks legacy vs the full engine.
        std::vector<Variant> curve;
        if (s == 0) curve = {kScalar, kSimd};
        curve.push_back(kParallel);
        RunRow optimized;
        std::string scalar_s = "-", simd_s = "-";
        for (const Variant& v : curve) {
          const RunRow r = TimeEngineRunRepeated(app, policy, scale, work, v,
                                                 quick, repeats);
          if (legacy.sim_seconds != r.sim_seconds) {
            std::fprintf(stderr, "%s/%s/%s: variants diverged (%.9g vs %.9g)\n",
                         app.c_str(), policy.c_str(), v.name,
                         legacy.sim_seconds, r.sim_seconds);
            return 1;
          }
          rows.push_back(r);
          if (std::strcmp(v.name, "scalar") == 0) {
            scalar_s = TextTable::Num(r.wall_seconds);
          } else if (std::strcmp(v.name, "simd") == 0) {
            simd_s = TextTable::Num(r.wall_seconds);
          } else {
            optimized = r;
          }
        }
        if (s == 0) {
          sweep_legacy += legacy.wall_seconds;
          sweep_optimized += optimized.wall_seconds;
        }
        // The incremental rung (tracked scale only): legacy runs across
        // the DRAM-quota ladder, then the whole ladder answered by one
        // fork-tree sweep on a single arbitration thread. Quota 1.0
        // reuses the legacy measurement above.
        std::string ladder_leg_s = "-", ladder_incr_s = "-", ladder_x = "-";
        std::string forks_s = "-", skipped_s = "-";
        if (s == 0) {
          std::vector<double> legacy_sim;
          double quota_legacy_wall = 0;
          for (double quota : Quotas()) {
            RunRow lr = legacy;
            if (quota != 1.0) {
              lr = TimeEngineRunRepeated(app, policy, scale, work, kLegacy,
                                         quick, repeats, quota);
              rows.push_back(lr);
            }
            legacy_sim.push_back(lr.sim_seconds);
            quota_legacy_wall += lr.wall_seconds;
          }
          const std::vector<RunRow> ladder = TimeIncrementalLadder(
              app, policy, scale, work, quick, repeats, legacy_sim);
          double ladder_wall = 0;
          std::uint64_t forks = 0, skipped = 0;
          for (const RunRow& r : ladder) {
            ladder_wall += r.wall_seconds;
            forks += r.checkpoint_forks;
            skipped += r.epochs_skipped;
            rows.push_back(r);
          }
          ladder_legacy += quota_legacy_wall;
          ladder_incremental += ladder_wall;
          ladder_leg_s = TextTable::Num(quota_legacy_wall);
          ladder_incr_s = TextTable::Num(ladder_wall);
          ladder_x = TextTable::Num(quota_legacy_wall /
                                    std::max(ladder_wall, 1e-9));
          forks_s = std::to_string(forks);
          skipped_s = std::to_string(skipped);
        }
        table.AddRow({app, policy, TextTable::Num(scale),
                      TextTable::Num(legacy.wall_seconds), scalar_s, simd_s,
                      TextTable::Num(optimized.wall_seconds),
                      TextTable::Num(legacy.wall_seconds /
                                     std::max(optimized.wall_seconds, 1e-9)),
                      ladder_leg_s, ladder_incr_s, ladder_x, forks_s,
                      skipped_s});
      }
    }
  }
  table.Print();
  const double sweep_speedup =
      sweep_optimized > 0 ? sweep_legacy / sweep_optimized : 0;
  const double sweep_incremental_speedup =
      ladder_incremental > 0 ? ladder_legacy / ladder_incremental : 0;
  std::printf("\nfive-app sweep aggregate (scale %g, 4 policies): "
              "legacy %.2fs, optimized %.2fs -> %.2fx\n",
              scales[0].first, sweep_legacy, sweep_optimized, sweep_speedup);
  std::printf("incremental quota ladder (%zu quotas, 1 thread): legacy "
              "%.2fs, incremental %.2fs -> %.2fx\n",
              Quotas().size(), ladder_legacy, ladder_incremental,
              sweep_incremental_speedup);

  // Service batch: the legacy pass goes through the env escape hatches so
  // the whole stack (service -> engine) is exercised, not just the config.
  std::printf("\n=== engine_speed: service batch (5 apps x pm/mm/mo) ===\n");
  setenv("MERCH_SWEEP_INDEX", "0", 1);
  setenv("MERCH_ENGINE_MEMO", "0", 1);
  const double service_legacy =
      TimeServiceBatch(service_scale, service_work, SubmitMode::kPerRequest);
  unsetenv("MERCH_SWEEP_INDEX");
  unsetenv("MERCH_ENGINE_MEMO");
  const double service_optimized =
      TimeServiceBatch(service_scale, service_work, SubmitMode::kPerRequest);
  const double service_fused =
      TimeServiceBatch(service_scale, service_work, SubmitMode::kFused);
  const double service_incremental =
      TimeServiceBatch(service_scale, service_work, SubmitMode::kIncremental);
  std::printf("legacy %.2fs, optimized %.2fs, fused %.2fs, incremental "
              "%.2fs -> %.2fx (%.2fx fused, %.2fx incremental)\n",
              service_legacy, service_optimized, service_fused,
              service_incremental,
              service_legacy / std::max(service_optimized, 1e-9),
              service_legacy / std::max(service_fused, 1e-9),
              service_legacy / std::max(service_incremental, 1e-9));

  WriteJson(out, rows, sweep_speedup, sweep_incremental_speedup,
            service_legacy, service_optimized, service_fused,
            service_incremental, quick, threads);
  return 0;
}
