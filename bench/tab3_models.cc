// Table 3 reproduction: statistical model comparison for the correlation
// function f(.), trained on the code-sample dataset (281 regions x 10
// placements, 70/30 split) and scored with R^2.
//
// Paper reference: DTR 78.1%, SVR 83.6%, KNR 72.9%, RFR 89.2%,
// GBR 94.1% (selected), ANN 93.2%.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/correlation.h"

int main() {
  using namespace merch;
  workloads::TrainingConfig cfg;  // paper scale
  const auto samples = workloads::GenerateTrainingSamples(cfg);
  std::fprintf(stderr, "[bench] %zu training samples\n", samples.size());

  std::printf("=== Table 3: statistical models for f(.) (test R^2) ===\n");
  TextTable table({"model", "measured R^2", "paper R^2"});
  const std::map<std::string, std::string> paper = {
      {"DTR", "78.1%"}, {"SVR", "83.6%"}, {"KNR", "72.9%"},
      {"RFR", "89.2%"}, {"GBR", "94.1%"}, {"ANN", "93.2%"}};

  std::string best_model;
  double best_r2 = -1;
  for (const std::string& kind : ml::AllRegressorKinds()) {
    core::CorrelationFunction::Config fcfg;
    fcfg.model_kind = kind;
    // Model selection uses all events (Section 5.1: selection must not be
    // impacted by event selection).
    fcfg.events.resize(sim::kNumPmcEvents);
    for (std::size_t i = 0; i < sim::kNumPmcEvents; ++i) fcfg.events[i] = i;
    core::CorrelationFunction f(fcfg);
    f.Train(samples);
    table.AddRow({kind, TextTable::Pct(f.test_r2()), paper.at(kind)});
    if (f.test_r2() > best_r2) {
      best_r2 = f.test_r2();
      best_model = kind;
    }
  }
  table.Print();
  std::printf(
      "\nbest model: %s (R^2 %s) — the paper selects GBR as the "
      "correlation function.\n",
      best_model.c_str(), TextTable::Pct(best_r2).c_str());
  return 0;
}
