// Table 4 reproduction: accuracy of the whole performance-modeling
// pipeline — Eq. 1 access estimation + Section 5.2 homogeneous prediction
// + Eq. 2 — over all task instances of each application, compared with the
// "profiling-based regression" baseline [8] that scales the base-input
// time by the data-object-size ratio.
//
// Paper reference:
//   app        regression   performance model
//   SpGEMM      37.4%        74.2%
//   WarpX       75.1%        87.4%
//   BFS         38.6%        71.3%
//   DMRG        83.9%        89.2%
//   NWChem-TC   62.5%        83.0%
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/perf_model.h"

int main() {
  using namespace merch;
  std::printf(
      "=== Table 4: whole performance-modeling accuracy (per task "
      "instance) ===\n");
  TextTable table({"application", "profiling-based regression",
                   "performance model", "paper (regr / model)"});
  const std::map<std::string, std::string> paper = {
      {"SpGEMM", "37.4% / 74.2%"}, {"WarpX", "75.1% / 87.4%"},
      {"BFS", "38.6% / 71.3%"},    {"DMRG", "83.9% / 89.2%"},
      {"NWChem-TC", "62.5% / 83.0%"}};

  for (const std::string& app : apps::AppNames()) {
    const apps::AppBundle& bundle = bench::Bundle(app);
    const sim::MachineSpec machine = bench::PaperMachine();
    auto policy = bench::TrainedSystem().MakePolicy(bundle.workload, machine);
    sim::Engine engine(bundle.workload, machine, bench::PaperSimConfig(),
                       policy.get());
    const sim::SimResult result = engine.Run();

    std::vector<double> truth, model_pred, regression_pred;
    for (const core::InstanceDecision& d : policy->decisions()) {
      const sim::RegionStats& rs = result.regions[d.region];
      // The regression baseline scales the previous instance's measured
      // time by the object-size ratio (its "base input" is the most
      // recent profiled execution — the strongest fair reading of [8]).
      const sim::RegionStats& prev = result.regions[d.region - 1];
      double prev_total_bytes = 0, new_total_bytes = 0;
      for (const auto b : bundle.workload.regions[d.region - 1].active_bytes) {
        prev_total_bytes += static_cast<double>(b);
      }
      for (const auto b : bundle.workload.regions[d.region].active_bytes) {
        new_total_bytes += static_cast<double>(b);
      }
      for (std::size_t i = 0; i < d.tasks.size(); ++i) {
        double actual = 0, prev_time = 0;
        for (const auto& ts : rs.tasks) {
          if (ts.task == d.tasks[i]) actual = ts.exec_seconds;
        }
        for (const auto& ts : prev.tasks) {
          if (ts.task == d.tasks[i]) prev_time = ts.exec_seconds;
        }
        if (actual <= 0) continue;
        truth.push_back(actual);
        model_pred.push_back(d.predicted_seconds[i]);
        regression_pred.push_back(core::ProfilingRegressionPredict(
            prev_time, prev_total_bytes, new_total_bytes));
      }
    }
    table.AddRow({app, TextTable::Pct(MapeAccuracy(truth, regression_pred)),
                  TextTable::Pct(MapeAccuracy(truth, model_pred)),
                  paper.at(app)});
  }
  table.Print();
  std::printf(
      "\nshape check: the performance model must beat size-ratio "
      "regression on every application (paper: by 12.3%%-36.8%%).\n");
  return 0;
}
