// Figure 6 reproduction: DRAM and PM memory-bandwidth timelines during the
// WarpX run under Memory Mode, MemoryOptimizer, and Merchandiser.
//
// Paper reference (annotations in Fig. 6 and Section 7.2 text): DRAM peak
// 180 GB/s, PM peak 52 GB/s; under Memory Mode the average DRAM bandwidth
// is 5.98 GB/s vs PM 13.74 GB/s; Merchandiser raises average DRAM
// bandwidth to 24.31 GB/s and lowers PM to 9.97 GB/s. MemoryOptimizer and
// Merchandiser use bandwidth similarly — the win is load balance.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

namespace {

/// Downsample the epoch series into `buckets` time buckets.
std::vector<merch::sim::BandwidthSample> Downsample(
    const std::vector<merch::sim::BandwidthSample>& samples,
    std::size_t buckets) {
  std::vector<merch::sim::BandwidthSample> out;
  if (samples.empty()) return out;
  const std::size_t per = std::max<std::size_t>(1, samples.size() / buckets);
  for (std::size_t start = 0; start < samples.size(); start += per) {
    merch::sim::BandwidthSample acc;
    std::size_t n = 0;
    for (std::size_t i = start; i < std::min(samples.size(), start + per);
         ++i) {
      acc.t = samples[i].t;
      acc.dram_gbps += samples[i].dram_gbps;
      acc.pm_gbps += samples[i].pm_gbps;
      acc.migration_gbps += samples[i].migration_gbps;
      ++n;
    }
    acc.dram_gbps /= n;
    acc.pm_gbps /= n;
    acc.migration_gbps /= n;
    out.push_back(acc);
  }
  return out;
}

}  // namespace

int main() {
  using namespace merch;
  const std::vector<std::string> policies = {
      bench::kMemoryMode, bench::kMemoryOptimizer, bench::kMerchandiser};

  std::printf("=== Figure 6: WarpX memory bandwidth over time (GB/s) ===\n");
  std::printf("machine peaks: DRAM 180 GB/s, PM 52 GB/s\n");
  for (const std::string& policy : policies) {
    const sim::SimResult& r = bench::Run("WarpX", policy);
    std::printf("\n--- %s ---\n", policy.c_str());
    TextTable table({"t (s)", "DRAM GB/s", "PM GB/s", "migration GB/s"});
    for (const auto& s : Downsample(r.bandwidth, 24)) {
      table.AddRow({TextTable::Num(s.t, 1), TextTable::Num(s.dram_gbps, 2),
                    TextTable::Num(s.pm_gbps, 2),
                    TextTable::Num(s.migration_gbps, 2)});
    }
    table.Print();
    std::vector<double> dram, pm;
    for (const auto& s : r.bandwidth) {
      dram.push_back(s.dram_gbps);
      pm.push_back(s.pm_gbps);
    }
    std::printf("average: DRAM %.2f GB/s, PM %.2f GB/s\n", Mean(dram),
                Mean(pm));
  }

  const auto avg = [](const sim::SimResult& r, bool dram) {
    std::vector<double> v;
    for (const auto& s : r.bandwidth) {
      v.push_back(dram ? s.dram_gbps : s.pm_gbps);
    }
    return Mean(v);
  };
  const sim::SimResult& mm = bench::Run("WarpX", bench::kMemoryMode);
  const sim::SimResult& merch = bench::Run("WarpX", bench::kMerchandiser);
  std::printf(
      "\nshape check — Merchandiser vs Memory Mode: DRAM %.2f -> %.2f GB/s "
      "(paper: 5.98 -> 24.31), PM %.2f -> %.2f GB/s (paper: 13.74 -> "
      "9.97)\n",
      avg(mm, true), avg(merch, true), avg(mm, false), avg(merch, false));
  return 0;
}
