// Section 7.3 reproduction ("Values of alpha"): the average alpha each
// application's objects end up with after offline calculation plus runtime
// refinement.
//
// Paper reference: SpGEMM 1.9, WarpX 4.3, BFS 2.4, DMRG 5.7,
// NWChem-TC 2.6 — distinct per application, reflecting each app's caching
// behaviour. Our simulator's cache model differs from the authors'
// hardware, so the absolute values differ; what must hold is that alpha is
// app-specific and stable.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace merch;
  std::printf("=== Section 7.3: average alpha per application ===\n");
  TextTable table({"application", "measured avg alpha", "paper"});
  const std::map<std::string, std::string> paper = {
      {"SpGEMM", "1.9"}, {"WarpX", "4.3"}, {"BFS", "2.4"},
      {"DMRG", "5.7"},   {"NWChem-TC", "2.6"}};
  for (const std::string& app : apps::AppNames()) {
    const apps::AppBundle& bundle = bench::Bundle(app);
    const sim::MachineSpec machine = bench::PaperMachine();
    auto policy = bench::TrainedSystem().MakePolicy(bundle.workload, machine);
    sim::Engine engine(bundle.workload, machine, bench::PaperSimConfig(),
                       policy.get());
    engine.Run();
    table.AddRow({app, TextTable::Num(policy->AverageAlpha(), 2),
                  paper.at(app)});
  }
  table.Print();
  return 0;
}
