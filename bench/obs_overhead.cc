// Observability overhead check: what do the MERCH_TRACE_* / MERCH_METRIC_*
// hooks cost the engine hot path?
//
// Runs the same Engine workloads twice — recorder stopped (the always-on
// cost: one relaxed atomic load per macro site) and recorder started
// (full event capture) — and reports the wall-clock delta plus the cost
// per recorded event. Simulation results must be bit-identical between
// the two passes: instrumentation observes the run, it must never steer
// it. Under -DMERCH_OBS=OFF every macro compiles away and both passes
// measure the uninstrumented engine.
//
// Budgets (ISSUE acceptance): tracing-off is the baseline by definition
// here; tracing-on must stay within 5% of it. --enforce turns a blown
// budget into a non-zero exit (CI keeps it advisory by default because
// 1-core shared runners jitter more than the budget).
//
//   obs_overhead [--quick] [--enforce] [--repeat N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "baselines/memory_optimizer.h"
#include "obs/distributed/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/placement_service.h"
#include "sim/engine.h"

namespace merch {
namespace {

struct Workload {
  std::string app;
  double scale;
  double work;
};

struct PassResult {
  double wall_seconds = 0;
  // Result fingerprint: any divergence between passes is a bug.
  std::vector<double> makespans;
  std::vector<double> covs;
  std::uint64_t events = 0;
};

PassResult RunPass(const std::vector<Workload>& workloads, std::size_t repeat,
                   bool traced) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
  if (traced) {
    rec.set_ring_capacity(1u << 20);  // keep every event: measure capture
    rec.Start();
  }
  PassResult out;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    for (const Workload& w : workloads) {
      // The traced pass runs under a distributed trace context, exactly
      // like a request arriving over the wire: every recorded span pays
      // the trace-id stamp, so the budget covers propagation too.
      obs::TraceContextScope scope(
          traced ? obs::TraceContext{obs::NewTraceId(), obs::NewSpanId()}
                 : obs::TraceContext{});
      const apps::AppBundle bundle = apps::BuildApp(w.app, w.scale, w.work);
      service::PlacementRequest req{w.app, "mo", w.scale, w.work, 6, 42};
      const sim::MachineSpec machine =
          service::PlacementService::RequestMachine(req);
      const sim::SimConfig cfg =
          service::PlacementService::RequestSimConfig(req);
      baselines::MemoryOptimizerPolicy policy;
      const sim::SimResult r =
          sim::Engine(bundle.workload, machine, cfg, &policy).Run();
      out.makespans.push_back(r.total_seconds);
      out.covs.push_back(r.AverageCoV());
    }
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (traced) {
    rec.Stop();
    out.events = rec.Snapshot().size() + rec.dropped();
  }
  return out;
}

}  // namespace
}  // namespace merch

int main(int argc, char** argv) {
  using namespace merch;
  bool quick = false;
  bool enforce = false;
  std::size_t repeat = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: obs_overhead [--quick] [--enforce] [--repeat N]\n");
      return 2;
    }
  }
  const double scale = quick ? 0.01 : 0.05;
  const double work = quick ? 0.02 : 0.1;
  std::vector<Workload> workloads;
  for (const std::string& app : apps::AppNames()) {
    workloads.push_back({app, scale, work});
  }
  if (quick) workloads.resize(2);

  // Warm-up: fault in code and the apps' generated inputs so the first
  // measured pass is not paying one-time costs.
  (void)RunPass(workloads, 1, /*traced=*/false);

  const PassResult off = RunPass(workloads, repeat, /*traced=*/false);
  const PassResult on = RunPass(workloads, repeat, /*traced=*/true);

  if (off.makespans != on.makespans || off.covs != on.covs) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL — tracing changed simulation results\n");
    return 1;
  }

  const double overhead =
      off.wall_seconds > 0
          ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds
          : 0.0;
  const double ns_per_event =
      on.events > 0 ? (on.wall_seconds - off.wall_seconds) * 1e9 /
                          static_cast<double>(on.events)
                    : 0.0;
#if defined(MERCH_OBS_ENABLED)
  const char* mode = "MERCH_OBS=ON";
#else
  const char* mode = "MERCH_OBS=OFF";
#endif
  std::printf("obs_overhead (%s, %zu workloads x %zu repeats)\n", mode,
              workloads.size(), repeat);
  std::printf("  tracing off: %8.3fs\n", off.wall_seconds);
  std::printf("  tracing on:  %8.3fs  (%+.2f%%, %llu events, %.0f ns/event)\n",
              on.wall_seconds, 100.0 * overhead,
              static_cast<unsigned long long>(on.events), ns_per_event);
  std::printf("  results bit-identical: yes\n");

  if (enforce && overhead > 0.05) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL — tracing-on overhead %.2f%% exceeds "
                 "the 5%% budget\n",
                 100.0 * overhead);
    return 1;
  }
  return 0;
}
