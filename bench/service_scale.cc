// service_scale — closed-loop load generator for the networked placement
// service (src/net), the service-tier acceptance bench.
//
// Three phases against an in-process PlacementServer on a loopback socket:
//
//   1. verify    — every unique request in the mix is answered both by a
//                  reference in-process PlacementService and over the wire;
//                  the two results must be bit-identical (doubles compared
//                  by bit pattern). This also warms the server's cache.
//   2. saturate  — a concurrency sweep: at each level, N closed-loop
//                  clients drive the warm server until the level's quota
//                  is spent, recording per-request latency. Reports
//                  p50/p99 and throughput per level (the saturation
//                  curve); a sampled subset re-checks bit-identity under
//                  full load. Default quotas total >= 100k requests.
//   3. overload  — a deliberately tiny server (1 worker, max_inflight 1)
//                  is flooded with cold cache-missing requests; the bench
//                  asserts the server sheds with RETRY_LATER instead of
//                  queueing without bound, that every call completes (no
//                  hangs), and that merch_net_shed_total shows up in the
//                  Prometheus export.
//
// Writes BENCH_service.json (override with --out <path>); --quick shrinks
// quotas for CI smoke runs. Any mismatch, transport error, hang, or
// missing shed is a non-zero exit.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/placement_service.h"
#include "service/serialization.h"

namespace merch {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(sorted.size() - 1.0,
                       q * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

/// The request mix: every app under every policy, two seeds each, at a
/// small scale so the cold pass stays cheap. 'merch' carries a reduced
/// training budget — serving throughput, not training, is under test.
std::vector<service::PlacementRequest> BuildMix() {
  std::vector<service::PlacementRequest> mix;
  for (const auto& app : apps::AppNames()) {
    for (const char* policy : {"pm", "mm", "mo", "merch"}) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        service::PlacementRequest req{app, policy, 0.01, 0.02, 8, seed};
        const std::string err = service::CanonicalizeRequest(req);
        if (!err.empty()) {
          std::fprintf(stderr, "[service_scale] bad mix request: %s\n",
                       err.c_str());
          std::exit(1);
        }
        mix.push_back(req);
      }
    }
  }
  return mix;
}

struct LevelRow {
  std::size_t concurrency = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct OverloadRow {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double seconds = 0;
};

/// One closed-loop concurrency level: `concurrency` clients share a quota
/// of `quota` requests round-robin over the warm mix. Every 97th response
/// is re-checked for bit-identity against the reference results.
LevelRow RunLevel(std::uint16_t port, std::size_t concurrency,
                  std::size_t quota,
                  const std::vector<service::PlacementRequest>& mix,
                  const std::map<std::string, service::PlacementResult>& ref,
                  std::atomic<std::size_t>* mismatches) {
  std::atomic<std::size_t> issued{0};
  std::atomic<std::size_t> errors{0};
  std::mutex merge_mu;
  std::vector<double> latencies;
  latencies.reserve(quota);

  const double t0 = Now();
  std::vector<std::thread> workers;
  workers.reserve(concurrency);
  for (std::size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      net::Client client;
      std::string err;
      if (!client.Connect("127.0.0.1", port, &err)) {
        std::fprintf(stderr, "[service_scale] worker %zu: %s\n", w,
                     err.c_str());
        errors.fetch_add(1);
        return;
      }
      std::vector<double> local;
      for (;;) {
        const std::size_t i = issued.fetch_add(1);
        if (i >= quota) break;
        const service::PlacementRequest& req = mix[i % mix.size()];
        service::PlacementResult result;
        net::ErrorCode code;
        const double start = Now();
        const net::Client::Status status =
            client.Call(req, 30000, &result, &code, &err);
        local.push_back(Now() - start);
        if (status != net::Client::Status::kOk) {
          std::fprintf(stderr, "[service_scale] call failed: %s\n",
                       err.c_str());
          errors.fetch_add(1);
          if (status == net::Client::Status::kTransportError) return;
          continue;
        }
        if (i % 97 == 0) {
          const auto it = ref.find(service::CanonicalKey(req));
          if (it == ref.end() ||
              !service::BitIdentical(it->second, result)) {
            mismatches->fetch_add(1);
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : workers) t.join();

  LevelRow row;
  row.concurrency = concurrency;
  row.requests = latencies.size();
  row.errors = errors.load();
  row.seconds = Now() - t0;
  row.rps = row.seconds > 0 ? row.requests / row.seconds : 0;
  std::sort(latencies.begin(), latencies.end());
  row.p50_ms = Percentile(latencies, 0.50) * 1e3;
  row.p99_ms = Percentile(latencies, 0.99) * 1e3;
  return row;
}

/// Flood a deliberately tiny server with cold keys until it sheds. Every
/// request varies its seed, so nothing hits the cache and admission
/// control is the only thing between the flood and the one worker thread.
OverloadRow RunOverload(std::uint16_t port, std::size_t concurrency,
                        std::size_t per_client_rounds) {
  OverloadRow row;
  std::mutex mu;
  const double t0 = Now();
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      net::Client client;
      std::string err;
      if (!client.Connect("127.0.0.1", port, &err)) {
        std::lock_guard<std::mutex> lock(mu);
        ++row.errors;
        return;
      }
      std::size_t ok = 0, shed = 0, errs = 0, sent = 0;
      for (std::size_t i = 0; i < per_client_rounds; ++i) {
        service::PlacementRequest req{"SpGEMM", "pm", 0.005, 0.01, 0,
                                      1000 + w * 1000 + i};
        (void)service::CanonicalizeRequest(req);
        service::PlacementResult result;
        net::ErrorCode code;
        ++sent;
        const net::Client::Status status =
            client.Call(req, 30000, &result, &code, &err);
        if (status == net::Client::Status::kOk) {
          ++ok;
        } else if (status == net::Client::Status::kRemoteError &&
                   code == net::ErrorCode::kRetryLater) {
          ++shed;
        } else {
          ++errs;
          if (status == net::Client::Status::kTransportError) break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      row.requests += sent;
      row.ok += ok;
      row.shed += shed;
      row.errors += errs;
    });
  }
  for (auto& t : workers) t.join();
  row.seconds = Now() - t0;
  return row;
}

bool WriteJson(const char* path, bool quick, std::size_t mix_size,
               std::size_t verified, std::size_t mismatches,
               const std::vector<LevelRow>& levels,
               const OverloadRow& overload, bool metric_present) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::size_t total = 0;
  for (const auto& l : levels) total += l.requests;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service_scale\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"mix_size\": %zu,\n", mix_size);
  std::fprintf(f, "  \"verify\": {\"unique\": %zu, \"mismatches\": %zu},\n",
               verified, mismatches);
  std::fprintf(f, "  \"total_requests\": %zu,\n", total);
  std::fprintf(f, "  \"saturation\": [\n");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelRow& l = levels[i];
    std::fprintf(f,
                 "    {\"concurrency\": %zu, \"requests\": %zu, \"errors\": "
                 "%zu, \"seconds\": %.3f, \"rps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 l.concurrency, l.requests, l.errors, l.seconds, l.rps,
                 l.p50_ms, l.p99_ms, i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"overload\": {\"requests\": %zu, \"ok\": %zu, \"shed\": "
               "%zu, \"errors\": %zu, \"seconds\": %.3f},\n",
               overload.requests, overload.ok, overload.shed, overload.errors,
               overload.seconds);
  std::fprintf(f, "  \"metrics_has_shed_total\": %s\n",
               metric_present ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace merch

int main(int argc, char** argv) {
  using namespace merch;
  bool quick = false;
  const char* out = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<service::PlacementRequest> mix = BuildMix();
  const std::vector<std::size_t> levels =
      quick ? std::vector<std::size_t>{1, 4, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  const std::size_t quota_per_level = quick ? 500 : 20000;

  // ---- phase 1: verify ------------------------------------------------
  std::fprintf(stderr, "[service_scale] cold pass: %zu unique requests "
               "(in-process reference + wire)\n", mix.size());
  net::ServerConfig cfg;
  cfg.threads = std::max(2u, std::thread::hardware_concurrency() / 2);
  cfg.cache_capacity = 4096;
  net::PlacementServer server(cfg);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "[service_scale] server: %s\n", err.c_str());
    return 1;
  }

  service::PlacementService reference(
      {.threads = cfg.threads, .cache_capacity = 4096});
  std::map<std::string, service::PlacementResult> ref;
  for (const auto& req : mix) {
    ref[service::CanonicalKey(req)] = reference.Submit(req).future.get();
  }
  reference.Shutdown();

  net::Client verifier;
  if (!verifier.Connect("127.0.0.1", server.port(), &err)) {
    std::fprintf(stderr, "[service_scale] connect: %s\n", err.c_str());
    return 1;
  }
  std::size_t cold_mismatches = 0;
  for (const auto& req : mix) {
    service::PlacementResult result;
    net::ErrorCode code;
    if (verifier.Call(req, 120000, &result, &code, &err) !=
        net::Client::Status::kOk) {
      std::fprintf(stderr, "[service_scale] cold call failed: %s\n",
                   err.c_str());
      return 1;
    }
    if (!service::BitIdentical(ref[service::CanonicalKey(req)], result)) {
      ++cold_mismatches;
    }
  }
  verifier.Close();
  std::fprintf(stderr, "[service_scale] cold pass done (%zu mismatches)\n",
               cold_mismatches);

  // ---- phase 2: saturation sweep -------------------------------------
  std::atomic<std::size_t> hot_mismatches{0};
  std::vector<LevelRow> rows;
  std::size_t sweep_errors = 0;
  for (std::size_t c : levels) {
    const LevelRow row = RunLevel(server.port(), c, quota_per_level, mix,
                                  ref, &hot_mismatches);
    std::fprintf(stderr,
                 "[service_scale] c=%-3zu %zu reqs in %.2fs  %.0f rps  "
                 "p50 %.3fms  p99 %.3fms  errors %zu\n",
                 row.concurrency, row.requests, row.seconds, row.rps,
                 row.p50_ms, row.p99_ms, row.errors);
    sweep_errors += row.errors;
    rows.push_back(row);
  }
  server.Stop();

  // ---- phase 3: overload ---------------------------------------------
  net::ServerConfig tiny;
  tiny.threads = 1;
  tiny.cache_capacity = 16;
  tiny.max_inflight = 1;
  tiny.max_queue_depth = 1;
  net::PlacementServer small(tiny);
  if (!small.Start(&err)) {
    std::fprintf(stderr, "[service_scale] overload server: %s\n",
                 err.c_str());
    return 1;
  }
  OverloadRow overload =
      RunOverload(small.port(), 8, quick ? 8 : 32);
  std::fprintf(stderr,
               "[service_scale] overload: %zu reqs  ok %zu  shed %zu  "
               "errors %zu in %.2fs\n",
               overload.requests, overload.ok, overload.shed,
               overload.errors, overload.seconds);
  small.Stop();

  const std::string prom = obs::MetricsRegistry::Instance().PrometheusText();
  const bool metric_present =
      prom.find("merch_net_shed_total") != std::string::npos;

  if (!WriteJson(out, quick, mix.size(), mix.size(), cold_mismatches,
                 rows, overload, metric_present)) {
    std::fprintf(stderr, "[service_scale] cannot write %s\n", out);
    return 1;
  }
  std::fprintf(stderr, "[service_scale] wrote %s\n", out);

  int rc = 0;
  if (cold_mismatches > 0 || hot_mismatches.load() > 0) {
    std::fprintf(stderr, "[service_scale] FAIL: %zu cold / %zu hot "
                 "bit-identity mismatches\n",
                 cold_mismatches, hot_mismatches.load());
    rc = 1;
  }
  if (sweep_errors > 0) {
    std::fprintf(stderr, "[service_scale] FAIL: %zu sweep errors\n",
                 sweep_errors);
    rc = 1;
  }
  if (overload.shed == 0) {
    std::fprintf(stderr,
                 "[service_scale] FAIL: overload produced no RETRY_LATER\n");
    rc = 1;
  }
  if (overload.errors > 0) {
    std::fprintf(stderr, "[service_scale] FAIL: %zu overload errors\n",
                 overload.errors);
    rc = 1;
  }
  if (!metric_present) {
    std::fprintf(stderr, "[service_scale] FAIL: merch_net_shed_total "
                 "missing from Prometheus export\n");
    rc = 1;
  }
  return rc;
}
