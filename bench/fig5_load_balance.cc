// Figure 5 reproduction: task execution time distributions (box plot
// summaries of per-task times normalised to each instance's slowest task)
// and the A.C.V load-balance metric.
//
// Paper reference: Merchandiser reduces A.C.V by 51.6% vs Memory Mode and
// 42.7% vs MemoryOptimizer on average; vs PM-only it reduces A.C.V by
// 39.1% (SpGEMM) and 21.4% (BFS) — it removes even app-inherent imbalance.
// WarpX and DMRG have no load imbalance of their own.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

int main() {
  using namespace merch;
  const std::vector<std::string> policies = {
      bench::kPmOnly, bench::kMemoryMode, bench::kMemoryOptimizer,
      bench::kMerchandiser};

  std::printf(
      "=== Figure 5: normalized task execution time distribution ===\n");
  TextTable table({"application", "policy", "q1", "median", "q3", "min",
                   "max", "A.C.V"});
  std::map<std::string, std::map<std::string, double>> acv;
  for (const std::string& app : apps::AppNames()) {
    for (const std::string& policy : policies) {
      const sim::SimResult& r = bench::Run(app, policy);
      const auto times = r.NormalizedTaskTimes();
      const BoxStats box = ComputeBoxStats(times);
      acv[app][policy] = r.AverageCoV();
      table.AddRow({app, policy, TextTable::Num(box.q1),
                    TextTable::Num(box.median), TextTable::Num(box.q3),
                    TextTable::Num(box.min), TextTable::Num(box.max),
                    TextTable::Num(r.AverageCoV())});
    }
  }
  table.Print();

  double vs_mm = 0, vs_mo = 0;
  std::printf("\nA.C.V reduction by Merchandiser:\n");
  TextTable reduction({"application", "vs PM-only", "vs Memory Mode",
                       "vs MemoryOptimizer"});
  for (const std::string& app : apps::AppNames()) {
    const double merch = acv[app][bench::kMerchandiser];
    auto red = [&](const char* p) {
      return acv[app][p] > 0 ? 1.0 - merch / acv[app][p] : 0.0;
    };
    reduction.AddRow({app, TextTable::Pct(red(bench::kPmOnly)),
                      TextTable::Pct(red(bench::kMemoryMode)),
                      TextTable::Pct(red(bench::kMemoryOptimizer))});
    vs_mm += red(bench::kMemoryMode);
    vs_mo += red(bench::kMemoryOptimizer);
  }
  reduction.Print();
  const double n = static_cast<double>(apps::AppNames().size());
  std::printf(
      "\naverage A.C.V reduction: %s vs Memory Mode (paper: 51.6%%), "
      "%s vs MemoryOptimizer (paper: 42.7%%)\n",
      TextTable::Pct(vs_mm / n).c_str(), TextTable::Pct(vs_mo / n).c_str());
  return 0;
}
