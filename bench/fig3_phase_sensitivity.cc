// Figure 3 reproduction: performance of NWChem-TC's five execution phases
// when the ratio of DRAM accesses to total main-memory accesses is 0%,
// 50%, and 100%, normalised to PM-only.
//
// Paper reference: at a 50% ratio, Writeback and Input Processing improve
// by 47.5% and 26.2%; the improvement is *not* linear in the ratio — the
// motivation for learning the correlation function f instead of
// interpolating linearly.
#include <cstdio>

#include "apps/nwchem_tc.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "sim/fixed_fraction.h"

int main() {
  using namespace merch;
  const apps::AppBundle& bundle = bench::Bundle("NWChem-TC");
  const sim::MachineSpec machine = [] {
    // Homogeneous-capacity machine: the ratio sweep needs DRAM space for
    // up to 100% of the footprint.
    sim::MachineSpec m = bench::PaperMachine();
    m.hm[hm::Tier::kDram].capacity_bytes = 2 * m.hm[hm::Tier::kPm].capacity_bytes;
    return m;
  }();

  // Per-phase seconds at each DRAM-access ratio: phase time = mean across
  // tasks of that kernel's time in the first region.
  const std::vector<double> ratios = {0.0, 0.5, 1.0};
  const auto& phases = apps::NwchemPhaseNames();
  std::vector<std::vector<double>> phase_seconds(ratios.size());
  std::vector<double> task_seconds(ratios.size(), 0.0);
  for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
    sim::FixedFractionPolicy policy = sim::FixedFractionPolicy::Uniform(
        bundle.workload.objects.size(), ratios[ri]);
    sim::Engine engine(bundle.workload, machine, bench::PaperSimConfig(),
                       &policy);
    const sim::SimResult r = engine.Run();
    const sim::RegionStats& region = r.regions.front();
    phase_seconds[ri].assign(phases.size(), 0.0);
    for (const sim::TaskStats& ts : region.tasks) {
      for (std::size_t k = 0; k < ts.kernel_seconds.size(); ++k) {
        phase_seconds[ri][k] += ts.kernel_seconds[k];
      }
      task_seconds[ri] += ts.exec_seconds;
    }
  }

  std::printf(
      "=== Figure 3: NWChem-TC phase time vs DRAM-access ratio "
      "(normalised to ratio 0%%) ===\n");
  TextTable table({"phase", "ratio 0%", "ratio 50%", "ratio 100%",
                   "reduction @50%"});
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const double base = phase_seconds[0][k];
    table.AddRow({phases[k], "1.000",
                  TextTable::Num(phase_seconds[1][k] / base),
                  TextTable::Num(phase_seconds[2][k] / base),
                  TextTable::Pct(1.0 - phase_seconds[1][k] / base)});
  }
  table.AddRow({"entire task", "1.000",
                TextTable::Num(task_seconds[1] / task_seconds[0]),
                TextTable::Num(task_seconds[2] / task_seconds[0]),
                TextTable::Pct(1.0 - task_seconds[1] / task_seconds[0])});
  table.Print();
  std::printf(
      "\npaper reference @50%% ratio: Writeback -47.5%%, Input Processing "
      "-26.2%%; improvements are phase-dependent and nonlinear in the "
      "ratio.\n");
  return 0;
}
