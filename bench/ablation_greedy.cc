// Ablation: the design choices inside Merchandiser's migration decision —
// (a) Algorithm 1's step size (the paper fixes 5%), (b) instance-start
// placement vs paper-faithful quota-capped reactive migration only,
// (c) load-balance awareness itself (greedy vs giving every task an equal
// DRAM-access share).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "sim/fixed_fraction.h"

namespace merch {
namespace {

double RunWith(const apps::AppBundle& bundle, core::MerchandiserConfig cfg) {
  const sim::MachineSpec machine = bench::PaperMachine();
  auto policy =
      bench::TrainedSystem().MakePolicy(bundle.workload, machine, cfg);
  sim::Engine engine(bundle.workload, machine, bench::PaperSimConfig(),
                     policy.get());
  return engine.Run().total_seconds;
}

}  // namespace
}  // namespace merch

int main() {
  using namespace merch;
  const std::string app = "DMRG";  // regular app: placement-decision bound
  const apps::AppBundle& bundle = bench::Bundle(app);
  const double pm_time = bench::Run(app, bench::kPmOnly).total_seconds;

  std::printf("=== Ablation: Algorithm 1 step size (%s) ===\n", app.c_str());
  TextTable steps({"step", "speedup vs PM-only", "greedy rounds note"});
  for (const double step : {0.025, 0.05, 0.10, 0.20}) {
    core::MerchandiserConfig cfg;
    cfg.greedy.step = step;
    const double t = RunWith(bundle, cfg);
    steps.AddRow({TextTable::Pct(step), TextTable::Num(pm_time / t),
                  step == 0.05 ? "paper default" : ""});
  }
  steps.Print();

  std::printf("\n=== Ablation: placement mechanism (%s) ===\n", app.c_str());
  TextTable mech({"variant", "speedup vs PM-only"});
  {
    core::MerchandiserConfig cfg;
    cfg.proactive_placement = true;
    mech.AddRow({"instance-start placement (default)",
                 TextTable::Num(pm_time / RunWith(bundle, cfg))});
  }
  {
    core::MerchandiserConfig cfg;
    cfg.proactive_placement = false;
    mech.AddRow({"quota-capped reactive migration only",
                 TextTable::Num(pm_time / RunWith(bundle, cfg))});
  }
  mech.Print();
  std::printf(
      "(reactive-only migration cannot pre-place sweep prefixes, so the "
      "instance-start variant dominates on regular apps.)\n");

  std::printf(
      "\n=== Ablation: load-balance awareness (equal-share strawman) "
      "===\n");
  TextTable balance({"variant", "speedup vs PM-only", "A.C.V"});
  {
    const sim::SimResult& merch = bench::Run(app, bench::kMerchandiser);
    balance.AddRow({"Merchandiser (Algorithm 1)",
                    TextTable::Num(pm_time / merch.total_seconds),
                    TextTable::Num(merch.AverageCoV())});
  }
  {
    // Equal DRAM-access share for every object: capacity split evenly.
    const double even_fraction =
        0.9 * static_cast<double>(bench::PaperMachine().hm.dram_capacity()) /
        static_cast<double>(bundle.workload.TotalBytes());
    sim::FixedFractionPolicy equal = sim::FixedFractionPolicy::Uniform(
        bundle.workload.objects.size(), std::min(0.95, even_fraction));
    sim::Engine engine(bundle.workload, bench::PaperMachine(),
                       bench::PaperSimConfig(), &equal);
    const sim::SimResult r = engine.Run();
    balance.AddRow({"equal share per object",
                    TextTable::Num(pm_time / r.total_seconds),
                    TextTable::Num(r.AverageCoV())});
  }
  balance.Print();
  return 0;
}
