// Table 1 reproduction: access patterns detected per application by the
// static analysis subsystem (src/analysis), ranked by touched-bytes
// volume from the footprint/reuse passes.
//
// Paper reference:
//   SpGEMM: Stream, Random      WarpX: Strided, Stencil
//   BFS:    Stream, Random      DMRG:  Stream, Strided
//   NWChem-TC: Stream, Random
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/ir.h"
#include "analysis/passes.h"
#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace merch;
  std::printf("=== Table 1: access patterns detected per application ===\n");
  TextTable table({"application", "dominant patterns (by access volume)",
                   "paper"});
  const std::map<std::string, std::string> paper = {
      {"SpGEMM", "Stream, Random"}, {"WarpX", "Strided, Stencil"},
      {"BFS", "Stream, Random"},    {"DMRG", "Stream, Strided"},
      {"NWChem-TC", "Stream, Random"}};

  for (const std::string& app : apps::AppNames()) {
    const apps::AppBundle& bundle = bench::Bundle(app);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const analysis::ModuleAnalysis result = analysis::Analyze(module);

    // Weight each object's paper-label pattern by the touched bytes the
    // base instance moves with it (Unknown folds into Random downstream,
    // Section 4).
    std::map<int, double> volume;
    for (const analysis::ObjectReport& obj : result.objects) {
      if (!obj.referenced) continue;
      const auto p = obj.trace_pattern == trace::AccessPattern::kUnknown
                         ? trace::AccessPattern::kRandom
                         : obj.trace_pattern;
      volume[static_cast<int>(p)] += obj.touched_bytes;
    }
    std::vector<std::pair<double, int>> ranked;
    for (const auto& [p, v] : volume) ranked.emplace_back(v, p);
    std::sort(ranked.rbegin(), ranked.rend());
    std::string detected;
    for (std::size_t i = 0; i < std::min<std::size_t>(2, ranked.size());
         ++i) {
      if (!detected.empty()) detected += ", ";
      detected +=
          trace::PatternName(static_cast<trace::AccessPattern>(ranked[i].second));
    }
    table.AddRow({app, detected, paper.at(app)});
  }
  table.Print();
  std::printf(
      "\n(the analysis also sees the minor patterns each app carries — "
      "e.g. index-array streams in gather loops; Table 1 lists the two "
      "dominant ones.)\n");
  return 0;
}
