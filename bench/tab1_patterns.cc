// Table 1 reproduction: access patterns detected per application by the
// Spindle-like static classifier, ranked by main-memory access volume.
//
// Paper reference:
//   SpGEMM: Stream, Random      WarpX: Strided, Stencil
//   BFS:    Stream, Random      DMRG:  Stream, Strided
//   NWChem-TC: Stream, Random
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/lowering.h"
#include "core/pattern_classifier.h"

int main() {
  using namespace merch;
  std::printf("=== Table 1: access patterns detected per application ===\n");
  TextTable table({"application", "dominant patterns (by access volume)",
                   "paper"});
  const std::map<std::string, std::string> paper = {
      {"SpGEMM", "Stream, Random"}, {"WarpX", "Strided, Stencil"},
      {"BFS", "Stream, Random"},    {"DMRG", "Stream, Strided"},
      {"NWChem-TC", "Stream, Random"}};

  for (const std::string& app : apps::AppNames()) {
    const apps::AppBundle& bundle = bench::Bundle(app);
    // Classify each task's objects, then weight each pattern by the
    // program accesses the base instance issues with it.
    std::map<int, double> volume;
    for (const core::TaskIr& ir : bundle.task_irs) {
      const auto kernels =
          core::LowerTask(ir, bundle.workload.objects.size());
      for (const auto& kernel : kernels) {
        for (const auto& access : kernel.accesses) {
          // Unknown is handled as Random downstream (Section 4).
          const auto p = access.pattern == trace::AccessPattern::kUnknown
                             ? trace::AccessPattern::kRandom
                             : access.pattern;
          volume[static_cast<int>(p)] +=
              static_cast<double>(access.program_accesses);
        }
      }
    }
    std::vector<std::pair<double, int>> ranked;
    for (const auto& [p, v] : volume) ranked.emplace_back(v, p);
    std::sort(ranked.rbegin(), ranked.rend());
    std::string detected;
    for (std::size_t i = 0; i < std::min<std::size_t>(2, ranked.size());
         ++i) {
      if (!detected.empty()) detected += ", ";
      detected +=
          trace::PatternName(static_cast<trace::AccessPattern>(ranked[i].second));
    }
    table.AddRow({app, detected, paper.at(app)});
  }
  table.Print();
  std::printf(
      "\n(the classifier also sees the minor patterns each app carries — "
      "e.g. index-array streams in gather loops; Table 1 lists the two "
      "dominant ones.)\n");
  return 0;
}
