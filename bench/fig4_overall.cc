// Figure 4 reproduction: overall performance of Memory Mode,
// MemoryOptimizer, and Merchandiser, normalised to PM-only execution, for
// the five applications — plus the application-specific comparisons
// (Sparta for SpGEMM, WarpX-PM for WarpX) reported in Section 7.1's text.
//
// Paper reference: Merchandiser improves over PM-only / Memory Mode /
// MemoryOptimizer by 23.6% / 17.1% / 15.4% on average (up to 37.8% /
// 26.0% / 23.2%); +17.3% over Sparta and -4.6% vs WarpX-PM.
#include <cstdio>

#include "baselines/static_priority.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace merch {
namespace {

using bench::Run;

double Speedup(const std::string& app, const std::string& policy) {
  return Run(app, bench::kPmOnly).total_seconds /
         Run(app, policy).total_seconds;
}

}  // namespace
}  // namespace merch

int main() {
  using namespace merch;
  std::printf("=== Figure 4: speedup over PM-only ===\n");
  TextTable table({"application", "Memory Mode", "MemoryOptimizer",
                   "Merchandiser"});
  double sum_mm = 0, sum_mo = 0, sum_merch = 0;
  double max_over_mm = 0, max_over_mo = 0, max_over_pm = 0;
  const auto& apps = apps::AppNames();
  for (const std::string& app : apps) {
    const double mm = Speedup(app, bench::kMemoryMode);
    const double mo = Speedup(app, bench::kMemoryOptimizer);
    const double merch = Speedup(app, bench::kMerchandiser);
    table.AddRow({app, TextTable::Num(mm), TextTable::Num(mo),
                  TextTable::Num(merch)});
    sum_mm += merch / mm;
    sum_mo += merch / mo;
    sum_merch += merch;
    max_over_mm = std::max(max_over_mm, merch / mm - 1.0);
    max_over_mo = std::max(max_over_mo, merch / mo - 1.0);
    max_over_pm = std::max(max_over_pm, merch - 1.0);
  }
  table.Print();

  const double n = static_cast<double>(apps.size());
  std::printf(
      "\nMerchandiser vs PM-only:        avg +%s (paper: +23.6%%), "
      "max +%s (paper: +37.8%%)\n",
      TextTable::Pct(sum_merch / n - 1.0).c_str(),
      TextTable::Pct(max_over_pm).c_str());
  std::printf(
      "Merchandiser vs Memory Mode:    avg +%s (paper: +17.1%%), "
      "max +%s (paper: +26.0%%)\n",
      TextTable::Pct(sum_mm / n - 1.0).c_str(),
      TextTable::Pct(max_over_mm).c_str());
  std::printf(
      "Merchandiser vs MemoryOptimizer: avg +%s (paper: +15.4%%), "
      "max +%s (paper: +23.2%%)\n",
      TextTable::Pct(sum_mo / n - 1.0).c_str(),
      TextTable::Pct(max_over_mo).c_str());

  // Application-specific systems (Section 7.1 text).
  {
    const auto& bundle = bench::Bundle("SpGEMM");
    baselines::StaticPriorityPolicy sparta("Sparta-like",
                                           bundle.sparta_priority);
    sim::Engine e(bundle.workload, bench::PaperMachine(),
                  bench::PaperSimConfig(), &sparta);
    const double sparta_time = e.Run().total_seconds;
    const double merch_time = Run("SpGEMM", bench::kMerchandiser).total_seconds;
    std::printf(
        "\nSpGEMM: Merchandiser vs Sparta-like: %+.1f%% (paper: +17.3%% — "
        "Sparta ignores cross-multiplication load balance)\n",
        (sparta_time / merch_time - 1.0) * 100.0);
  }
  {
    const auto& bundle = bench::Bundle("WarpX");
    baselines::StaticPriorityPolicy warpx_pm("WarpX-PM",
                                             bundle.lifetime_priority);
    sim::Engine e(bundle.workload, bench::PaperMachine(),
                  bench::PaperSimConfig(), &warpx_pm);
    const double manual_time = e.Run().total_seconds;
    const double merch_time = Run("WarpX", bench::kMerchandiser).total_seconds;
    std::printf(
        "WarpX:  Merchandiser vs WarpX-PM:    %+.1f%% (paper: -4.6%% — "
        "manual lifetime analysis is the expert ceiling)\n",
        (manual_time / merch_time - 1.0) * 100.0);
  }
  return 0;
}
