#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"

namespace merch::bench {

RepeatTiming MeasureRepeated(int repeats,
                             const std::function<double()>& sample) {
  repeats = std::max(1, repeats);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) samples.push_back(sample());
  std::sort(samples.begin(), samples.end());
  RepeatTiming t;
  t.repeats = repeats;
  t.min_seconds = samples.front();
  const std::size_t mid = samples.size() / 2;
  t.median_seconds = samples.size() % 2 == 1
                         ? samples[mid]
                         : 0.5 * (samples[mid - 1] + samples[mid]);
  return t;
}

sim::MachineSpec PaperMachine() { return sim::MachineSpec::Paper(); }

sim::SimConfig PaperSimConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.05;
  cfg.interval_seconds = 0.5;
  cfg.page_bytes = 2 * MiB;
  cfg.migration_gbps = 2.0;
  cfg.seed = 42;
  return cfg;
}

const core::MerchandiserSystem& TrainedSystem() {
  static const core::MerchandiserSystem* kSystem = [] {
    std::fprintf(stderr,
                 "[bench] training correlation function "
                 "(281 code regions x 10 placements)...\n");
    workloads::TrainingConfig cfg;  // paper defaults: 281 x 10
    auto* system =
        new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
    std::fprintf(stderr, "[bench] GBR test R^2 = %.3f\n",
                 system->correlation().test_r2());
    return system;
  }();
  return *kSystem;
}

const apps::AppBundle& Bundle(const std::string& name) {
  static auto* cache = new std::map<std::string, apps::AppBundle>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, apps::BuildApp(name)).first;
  }
  return it->second;
}

const sim::SimResult& Run(const std::string& app, const std::string& policy) {
  static auto* cache = new std::map<std::string, sim::SimResult>();
  const std::string key = app + "/" + policy;
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  const apps::AppBundle& bundle = Bundle(app);
  const sim::MachineSpec machine = PaperMachine();
  const sim::SimConfig cfg = PaperSimConfig();

  sim::SimResult result;
  if (policy == kPmOnly) {
    baselines::PmOnlyPolicy p;
    result = sim::Engine(bundle.workload, machine, cfg, &p).Run();
  } else if (policy == kMemoryMode) {
    baselines::MemoryModePolicy p;
    result = sim::Engine(bundle.workload, machine, cfg, &p).Run();
  } else if (policy == kMemoryOptimizer) {
    baselines::MemoryOptimizerPolicy p;
    result = sim::Engine(bundle.workload, machine, cfg, &p).Run();
  } else if (policy == kMerchandiser) {
    auto p = TrainedSystem().MakePolicy(bundle.workload, machine);
    result = sim::Engine(bundle.workload, machine, cfg, p.get()).Run();
  } else {
    std::fprintf(stderr, "unknown policy %s\n", policy.c_str());
    std::abort();
  }
  return cache->emplace(key, std::move(result)).first->second;
}

}  // namespace merch::bench
