// Decision-path benchmark: measures what the flattened batched GBR
// inference, the incremental heap greedy, and the policy memoization buy.
//
// Each measurement runs in two variants:
//   legacy    — MERCH_FLAT_FOREST=0, MERCH_GREEDY_HEAP=0,
//               MERCH_POLICY_MEMO=0: pointer-chasing per-tree inference,
//               per-round full-rescan Algorithm 1 with one scalar model
//               evaluation per probe, no candidate/curve memoization.
//   optimized — the defaults (SoA flat forest + PredictBatch, lazy-deletion
//               max-heap greedy probing through per-task partial
//               specializations of the correlation function, decision memos).
// The engine-side optimizations (MERCH_SWEEP_INDEX / MERCH_ENGINE_MEMO)
// stay ON in both variants: this bench isolates the decision path.
// Results are bit-identical between variants (tests/decision_equiv_test.cc
// and the equality gates below); only the wall clock differs.
//
//   1. The tracked number: a greedy-replay microbenchmark — every
//      Algorithm 1 call a full Merchandiser run of each application made,
//      replayed standalone from the captured InstanceDecision inputs,
//      legacy vs optimized. The PR this bench landed with requires >= 2x
//      on DMRG.
//   2. Full Engine::Run of the five applications under the Merchandiser
//      policy, with the per-region decision seconds broken out.
//   3. A GBR inference microbenchmark: scalar Evaluate over an r grid vs
//      one PrefixRow + EvaluateGrid batch.
//   4. A PlacementService batch (five apps x merch) through the env
//      escape hatches, with the shared greedy warm-start cache counters.
//
// Writes BENCH_policy.json (override with --out <path>); --quick shrinks
// scales for CI smoke runs; --repeat N reports min/median over N runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/greedy.h"
#include "core/merchandiser.h"
#include "service/placement_service.h"
#include "sim/engine.h"
#include "workloads/training.h"

namespace merch {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One correlation system per process: decision speed, not training speed,
/// is under test, so a reduced training budget keeps the bench short.
const core::MerchandiserSystem& TrainedSystem(bool quick) {
  static const core::MerchandiserSystem* kSystem = [quick] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = quick ? 8 : 40;
    std::fprintf(stderr, "[policy_speed] training correlation (%zu x %zu)\n",
                 cfg.num_regions, cfg.placements_per_region);
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

void SetLegacyEnv(bool legacy) {
  if (legacy) {
    setenv("MERCH_FLAT_FOREST", "0", 1);
    setenv("MERCH_GREEDY_HEAP", "0", 1);
    setenv("MERCH_POLICY_MEMO", "0", 1);
  } else {
    unsetenv("MERCH_FLAT_FOREST");
    unsetenv("MERCH_GREEDY_HEAP");
    unsetenv("MERCH_POLICY_MEMO");
  }
}

struct FullRun {
  double wall_seconds = 0;
  double wall_median_seconds = 0;
  double decision_seconds = 0;  // summed over regions
  double sim_seconds = 0;
  std::vector<core::InstanceDecision> decisions;
};

/// One Engine::Run under the Merchandiser policy. Policy construction
/// (incl. the offline homogeneous timing) happens outside the timed
/// section; the env hatches must already be set by the caller.
FullRun RunMerchOnce(const std::string& app, double scale, double work,
                     bool quick) {
  service::PlacementRequest req;
  req.app = app;
  req.scale = scale;
  req.work = work;
  const apps::AppBundle bundle = apps::BuildApp(app, scale, work);
  const sim::MachineSpec machine =
      service::PlacementService::RequestMachine(req);
  const sim::SimConfig cfg = service::PlacementService::RequestSimConfig(req);
  const auto policy = TrainedSystem(quick).MakePolicy(bundle.workload, machine);

  sim::Engine engine(bundle.workload, machine, cfg, policy.get());
  const double t0 = Now();
  const sim::SimResult result = engine.Run();
  FullRun fr;
  fr.wall_seconds = Now() - t0;
  fr.sim_seconds = result.total_seconds;
  fr.decisions = policy->decisions();
  for (const core::InstanceDecision& d : fr.decisions) {
    fr.decision_seconds += d.decision_seconds;
  }
  return fr;
}

FullRun RunMerchRepeated(const std::string& app, double scale, double work,
                         bool quick, int repeats) {
  FullRun fr;
  const bench::RepeatTiming t = bench::MeasureRepeated(repeats, [&] {
    fr = RunMerchOnce(app, scale, work, quick);
    return fr.wall_seconds;
  });
  fr.wall_seconds = t.min_seconds;
  fr.wall_median_seconds = t.median_seconds;
  return fr;
}

bool SameDoubles(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// The two variants must make bitwise-identical decisions end to end.
bool SameDecisions(const std::vector<core::InstanceDecision>& a,
                   const std::vector<core::InstanceDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tasks != b[i].tasks ||
        !SameDoubles(a[i].dram_fraction, b[i].dram_fraction) ||
        !SameDoubles(a[i].predicted_seconds, b[i].predicted_seconds) ||
        !SameDoubles(a[i].t_pm_only, b[i].t_pm_only) ||
        !SameDoubles(a[i].t_dram_only, b[i].t_dram_only) ||
        !SameDoubles(a[i].estimated_accesses, b[i].estimated_accesses) ||
        a[i].greedy_rounds != b[i].greedy_rounds) {
      return false;
    }
  }
  return true;
}

bool SameGreedyResult(const core::GreedyResult& a,
                      const core::GreedyResult& b) {
  return SameDoubles(a.dram_fraction, b.dram_fraction) &&
         a.dram_pages == b.dram_pages &&
         SameDoubles(a.predicted_seconds, b.predicted_seconds) &&
         a.rounds == b.rounds;
}

/// One pass: replay every captured Algorithm 1 call of `decisions`.
double ReplayPass(const std::vector<core::InstanceDecision>& decisions,
                  const core::PerformanceModel& model, bool incremental,
                  int inner) {
  core::GreedyConfig cfg;
  cfg.incremental = incremental;
  const double t0 = Now();
  for (int it = 0; it < inner; ++it) {
    for (const core::InstanceDecision& d : decisions) {
      const core::GreedyResult r = core::RunGreedyAllocation(
          d.greedy_inputs, d.dram_capacity_pages, model, cfg);
      if (r.rounds < 0) std::abort();  // keep the call observable
    }
  }
  return (Now() - t0) / inner;
}

struct ReplayRow {
  std::string app;
  std::size_t decisions = 0;
  bench::RepeatTiming legacy;
  bench::RepeatTiming optimized;
  double speedup = 0;
};

/// Wall seconds for a five-app merch batch through the service; the env
/// hatches must already be set by the caller.
double TimeServiceBatch(double scale, double work,
                        std::uint64_t* greedy_hits,
                        std::uint64_t* greedy_misses) {
  service::PlacementService service({.threads = 2});
  std::vector<service::PlacementService::Ticket> tickets;
  for (const std::string& app : apps::AppNames()) {
    service::PlacementRequest req;
    req.app = app;
    req.policy = "merch";
    req.scale = scale;
    req.work = work;
    req.train_regions = 8;
    tickets.push_back(service.Submit(req));
  }
  const double t0 = Now();
  for (auto& t : tickets) t.future.wait();
  const double wall = Now() - t0;
  for (auto& t : tickets) {
    const service::PlacementResult& r = t.future.get();
    if (!r.ok()) {
      std::fprintf(stderr, "service run failed: %s\n", r.error.c_str());
      std::exit(1);
    }
  }
  const service::ServiceStats stats = service.Stats();
  if (greedy_hits != nullptr) *greedy_hits = stats.greedy_hits;
  if (greedy_misses != nullptr) *greedy_misses = stats.greedy_misses;
  return wall;
}

struct FullRow {
  std::string app;
  FullRun legacy;
  FullRun optimized;
};

void WriteJson(const char* path, const std::vector<FullRow>& full,
               const std::vector<ReplayRow>& replay, double tracked_speedup,
               double gbr_rows, double gbr_scalar, double gbr_batched,
               double service_legacy, double service_optimized,
               std::uint64_t greedy_hits, std::uint64_t greedy_misses,
               bool quick, int repeats) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"policy_speed\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"repeat\": %d,\n", repeats);
  std::fprintf(f, "  \"full_runs\": [\n");
  for (std::size_t i = 0; i < full.size(); ++i) {
    const FullRow& r = full[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"legacy_wall_seconds\": %.6f, "
        "\"optimized_wall_seconds\": %.6f, "
        "\"legacy_decision_seconds\": %.6f, "
        "\"optimized_decision_seconds\": %.6f, "
        "\"sim_seconds\": %.9g, \"regions\": %zu, "
        "\"wall_speedup\": %.3f, \"decision_speedup\": %.3f}%s\n",
        r.app.c_str(), r.legacy.wall_seconds, r.optimized.wall_seconds,
        r.legacy.decision_seconds, r.optimized.decision_seconds,
        r.optimized.sim_seconds, r.optimized.decisions.size(),
        r.optimized.wall_seconds > 0
            ? r.legacy.wall_seconds / r.optimized.wall_seconds
            : 0.0,
        r.optimized.decision_seconds > 0
            ? r.legacy.decision_seconds / r.optimized.decision_seconds
            : 0.0,
        i + 1 < full.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"greedy_replay\": [\n");
  for (std::size_t i = 0; i < replay.size(); ++i) {
    const ReplayRow& r = replay[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"decisions\": %zu, "
        "\"legacy_seconds\": %.6f, \"legacy_median_seconds\": %.6f, "
        "\"optimized_seconds\": %.6f, \"optimized_median_seconds\": %.6f, "
        "\"speedup\": %.3f}%s\n",
        r.app.c_str(), r.decisions, r.legacy.min_seconds,
        r.legacy.median_seconds, r.optimized.min_seconds,
        r.optimized.median_seconds, r.speedup,
        i + 1 < replay.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"tracked\": {\"app\": \"DMRG\", "
               "\"greedy_replay_speedup\": %.3f},\n",
               tracked_speedup);
  std::fprintf(f,
               "  \"gbr_inference\": {\"rows\": %.0f, "
               "\"scalar_seconds\": %.6f, \"batched_seconds\": %.6f, "
               "\"speedup\": %.3f},\n",
               gbr_rows, gbr_scalar, gbr_batched,
               gbr_batched > 0 ? gbr_scalar / gbr_batched : 0.0);
  std::fprintf(f,
               "  \"service_batch\": {\"legacy_wall_seconds\": %.6f, "
               "\"optimized_wall_seconds\": %.6f, \"speedup\": %.3f, "
               "\"greedy_cache_hits\": %llu, "
               "\"greedy_cache_misses\": %llu}\n",
               service_legacy, service_optimized,
               service_optimized > 0 ? service_legacy / service_optimized
                                     : 0.0,
               static_cast<unsigned long long>(greedy_hits),
               static_cast<unsigned long long>(greedy_misses));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace merch

int main(int argc, char** argv) {
  using namespace merch;
  bool quick = false;
  int repeats = 1;
  const char* out = "BENCH_policy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--repeat N] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  const double scale = quick ? 0.05 : 1.0;
  const double work = quick ? 0.05 : 1.0;
  const double service_scale = quick ? 0.02 : 0.05;
  const double service_work = quick ? 0.03 : 0.05;

  // 1. Full Merchandiser runs, legacy vs optimized decision path. The
  // decisions captured here (exact Algorithm 1 inputs per region) feed the
  // replay microbenchmark below.
  std::printf("=== policy_speed: five apps x merch, full runs ===\n");
  std::vector<FullRow> full;
  TextTable table({"application", "legacy s", "optimized s", "speedup",
                   "decision legacy s", "decision opt s", "dec speedup"});
  for (const std::string& app : apps::AppNames()) {
    FullRow row;
    row.app = app;
    SetLegacyEnv(true);
    row.legacy = RunMerchRepeated(app, scale, work, quick, repeats);
    SetLegacyEnv(false);
    row.optimized = RunMerchRepeated(app, scale, work, quick, repeats);
    if (row.legacy.sim_seconds != row.optimized.sim_seconds ||
        !SameDecisions(row.legacy.decisions, row.optimized.decisions)) {
      std::fprintf(stderr,
                   "%s: decision-path variants diverged "
                   "(sim %.9g vs %.9g)\n",
                   app.c_str(), row.legacy.sim_seconds,
                   row.optimized.sim_seconds);
      return 1;
    }
    table.AddRow(
        {app, TextTable::Num(row.legacy.wall_seconds),
         TextTable::Num(row.optimized.wall_seconds),
         TextTable::Num(row.legacy.wall_seconds /
                        std::max(row.optimized.wall_seconds, 1e-9)),
         TextTable::Num(row.legacy.decision_seconds),
         TextTable::Num(row.optimized.decision_seconds),
         TextTable::Num(row.legacy.decision_seconds /
                        std::max(row.optimized.decision_seconds, 1e-9))});
    full.push_back(std::move(row));
  }
  table.Print();

  // 2. The tracked number: greedy replay from the captured inputs. Every
  // pass re-runs every Algorithm 1 call of the app's whole run; min over
  // max(repeats, 3) samples.
  std::printf("\n=== policy_speed: Algorithm 1 replay ===\n");
  const core::PerformanceModel model(&TrainedSystem(quick).correlation());
  const int inner = quick ? 5 : 20;
  const int replay_repeats = std::max(repeats, 3);
  std::vector<ReplayRow> replay;
  double tracked_speedup = 0;
  TextTable rtable({"application", "decisions", "legacy s/pass",
                    "optimized s/pass", "speedup"});
  for (const FullRow& fr : full) {
    const std::vector<core::InstanceDecision>& ds = fr.optimized.decisions;
    if (ds.empty()) continue;
    // Equality gate first: both variants, every decision, exact result.
    for (const core::InstanceDecision& d : ds) {
      core::GreedyConfig legacy_cfg, opt_cfg;
      legacy_cfg.incremental = false;
      opt_cfg.incremental = true;
      const core::GreedyResult a = core::RunGreedyAllocation(
          d.greedy_inputs, d.dram_capacity_pages, model, legacy_cfg);
      const core::GreedyResult b = core::RunGreedyAllocation(
          d.greedy_inputs, d.dram_capacity_pages, model, opt_cfg);
      if (!SameGreedyResult(a, b)) {
        std::fprintf(stderr, "%s region %zu: greedy variants diverged\n",
                     fr.app.c_str(), d.region);
        return 1;
      }
    }
    ReplayRow row;
    row.app = fr.app;
    row.decisions = ds.size();
    row.legacy = bench::MeasureRepeated(
        replay_repeats, [&] { return ReplayPass(ds, model, false, inner); });
    row.optimized = bench::MeasureRepeated(
        replay_repeats, [&] { return ReplayPass(ds, model, true, inner); });
    row.speedup =
        row.legacy.min_seconds / std::max(row.optimized.min_seconds, 1e-12);
    if (fr.app == "DMRG") tracked_speedup = row.speedup;
    rtable.AddRow({row.app, std::to_string(row.decisions),
                   TextTable::Num(row.legacy.min_seconds),
                   TextTable::Num(row.optimized.min_seconds),
                   TextTable::Num(row.speedup)});
    replay.push_back(std::move(row));
  }
  rtable.Print();
  std::printf("\ntracked: DMRG Algorithm 1 replay speedup %.2fx\n",
              tracked_speedup);

  // 3. GBR inference: scalar Evaluate vs PrefixRow + EvaluateGrid over a
  // dense r grid, on a real task's PMCs from the first captured decision.
  std::printf("\n=== policy_speed: GBR inference (scalar vs batched) ===\n");
  double gbr_scalar = 0, gbr_batched = 0, gbr_rows = 0;
  {
    const core::CorrelationFunction& corr = TrainedSystem(quick).correlation();
    sim::EventVector pmcs{};
    for (const FullRow& fr : full) {
      if (!fr.optimized.decisions.empty() &&
          !fr.optimized.decisions.front().greedy_inputs.empty()) {
        pmcs = fr.optimized.decisions.front().greedy_inputs.front().pmcs;
        break;
      }
    }
    const int grid_n = 1001;
    std::vector<double> grid(grid_n), scalar_out(grid_n), batched_out(grid_n);
    for (int i = 0; i < grid_n; ++i) {
      grid[i] = static_cast<double>(i) / (grid_n - 1);
    }
    const int gbr_inner = quick ? 20 : 100;
    gbr_rows = static_cast<double>(grid_n) * gbr_inner;
    gbr_scalar = bench::MeasureRepeated(replay_repeats, [&] {
                   const double t0 = Now();
                   for (int it = 0; it < gbr_inner; ++it) {
                     for (int i = 0; i < grid_n; ++i) {
                       scalar_out[i] = corr.Evaluate(pmcs, grid[i]);
                     }
                   }
                   return Now() - t0;
                 }).min_seconds;
    const std::vector<double> prefix = corr.PrefixRow(pmcs);
    gbr_batched = bench::MeasureRepeated(replay_repeats, [&] {
                    const double t0 = Now();
                    for (int it = 0; it < gbr_inner; ++it) {
                      corr.EvaluateGrid(prefix, grid, batched_out);
                    }
                    return Now() - t0;
                  }).min_seconds;
    if (!SameDoubles(scalar_out, batched_out)) {
      std::fprintf(stderr, "GBR scalar vs batched outputs diverged\n");
      return 1;
    }
    std::printf("%d rows x %d: scalar %.4fs, batched %.4fs -> %.2fx\n",
                grid_n, gbr_inner, gbr_scalar, gbr_batched,
                gbr_scalar / std::max(gbr_batched, 1e-12));
  }

  // 4. Service batch: merch end to end through the env escape hatches,
  // with the shared warm-start cache counters.
  std::printf("\n=== policy_speed: service batch (5 apps x merch) ===\n");
  SetLegacyEnv(true);
  const double service_legacy =
      TimeServiceBatch(service_scale, service_work, nullptr, nullptr);
  SetLegacyEnv(false);
  std::uint64_t greedy_hits = 0, greedy_misses = 0;
  const double service_optimized = TimeServiceBatch(
      service_scale, service_work, &greedy_hits, &greedy_misses);
  std::printf(
      "legacy %.2fs, optimized %.2fs -> %.2fx (greedy cache %llu/%llu)\n",
      service_legacy, service_optimized,
      service_legacy / std::max(service_optimized, 1e-9),
      static_cast<unsigned long long>(greedy_hits),
      static_cast<unsigned long long>(greedy_hits + greedy_misses));

  WriteJson(out, full, replay, tracked_speedup, gbr_rows, gbr_scalar,
            gbr_batched, service_legacy, service_optimized, greedy_hits,
            greedy_misses, quick, repeats);
  return 0;
}
