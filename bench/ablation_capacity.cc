// Ablation: sensitivity to the fast-memory capacity — how Merchandiser's
// advantage over task-agnostic tiering changes as DRAM shrinks or grows
// relative to the paper's 192 GB. The load-balance channel matters most
// when fast memory is contended; with abundant DRAM all policies converge.
#include <cstdio>

#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace merch {
namespace {

struct Point {
  double pm_only = 0;
  double memory_optimizer = 0;
  double merchandiser = 0;
};

Point RunAt(const apps::AppBundle& bundle, double dram_scale) {
  sim::MachineSpec machine = bench::PaperMachine();
  machine.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(machine.hm[hm::Tier::kDram].capacity_bytes) *
      dram_scale);
  const sim::SimConfig cfg = bench::PaperSimConfig();
  Point p;
  {
    baselines::PmOnlyPolicy policy;
    p.pm_only =
        sim::Engine(bundle.workload, machine, cfg, &policy).Run().total_seconds;
  }
  {
    baselines::MemoryOptimizerPolicy policy;
    p.memory_optimizer =
        sim::Engine(bundle.workload, machine, cfg, &policy).Run().total_seconds;
  }
  {
    auto policy = bench::TrainedSystem().MakePolicy(bundle.workload, machine);
    p.merchandiser = sim::Engine(bundle.workload, machine, cfg, policy.get())
                         .Run()
                         .total_seconds;
  }
  return p;
}

}  // namespace
}  // namespace merch

int main() {
  using namespace merch;
  const std::string app = "SpGEMM";
  const apps::AppBundle& bundle = bench::Bundle(app);
  std::printf(
      "=== Ablation: DRAM capacity sweep (%s, paper capacity = 192 GB) "
      "===\n",
      app.c_str());
  TextTable table({"DRAM capacity", "MemoryOptimizer speedup",
                   "Merchandiser speedup", "Merchandiser advantage"});
  for (const double scale : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    const Point p = RunAt(bundle, scale);
    const double mo = p.pm_only / p.memory_optimizer;
    const double merch = p.pm_only / p.merchandiser;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f GB", 192.0 * scale);
    table.AddRow({label, TextTable::Num(mo), TextTable::Num(merch),
                  TextTable::Pct(merch / mo - 1.0)});
  }
  table.Print();
  return 0;
}
