// Section 7.2 reproduction ("Runtime overhead of Merchandiser"): latency
// of the online components, measured with google-benchmark.
//
// Paper reference: the performance modeling (Eqs. 1-2) takes 0.031 ms per
// invocation; counter-based collection costs <0.1% of execution time.
#include <benchmark/benchmark.h>

#include "core/alpha.h"
#include "core/correlation.h"
#include "core/greedy.h"
#include "core/perf_model.h"
#include "profiler/pte_scan.h"
#include "trace/synthetic_trace.h"
#include "workloads/training.h"

namespace merch {
namespace {

const core::CorrelationFunction& SharedF() {
  static const core::CorrelationFunction* kF = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 96;  // enough for a representative GBR
    auto* f = new core::CorrelationFunction();
    f->Train(workloads::GenerateTrainingSamples(cfg));
    return f;
  }();
  return *kF;
}

/// Eq. 1 + Eq. 2: one task-instance prediction (the 0.031 ms number).
void BM_PerformanceModeling(benchmark::State& state) {
  const core::PerformanceModel model(&SharedF());
  core::AlphaEstimator alpha(trace::AccessPattern::kRandom, 8, 1);
  alpha.SetBase(1e9, 1e7);
  sim::EventVector pmcs{};
  for (std::size_t i = 0; i < pmcs.size(); ++i) {
    pmcs[i] = 0.1 * static_cast<double>(i);
  }
  double r = 0.05;
  for (auto _ : state) {
    const double esti = alpha.EstimateAccesses(1.3e9);        // Eq. 1
    const double t = model.PredictHybrid(12.0, 5.0, pmcs, r);  // Eq. 2
    benchmark::DoNotOptimize(esti);
    benchmark::DoNotOptimize(t);
    r = r < 0.9 ? r + 0.05 : 0.05;
  }
}
BENCHMARK(BM_PerformanceModeling)->Unit(benchmark::kMicrosecond);

/// Algorithm 1 over a paper-sized task count (24 tasks).
void BM_GreedyAllocation(benchmark::State& state) {
  const core::PerformanceModel model(&SharedF());
  std::vector<core::GreedyTaskInput> tasks;
  Rng rng(3);
  for (int t = 0; t < 24; ++t) {
    core::GreedyTaskInput in;
    in.task = static_cast<TaskId>(t);
    in.t_pm_only = rng.NextDoubleInRange(8, 16);
    in.t_dram_only = in.t_pm_only * rng.NextDoubleInRange(0.3, 0.6);
    in.total_accesses = 1e9;
    in.footprint_pages = 20000;
    tasks.push_back(in);
  }
  for (auto _ : state) {
    const auto r = core::RunGreedyAllocation(tasks, 98304, model);
    benchmark::DoNotOptimize(r.dram_fraction.data());
  }
}
BENCHMARK(BM_GreedyAllocation)->Unit(benchmark::kMillisecond);

/// PTE-scan sampling of one interval over a 1.5 TB address space.
void BM_PteScanInterval(benchmark::State& state) {
  std::vector<trace::SyntheticObjectSpec> objects;
  for (int i = 0; i < 24; ++i) {
    objects.push_back(trace::SyntheticObjectSpec{
        .task = static_cast<TaskId>(i),
        .num_pages = 32768,  // 64 GiB at 2 MiB pages
        .heat = trace::HeatProfile::Zipf(0.8),
        .epoch_accesses = 1e8,
        .tier = hm::Tier::kPm});
  }
  const trace::SyntheticAccessSource source(std::move(objects));
  profiler::PteScanProfiler profiler({}, 9);
  for (auto _ : state) {
    const auto hot = profiler.Profile(source);
    benchmark::DoNotOptimize(hot.data());
  }
}
BENCHMARK(BM_PteScanInterval)->Unit(benchmark::kMillisecond);

/// Alpha refinement step (runs once per instance per refinable object).
void BM_AlphaRefinement(benchmark::State& state) {
  core::AlphaEstimator alpha(trace::AccessPattern::kRandom, 8, 1);
  alpha.SetBase(1e9, 1e7);
  double s = 1e9;
  for (auto _ : state) {
    alpha.Refine(s, 9e6);
    benchmark::DoNotOptimize(alpha.alpha());
    s *= 1.0001;
  }
}
BENCHMARK(BM_AlphaRefinement)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace merch

BENCHMARK_MAIN();
