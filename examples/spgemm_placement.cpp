// Domain example: sparse matrix-matrix multiplication on heterogeneous
// memory (the paper's Figure 1.b scenario).
//
// Walks through the full story on real data:
//   1. run the *actual* Gustavson SpGEMM on a power-law (GAP-kron-like)
//      matrix and measure the per-bin work skew Ginkgo's row binning
//      produces — the application-inherent load imbalance;
//   2. build the simulator workload from those measurements;
//   3. place it with Merchandiser and inspect the Algorithm 1 decisions:
//      the slowest bins receive the largest DRAM-access shares.
#include <cstdio>

#include "apps/kernels/csr.h"
#include "apps/spgemm.h"
#include "baselines/pm_only.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

int main() {
  using namespace merch;

  // --- 1. Real SpGEMM and its work skew.
  Rng rng(2023);
  const apps::CsrMatrix a = apps::GenerateKronMatrix(1 << 13, 16.0, 0.85, rng);
  const apps::CsrMatrix c = apps::SpGemmNumeric(a, a);
  std::printf("real SpGEMM: A %ux%u nnz=%llu  ->  C nnz=%llu\n", a.rows,
              a.cols, static_cast<unsigned long long>(a.nnz()),
              static_cast<unsigned long long>(c.nnz()));

  const int bins = 12;
  const std::uint32_t rows_per_bin = (a.rows + bins - 1) / bins;
  TextTable skew({"bin", "nnz(A)", "flops", "share of max"});
  std::uint64_t max_flops = 1;
  std::vector<std::uint64_t> flops(bins);
  for (int b = 0; b < bins; ++b) {
    flops[b] = apps::SpGemmFlops(a, a, b * rows_per_bin,
                                 (b + 1) * rows_per_bin);
    max_flops = std::max(max_flops, flops[b]);
  }
  for (int b = 0; b < bins; ++b) {
    const std::uint64_t nnz =
        a.row_ptr[std::min<std::uint32_t>((b + 1) * rows_per_bin, a.rows)] -
        a.row_ptr[std::min<std::uint32_t>(b * rows_per_bin, a.rows)];
    skew.AddRow({std::to_string(b), std::to_string(nnz),
                 std::to_string(flops[b]),
                 TextTable::Pct(static_cast<double>(flops[b]) /
                                static_cast<double>(max_flops))});
  }
  skew.Print();
  std::printf("-> equal-row binning leaves the busiest bin with far more "
              "work than the lightest: the load-imbalance source.\n\n");

  // --- 2. Simulator workload at 1/64 of the paper's 429.3 GB footprint.
  apps::SpGemmConfig cfg;
  cfg.target_bytes /= 64;
  cfg.busiest_task_accesses /= 16;
  const apps::AppBundle bundle = apps::BuildSpGemm(cfg);
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  machine.hm[hm::Tier::kDram].capacity_bytes /= 64;
  machine.hm[hm::Tier::kPm].capacity_bytes /= 64;
  sim::SimConfig sim_cfg;
  sim_cfg.page_bytes = 512 * KiB;

  // --- 3. PM-only vs Merchandiser, with the greedy decisions.
  baselines::PmOnlyPolicy pm;
  const double pm_time =
      sim::Engine(bundle.workload, machine, sim_cfg, &pm).Run().total_seconds;

  workloads::TrainingConfig training;
  training.num_regions = 48;
  const auto system = core::MerchandiserSystem::Train(training);
  auto policy = system.MakePolicy(bundle.workload, machine);
  sim::Engine engine(bundle.workload, machine, sim_cfg, policy.get());
  const sim::SimResult result = engine.Run();

  std::printf("PM-only %.2fs  ->  Merchandiser %.2fs  (speedup %.2fx)\n\n",
              pm_time, result.total_seconds, pm_time / result.total_seconds);

  if (!policy->decisions().empty()) {
    const core::InstanceDecision& d = policy->decisions().back();
    TextTable quotas({"task", "predicted PM-only (s)", "granted DRAM share",
                      "predicted after placement (s)"});
    for (std::size_t i = 0; i < d.tasks.size(); ++i) {
      quotas.AddRow({std::to_string(d.tasks[i]),
                     TextTable::Num(d.t_pm_only[i], 3),
                     TextTable::Pct(d.dram_fraction[i]),
                     TextTable::Num(d.predicted_seconds[i], 3)});
    }
    std::printf("Algorithm 1 decisions for the last task instance:\n");
    quotas.Print();
    std::printf("-> slower tasks get larger shares; predicted times "
                "equalise — that is load-balance-aware placement.\n");
  }
  return 0;
}
