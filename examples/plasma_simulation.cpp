// Domain example: a WarpX-like particle-in-cell plasma simulation on
// heterogeneous memory.
//
//   1. run the real mini-PIC (two-stream instability) and watch the
//      instability grow — the physics the workload model stands on;
//   2. place the paper-scale WarpX workload with Merchandiser and compare
//      against the manual WarpX-PM lifetime placement;
//   3. show the memory-bandwidth telemetry the Figure 6 study uses.
#include <cstdio>

#include "apps/kernels/pic.h"
#include "apps/warpx.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

int main() {
  using namespace merch;

  // --- 1. Real PIC: the two-stream instability converts beam kinetic
  // energy into field energy.
  Rng rng(7);
  apps::PicConfig pic_cfg;
  pic_cfg.cells = 512;
  pic_cfg.particles = 1 << 15;
  apps::PicState pic = apps::InitTwoStream(pic_cfg, rng);
  double field0 = 0;
  for (const double e : pic.efield) field0 += e * e;
  std::printf("mini-PIC: %u cells, %zu particles (two-stream setup)\n",
              pic_cfg.cells, pic.position.size());
  for (int step = 0; step < 40; ++step) apps::PicStep(pic, pic_cfg.dt);
  double field1 = 0;
  for (const double e : pic.efield) field1 += e * e;
  std::printf("field energy grew %.1fx over 40 steps -> instability "
              "captured by the real kernels.\n\n",
              field1 / std::max(field0, 1e-12));

  // --- 2. Scaled WarpX workload under three placements.
  apps::WarpxConfig cfg;
  cfg.target_bytes /= 64;
  cfg.task_accesses /= 16;
  const apps::AppBundle bundle = apps::BuildWarpx(cfg);
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  machine.hm[hm::Tier::kDram].capacity_bytes /= 64;
  machine.hm[hm::Tier::kPm].capacity_bytes /= 64;
  sim::SimConfig sim_cfg;
  sim_cfg.page_bytes = 512 * KiB;

  auto bandwidth_summary = [](const sim::SimResult& r) {
    std::vector<double> dram, pm;
    for (const auto& s : r.bandwidth) {
      dram.push_back(s.dram_gbps);
      pm.push_back(s.pm_gbps);
    }
    return std::make_pair(Mean(dram), Mean(pm));
  };

  TextTable table({"placement", "time (s)", "avg DRAM GB/s", "avg PM GB/s"});
  double pm_only_time = 0;
  {
    baselines::PmOnlyPolicy p;
    sim::Engine e(bundle.workload, machine, sim_cfg, &p);
    const auto r = e.Run();
    pm_only_time = r.total_seconds;
    const auto [d, m] = bandwidth_summary(r);
    table.AddRow({"PM-only", TextTable::Num(r.total_seconds, 2),
                  TextTable::Num(d, 2), TextTable::Num(m, 2)});
  }
  {
    baselines::StaticPriorityPolicy p("WarpX-PM", bundle.lifetime_priority);
    sim::Engine e(bundle.workload, machine, sim_cfg, &p);
    const auto r = e.Run();
    const auto [d, m] = bandwidth_summary(r);
    table.AddRow({"WarpX-PM (manual lifetimes)",
                  TextTable::Num(r.total_seconds, 2), TextTable::Num(d, 2),
                  TextTable::Num(m, 2)});
  }
  {
    workloads::TrainingConfig training;
    training.num_regions = 48;
    const auto system = core::MerchandiserSystem::Train(training);
    auto p = system.MakePolicy(bundle.workload, machine);
    sim::Engine e(bundle.workload, machine, sim_cfg, p.get());
    const auto r = e.Run();
    const auto [d, m] = bandwidth_summary(r);
    table.AddRow({"Merchandiser", TextTable::Num(r.total_seconds, 2),
                  TextTable::Num(d, 2), TextTable::Num(m, 2)});
  }
  table.Print();
  std::printf(
      "\n(PM-only time: %.2fs. Good placements shift traffic from PM to "
      "DRAM — the Figure 6 signature.)\n",
      pm_only_time);
  return 0;
}
