// Extension example: writing your own placement policy against the
// simulator's policy interface — the seam Merchandiser itself plugs into.
//
// The toy policy below ("FairShare") gives every *task* an equal number of
// DRAM pages, spent on each task's hottest pages. It is task-aware (unlike
// MemoryOptimizer) but not balance-aware (unlike Merchandiser): a nice
// midpoint to see why equal shares are not load balance (paper Section 1:
// "evenly sharing fast memory among tasks cannot work").
#include <cstdio>

#include "apps/registry.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "common/table.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace {

using namespace merch;

/// Equal DRAM page budget per task, hottest objects first.
class FairSharePolicy final : public sim::PlacementPolicy {
 public:
  std::string name() const override { return "FairShare"; }

  void OnRegionStart(sim::SimContext& ctx, std::size_t /*region*/) override {
    const sim::Workload& w = ctx.workload();
    const auto tasks = w.TaskIds();
    if (tasks.empty()) return;
    const std::uint64_t budget_per_task =
        ctx.pages().spec().dram_capacity() / ctx.pages().page_bytes() * 98 /
        100 / tasks.size();
    for (const TaskId task : tasks) {
      std::uint64_t budget = budget_per_task;
      for (std::size_t obj = 0; obj < w.objects.size() && budget > 0;
           ++obj) {
        if (w.objects[obj].owner != task) continue;
        const ObjectId handle = ctx.oracle().handle(obj);
        const std::uint64_t on_dram =
            ctx.pages().object_pages_on(handle, hm::Tier::kDram);
        const std::uint64_t want =
            std::min<std::uint64_t>(budget, ctx.pages().extent(handle).num_pages -
                                                on_dram);
        budget -= ctx.migration().MigrateHottest(handle, want, hm::Tier::kDram);
      }
    }
  }
};

}  // namespace

int main() {
  // Compare the custom policy against the built-in systems on DMRG.
  const apps::AppBundle bundle = apps::BuildApp("DMRG", 1.0 / 64, 1.0 / 16);
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  machine.hm[hm::Tier::kDram].capacity_bytes /= 64;
  machine.hm[hm::Tier::kPm].capacity_bytes /= 64;
  sim::SimConfig cfg;
  cfg.page_bytes = 512 * KiB;

  TextTable table({"policy", "time (s)", "task-time CoV"});
  double pm_time = 0;
  {
    baselines::PmOnlyPolicy p;
    sim::Engine e(bundle.workload, machine, cfg, &p);
    const auto r = e.Run();
    pm_time = r.total_seconds;
    table.AddRow({r.policy, TextTable::Num(r.total_seconds, 2),
                  TextTable::Num(r.AverageCoV(), 3)});
  }
  {
    FairSharePolicy p;  // <- the custom policy, three methods of code
    sim::Engine e(bundle.workload, machine, cfg, &p);
    const auto r = e.Run();
    table.AddRow({r.policy, TextTable::Num(r.total_seconds, 2),
                  TextTable::Num(r.AverageCoV(), 3)});
  }
  {
    workloads::TrainingConfig training;
    training.num_regions = 48;
    const auto system = core::MerchandiserSystem::Train(training);
    auto p = system.MakePolicy(bundle.workload, machine);
    sim::Engine e(bundle.workload, machine, cfg, p.get());
    const auto r = e.Run();
    table.AddRow({r.policy, TextTable::Num(r.total_seconds, 2),
                  TextTable::Num(r.AverageCoV(), 3)});
  }
  table.Print();
  std::printf(
      "\nPM-only baseline: %.2fs. FairShare is task-aware but treats all\n"
      "tasks alike; Merchandiser gives the predicted-slowest tasks more —\n"
      "lower CoV *and* lower makespan.\n",
      pm_time);
  return 0;
}
