// Quickstart: place a task-parallel SpGEMM on heterogeneous memory with
// Merchandiser and compare against PM-only and MemoryOptimizer.
//
// Walkthrough of the whole public API:
//   1. register data objects (the LB_HM_config user API),
//   2. train the correlation function f(PMCs, r) once (offline step 1),
//   3. prepare the application profile (offline steps 2-4),
//   4. run under different placement policies and compare makespan and
//      load balance.
//
// This example uses reduced footprints and a small training set so it
// finishes in seconds; the bench binaries run the paper-scale versions.
#include <cstdio>

#include "apps/registry.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "common/table.h"
#include "core/api.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

int main() {
  using namespace merch;

  // --- 1. The user API: declare the major data objects. In a real
  // application these would be your live allocations; the registry feeds
  // the runtime the object/size list.
  std::vector<double> a_matrix(1024), b_matrix(4096), c_matrix(2048);
  void* objects[] = {a_matrix.data(), b_matrix.data(), c_matrix.data()};
  const long long sizes[] = {
      static_cast<long long>(a_matrix.size() * sizeof(double)),
      static_cast<long long>(b_matrix.size() * sizeof(double)),
      static_cast<long long>(c_matrix.size() * sizeof(double))};
  LB_HM_config(objects, sizes, 3);
  std::printf("Registered %zu objects through LB_HM_config\n",
              core::HmConfigRegistry::Global().size());

  // --- 2. Offline, once ever: train the correlation function on synthetic
  // code samples (stand-in for CERE-extracted NAS/SPEC regions).
  workloads::TrainingConfig training;
  training.num_regions = 48;  // small for the quickstart
  std::printf("Training correlation function (%zu code regions)...\n",
              training.num_regions);
  const core::MerchandiserSystem system = core::MerchandiserSystem::Train(training);
  std::printf("  GBR test R^2 = %.3f\n", system.correlation().test_r2());

  // --- 3. Build the workload (mini SpGEMM, 1/64 of the paper footprint)
  // and the per-application offline profile.
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", 1.0 / 64, 1.0 / 8);
  const sim::MachineSpec machine = [] {
    sim::MachineSpec m = sim::MachineSpec::Paper();
    // Shrink the machine to match the shrunk footprint.
    m.hm[hm::Tier::kDram].capacity_bytes /= 64;
    m.hm[hm::Tier::kPm].capacity_bytes /= 64;
    return m;
  }();
  sim::SimConfig sim_cfg;
  sim_cfg.page_bytes = 512 * KiB;  // finer pages for the small footprint

  // --- 4. Run the three systems.
  TextTable table({"policy", "makespan (s)", "speedup vs PM-only",
                   "task-time CoV"});
  double pm_total = 0;
  auto run = [&](sim::PlacementPolicy* policy) {
    sim::Engine engine(bundle.workload, machine, sim_cfg, policy);
    const sim::SimResult result = engine.Run();
    if (result.policy == "PM-only") pm_total = result.total_seconds;
    table.AddRow({result.policy, TextTable::Num(result.total_seconds, 2),
                  pm_total > 0
                      ? TextTable::Num(pm_total / result.total_seconds, 3)
                      : "1.000",
                  TextTable::Num(result.AverageCoV(), 3)});
    return result;
  };

  baselines::PmOnlyPolicy pm_only;
  run(&pm_only);
  baselines::MemoryOptimizerPolicy mem_opt;
  run(&mem_opt);
  auto merchandiser = system.MakePolicy(bundle.workload, machine);
  run(merchandiser.get());

  table.Print();
  std::printf(
      "\nMerchandiser coordinates tasks on fast-memory usage: it posts the\n"
      "best makespan here, and at paper scale it also yields the tightest\n"
      "task-time distribution (run bench/fig5_load_balance).\n");
  return 0;
}
