file(REMOVE_RECURSE
  "CMakeFiles/app_workloads_test.dir/app_workloads_test.cc.o"
  "CMakeFiles/app_workloads_test.dir/app_workloads_test.cc.o.d"
  "app_workloads_test"
  "app_workloads_test.pdb"
  "app_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
