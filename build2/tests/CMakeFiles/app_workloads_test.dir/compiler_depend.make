# Empty compiler generated dependencies file for app_workloads_test.
# This may be replaced when dependencies are built.
