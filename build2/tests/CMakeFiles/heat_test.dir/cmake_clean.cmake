file(REMOVE_RECURSE
  "CMakeFiles/heat_test.dir/heat_test.cc.o"
  "CMakeFiles/heat_test.dir/heat_test.cc.o.d"
  "heat_test"
  "heat_test.pdb"
  "heat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
