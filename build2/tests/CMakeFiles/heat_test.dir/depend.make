# Empty dependencies file for heat_test.
# This may be replaced when dependencies are built.
