# Empty compiler generated dependencies file for app_kernels_test.
# This may be replaced when dependencies are built.
