file(REMOVE_RECURSE
  "CMakeFiles/app_kernels_test.dir/app_kernels_test.cc.o"
  "CMakeFiles/app_kernels_test.dir/app_kernels_test.cc.o.d"
  "app_kernels_test"
  "app_kernels_test.pdb"
  "app_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
