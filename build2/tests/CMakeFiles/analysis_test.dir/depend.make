# Empty dependencies file for analysis_test.
# This may be replaced when dependencies are built.
