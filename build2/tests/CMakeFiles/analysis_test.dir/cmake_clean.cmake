file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis_test.cc.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
