# Empty compiler generated dependencies file for core_model_test.
# This may be replaced when dependencies are built.
