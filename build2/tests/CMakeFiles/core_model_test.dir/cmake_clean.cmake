file(REMOVE_RECURSE
  "CMakeFiles/core_model_test.dir/core_model_test.cc.o"
  "CMakeFiles/core_model_test.dir/core_model_test.cc.o.d"
  "core_model_test"
  "core_model_test.pdb"
  "core_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
