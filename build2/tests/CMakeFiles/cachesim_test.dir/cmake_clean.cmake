file(REMOVE_RECURSE
  "CMakeFiles/cachesim_test.dir/cachesim_test.cc.o"
  "CMakeFiles/cachesim_test.dir/cachesim_test.cc.o.d"
  "cachesim_test"
  "cachesim_test.pdb"
  "cachesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
