# Empty dependencies file for cachesim_test.
# This may be replaced when dependencies are built.
