file(REMOVE_RECURSE
  "CMakeFiles/service_test.dir/service_test.cc.o"
  "CMakeFiles/service_test.dir/service_test.cc.o.d"
  "service_test"
  "service_test.pdb"
  "service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
