# Empty compiler generated dependencies file for merchandiser_test.
# This may be replaced when dependencies are built.
