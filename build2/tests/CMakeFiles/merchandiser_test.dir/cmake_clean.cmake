file(REMOVE_RECURSE
  "CMakeFiles/merchandiser_test.dir/merchandiser_test.cc.o"
  "CMakeFiles/merchandiser_test.dir/merchandiser_test.cc.o.d"
  "merchandiser_test"
  "merchandiser_test.pdb"
  "merchandiser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merchandiser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
