# Empty dependencies file for greedy_test.
# This may be replaced when dependencies are built.
