file(REMOVE_RECURSE
  "CMakeFiles/greedy_test.dir/greedy_test.cc.o"
  "CMakeFiles/greedy_test.dir/greedy_test.cc.o.d"
  "greedy_test"
  "greedy_test.pdb"
  "greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
