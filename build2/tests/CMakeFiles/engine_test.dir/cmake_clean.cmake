file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine_test.cc.o"
  "CMakeFiles/engine_test.dir/engine_test.cc.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
