file(REMOVE_RECURSE
  "CMakeFiles/oracle_test.dir/oracle_test.cc.o"
  "CMakeFiles/oracle_test.dir/oracle_test.cc.o.d"
  "oracle_test"
  "oracle_test.pdb"
  "oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
