# Empty compiler generated dependencies file for oracle_test.
# This may be replaced when dependencies are built.
