# Empty compiler generated dependencies file for trace_classifier_test.
# This may be replaced when dependencies are built.
