file(REMOVE_RECURSE
  "CMakeFiles/trace_classifier_test.dir/trace_classifier_test.cc.o"
  "CMakeFiles/trace_classifier_test.dir/trace_classifier_test.cc.o.d"
  "trace_classifier_test"
  "trace_classifier_test.pdb"
  "trace_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
