# Empty dependencies file for page_table_test.
# This may be replaced when dependencies are built.
