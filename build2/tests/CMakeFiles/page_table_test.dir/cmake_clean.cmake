file(REMOVE_RECURSE
  "CMakeFiles/page_table_test.dir/page_table_test.cc.o"
  "CMakeFiles/page_table_test.dir/page_table_test.cc.o.d"
  "page_table_test"
  "page_table_test.pdb"
  "page_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
