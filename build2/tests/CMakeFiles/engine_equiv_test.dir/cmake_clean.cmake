file(REMOVE_RECURSE
  "CMakeFiles/engine_equiv_test.dir/engine_equiv_test.cc.o"
  "CMakeFiles/engine_equiv_test.dir/engine_equiv_test.cc.o.d"
  "engine_equiv_test"
  "engine_equiv_test.pdb"
  "engine_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
