# Empty dependencies file for engine_equiv_test.
# This may be replaced when dependencies are built.
