# Empty compiler generated dependencies file for ml_test.
# This may be replaced when dependencies are built.
