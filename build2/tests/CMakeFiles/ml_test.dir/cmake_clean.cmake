file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml_test.cc.o"
  "CMakeFiles/ml_test.dir/ml_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
