file(REMOVE_RECURSE
  "CMakeFiles/profiler_test.dir/profiler_test.cc.o"
  "CMakeFiles/profiler_test.dir/profiler_test.cc.o.d"
  "profiler_test"
  "profiler_test.pdb"
  "profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
