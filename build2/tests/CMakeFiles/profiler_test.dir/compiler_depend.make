# Empty compiler generated dependencies file for profiler_test.
# This may be replaced when dependencies are built.
