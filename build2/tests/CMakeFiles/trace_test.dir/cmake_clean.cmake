file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/trace_test.cc.o"
  "CMakeFiles/trace_test.dir/trace_test.cc.o.d"
  "trace_test"
  "trace_test.pdb"
  "trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
