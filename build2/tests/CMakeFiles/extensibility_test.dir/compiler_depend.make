# Empty compiler generated dependencies file for extensibility_test.
# This may be replaced when dependencies are built.
