file(REMOVE_RECURSE
  "CMakeFiles/extensibility_test.dir/extensibility_test.cc.o"
  "CMakeFiles/extensibility_test.dir/extensibility_test.cc.o.d"
  "extensibility_test"
  "extensibility_test.pdb"
  "extensibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
