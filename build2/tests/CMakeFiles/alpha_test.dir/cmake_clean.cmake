file(REMOVE_RECURSE
  "CMakeFiles/alpha_test.dir/alpha_test.cc.o"
  "CMakeFiles/alpha_test.dir/alpha_test.cc.o.d"
  "alpha_test"
  "alpha_test.pdb"
  "alpha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
