# Empty dependencies file for alpha_test.
# This may be replaced when dependencies are built.
