
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/merch_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/apps/CMakeFiles/merch_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/baselines/CMakeFiles/merch_baselines.dir/DependInfo.cmake"
  "/root/repo/build2/src/workloads/CMakeFiles/merch_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/merch_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/ml/CMakeFiles/merch_ml.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/merch_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/service/CMakeFiles/merch_pool.dir/DependInfo.cmake"
  "/root/repo/build2/src/profiler/CMakeFiles/merch_profiler.dir/DependInfo.cmake"
  "/root/repo/build2/src/cachesim/CMakeFiles/merch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/merch_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/hm/CMakeFiles/merch_hm.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
