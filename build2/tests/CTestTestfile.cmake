# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/common_test[1]_include.cmake")
include("/root/repo/build2/tests/heat_test[1]_include.cmake")
include("/root/repo/build2/tests/page_table_test[1]_include.cmake")
include("/root/repo/build2/tests/migration_test[1]_include.cmake")
include("/root/repo/build2/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build2/tests/trace_test[1]_include.cmake")
include("/root/repo/build2/tests/profiler_test[1]_include.cmake")
include("/root/repo/build2/tests/oracle_test[1]_include.cmake")
include("/root/repo/build2/tests/engine_test[1]_include.cmake")
include("/root/repo/build2/tests/ml_test[1]_include.cmake")
include("/root/repo/build2/tests/workloads_test[1]_include.cmake")
include("/root/repo/build2/tests/alpha_test[1]_include.cmake")
include("/root/repo/build2/tests/classifier_test[1]_include.cmake")
include("/root/repo/build2/tests/greedy_test[1]_include.cmake")
include("/root/repo/build2/tests/core_model_test[1]_include.cmake")
include("/root/repo/build2/tests/merchandiser_test[1]_include.cmake")
include("/root/repo/build2/tests/baselines_test[1]_include.cmake")
include("/root/repo/build2/tests/app_kernels_test[1]_include.cmake")
include("/root/repo/build2/tests/app_workloads_test[1]_include.cmake")
include("/root/repo/build2/tests/integration_test[1]_include.cmake")
include("/root/repo/build2/tests/trace_classifier_test[1]_include.cmake")
include("/root/repo/build2/tests/extensibility_test[1]_include.cmake")
include("/root/repo/build2/tests/property_test[1]_include.cmake")
include("/root/repo/build2/tests/analysis_test[1]_include.cmake")
include("/root/repo/build2/tests/engine_equiv_test[1]_include.cmake")
include("/root/repo/build2/tests/service_test[1]_include.cmake")
