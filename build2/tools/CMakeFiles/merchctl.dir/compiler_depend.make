# Empty compiler generated dependencies file for merchctl.
# This may be replaced when dependencies are built.
