file(REMOVE_RECURSE
  "CMakeFiles/merchctl.dir/merchctl.cc.o"
  "CMakeFiles/merchctl.dir/merchctl.cc.o.d"
  "merchctl"
  "merchctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merchctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
