# Empty compiler generated dependencies file for merchd.
# This may be replaced when dependencies are built.
