file(REMOVE_RECURSE
  "CMakeFiles/merchd.dir/merchd.cc.o"
  "CMakeFiles/merchd.dir/merchd.cc.o.d"
  "merchd"
  "merchd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merchd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
