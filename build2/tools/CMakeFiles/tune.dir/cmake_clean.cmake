file(REMOVE_RECURSE
  "CMakeFiles/tune.dir/tune.cpp.o"
  "CMakeFiles/tune.dir/tune.cpp.o.d"
  "tune"
  "tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
