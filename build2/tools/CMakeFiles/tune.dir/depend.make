# Empty dependencies file for tune.
# This may be replaced when dependencies are built.
