file(REMOVE_RECURSE
  "CMakeFiles/merch_ml.dir/dataset.cc.o"
  "CMakeFiles/merch_ml.dir/dataset.cc.o.d"
  "CMakeFiles/merch_ml.dir/forest.cc.o"
  "CMakeFiles/merch_ml.dir/forest.cc.o.d"
  "CMakeFiles/merch_ml.dir/gbr.cc.o"
  "CMakeFiles/merch_ml.dir/gbr.cc.o.d"
  "CMakeFiles/merch_ml.dir/importance.cc.o"
  "CMakeFiles/merch_ml.dir/importance.cc.o.d"
  "CMakeFiles/merch_ml.dir/kernel_ridge.cc.o"
  "CMakeFiles/merch_ml.dir/kernel_ridge.cc.o.d"
  "CMakeFiles/merch_ml.dir/knn.cc.o"
  "CMakeFiles/merch_ml.dir/knn.cc.o.d"
  "CMakeFiles/merch_ml.dir/mlp.cc.o"
  "CMakeFiles/merch_ml.dir/mlp.cc.o.d"
  "CMakeFiles/merch_ml.dir/model.cc.o"
  "CMakeFiles/merch_ml.dir/model.cc.o.d"
  "CMakeFiles/merch_ml.dir/tree.cc.o"
  "CMakeFiles/merch_ml.dir/tree.cc.o.d"
  "libmerch_ml.a"
  "libmerch_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
