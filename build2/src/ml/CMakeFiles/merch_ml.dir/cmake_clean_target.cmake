file(REMOVE_RECURSE
  "libmerch_ml.a"
)
