# Empty dependencies file for merch_ml.
# This may be replaced when dependencies are built.
