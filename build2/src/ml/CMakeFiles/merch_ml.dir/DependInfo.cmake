
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/merch_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/merch_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/gbr.cc" "src/ml/CMakeFiles/merch_ml.dir/gbr.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/gbr.cc.o.d"
  "/root/repo/src/ml/importance.cc" "src/ml/CMakeFiles/merch_ml.dir/importance.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/importance.cc.o.d"
  "/root/repo/src/ml/kernel_ridge.cc" "src/ml/CMakeFiles/merch_ml.dir/kernel_ridge.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/kernel_ridge.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/merch_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/merch_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/merch_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/merch_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/merch_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
