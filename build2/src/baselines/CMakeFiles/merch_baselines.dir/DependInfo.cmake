
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/memory_mode_policy.cc" "src/baselines/CMakeFiles/merch_baselines.dir/memory_mode_policy.cc.o" "gcc" "src/baselines/CMakeFiles/merch_baselines.dir/memory_mode_policy.cc.o.d"
  "/root/repo/src/baselines/memory_optimizer.cc" "src/baselines/CMakeFiles/merch_baselines.dir/memory_optimizer.cc.o" "gcc" "src/baselines/CMakeFiles/merch_baselines.dir/memory_optimizer.cc.o.d"
  "/root/repo/src/baselines/static_priority.cc" "src/baselines/CMakeFiles/merch_baselines.dir/static_priority.cc.o" "gcc" "src/baselines/CMakeFiles/merch_baselines.dir/static_priority.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/merch_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/profiler/CMakeFiles/merch_profiler.dir/DependInfo.cmake"
  "/root/repo/build2/src/cachesim/CMakeFiles/merch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build2/src/service/CMakeFiles/merch_pool.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/merch_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/hm/CMakeFiles/merch_hm.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
