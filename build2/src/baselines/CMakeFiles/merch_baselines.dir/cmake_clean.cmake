file(REMOVE_RECURSE
  "CMakeFiles/merch_baselines.dir/memory_mode_policy.cc.o"
  "CMakeFiles/merch_baselines.dir/memory_mode_policy.cc.o.d"
  "CMakeFiles/merch_baselines.dir/memory_optimizer.cc.o"
  "CMakeFiles/merch_baselines.dir/memory_optimizer.cc.o.d"
  "CMakeFiles/merch_baselines.dir/static_priority.cc.o"
  "CMakeFiles/merch_baselines.dir/static_priority.cc.o.d"
  "libmerch_baselines.a"
  "libmerch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
