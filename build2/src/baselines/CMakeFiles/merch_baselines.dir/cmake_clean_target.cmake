file(REMOVE_RECURSE
  "libmerch_baselines.a"
)
