# Empty dependencies file for merch_baselines.
# This may be replaced when dependencies are built.
