# Empty dependencies file for merch_core.
# This may be replaced when dependencies are built.
