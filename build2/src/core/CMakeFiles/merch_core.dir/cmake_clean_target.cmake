file(REMOVE_RECURSE
  "libmerch_core.a"
)
