
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha.cc" "src/core/CMakeFiles/merch_core.dir/alpha.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/alpha.cc.o.d"
  "/root/repo/src/core/api.cc" "src/core/CMakeFiles/merch_core.dir/api.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/api.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/merch_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/merch_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/homogeneous.cc" "src/core/CMakeFiles/merch_core.dir/homogeneous.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/homogeneous.cc.o.d"
  "/root/repo/src/core/lowering.cc" "src/core/CMakeFiles/merch_core.dir/lowering.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/lowering.cc.o.d"
  "/root/repo/src/core/merchandiser.cc" "src/core/CMakeFiles/merch_core.dir/merchandiser.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/merchandiser.cc.o.d"
  "/root/repo/src/core/merchandiser_policy.cc" "src/core/CMakeFiles/merch_core.dir/merchandiser_policy.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/merchandiser_policy.cc.o.d"
  "/root/repo/src/core/pattern_classifier.cc" "src/core/CMakeFiles/merch_core.dir/pattern_classifier.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/pattern_classifier.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/merch_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/trace_classifier.cc" "src/core/CMakeFiles/merch_core.dir/trace_classifier.cc.o" "gcc" "src/core/CMakeFiles/merch_core.dir/trace_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/merch_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/ml/CMakeFiles/merch_ml.dir/DependInfo.cmake"
  "/root/repo/build2/src/profiler/CMakeFiles/merch_profiler.dir/DependInfo.cmake"
  "/root/repo/build2/src/workloads/CMakeFiles/merch_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/cachesim/CMakeFiles/merch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/merch_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/hm/CMakeFiles/merch_hm.dir/DependInfo.cmake"
  "/root/repo/build2/src/service/CMakeFiles/merch_pool.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
