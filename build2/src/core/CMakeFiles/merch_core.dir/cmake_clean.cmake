file(REMOVE_RECURSE
  "CMakeFiles/merch_core.dir/alpha.cc.o"
  "CMakeFiles/merch_core.dir/alpha.cc.o.d"
  "CMakeFiles/merch_core.dir/api.cc.o"
  "CMakeFiles/merch_core.dir/api.cc.o.d"
  "CMakeFiles/merch_core.dir/correlation.cc.o"
  "CMakeFiles/merch_core.dir/correlation.cc.o.d"
  "CMakeFiles/merch_core.dir/greedy.cc.o"
  "CMakeFiles/merch_core.dir/greedy.cc.o.d"
  "CMakeFiles/merch_core.dir/homogeneous.cc.o"
  "CMakeFiles/merch_core.dir/homogeneous.cc.o.d"
  "CMakeFiles/merch_core.dir/lowering.cc.o"
  "CMakeFiles/merch_core.dir/lowering.cc.o.d"
  "CMakeFiles/merch_core.dir/merchandiser.cc.o"
  "CMakeFiles/merch_core.dir/merchandiser.cc.o.d"
  "CMakeFiles/merch_core.dir/merchandiser_policy.cc.o"
  "CMakeFiles/merch_core.dir/merchandiser_policy.cc.o.d"
  "CMakeFiles/merch_core.dir/pattern_classifier.cc.o"
  "CMakeFiles/merch_core.dir/pattern_classifier.cc.o.d"
  "CMakeFiles/merch_core.dir/perf_model.cc.o"
  "CMakeFiles/merch_core.dir/perf_model.cc.o.d"
  "CMakeFiles/merch_core.dir/trace_classifier.cc.o"
  "CMakeFiles/merch_core.dir/trace_classifier.cc.o.d"
  "libmerch_core.a"
  "libmerch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
