file(REMOVE_RECURSE
  "libmerch_apps.a"
)
