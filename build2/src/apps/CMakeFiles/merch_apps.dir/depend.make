# Empty dependencies file for merch_apps.
# This may be replaced when dependencies are built.
