file(REMOVE_RECURSE
  "CMakeFiles/merch_apps.dir/bfs.cc.o"
  "CMakeFiles/merch_apps.dir/bfs.cc.o.d"
  "CMakeFiles/merch_apps.dir/dmrg.cc.o"
  "CMakeFiles/merch_apps.dir/dmrg.cc.o.d"
  "CMakeFiles/merch_apps.dir/kernels/csr.cc.o"
  "CMakeFiles/merch_apps.dir/kernels/csr.cc.o.d"
  "CMakeFiles/merch_apps.dir/kernels/dense.cc.o"
  "CMakeFiles/merch_apps.dir/kernels/dense.cc.o.d"
  "CMakeFiles/merch_apps.dir/kernels/pic.cc.o"
  "CMakeFiles/merch_apps.dir/kernels/pic.cc.o.d"
  "CMakeFiles/merch_apps.dir/kernels/tensor.cc.o"
  "CMakeFiles/merch_apps.dir/kernels/tensor.cc.o.d"
  "CMakeFiles/merch_apps.dir/nwchem_tc.cc.o"
  "CMakeFiles/merch_apps.dir/nwchem_tc.cc.o.d"
  "CMakeFiles/merch_apps.dir/registry.cc.o"
  "CMakeFiles/merch_apps.dir/registry.cc.o.d"
  "CMakeFiles/merch_apps.dir/spgemm.cc.o"
  "CMakeFiles/merch_apps.dir/spgemm.cc.o.d"
  "CMakeFiles/merch_apps.dir/warpx.cc.o"
  "CMakeFiles/merch_apps.dir/warpx.cc.o.d"
  "libmerch_apps.a"
  "libmerch_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
