# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hm")
subdirs("cachesim")
subdirs("trace")
subdirs("sim")
subdirs("profiler")
subdirs("ml")
subdirs("workloads")
subdirs("core")
subdirs("analysis")
subdirs("baselines")
subdirs("apps")
subdirs("service")
