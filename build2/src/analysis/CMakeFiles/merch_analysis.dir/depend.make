# Empty dependencies file for merch_analysis.
# This may be replaced when dependencies are built.
