file(REMOVE_RECURSE
  "libmerch_analysis.a"
)
