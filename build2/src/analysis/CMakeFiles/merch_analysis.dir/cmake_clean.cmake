file(REMOVE_RECURSE
  "CMakeFiles/merch_analysis.dir/ir.cc.o"
  "CMakeFiles/merch_analysis.dir/ir.cc.o.d"
  "CMakeFiles/merch_analysis.dir/lint.cc.o"
  "CMakeFiles/merch_analysis.dir/lint.cc.o.d"
  "CMakeFiles/merch_analysis.dir/parser.cc.o"
  "CMakeFiles/merch_analysis.dir/parser.cc.o.d"
  "CMakeFiles/merch_analysis.dir/passes.cc.o"
  "CMakeFiles/merch_analysis.dir/passes.cc.o.d"
  "CMakeFiles/merch_analysis.dir/report.cc.o"
  "CMakeFiles/merch_analysis.dir/report.cc.o.d"
  "libmerch_analysis.a"
  "libmerch_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
