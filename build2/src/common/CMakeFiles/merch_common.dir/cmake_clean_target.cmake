file(REMOVE_RECURSE
  "libmerch_common.a"
)
