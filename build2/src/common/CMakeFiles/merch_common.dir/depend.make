# Empty dependencies file for merch_common.
# This may be replaced when dependencies are built.
