file(REMOVE_RECURSE
  "CMakeFiles/merch_common.dir/log.cc.o"
  "CMakeFiles/merch_common.dir/log.cc.o.d"
  "CMakeFiles/merch_common.dir/rng.cc.o"
  "CMakeFiles/merch_common.dir/rng.cc.o.d"
  "CMakeFiles/merch_common.dir/stats.cc.o"
  "CMakeFiles/merch_common.dir/stats.cc.o.d"
  "CMakeFiles/merch_common.dir/table.cc.o"
  "CMakeFiles/merch_common.dir/table.cc.o.d"
  "libmerch_common.a"
  "libmerch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
