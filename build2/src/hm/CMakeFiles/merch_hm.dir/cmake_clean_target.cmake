file(REMOVE_RECURSE
  "libmerch_hm.a"
)
