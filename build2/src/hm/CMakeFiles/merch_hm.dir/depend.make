# Empty dependencies file for merch_hm.
# This may be replaced when dependencies are built.
