
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hm/migration.cc" "src/hm/CMakeFiles/merch_hm.dir/migration.cc.o" "gcc" "src/hm/CMakeFiles/merch_hm.dir/migration.cc.o.d"
  "/root/repo/src/hm/page_table.cc" "src/hm/CMakeFiles/merch_hm.dir/page_table.cc.o" "gcc" "src/hm/CMakeFiles/merch_hm.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
