file(REMOVE_RECURSE
  "CMakeFiles/merch_hm.dir/migration.cc.o"
  "CMakeFiles/merch_hm.dir/migration.cc.o.d"
  "CMakeFiles/merch_hm.dir/page_table.cc.o"
  "CMakeFiles/merch_hm.dir/page_table.cc.o.d"
  "libmerch_hm.a"
  "libmerch_hm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
