file(REMOVE_RECURSE
  "CMakeFiles/merch_trace.dir/heat.cc.o"
  "CMakeFiles/merch_trace.dir/heat.cc.o.d"
  "CMakeFiles/merch_trace.dir/pattern.cc.o"
  "CMakeFiles/merch_trace.dir/pattern.cc.o.d"
  "CMakeFiles/merch_trace.dir/synthetic_trace.cc.o"
  "CMakeFiles/merch_trace.dir/synthetic_trace.cc.o.d"
  "libmerch_trace.a"
  "libmerch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
