
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/heat.cc" "src/trace/CMakeFiles/merch_trace.dir/heat.cc.o" "gcc" "src/trace/CMakeFiles/merch_trace.dir/heat.cc.o.d"
  "/root/repo/src/trace/pattern.cc" "src/trace/CMakeFiles/merch_trace.dir/pattern.cc.o" "gcc" "src/trace/CMakeFiles/merch_trace.dir/pattern.cc.o.d"
  "/root/repo/src/trace/synthetic_trace.cc" "src/trace/CMakeFiles/merch_trace.dir/synthetic_trace.cc.o" "gcc" "src/trace/CMakeFiles/merch_trace.dir/synthetic_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/hm/CMakeFiles/merch_hm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
