file(REMOVE_RECURSE
  "libmerch_trace.a"
)
