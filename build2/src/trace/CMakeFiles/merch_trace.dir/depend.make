# Empty dependencies file for merch_trace.
# This may be replaced when dependencies are built.
