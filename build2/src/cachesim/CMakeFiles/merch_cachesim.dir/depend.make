# Empty dependencies file for merch_cachesim.
# This may be replaced when dependencies are built.
