file(REMOVE_RECURSE
  "CMakeFiles/merch_cachesim.dir/cpu_cache.cc.o"
  "CMakeFiles/merch_cachesim.dir/cpu_cache.cc.o.d"
  "CMakeFiles/merch_cachesim.dir/memory_mode.cc.o"
  "CMakeFiles/merch_cachesim.dir/memory_mode.cc.o.d"
  "libmerch_cachesim.a"
  "libmerch_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
