file(REMOVE_RECURSE
  "libmerch_cachesim.a"
)
