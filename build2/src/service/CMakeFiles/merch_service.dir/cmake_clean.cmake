file(REMOVE_RECURSE
  "CMakeFiles/merch_service.dir/batch.cc.o"
  "CMakeFiles/merch_service.dir/batch.cc.o.d"
  "CMakeFiles/merch_service.dir/placement_service.cc.o"
  "CMakeFiles/merch_service.dir/placement_service.cc.o.d"
  "CMakeFiles/merch_service.dir/request.cc.o"
  "CMakeFiles/merch_service.dir/request.cc.o.d"
  "CMakeFiles/merch_service.dir/result_cache.cc.o"
  "CMakeFiles/merch_service.dir/result_cache.cc.o.d"
  "libmerch_service.a"
  "libmerch_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
