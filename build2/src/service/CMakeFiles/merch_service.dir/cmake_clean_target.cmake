file(REMOVE_RECURSE
  "libmerch_service.a"
)
