# Empty compiler generated dependencies file for merch_service.
# This may be replaced when dependencies are built.
