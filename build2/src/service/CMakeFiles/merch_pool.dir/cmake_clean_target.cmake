file(REMOVE_RECURSE
  "libmerch_pool.a"
)
