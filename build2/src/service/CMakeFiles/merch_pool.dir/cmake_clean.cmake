file(REMOVE_RECURSE
  "CMakeFiles/merch_pool.dir/thread_pool.cc.o"
  "CMakeFiles/merch_pool.dir/thread_pool.cc.o.d"
  "libmerch_pool.a"
  "libmerch_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
