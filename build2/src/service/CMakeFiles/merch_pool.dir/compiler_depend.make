# Empty compiler generated dependencies file for merch_pool.
# This may be replaced when dependencies are built.
