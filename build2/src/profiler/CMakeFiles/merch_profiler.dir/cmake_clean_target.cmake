file(REMOVE_RECURSE
  "libmerch_profiler.a"
)
