file(REMOVE_RECURSE
  "CMakeFiles/merch_profiler.dir/pebs.cc.o"
  "CMakeFiles/merch_profiler.dir/pebs.cc.o.d"
  "CMakeFiles/merch_profiler.dir/pte_scan.cc.o"
  "CMakeFiles/merch_profiler.dir/pte_scan.cc.o.d"
  "CMakeFiles/merch_profiler.dir/thermostat.cc.o"
  "CMakeFiles/merch_profiler.dir/thermostat.cc.o.d"
  "libmerch_profiler.a"
  "libmerch_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
