# Empty dependencies file for merch_profiler.
# This may be replaced when dependencies are built.
