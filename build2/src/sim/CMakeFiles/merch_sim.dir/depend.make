# Empty dependencies file for merch_sim.
# This may be replaced when dependencies are built.
