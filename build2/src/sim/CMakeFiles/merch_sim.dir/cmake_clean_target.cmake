file(REMOVE_RECURSE
  "libmerch_sim.a"
)
