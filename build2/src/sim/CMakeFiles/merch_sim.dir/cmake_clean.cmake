file(REMOVE_RECURSE
  "CMakeFiles/merch_sim.dir/engine.cc.o"
  "CMakeFiles/merch_sim.dir/engine.cc.o.d"
  "CMakeFiles/merch_sim.dir/oracle.cc.o"
  "CMakeFiles/merch_sim.dir/oracle.cc.o.d"
  "CMakeFiles/merch_sim.dir/pmc.cc.o"
  "CMakeFiles/merch_sim.dir/pmc.cc.o.d"
  "CMakeFiles/merch_sim.dir/telemetry.cc.o"
  "CMakeFiles/merch_sim.dir/telemetry.cc.o.d"
  "CMakeFiles/merch_sim.dir/workload.cc.o"
  "CMakeFiles/merch_sim.dir/workload.cc.o.d"
  "libmerch_sim.a"
  "libmerch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
