
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/merch_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/merch_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/oracle.cc" "src/sim/CMakeFiles/merch_sim.dir/oracle.cc.o" "gcc" "src/sim/CMakeFiles/merch_sim.dir/oracle.cc.o.d"
  "/root/repo/src/sim/pmc.cc" "src/sim/CMakeFiles/merch_sim.dir/pmc.cc.o" "gcc" "src/sim/CMakeFiles/merch_sim.dir/pmc.cc.o.d"
  "/root/repo/src/sim/telemetry.cc" "src/sim/CMakeFiles/merch_sim.dir/telemetry.cc.o" "gcc" "src/sim/CMakeFiles/merch_sim.dir/telemetry.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/merch_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/merch_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/merch_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/hm/CMakeFiles/merch_hm.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/merch_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/cachesim/CMakeFiles/merch_cachesim.dir/DependInfo.cmake"
  "/root/repo/build2/src/service/CMakeFiles/merch_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
