# Empty dependencies file for merch_workloads.
# This may be replaced when dependencies are built.
