file(REMOVE_RECURSE
  "CMakeFiles/merch_workloads.dir/code_region.cc.o"
  "CMakeFiles/merch_workloads.dir/code_region.cc.o.d"
  "CMakeFiles/merch_workloads.dir/training.cc.o"
  "CMakeFiles/merch_workloads.dir/training.cc.o.d"
  "libmerch_workloads.a"
  "libmerch_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
