file(REMOVE_RECURSE
  "libmerch_workloads.a"
)
