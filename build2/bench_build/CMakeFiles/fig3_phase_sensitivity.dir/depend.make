# Empty dependencies file for fig3_phase_sensitivity.
# This may be replaced when dependencies are built.
