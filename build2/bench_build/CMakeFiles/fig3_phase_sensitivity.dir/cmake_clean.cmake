file(REMOVE_RECURSE
  "../bench/fig3_phase_sensitivity"
  "../bench/fig3_phase_sensitivity.pdb"
  "CMakeFiles/fig3_phase_sensitivity.dir/fig3_phase_sensitivity.cc.o"
  "CMakeFiles/fig3_phase_sensitivity.dir/fig3_phase_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_phase_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
