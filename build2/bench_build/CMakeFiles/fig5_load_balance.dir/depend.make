# Empty dependencies file for fig5_load_balance.
# This may be replaced when dependencies are built.
