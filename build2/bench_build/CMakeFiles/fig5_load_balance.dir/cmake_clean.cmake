file(REMOVE_RECURSE
  "../bench/fig5_load_balance"
  "../bench/fig5_load_balance.pdb"
  "CMakeFiles/fig5_load_balance.dir/fig5_load_balance.cc.o"
  "CMakeFiles/fig5_load_balance.dir/fig5_load_balance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
