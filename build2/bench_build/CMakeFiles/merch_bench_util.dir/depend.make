# Empty dependencies file for merch_bench_util.
# This may be replaced when dependencies are built.
