file(REMOVE_RECURSE
  "libmerch_bench_util.a"
)
