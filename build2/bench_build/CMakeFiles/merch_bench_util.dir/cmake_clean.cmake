file(REMOVE_RECURSE
  "CMakeFiles/merch_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/merch_bench_util.dir/bench_util.cc.o.d"
  "libmerch_bench_util.a"
  "libmerch_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merch_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
