file(REMOVE_RECURSE
  "../bench/fig4_overall"
  "../bench/fig4_overall.pdb"
  "CMakeFiles/fig4_overall.dir/fig4_overall.cc.o"
  "CMakeFiles/fig4_overall.dir/fig4_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
