# Empty compiler generated dependencies file for fig4_overall.
# This may be replaced when dependencies are built.
