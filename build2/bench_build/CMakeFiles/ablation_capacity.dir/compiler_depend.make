# Empty compiler generated dependencies file for ablation_capacity.
# This may be replaced when dependencies are built.
