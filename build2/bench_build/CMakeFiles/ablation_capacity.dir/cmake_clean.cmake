file(REMOVE_RECURSE
  "../bench/ablation_capacity"
  "../bench/ablation_capacity.pdb"
  "CMakeFiles/ablation_capacity.dir/ablation_capacity.cc.o"
  "CMakeFiles/ablation_capacity.dir/ablation_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
