# Empty dependencies file for ablation_greedy.
# This may be replaced when dependencies are built.
