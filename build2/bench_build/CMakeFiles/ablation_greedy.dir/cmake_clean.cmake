file(REMOVE_RECURSE
  "../bench/ablation_greedy"
  "../bench/ablation_greedy.pdb"
  "CMakeFiles/ablation_greedy.dir/ablation_greedy.cc.o"
  "CMakeFiles/ablation_greedy.dir/ablation_greedy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
