file(REMOVE_RECURSE
  "../bench/tab3_models"
  "../bench/tab3_models.pdb"
  "CMakeFiles/tab3_models.dir/tab3_models.cc.o"
  "CMakeFiles/tab3_models.dir/tab3_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
