# Empty compiler generated dependencies file for tab3_models.
# This may be replaced when dependencies are built.
