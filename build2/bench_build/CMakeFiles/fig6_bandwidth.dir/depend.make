# Empty dependencies file for fig6_bandwidth.
# This may be replaced when dependencies are built.
