file(REMOVE_RECURSE
  "../bench/fig6_bandwidth"
  "../bench/fig6_bandwidth.pdb"
  "CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cc.o"
  "CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
