file(REMOVE_RECURSE
  "../bench/service_throughput"
  "../bench/service_throughput.pdb"
  "CMakeFiles/service_throughput.dir/service_throughput.cc.o"
  "CMakeFiles/service_throughput.dir/service_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
