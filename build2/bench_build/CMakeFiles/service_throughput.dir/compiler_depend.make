# Empty compiler generated dependencies file for service_throughput.
# This may be replaced when dependencies are built.
