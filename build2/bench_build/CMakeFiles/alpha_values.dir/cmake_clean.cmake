file(REMOVE_RECURSE
  "../bench/alpha_values"
  "../bench/alpha_values.pdb"
  "CMakeFiles/alpha_values.dir/alpha_values.cc.o"
  "CMakeFiles/alpha_values.dir/alpha_values.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
