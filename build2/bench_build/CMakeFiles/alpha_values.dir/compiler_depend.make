# Empty compiler generated dependencies file for alpha_values.
# This may be replaced when dependencies are built.
