# Empty compiler generated dependencies file for tab4_model_accuracy.
# This may be replaced when dependencies are built.
