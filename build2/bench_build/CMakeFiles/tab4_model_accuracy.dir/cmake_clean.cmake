file(REMOVE_RECURSE
  "../bench/tab4_model_accuracy"
  "../bench/tab4_model_accuracy.pdb"
  "CMakeFiles/tab4_model_accuracy.dir/tab4_model_accuracy.cc.o"
  "CMakeFiles/tab4_model_accuracy.dir/tab4_model_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
