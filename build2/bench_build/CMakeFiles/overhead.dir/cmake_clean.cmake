file(REMOVE_RECURSE
  "../bench/overhead"
  "../bench/overhead.pdb"
  "CMakeFiles/overhead.dir/overhead.cc.o"
  "CMakeFiles/overhead.dir/overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
