# Empty dependencies file for overhead.
# This may be replaced when dependencies are built.
