file(REMOVE_RECURSE
  "../bench/fig7_event_selection"
  "../bench/fig7_event_selection.pdb"
  "CMakeFiles/fig7_event_selection.dir/fig7_event_selection.cc.o"
  "CMakeFiles/fig7_event_selection.dir/fig7_event_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_event_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
