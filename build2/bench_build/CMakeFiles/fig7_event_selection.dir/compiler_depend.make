# Empty compiler generated dependencies file for fig7_event_selection.
# This may be replaced when dependencies are built.
