file(REMOVE_RECURSE
  "../bench/tab1_patterns"
  "../bench/tab1_patterns.pdb"
  "CMakeFiles/tab1_patterns.dir/tab1_patterns.cc.o"
  "CMakeFiles/tab1_patterns.dir/tab1_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
