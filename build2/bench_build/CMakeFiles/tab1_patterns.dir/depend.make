# Empty dependencies file for tab1_patterns.
# This may be replaced when dependencies are built.
