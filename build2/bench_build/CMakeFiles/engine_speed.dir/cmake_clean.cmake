file(REMOVE_RECURSE
  "../bench/engine_speed"
  "../bench/engine_speed.pdb"
  "CMakeFiles/engine_speed.dir/engine_speed.cc.o"
  "CMakeFiles/engine_speed.dir/engine_speed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
