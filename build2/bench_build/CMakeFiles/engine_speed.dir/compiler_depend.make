# Empty compiler generated dependencies file for engine_speed.
# This may be replaced when dependencies are built.
