file(REMOVE_RECURSE
  "CMakeFiles/spgemm_placement.dir/spgemm_placement.cpp.o"
  "CMakeFiles/spgemm_placement.dir/spgemm_placement.cpp.o.d"
  "spgemm_placement"
  "spgemm_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
