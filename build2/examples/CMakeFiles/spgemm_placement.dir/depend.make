# Empty dependencies file for spgemm_placement.
# This may be replaced when dependencies are built.
