# Empty compiler generated dependencies file for plasma_simulation.
# This may be replaced when dependencies are built.
