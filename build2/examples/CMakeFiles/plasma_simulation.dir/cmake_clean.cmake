file(REMOVE_RECURSE
  "CMakeFiles/plasma_simulation.dir/plasma_simulation.cpp.o"
  "CMakeFiles/plasma_simulation.dir/plasma_simulation.cpp.o.d"
  "plasma_simulation"
  "plasma_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plasma_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
