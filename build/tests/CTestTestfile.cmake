# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/heat_test[1]_include.cmake")
include("/root/repo/build/tests/page_table_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/alpha_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/merchandiser_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/app_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/app_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trace_classifier_test[1]_include.cmake")
include("/root/repo/build/tests/extensibility_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
