// Tests for the networked placement service (src/net) and its codec layer
// (service/serialization): wire round-trips, hostile-input robustness,
// cache snapshots, and the live server/router contracts (bit-identity,
// shedding, deadlines, graceful drain, restart-on-crash).
//
// Carries the "net" ctest label (`ctest -L net`); the router cases exec
// the real merchd binary (MERCHD_BIN, injected by CMake).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/distributed/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/placement_service.h"
#include "service/result_cache.h"
#include "service/serialization.h"

namespace merch {
namespace {

service::PlacementRequest MakeRequest(const std::string& app,
                                      const std::string& policy,
                                      double scale = 0.01,
                                      std::uint64_t seed = 42) {
  service::PlacementRequest req{app, policy, scale, 0.02,
                                policy == "merch" ? 8u : 0u, seed};
  const std::string err = service::CanonicalizeRequest(req);
  EXPECT_EQ(err, "") << "bad test request";
  return req;
}

service::PlacementResult MakeResult(const std::string& key_salt) {
  service::PlacementResult r;
  r.request = {"SpGEMM", "pm", 0.25, 1.5, 0, 7};
  r.error = "";
  r.makespan_seconds = 123.456789;
  r.task_cov = 0.0625;
  r.migrated_bytes = 1ull << 33;
  r.regions = 281;
  r.placements.push_back({"A" + key_salt, 4096, 1.0});
  r.placements.push_back({"B" + key_salt, 1ull << 40, 0.125});
  return r;
}

// --- codec ---------------------------------------------------------------

TEST(Serialization, RequestRoundTripIsExact) {
  service::PlacementRequest req{"WarpX", "merch", 0.1, 0.7, 281, 12345};
  service::WireWriter w;
  service::EncodeRequest(req, &w);
  service::WireReader r(w.bytes());
  service::PlacementRequest back;
  ASSERT_TRUE(service::DecodeRequest(&r, &back));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(back.app, req.app);
  EXPECT_EQ(back.policy, req.policy);
  EXPECT_EQ(back.scale, req.scale);
  EXPECT_EQ(back.work, req.work);
  EXPECT_EQ(back.train_regions, req.train_regions);
  EXPECT_EQ(back.seed, req.seed);
}

TEST(Serialization, ResultRoundTripIsBitIdentical) {
  service::PlacementResult result = MakeResult("x");
  // Doubles that break non-bitwise codecs: signed zero, denormal, NaN.
  result.makespan_seconds = -0.0;
  result.task_cov = 4.9406564584124654e-324;
  result.placements[0].dram_fraction =
      std::numeric_limits<double>::quiet_NaN();
  service::WireWriter w;
  service::EncodeResult(result, &w);
  service::WireReader r(w.bytes());
  service::PlacementResult back;
  ASSERT_TRUE(service::DecodeResult(&r, &back));
  EXPECT_TRUE(service::BitIdentical(result, back));
  // BitIdentical itself must distinguish +0 from -0.
  back.makespan_seconds = 0.0;
  EXPECT_FALSE(service::BitIdentical(result, back));
}

TEST(Serialization, TruncatedInputFailsCleanly) {
  service::PlacementResult result = MakeResult("t");
  service::WireWriter w;
  service::EncodeResult(result, &w);
  const std::string full = w.bytes();
  // Every prefix must fail the decode without UB (run under ASan in CI).
  for (std::size_t len = 0; len < full.size(); ++len) {
    service::WireReader r(full.data(), len);
    service::PlacementResult back;
    EXPECT_FALSE(service::DecodeResult(&r, &back)) << "prefix " << len;
  }
}

TEST(Serialization, HostileStringLengthIsRejected) {
  service::WireWriter w;
  w.U32(0xFFFFFFFFu);  // string length prefix far beyond the buffer
  w.U32(0);
  service::WireReader r(w.bytes());
  std::string s;
  EXPECT_FALSE(r.Str(&s));
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, HostilePlacementCountIsRejected) {
  // A valid result header followed by a placement count far beyond the
  // remaining bytes must fail before allocating placements.
  service::PlacementResult result = MakeResult("h");
  result.placements.clear();
  service::WireWriter w;
  service::EncodeResult(result, &w);
  std::string bytes = w.bytes();
  // Patch the trailing u32 placement count (little-endian) to huge.
  bytes[bytes.size() - 4] = static_cast<char>(0xFF);
  bytes[bytes.size() - 3] = static_cast<char>(0xFF);
  bytes[bytes.size() - 2] = static_cast<char>(0xFF);
  bytes[bytes.size() - 1] = static_cast<char>(0x7F);
  service::WireReader r(bytes);
  service::PlacementResult back;
  EXPECT_FALSE(service::DecodeResult(&r, &back));
}

// --- framing -------------------------------------------------------------

TEST(Frame, RoundTripThroughParser) {
  net::Frame in{net::FrameType::kResponse, 77, "payload-bytes"};
  const std::string bytes = net::EncodeFrame(in);
  net::FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  net::Frame out;
  std::string err;
  ASSERT_EQ(parser.Next(&out, &err), net::FrameParser::Status::kFrame);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(parser.Next(&out, &err), net::FrameParser::Status::kNeedMore);
}

TEST(Frame, ByteAtATimeFeedProducesSameFrames) {
  std::string stream;
  net::AppendFrame({net::FrameType::kPing, 1, ""}, &stream);
  net::AppendFrame({net::FrameType::kRequest, 2, std::string(1000, 'x')},
                   &stream);
  net::AppendFrame({net::FrameType::kError,
                    3, net::EncodeErrorPayload(net::ErrorCode::kRetryLater,
                                               "busy")},
                   &stream);
  net::FrameParser parser;
  std::vector<net::Frame> frames;
  for (char c : stream) {
    parser.Feed(&c, 1);
    net::Frame f;
    std::string err;
    while (parser.Next(&f, &err) == net::FrameParser::Status::kFrame) {
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, net::FrameType::kPing);
  EXPECT_EQ(frames[1].payload.size(), 1000u);
  net::ErrorCode code;
  std::string msg;
  ASSERT_TRUE(net::DecodeErrorPayload(frames[2].payload, &code, &msg));
  EXPECT_EQ(code, net::ErrorCode::kRetryLater);
  EXPECT_EQ(msg, "busy");
}

TEST(Frame, BadMagicIsFatal) {
  std::string bytes = net::EncodeFrame({net::FrameType::kPing, 1, ""});
  bytes[0] = 'X';
  net::FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  net::Frame f;
  std::string err;
  bool bad_version = false;
  EXPECT_EQ(parser.Next(&f, &err, &bad_version),
            net::FrameParser::Status::kBad);
  EXPECT_FALSE(bad_version);
}

TEST(Frame, VersionMismatchIsDistinguished) {
  std::string bytes = net::EncodeFrame({net::FrameType::kPing, 1, ""});
  bytes[4] = 99;  // version u16 LE -> far beyond kProtocolVersion
  net::FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  net::Frame f;
  std::string err;
  bool bad_version = false;
  EXPECT_EQ(parser.Next(&f, &err, &bad_version),
            net::FrameParser::Status::kBad);
  EXPECT_TRUE(bad_version);
}

TEST(Frame, ParserAcceptsBothProtocolVersions) {
  for (std::uint16_t version :
       {net::kMinProtocolVersion, net::kProtocolVersion}) {
    const std::string bytes =
        net::EncodeFrame({net::FrameType::kPing, 7, "", version});
    net::FrameParser parser;
    parser.Feed(bytes.data(), bytes.size());
    net::Frame out;
    std::string err;
    ASSERT_EQ(parser.Next(&out, &err), net::FrameParser::Status::kFrame)
        << "version " << version << ": " << err;
    EXPECT_EQ(out.version, version);
  }
}

TEST(Frame, V2OnlyFrameTypesAreRejectedOnV1Headers) {
  // kMetrics does not exist in protocol v1: a v1 header carrying it is a
  // broken stream, not a version problem.
  const std::string bytes = net::EncodeFrame(
      {net::FrameType::kMetrics, 1, "", net::kMinProtocolVersion});
  net::FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  net::Frame out;
  std::string err;
  bool bad_version = false;
  EXPECT_EQ(parser.Next(&out, &err, &bad_version),
            net::FrameParser::Status::kBad);
  EXPECT_FALSE(bad_version);

  // The same type under a v2 header parses fine.
  const std::string v2 = net::EncodeFrame({net::FrameType::kMetrics, 1, ""});
  net::FrameParser fresh;
  fresh.Feed(v2.data(), v2.size());
  EXPECT_EQ(fresh.Next(&out, &err), net::FrameParser::Status::kFrame);
}

TEST(Frame, TraceContextRoundTrip) {
  service::WireWriter w;
  net::AppendTraceContext({0xABCDEF012345ull, 0x123456ull}, &w);
  EXPECT_EQ(w.bytes().size(), 16u);  // the advertised fixed width
  service::WireReader r(w.bytes());
  obs::TraceContext ctx;
  ASSERT_TRUE(net::ReadTraceContext(&r, &ctx));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(ctx.trace_id, 0xABCDEF012345ull);
  EXPECT_EQ(ctx.parent_span_id, 0x123456ull);

  // Truncated context fails cleanly.
  service::WireReader short_r(w.bytes().data(), 15);
  EXPECT_FALSE(net::ReadTraceContext(&short_r, &ctx));
}

TEST(Frame, PongPayloadRoundTrip) {
  const net::PongPayload pong{981726354ull, 4242, "shard1"};
  const std::string bytes = net::EncodePongPayload(pong);
  net::PongPayload back;
  ASSERT_TRUE(net::DecodePongPayload(bytes, &back));
  EXPECT_EQ(back.now_ns, pong.now_ns);
  EXPECT_EQ(back.pid, pong.pid);
  EXPECT_EQ(back.process_name, pong.process_name);
  // A v1 pong (empty payload) and trailing garbage both fail the decode.
  EXPECT_FALSE(net::DecodePongPayload("", &back));
  EXPECT_FALSE(net::DecodePongPayload(bytes + "x", &back));
}

TEST(Frame, MetricsReplyPayloadRoundTrip) {
  const net::MetricsReplyPayload reply{
      "router", 99, "# TYPE a counter\na 1\n"};
  const std::string bytes = net::EncodeMetricsReplyPayload(reply);
  net::MetricsReplyPayload back;
  ASSERT_TRUE(net::DecodeMetricsReplyPayload(bytes, &back));
  EXPECT_EQ(back.process_name, reply.process_name);
  EXPECT_EQ(back.pid, reply.pid);
  EXPECT_EQ(back.prometheus_text, reply.prometheus_text);
  EXPECT_FALSE(net::DecodeMetricsReplyPayload(bytes + "x", &back));
  EXPECT_FALSE(
      net::DecodeMetricsReplyPayload(bytes.substr(0, bytes.size() - 1),
                                     &back));
}

TEST(Frame, OversizedLengthPrefixIsFatalNotAllocated) {
  net::Frame f{net::FrameType::kRequest, 9, ""};
  std::string bytes = net::EncodeFrame(f);
  // payload_len := 64 MiB, far over the 1 KiB parser bound below.
  bytes[12] = 0;
  bytes[13] = 0;
  bytes[14] = 0;
  bytes[15] = 4;
  net::FrameParser parser(1024);
  parser.Feed(bytes.data(), bytes.size());
  net::Frame out;
  std::string err;
  EXPECT_EQ(parser.Next(&out, &err), net::FrameParser::Status::kBad);
}

TEST(Frame, DeterministicGarbageNeverCrashes) {
  // Fuzz-lite: pseudo-random bytes through the parser in random-ish chunk
  // sizes. The parser may report kBad or starve, but must never crash or
  // hand back a frame claiming more payload than was fed.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 32; ++round) {
    net::FrameParser parser(4096);
    std::string chunk;
    for (int i = 0; i < 512; ++i) chunk.push_back(static_cast<char>(next()));
    std::size_t pos = 0;
    bool dead = false;
    while (pos < chunk.size() && !dead) {
      const std::size_t n =
          std::min<std::size_t>(1 + next() % 64, chunk.size() - pos);
      parser.Feed(chunk.data() + pos, n);
      pos += n;
      net::Frame f;
      std::string err;
      for (;;) {
        const auto status = parser.Next(&f, &err);
        if (status == net::FrameParser::Status::kFrame) {
          EXPECT_LE(f.payload.size(), 4096u);
          continue;
        }
        if (status == net::FrameParser::Status::kBad) dead = true;
        break;
      }
    }
  }
}

// --- cache snapshots -----------------------------------------------------

TEST(CacheSnapshot, RoundTripPreservesEntriesAndRecency) {
  service::ResultCache cache(8);
  cache.Put("a", MakeResult("a"));
  cache.Put("b", MakeResult("b"));
  cache.Put("c", MakeResult("c"));
  (void)cache.Get("a");  // recency now: a, c, b

  const std::string snap = cache.Serialize();
  service::ResultCache back(2);  // smaller: must keep the MRU tail
  std::string err;
  ASSERT_TRUE(back.Deserialize(snap, &err)) << err;
  EXPECT_TRUE(back.Contains("a"));
  EXPECT_TRUE(back.Contains("c"));
  EXPECT_FALSE(back.Contains("b"));  // LRU entry evicted by capacity

  service::ResultCache full(8);
  ASSERT_TRUE(full.Deserialize(snap, &err)) << err;
  auto got = full.Get("b");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(service::BitIdentical(*got, MakeResult("b")));
}

TEST(CacheSnapshot, CorruptSnapshotsAreRejectedWithoutHalfLoads) {
  service::ResultCache cache(8);
  cache.Put("k1", MakeResult("1"));
  cache.Put("k2", MakeResult("2"));
  const std::string snap = cache.Serialize();

  service::ResultCache target(8);
  target.Put("existing", MakeResult("e"));
  std::string err;

  // Truncations at every byte boundary: reject, and never half-load.
  for (std::size_t len = 0; len < snap.size(); ++len) {
    EXPECT_FALSE(target.Deserialize(snap.substr(0, len), &err))
        << "prefix " << len;
    EXPECT_FALSE(target.Contains("k1"));
    EXPECT_FALSE(target.Contains("k2"));
  }
  // Bad magic.
  std::string bad = snap;
  bad[0] = 'X';
  EXPECT_FALSE(target.Deserialize(bad, &err));
  // Unsupported version.
  bad = snap;
  bad[4] = 99;
  EXPECT_FALSE(target.Deserialize(bad, &err));
  EXPECT_NE(err.find("version"), std::string::npos);
  // Trailing garbage.
  EXPECT_FALSE(target.Deserialize(snap + "zz", &err));
  // The target cache was never touched.
  EXPECT_TRUE(target.Contains("existing"));
  EXPECT_FALSE(target.Contains("k1"));
}

// --- live server ---------------------------------------------------------

class ServerFixture {
 public:
  explicit ServerFixture(net::ServerConfig cfg = {}) : server_(Defaults(cfg)) {
    std::string err;
    EXPECT_TRUE(server_.Start(&err)) << err;
    EXPECT_TRUE(client_.Connect("127.0.0.1", server_.port(), &err)) << err;
  }

  static net::ServerConfig Defaults(net::ServerConfig cfg) {
    if (cfg.threads == 4) cfg.threads = 2;  // keep test servers small
    return cfg;
  }

  net::PlacementServer server_;
  net::Client client_;
};

TEST(Server, NetworkedResultsAreBitIdenticalToInProcess) {
  ServerFixture fx;
  service::PlacementService local({.threads = 2, .cache_capacity = 64});
  for (const char* policy : {"pm", "mm", "mo"}) {
    const service::PlacementRequest req = MakeRequest("SpGEMM", policy);
    const service::PlacementResult expected = local.Submit(req).future.get();
    service::PlacementResult remote;
    net::ErrorCode code;
    std::string err;
    ASSERT_EQ(fx.client_.Call(req, 0, &remote, &code, &err),
              net::Client::Status::kOk)
        << err;
    EXPECT_TRUE(service::BitIdentical(expected, remote)) << policy;
    // Second call: served from the server cache, still bit-identical.
    service::PlacementResult cached;
    ASSERT_EQ(fx.client_.Call(req, 0, &cached, &code, &err),
              net::Client::Status::kOk);
    EXPECT_TRUE(service::BitIdentical(expected, cached));
  }
  local.Shutdown();
  EXPECT_GE(fx.server_.stats().responses, 6u);
}

TEST(Server, InvalidRequestTravelsAsResultError) {
  ServerFixture fx;
  service::PlacementRequest req{"NoSuchApp", "pm", 1.0, 1.0, 0, 1};
  service::PlacementResult remote;
  net::ErrorCode code;
  std::string err;
  ASSERT_EQ(fx.client_.Call(req, 0, &remote, &code, &err),
            net::Client::Status::kOk);
  EXPECT_FALSE(remote.ok());
  EXPECT_NE(remote.error.find("unknown application"), std::string::npos);
}

TEST(Server, PingPong) {
  ServerFixture fx;
  std::string err;
  EXPECT_EQ(fx.client_.Ping(&err), net::Client::Status::kOk) << err;
  EXPECT_GE(fx.server_.stats().pings, 1u);
}

/// Send one frame over a raw socket and read back the first reply frame.
net::Frame RawTransact(std::uint16_t port, const net::Frame& frame) {
  std::string err;
  const int fd = net::ConnectTo("127.0.0.1", port, &err);
  EXPECT_GE(fd, 0) << err;
  const std::string bytes = net::EncodeFrame(frame);
  EXPECT_TRUE(net::WriteAll(fd, bytes.data(), bytes.size()));
  net::FrameParser parser;
  net::Frame reply;
  for (;;) {
    char buf[4096];
    const long n = net::ReadSome(fd, buf, sizeof buf);
    EXPECT_GT(n, 0) << "connection closed before a reply frame";
    if (n <= 0) break;
    parser.Feed(buf, static_cast<std::size_t>(n));
    std::string perr;
    const auto status = parser.Next(&reply, &perr);
    if (status == net::FrameParser::Status::kFrame) break;
    EXPECT_EQ(status, net::FrameParser::Status::kNeedMore) << perr;
  }
  net::CloseFd(fd);
  return reply;
}

TEST(Server, V1ClientsGetV1ShapedReplies) {
  // The per-message version rule: a v1 request frame (no trace context in
  // the payload) gets a v1 response — the result bytes directly, no
  // trace-id prefix — so pre-v2 clients keep working against this server.
  ServerFixture fx;
  const service::PlacementRequest req = MakeRequest("SpGEMM", "pm");
  service::WireWriter w;
  w.U32(0);  // deadline_ms; a v1 payload has no trace context after it
  service::EncodeRequest(req, &w);
  const net::Frame reply = RawTransact(
      fx.server_.port(),
      {net::FrameType::kRequest, 31, w.bytes(), net::kMinProtocolVersion});
  ASSERT_EQ(reply.type, net::FrameType::kResponse);
  EXPECT_EQ(reply.seq, 31u);
  EXPECT_EQ(reply.version, net::kMinProtocolVersion);
  service::WireReader r(reply.payload);
  service::PlacementResult result;
  ASSERT_TRUE(service::DecodeResult(&r, &result));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(result.ok()) << result.error;

  // Same for pings: a v1 ping gets the classic empty pong.
  const net::Frame pong = RawTransact(
      fx.server_.port(),
      {net::FrameType::kPing, 32, "", net::kMinProtocolVersion});
  ASSERT_EQ(pong.type, net::FrameType::kPong);
  EXPECT_EQ(pong.version, net::kMinProtocolVersion);
  EXPECT_TRUE(pong.payload.empty());
}

TEST(Server, V2ResponsesEchoTheRequestTraceContext) {
  ServerFixture fx;
  const service::PlacementRequest req = MakeRequest("SpGEMM", "pm");
  service::WireWriter w;
  w.U32(0);
  net::AppendTraceContext({0xABC123, 0x456}, &w);
  service::EncodeRequest(req, &w);
  const net::Frame reply = RawTransact(
      fx.server_.port(), {net::FrameType::kRequest, 8, w.bytes()});
  ASSERT_EQ(reply.type, net::FrameType::kResponse);
  EXPECT_EQ(reply.version, net::kProtocolVersion);
  service::WireReader r(reply.payload);
  std::uint64_t trace_id = 0, server_span = 0;
  ASSERT_TRUE(r.U64(&trace_id));
  ASSERT_TRUE(r.U64(&server_span));
  EXPECT_EQ(trace_id, 0xABC123u) << "response lost the trace context";
  EXPECT_NE(server_span, 0u);
  service::PlacementResult result;
  ASSERT_TRUE(service::DecodeResult(&r, &result));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(result.ok()) << result.error;
}

TEST(Server, MetricsFrameReturnsIdentityAndExport) {
  net::ServerConfig cfg;
  cfg.process_name = "metrics-test-server";
  ServerFixture fx(cfg);
  net::MetricsReplyPayload reply;
  net::ErrorCode code;
  std::string err;
  ASSERT_EQ(fx.client_.FetchMetrics(&reply, &code, &err),
            net::Client::Status::kOk)
      << err;
  EXPECT_EQ(reply.process_name, "metrics-test-server");
  EXPECT_EQ(reply.pid, static_cast<std::uint64_t>(::getpid()));
  // Every export leads with the build identity.
  EXPECT_NE(reply.prometheus_text.find("merch_build_info"),
            std::string::npos);
  obs::ParsedMetrics parsed;
  EXPECT_TRUE(
      obs::ParsePrometheusText(reply.prometheus_text, &parsed, &err))
      << err;
}

TEST(Server, PeerClockEstimateUsesV2Pongs) {
  ServerFixture fx;
  obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
  rec.Start();
  obs::PeerClock peer;
  std::string err;
  ASSERT_TRUE(net::EstimatePeerClock(fx.client_, 4, &peer, &err)) << err;
  rec.Stop();
  EXPECT_EQ(peer.name, "merchd");  // ServerConfig default identity
  EXPECT_EQ(peer.pid, static_cast<std::uint64_t>(::getpid()));
  // Server and client share this process's trace clock, so the measured
  // offset is bounded by loopback round-trip noise.
  EXPECT_LT(std::abs(peer.offset_ns), 500'000'000ll);
}

TEST(Server, OverloadShedsWithRetryLaterButServesCacheHits) {
  net::ServerConfig cfg;
  cfg.max_inflight = 0;  // admission rejects every simulation
  ServerFixture fx(cfg);
  const service::PlacementRequest req = MakeRequest("SpGEMM", "pm");

  service::PlacementResult result;
  net::ErrorCode code;
  std::string err;
  ASSERT_EQ(fx.client_.Call(req, 0, &result, &code, &err),
            net::Client::Status::kRemoteError);
  EXPECT_EQ(code, net::ErrorCode::kRetryLater);
  EXPECT_GE(fx.server_.stats().shed, 1u);

  // Warm the cache behind the server's back: the hit path must bypass
  // admission control entirely.
  const service::PlacementResult expected =
      fx.server_.service().Submit(req).future.get();
  ASSERT_EQ(fx.client_.Call(req, 0, &result, &code, &err),
            net::Client::Status::kOk)
      << err;
  EXPECT_TRUE(service::BitIdentical(expected, result));
}

TEST(Server, DeadlineExpiryAnswersTimeout) {
  ServerFixture fx;
  // 'merch' trains a correlation model first — far more than 1ms of work.
  const service::PlacementRequest req = MakeRequest("SpGEMM", "merch");
  service::PlacementResult result;
  net::ErrorCode code;
  std::string err;
  ASSERT_EQ(fx.client_.Call(req, 1, &result, &code, &err),
            net::Client::Status::kRemoteError);
  EXPECT_EQ(code, net::ErrorCode::kTimeout);
  EXPECT_GE(fx.server_.stats().timeouts, 1u);
}

TEST(Server, GarbageBytesGetProtocolErrorNotCrash) {
  ServerFixture fx;
  // A raw socket spraying garbage must be answered (or dropped) cleanly...
  std::string err;
  int fd = net::ConnectTo("127.0.0.1", fx.server_.port(), &err);
  ASSERT_GE(fd, 0) << err;
  const std::string garbage(64, '\xEE');
  ASSERT_TRUE(net::WriteAll(fd, garbage.data(), garbage.size()));
  char buf[256];
  const long n = net::ReadSome(fd, buf, sizeof buf);  // error frame or EOF
  EXPECT_GE(n, 0);
  net::CloseFd(fd);
  // ...and the server keeps serving well-behaved clients afterwards.
  EXPECT_EQ(fx.client_.Ping(&err), net::Client::Status::kOk) << err;
  EXPECT_GE(fx.server_.stats().protocol_errors, 1u);
}

TEST(Server, MalformedRequestPayloadAnswersMalformed) {
  ServerFixture fx;
  std::string err;
  int fd = net::ConnectTo("127.0.0.1", fx.server_.port(), &err);
  ASSERT_GE(fd, 0) << err;
  // Valid frame envelope, undecodable request payload.
  const std::string bytes =
      net::EncodeFrame({net::FrameType::kRequest, 5, "\x01\x02\x03"});
  ASSERT_TRUE(net::WriteAll(fd, bytes.data(), bytes.size()));
  net::FrameParser parser;
  net::Frame reply;
  for (;;) {
    char buf[512];
    const long n = net::ReadSome(fd, buf, sizeof buf);
    ASSERT_GT(n, 0);
    parser.Feed(buf, static_cast<std::size_t>(n));
    std::string perr;
    const auto status = parser.Next(&reply, &perr);
    if (status == net::FrameParser::Status::kFrame) break;
    ASSERT_EQ(status, net::FrameParser::Status::kNeedMore) << perr;
  }
  net::CloseFd(fd);
  ASSERT_EQ(reply.type, net::FrameType::kError);
  EXPECT_EQ(reply.seq, 5u);
  net::ErrorCode code;
  std::string msg;
  ASSERT_TRUE(net::DecodeErrorPayload(reply.payload, &code, &msg));
  EXPECT_EQ(code, net::ErrorCode::kMalformed);
}

TEST(Server, GracefulStopAnswersInFlightRequests) {
  net::ServerConfig cfg;
  cfg.threads = 1;
  ServerFixture fx(cfg);
  // A request slow enough (training) to still be in flight when Stop()
  // lands; the drain must deliver its response, not orphan it.
  const service::PlacementRequest req = MakeRequest("SpGEMM", "merch");
  std::atomic<bool> got{false};
  net::Client::Status status = net::Client::Status::kTransportError;
  std::thread caller([&] {
    service::PlacementResult result;
    net::ErrorCode code;
    std::string err;
    status = fx.client_.Call(req, 60000, &result, &code, &err);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.server_.Stop();
  caller.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(status, net::Client::Status::kOk);
}

TEST(Server, SnapshotSurvivesRestart) {
  const std::string path =
      ::testing::TempDir() + "/merch_net_test.snapshot";
  std::remove(path.c_str());
  const service::PlacementRequest req = MakeRequest("BFS", "pm");
  service::PlacementResult expected;
  {
    net::ServerConfig cfg;
    cfg.snapshot_save = path;
    ServerFixture fx(cfg);
    net::ErrorCode code;
    std::string err;
    ASSERT_EQ(fx.client_.Call(req, 0, &expected, &code, &err),
              net::Client::Status::kOk)
        << err;
    fx.server_.Stop();  // writes the snapshot
  }
  {
    net::ServerConfig cfg;
    cfg.snapshot_load = path;
    cfg.max_inflight = 0;  // only the warmed cache can answer
    ServerFixture fx(cfg);
    service::PlacementResult result;
    net::ErrorCode code;
    std::string err;
    ASSERT_EQ(fx.client_.Call(req, 0, &result, &code, &err),
              net::Client::Status::kOk)
        << err;
    EXPECT_TRUE(service::BitIdentical(expected, result));
  }
  std::remove(path.c_str());
}

// --- router --------------------------------------------------------------

net::RouterConfig TestRouterConfig(std::size_t shards) {
  net::RouterConfig cfg;
  cfg.shards = shards;
  cfg.worker_command = {MERCHD_BIN, "--threads", "2", "--cache", "64"};
  return cfg;
}

TEST(Router, ShardedResultsAreBitIdenticalToInProcess) {
  net::ShardRouter router(TestRouterConfig(2));
  std::string err;
  ASSERT_TRUE(router.Start(&err)) << err;

  service::PlacementService local({.threads = 2, .cache_capacity = 64});
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port(), &err)) << err;
  for (const char* app : {"SpGEMM", "WarpX", "BFS"}) {
    for (const char* policy : {"pm", "mo"}) {
      const service::PlacementRequest req = MakeRequest(app, policy);
      const service::PlacementResult expected =
          local.Submit(req).future.get();
      service::PlacementResult remote;
      net::ErrorCode code;
      ASSERT_EQ(client.Call(req, 0, &remote, &code, &err),
                net::Client::Status::kOk)
          << app << "/" << policy << ": " << err;
      EXPECT_TRUE(service::BitIdentical(expected, remote))
          << app << "/" << policy;
    }
  }
  local.Shutdown();
  EXPECT_GE(router.stats().forwarded, 6u);

  // Invalid requests come back as result-level errors, same as in-process.
  service::PlacementRequest bad{"NoSuchApp", "pm", 1.0, 1.0, 0, 1};
  service::PlacementResult remote;
  net::ErrorCode code;
  ASSERT_EQ(client.Call(bad, 0, &remote, &code, &err),
            net::Client::Status::kOk);
  EXPECT_FALSE(remote.ok());

  router.Stop();
}

TEST(Router, CrashedWorkerIsRestartedAndServiceContinues) {
  net::ShardRouter router(TestRouterConfig(2));
  std::string err;
  ASSERT_TRUE(router.Start(&err)) << err;
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port(), &err)) << err;

  const service::PlacementRequest req = MakeRequest("SpGEMM", "pm");
  service::PlacementResult before;
  net::ErrorCode code;
  ASSERT_EQ(client.Call(req, 0, &before, &code, &err),
            net::Client::Status::kOk)
      << err;

  // Kill every worker: whichever shard owns the key is definitely dead.
  const std::vector<int> pids = router.worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  for (int pid : pids) ::kill(pid, SIGKILL);

  // The monitor must respawn them; a retry loop absorbs the window where
  // the router answers UNAVAILABLE while workers come back.
  service::PlacementResult after;
  bool ok = false;
  for (int attempt = 0; attempt < 100 && !ok; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    net::Client retry;  // the old connection may have been poisoned
    if (!retry.Connect("127.0.0.1", router.port(), &err)) continue;
    ok = retry.Call(req, 0, &after, &code, &err) == net::Client::Status::kOk;
  }
  ASSERT_TRUE(ok) << "service did not recover after worker crash: " << err;
  EXPECT_TRUE(service::BitIdentical(before, after));
  EXPECT_GE(router.stats().restarts, 2u);

  const std::vector<int> fresh = router.worker_pids();
  EXPECT_NE(fresh, pids);
  router.Stop();
  // No zombie workers: every fresh pid must be reaped after Stop().
  for (int pid : fresh) {
    EXPECT_EQ(::kill(pid, 0), -1) << "worker " << pid << " still alive";
  }
}

/// Pull and parse one process's Prometheus export over the wire.
obs::ParsedMetrics FetchParsedMetrics(std::uint16_t port,
                                      std::string* process_name = nullptr) {
  net::Client client;
  std::string err;
  EXPECT_TRUE(client.Connect("127.0.0.1", port, &err)) << err;
  net::MetricsReplyPayload reply;
  net::ErrorCode code;
  EXPECT_EQ(client.FetchMetrics(&reply, &code, &err),
            net::Client::Status::kOk)
      << err;
  if (process_name != nullptr) *process_name = reply.process_name;
  obs::ParsedMetrics parsed;
  EXPECT_TRUE(obs::ParsePrometheusText(reply.prometheus_text, &parsed, &err))
      << err;
  return parsed;
}

TEST(Router, FederatedMetricsSumShardCountersExactly) {
  net::ShardRouter router(TestRouterConfig(2));
  std::string err;
  ASSERT_TRUE(router.Start(&err)) << err;
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port(), &err)) << err;

  // Distinct requests so the shard workers do real engine work.
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    const service::PlacementRequest req =
        MakeRequest("SpGEMM", "pm", 0.01, seed);
    service::PlacementResult result;
    net::ErrorCode code;
    ASSERT_EQ(client.Call(req, 0, &result, &code, &err),
              net::Client::Status::kOk)
        << err;
  }

  // Ground truth: the workers' own exports plus this process's registry
  // (the router federates itself under its process name). Only counters
  // that nothing but placement execution moves are compared, so the pulls
  // themselves cannot skew the books.
  const char* const kStable[] = {"merch_engine_base_builds_total",
                                 "merch_cache_misses_total",
                                 "merch_service_simulated_total"};
  const std::vector<std::uint16_t> ports = router.worker_ports();
  ASSERT_EQ(ports.size(), 2u);
  std::map<std::string, double> expected;
  for (const std::uint16_t port : ports) {
    for (const auto& [name, value] : FetchParsedMetrics(port).counters) {
      expected[name] += value;
    }
  }
  obs::ParsedMetrics own;
  ASSERT_TRUE(obs::ParsePrometheusText(
      obs::MetricsRegistry::Instance().PrometheusText(), &own, &err))
      << err;
  for (const auto& [name, value] : own.counters) expected[name] += value;

  std::string responder;
  const obs::ParsedMetrics fed =
      FetchParsedMetrics(router.port(), &responder);
  EXPECT_EQ(responder, "router");
  for (const char* name : kStable) {
    const auto it = fed.counters.find(name);
    const double fleet = it == fed.counters.end() ? 0 : it->second;
    EXPECT_EQ(fleet, expected[name]) << name;
  }

  // The raw federated text keeps per-shard series and build identities.
  std::string raw_err;
  std::string raw;
  ASSERT_TRUE(router.FederatedPrometheus(&raw, &raw_err)) << raw_err;
  for (const char* shard : {"router", "shard0", "shard1"}) {
    EXPECT_NE(raw.find("merch_build_info{shard=\"" + std::string(shard) +
                       "\","),
              std::string::npos)
        << shard;
  }

  router.Stop();
}

}  // namespace
}  // namespace merch
