// Unit tests for the migration engine (hm/migration.h).
#include <gtest/gtest.h>

#include "hm/migration.h"

namespace merch::hm {
namespace {

HmSpec Spec(std::uint64_t dram_pages, std::uint64_t pm_pages) {
  HmSpec spec = HmSpec::PaperOptane();
  spec[Tier::kDram].capacity_bytes = dram_pages * 4096;
  spec[Tier::kPm].capacity_bytes = pm_pages * 4096;
  return spec;
}

TEST(MigrationEngine, MigrateHottestAccountsTraffic) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 10, Tier::kPm);
  ASSERT_TRUE(a);
  MigrationEngine engine(pt);
  EXPECT_EQ(engine.MigrateHottest(*a, 4, Tier::kDram), 4u);
  const MigrationStats stats = engine.TakeEpochStats();
  EXPECT_EQ(stats.pages_to_dram, 4u);
  EXPECT_EQ(stats.bytes_to_dram, 4u * 4096);
  EXPECT_EQ(stats.pages_to_pm, 0u);
}

TEST(MigrationEngine, EpochStatsResetButLifetimePersists) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 10, Tier::kPm);
  MigrationEngine engine(pt);
  engine.MigrateHottest(*a, 2, Tier::kDram);
  engine.TakeEpochStats();
  const MigrationStats epoch2 = engine.TakeEpochStats();
  EXPECT_EQ(epoch2.pages_to_dram, 0u);
  EXPECT_EQ(engine.lifetime_stats().pages_to_dram, 2u);
}

TEST(MigrationEngine, FailedCapacityCounted) {
  PageTable pt(Spec(4, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 10, Tier::kPm);
  MigrationEngine engine(pt);
  EXPECT_EQ(engine.MigrateHottest(*a, 10, Tier::kDram), 4u);
  EXPECT_EQ(engine.lifetime_stats().failed_capacity, 6u);
}

TEST(MigrationEngine, MigratePagesIndividual) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 10, Tier::kPm);
  ASSERT_TRUE(a);
  MigrationEngine engine(pt);
  const std::vector<PageId> pages = {3, 7, 9};
  EXPECT_EQ(engine.MigratePages(pages, Tier::kDram), 3u);
  EXPECT_EQ(pt.page_tier(3), Tier::kDram);
  EXPECT_EQ(pt.page_tier(4), Tier::kPm);
}

TEST(MigrationEngine, MigratePagesSkipsAlreadyResident) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 4, Tier::kPm);
  ASSERT_TRUE(a);
  MigrationEngine engine(pt);
  const std::vector<PageId> pages = {0, 1};
  engine.MigratePages(pages, Tier::kDram);
  engine.TakeEpochStats();
  EXPECT_EQ(engine.MigratePages(pages, Tier::kDram), 0u);
  EXPECT_EQ(engine.TakeEpochStats().pages_to_dram, 0u);
}

TEST(MigrationEngine, DemoteColdestAccountsPmTraffic) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 8, Tier::kPm);
  MigrationEngine engine(pt);
  engine.MigrateHottest(*a, 6, Tier::kDram);
  engine.TakeEpochStats();
  EXPECT_EQ(engine.DemoteColdest(*a, 2), 2u);
  const MigrationStats stats = engine.TakeEpochStats();
  EXPECT_EQ(stats.pages_to_pm, 2u);
  EXPECT_EQ(pt.object_pages_on(*a, Tier::kDram), 4u);
}

TEST(MigrationEngine, MakeRoomNoopWhenSpaceExists) {
  PageTable pt(Spec(8, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 8, Tier::kPm);
  MigrationEngine engine(pt);
  engine.MigrateHottest(*a, 2, Tier::kDram);
  EXPECT_EQ(engine.MakeRoomInDram(3), 0u);  // 6 free pages already
}

TEST(MigrationEngine, MakeRoomEvictsColdestByHeat) {
  PageTable pt(Spec(4, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 8, Tier::kPm);
  MigrationEngine engine(pt);
  engine.MigrateHottest(*a, 4, Tier::kDram);  // pages 0..3 on DRAM, full

  // Heat function says page 2 is coldest, page 0 hottest.
  auto heat = [](PageId p) { return p == 2 ? 0.0 : 10.0 + double(p); };
  EXPECT_EQ(engine.MakeRoomInDram(1, heat), 1u);
  EXPECT_EQ(pt.page_tier(2), Tier::kPm);
  EXPECT_EQ(pt.page_tier(0), Tier::kDram);
}

TEST(MigrationEngine, MakeRoomFallsBackToEpochCounters) {
  PageTable pt(Spec(2, 64), 4096);
  const auto a = pt.RegisterObject(4096 * 4, Tier::kPm);
  MigrationEngine engine(pt);
  engine.MigrateHottest(*a, 2, Tier::kDram);
  pt.RecordAccesses(0, 100);  // page 0 hot, page 1 cold
  EXPECT_EQ(engine.MakeRoomInDram(1), 1u);
  EXPECT_EQ(pt.page_tier(1), Tier::kPm);
  EXPECT_EQ(pt.page_tier(0), Tier::kDram);
}

TEST(MigrationStats, Accumulate) {
  MigrationStats a{.pages_to_dram = 1, .bytes_to_dram = 4096};
  MigrationStats b{.pages_to_dram = 2, .bytes_to_dram = 8192,
                   .failed_capacity = 3};
  a += b;
  EXPECT_EQ(a.pages_to_dram, 3u);
  EXPECT_EQ(a.bytes_to_dram, 12288u);
  EXPECT_EQ(a.failed_capacity, 3u);
}

}  // namespace
}  // namespace merch::hm
