// End-to-end tests of the Merchandiser runtime policy on a small
// controlled workload: base-instance profiling, Eq. 1 estimation,
// Algorithm 1 quotas, placement, and alpha refinement.
#include <gtest/gtest.h>

#include "baselines/pm_only.h"
#include "common/stats.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace merch::core {
namespace {

/// Two imbalanced tasks, three instances, random pattern (placement
/// sensitive), per-task objects sized so DRAM can hold roughly half.
sim::Workload ImbalancedWorkload() {
  sim::Workload w;
  w.name = "mini";
  w.objects.push_back(
      sim::ObjectDecl{.name = "heavy", .bytes = 8 * GiB, .owner = 0});
  w.objects.push_back(
      sim::ObjectDecl{.name = "light", .bytes = 4 * GiB, .owner = 1});
  for (int r = 0; r < 3; ++r) {
    const double scale = 1.0 + 0.1 * r;  // growing inputs
    sim::Region region;
    region.name = "inst" + std::to_string(r);
    for (int t = 0; t < 2; ++t) {
      sim::Kernel k;
      k.name = "work";
      k.instructions = 20000000;
      trace::ObjectAccess a;
      a.object = static_cast<ObjectId>(t);
      a.pattern = trace::AccessPattern::kRandom;
      a.program_accesses = static_cast<std::uint64_t>(
          (t == 0 ? 8e7 : 3e7) * scale);
      k.accesses.push_back(a);
      region.tasks.push_back(
          sim::TaskProgram{.task = static_cast<TaskId>(t), .kernels = {k}});
    }
    region.active_bytes = {
        static_cast<std::uint64_t>(8.0 * GiB * scale),
        static_cast<std::uint64_t>(4.0 * GiB * scale)};
    // Cap at allocation.
    region.active_bytes[0] = std::min<std::uint64_t>(region.active_bytes[0],
                                                     8 * GiB);
    region.active_bytes[1] = std::min<std::uint64_t>(region.active_bytes[1],
                                                     4 * GiB);
    w.regions.push_back(region);
  }
  return w;
}

sim::MachineSpec SmallMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = 6 * GiB;
  m.hm[hm::Tier::kPm].capacity_bytes = 48 * GiB;
  return m;
}

const MerchandiserSystem& SharedSystem() {
  static const MerchandiserSystem* kSystem = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 40;
    cfg.placements_per_region = 6;
    return new MerchandiserSystem(MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.01;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 16 * MiB;
  return cfg;
}

TEST(Merchandiser, BeatsPmOnly) {
  const sim::Workload w = ImbalancedWorkload();
  const sim::MachineSpec machine = SmallMachine();
  baselines::PmOnlyPolicy pm_policy;
  sim::Engine pm_engine(w, machine, TestConfig(), &pm_policy);
  const double pm_time = pm_engine.Run().total_seconds;

  auto policy = SharedSystem().MakePolicy(w, machine);
  sim::Engine engine(w, machine, TestConfig(), policy.get());
  const double merch_time = engine.Run().total_seconds;
  EXPECT_LT(merch_time, pm_time * 0.95);
}

TEST(Merchandiser, RecordsDecisionsForManagedInstances) {
  const sim::Workload w = ImbalancedWorkload();
  auto policy = SharedSystem().MakePolicy(w, SmallMachine());
  sim::Engine engine(w, SmallMachine(), TestConfig(), policy.get());
  engine.Run();
  // Instances 1 and 2 are managed (0 is the base input).
  ASSERT_EQ(policy->decisions().size(), 2u);
  for (const InstanceDecision& d : policy->decisions()) {
    ASSERT_EQ(d.tasks.size(), 2u);
    for (const double r : d.dram_fraction) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
    for (const double acc : d.estimated_accesses) {
      EXPECT_GT(acc, 0.0) << "base profiling must produce estimates";
    }
    for (std::size_t i = 0; i < d.tasks.size(); ++i) {
      EXPECT_GT(d.t_pm_only[i], 0.0);
      EXPECT_GT(d.t_dram_only[i], 0.0);
      EXPECT_LT(d.t_dram_only[i], d.t_pm_only[i]);
    }
  }
}

TEST(Merchandiser, GivesHeavyTaskLargerShare) {
  const sim::Workload w = ImbalancedWorkload();
  auto policy = SharedSystem().MakePolicy(w, SmallMachine());
  sim::Engine engine(w, SmallMachine(), TestConfig(), policy.get());
  engine.Run();
  ASSERT_FALSE(policy->decisions().empty());
  const InstanceDecision& d = policy->decisions().back();
  // Task 0 does ~2.6x the work of task 1; load balancing must grant it at
  // least as large a DRAM-access share.
  EXPECT_GE(d.dram_fraction[0], d.dram_fraction[1] - 1e-9);
}

TEST(Merchandiser, ReducesImbalanceOnManagedInstances) {
  const sim::Workload w = ImbalancedWorkload();
  const sim::MachineSpec machine = SmallMachine();
  baselines::PmOnlyPolicy pm_policy;
  sim::Engine pm_engine(w, machine, TestConfig(), &pm_policy);
  const auto pm = pm_engine.Run();

  auto policy = SharedSystem().MakePolicy(w, machine);
  sim::Engine engine(w, machine, TestConfig(), policy.get());
  const auto merch = engine.Run();

  // Compare the CoV of the last (managed, fully profiled) instance.
  auto cov = [](const sim::RegionStats& r) {
    std::vector<double> t;
    for (const auto& ts : r.tasks) t.push_back(ts.exec_seconds);
    return merch::CoefficientOfVariation(t);
  };
  EXPECT_LT(cov(merch.regions.back()), cov(pm.regions.back()));
}

TEST(Merchandiser, AverageAlphaIsPositive) {
  const sim::Workload w = ImbalancedWorkload();
  auto policy = SharedSystem().MakePolicy(w, SmallMachine());
  sim::Engine engine(w, SmallMachine(), TestConfig(), policy.get());
  engine.Run();
  EXPECT_GT(policy->AverageAlpha(), 0.0);
  EXPECT_LT(policy->AverageAlpha(), 100.0);
}

TEST(Merchandiser, QuotaOnlyModeStillRuns) {
  const sim::Workload w = ImbalancedWorkload();
  MerchandiserConfig cfg;
  cfg.proactive_placement = false;  // paper-faithful quota-capped mode
  auto policy = SharedSystem().MakePolicy(w, SmallMachine(), cfg);
  sim::Engine engine(w, SmallMachine(), TestConfig(), policy.get());
  const auto r = engine.Run();
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_EQ(policy->decisions().size(), 2u);
}

TEST(Merchandiser, PredictionsTrackActualsLoosely) {
  // Table 4's premise: Eq. 2 predictions land in the right ballpark.
  const sim::Workload w = ImbalancedWorkload();
  auto policy = SharedSystem().MakePolicy(w, SmallMachine());
  sim::Engine engine(w, SmallMachine(), TestConfig(), policy.get());
  const auto result = engine.Run();
  for (const InstanceDecision& d : policy->decisions()) {
    const sim::RegionStats& rs = result.regions[d.region];
    for (std::size_t i = 0; i < d.tasks.size(); ++i) {
      double actual = 0;
      for (const auto& ts : rs.tasks) {
        if (ts.task == d.tasks[i]) actual = ts.exec_seconds;
      }
      ASSERT_GT(actual, 0.0);
      EXPECT_LT(d.predicted_seconds[i], actual * 3.0);
      EXPECT_GT(d.predicted_seconds[i], actual / 3.0);
    }
  }
}

}  // namespace
}  // namespace merch::core
