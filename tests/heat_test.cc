// Property tests for page-heat profiles (trace/heat.h): the placement math
// relies on CumulativeFraction being a proper monotone CDF and on
// PagesForFraction being its inverse, across page counts from tiny to
// TiB-scale.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "trace/heat.h"

namespace merch::trace {
namespace {

TEST(HeatUniform, PageFractionIsConstant) {
  const HeatProfile h = HeatProfile::Uniform();
  EXPECT_DOUBLE_EQ(h.PageFraction(0, 10), 0.1);
  EXPECT_DOUBLE_EQ(h.PageFraction(9, 10), 0.1);
}

TEST(HeatUniform, CumulativeLinear) {
  const HeatProfile h = HeatProfile::Uniform();
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(10, 10), 1.0);
}

TEST(HeatZipf, HotPagesFirst) {
  const HeatProfile h = HeatProfile::Zipf(1.0);
  EXPECT_GT(h.PageFraction(0, 100), h.PageFraction(1, 100));
  EXPECT_GT(h.PageFraction(10, 100), h.PageFraction(90, 100));
}

TEST(HeatZipf, SkewConcentrates) {
  // Higher exponent => more mass on the hottest 10% of pages.
  const double mild = HeatProfile::Zipf(0.5).CumulativeFraction(100, 1000);
  const double strong = HeatProfile::Zipf(1.5).CumulativeFraction(100, 1000);
  EXPECT_GT(strong, mild);
  EXPECT_GT(strong, 0.9);
}

// Parameterized properties over (page count, zipf exponent).
class HeatProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(HeatProperty, CumulativeIsMonotoneCdf) {
  const auto [n, s] = GetParam();
  const HeatProfile h =
      s == 0.0 ? HeatProfile::Uniform() : HeatProfile::Zipf(s);
  double prev = 0;
  for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(1, n / 23)) {
    const double c = h.CumulativeFraction(k, n);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(n, n), 1.0);
}

TEST_P(HeatProperty, PagesForFractionInvertsCumulative) {
  const auto [n, s] = GetParam();
  const HeatProfile h =
      s == 0.0 ? HeatProfile::Uniform() : HeatProfile::Zipf(s);
  for (const double target : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const std::uint64_t k = h.PagesForFraction(target, n);
    EXPECT_GE(h.CumulativeFraction(k, n), target - 1e-9);
    if (k > 0) {
      EXPECT_LT(h.CumulativeFraction(k - 1, n), target);
    }
  }
}

TEST_P(HeatProperty, PageFractionsSumToOne) {
  const auto [n, s] = GetParam();
  if (n > 4096) GTEST_SKIP() << "exact summation only for small n";
  const HeatProfile h =
      s == 0.0 ? HeatProfile::Uniform() : HeatProfile::Zipf(s);
  double sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) sum += h.PageFraction(i, n);
  EXPECT_NEAR(sum, 1.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeatProperty,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1, 2, 7, 64, 1000, 4096, 786432),
        ::testing::Values(0.0, 0.4, 0.8, 0.99, 1.0, 1.3)));

TEST(HeatZipf, HugeCountsStayFinite) {
  // TiB-scale object at 4 KiB pages: 2^28 pages.
  const HeatProfile h = HeatProfile::Zipf(0.9);
  const std::uint64_t n = 1ull << 28;
  const double half = h.CumulativeFraction(n / 2, n);
  EXPECT_GT(half, 0.5);
  EXPECT_LT(half, 1.0);
  EXPECT_TRUE(std::isfinite(h.PageFraction(n - 1, n)));
}

TEST(HeatZipf, BoundaryArguments) {
  const HeatProfile h = HeatProfile::Zipf(0.8);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(200, 100), 1.0);  // k > n clamps
  EXPECT_EQ(h.PagesForFraction(0.0, 100), 0u);
  EXPECT_EQ(h.PagesForFraction(1.0, 100), 100u);
}

}  // namespace
}  // namespace merch::trace
