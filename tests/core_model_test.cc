// Tests for the performance model (Eq. 2), correlation function training,
// homogeneous predictor (Section 5.2), and the user-facing API.
#include <gtest/gtest.h>

#include "core/api.h"
#include "core/correlation.h"
#include "core/homogeneous.h"
#include "core/perf_model.h"
#include "sim/engine.h"
#include "workloads/training.h"

namespace merch::core {
namespace {

workloads::TrainingConfig SmallTraining() {
  workloads::TrainingConfig cfg;
  cfg.num_regions = 40;
  cfg.placements_per_region = 6;
  return cfg;
}

const std::vector<workloads::TrainingSample>& SharedSamples() {
  static const auto* kSamples = new std::vector<workloads::TrainingSample>(
      workloads::GenerateTrainingSamples(SmallTraining()));
  return *kSamples;
}

TEST(Correlation, TrainsWithUsableAccuracy) {
  CorrelationFunction f;
  f.Train(SharedSamples());
  EXPECT_TRUE(f.trained());
  EXPECT_GT(f.test_r2(), 0.4);
}

TEST(Correlation, PaperEventsAreTheDefault) {
  CorrelationFunction f;
  EXPECT_EQ(f.events(), CorrelationFunction::PaperEvents());
  EXPECT_EQ(f.events().size(), 8u);
  EXPECT_EQ(f.events()[0], static_cast<std::size_t>(sim::kLlcMpki));
}

TEST(Correlation, EvaluationBounded) {
  CorrelationFunction f;
  f.Train(SharedSamples());
  sim::EventVector pmcs{};
  for (auto& e : pmcs) e = 0.5;
  for (const double r : {0.0, 0.3, 0.7, 1.0}) {
    const double v = f.Evaluate(pmcs, r);
    EXPECT_GE(v, 0.05);
    EXPECT_LE(v, 5.0);
  }
}

TEST(Correlation, DifferentModelKinds) {
  CorrelationFunction::Config cfg;
  cfg.model_kind = "DTR";
  CorrelationFunction f(cfg);
  f.Train(SharedSamples());
  EXPECT_TRUE(f.trained());
  EXPECT_EQ(f.model_kind(), "DTR");
}

TEST(PerfModel, BoundaryBehaviour) {
  CorrelationFunction f;
  f.Train(SharedSamples());
  PerformanceModel model(&f);
  sim::EventVector pmcs{};
  // r = 1: exactly the DRAM bound.
  EXPECT_DOUBLE_EQ(model.PredictHybrid(10.0, 4.0, pmcs, 1.0), 4.0);
  // Predictions never leave [t_dram, t_pm] (Section 5 rationale 1).
  for (const double r : {0.0, 0.25, 0.5, 0.75}) {
    const double t = model.PredictHybrid(10.0, 4.0, pmcs, r);
    EXPECT_GE(t, 4.0);
    EXPECT_LE(t, 10.0);
  }
}

TEST(PerfModel, MonotoneInR) {
  CorrelationFunction f;
  f.Train(SharedSamples());
  PerformanceModel model(&f);
  sim::EventVector pmcs{};
  for (auto& e : pmcs) e = 0.4;
  double prev = 1e18;
  for (const double r : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double t = model.PredictHybrid(10.0, 4.0, pmcs, r);
    EXPECT_LE(t, prev + 0.8) << "r=" << r;  // loose monotonicity (learned f)
    prev = t;
  }
}

TEST(PerfModel, ProfilingRegressionBaseline) {
  EXPECT_DOUBLE_EQ(ProfilingRegressionPredict(10.0, 100.0, 200.0), 20.0);
  EXPECT_DOUBLE_EQ(ProfilingRegressionPredict(10.0, 0.0, 200.0), 10.0);
}

TEST(TrainingData, SamplesHaveSaneTargets) {
  const auto& samples = SharedSamples();
  ASSERT_GT(samples.size(), 100u);
  for (const auto& s : samples) {
    EXPECT_GE(s.r_dram, 0.0);
    EXPECT_LE(s.r_dram, 1.0);
    EXPECT_GT(s.f_target, -1.0);
    EXPECT_LT(s.f_target, 10.0);
  }
}

TEST(TrainingData, FeatureLayoutAppendsR) {
  sim::EventVector pmcs{};
  pmcs[0] = 7.0;
  const auto row = workloads::MakeFeatureRow(pmcs, 0.42);
  ASSERT_EQ(row.size(), sim::kNumPmcEvents + 1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row.back(), 0.42);
  const std::vector<std::size_t> subset = {2, 5};
  const auto short_row = workloads::MakeFeatureRow(pmcs, 0.42, subset);
  ASSERT_EQ(short_row.size(), 3u);
}

// -------------------------------------------------- Homogeneous predictor

sim::Workload TwoRegionWorkload() {
  sim::Workload w;
  w.name = "hp";
  w.objects.push_back(
      sim::ObjectDecl{.name = "x", .bytes = 2 * GiB, .owner = 0});
  for (int r = 0; r < 2; ++r) {
    sim::Kernel k;
    k.name = "k";
    k.instructions = 10000000;
    trace::ObjectAccess a;
    a.object = 0;
    a.pattern = trace::AccessPattern::kRandom;
    a.program_accesses = r == 0 ? 40000000 : 80000000;  // new input = 2x
    k.accesses.push_back(a);
    sim::Region region;
    region.name = "r" + std::to_string(r);
    region.tasks.push_back(sim::TaskProgram{.task = 0, .kernels = {k}});
    region.active_bytes = {r == 0 ? 1 * GiB : 2 * GiB};
    w.regions.push_back(region);
  }
  return w;
}

TEST(HomogeneousPredictor, ExactOnBaseInput) {
  const sim::Workload w = TwoRegionWorkload();
  const sim::MachineSpec machine = sim::MachineSpec::Paper();
  const HomogeneousPredictor hp = HomogeneousPredictor::Prepare(w, machine);
  ASSERT_TRUE(hp.prepared());
  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  const auto pm = sim::SimulateHomogeneous(w, machine, hm::Tier::kPm, cfg);
  const double predicted =
      hp.Predict(0, hm::Tier::kPm, w.regions[0].active_bytes);
  EXPECT_NEAR(predicted, pm.regions[0].tasks[0].exec_seconds,
              0.1 * pm.regions[0].tasks[0].exec_seconds + 0.05);
}

TEST(HomogeneousPredictor, ScalesWithInputSize) {
  const sim::Workload w = TwoRegionWorkload();
  const HomogeneousPredictor hp =
      HomogeneousPredictor::Prepare(w, sim::MachineSpec::Paper());
  const double base = hp.Predict(0, hm::Tier::kPm, {1 * GiB});
  const double doubled = hp.Predict(0, hm::Tier::kPm, {2 * GiB});
  EXPECT_NEAR(doubled, 2.0 * base, 0.05 * base);
}

TEST(HomogeneousPredictor, DramPredictionFaster) {
  const sim::Workload w = TwoRegionWorkload();
  const HomogeneousPredictor hp =
      HomogeneousPredictor::Prepare(w, sim::MachineSpec::Paper());
  EXPECT_LT(hp.Predict(0, hm::Tier::kDram, {1 * GiB}),
            hp.Predict(0, hm::Tier::kPm, {1 * GiB}));
}

TEST(HomogeneousPredictor, UnknownTaskGivesZero) {
  const sim::Workload w = TwoRegionWorkload();
  const HomogeneousPredictor hp =
      HomogeneousPredictor::Prepare(w, sim::MachineSpec::Paper());
  EXPECT_EQ(hp.Predict(99, hm::Tier::kPm, {1 * GiB}), 0.0);
}

TEST(SimilarityScale, SameDirectionIsSizeRatio) {
  EXPECT_NEAR(SimilarityScale({100, 200}, {200, 400}), 2.0, 1e-9);
  EXPECT_NEAR(SimilarityScale({100, 200}, {100, 200}), 1.0, 1e-9);
}

TEST(SimilarityScale, OrthogonalShrinksToZero) {
  EXPECT_NEAR(SimilarityScale({100, 0}, {0, 100}), 0.0, 1e-9);
}

// --------------------------------------------------------------- User API

TEST(Api, RegisterAndLookup) {
  HmConfigRegistry reg;
  int a = 0, b = 0;
  const ObjectId ia = reg.Register(&a, 4096, "a");
  const ObjectId ib = reg.Register(&b, 8192);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.Find(&a), ia);
  EXPECT_EQ(reg.Find(&b), ib);
  EXPECT_EQ(reg.Find(nullptr), kInvalidObject);
  EXPECT_EQ(reg.object(ia).label, "a");
}

TEST(Api, ReRegisterUpdatesSize) {
  HmConfigRegistry reg;
  int a = 0;
  const ObjectId ia = reg.Register(&a, 4096);
  const ObjectId again = reg.Register(&a, 16384);
  EXPECT_EQ(ia, again);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.object(ia).bytes, 16384u);
  EXPECT_EQ(reg.SizeVector(), std::vector<std::uint64_t>{16384});
}

TEST(Api, CStyleEntryPoint) {
  auto& global = HmConfigRegistry::Global();
  global.Clear();
  int x = 0, y = 0;
  void* objects[] = {&x, &y};
  const long long sizes[] = {100, 200};
  void* handle = LB_HM_config(objects, sizes, 2);
  EXPECT_EQ(handle, &global);
  EXPECT_EQ(global.size(), 2u);
  EXPECT_EQ(global.object(0).bytes, 100u);
  global.Clear();
}

}  // namespace
}  // namespace merch::core
