// Tests for the Spindle-like static pattern classifier and IR lowering.
#include <gtest/gtest.h>

#include "core/lowering.h"
#include "core/pattern_classifier.h"

namespace merch::core {
namespace {

using trace::AccessPattern;

ArrayRef Affine(std::size_t obj, std::int64_t stride, bool write = false) {
  return ArrayRef{.object = obj,
                  .subscript = {.kind = Subscript::Kind::kAffine,
                                .stride = stride},
                  .is_write = write};
}

ArrayRef Neighborhood(std::size_t obj, std::vector<std::int64_t> offsets) {
  ArrayRef r;
  r.object = obj;
  r.subscript.kind = Subscript::Kind::kNeighborhood;
  r.subscript.offsets = std::move(offsets);
  return r;
}

ArrayRef Indirect(std::size_t obj, std::size_t index_obj) {
  ArrayRef r;
  r.object = obj;
  r.subscript.kind = Subscript::Kind::kIndirect;
  r.subscript.index_object = index_obj;
  return r;
}

LoopNest Loop(std::vector<ArrayRef> refs, std::uint64_t trips = 1000) {
  LoopNest l;
  l.name = "loop";
  l.trip_count = trips;
  l.refs = std::move(refs);
  return l;
}

TEST(Classifier, StreamFromUnitStride) {
  // A[i] = B[i] + C[i]
  const LoopNest l = Loop({Affine(0, 1, true), Affine(1, 1), Affine(2, 1)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kStream);
  EXPECT_EQ(ClassifyObjectInLoop(l, 1), AccessPattern::kStream);
}

TEST(Classifier, NegativeUnitStrideIsStream) {
  const LoopNest l = Loop({Affine(0, -1)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kStream);
}

TEST(Classifier, StridedFromConstantStride) {
  // A[i*stride] = B[i*stride]
  const LoopNest l = Loop({Affine(0, 8, true), Affine(1, 8)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kStrided);
}

TEST(Classifier, StencilFromNeighborhood) {
  // A[i] = A[i-1] + A[i+1]
  const LoopNest l = Loop({Neighborhood(0, {-1, 0, 1})});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kStencil);
}

TEST(Classifier, SingleOffsetNeighborhoodIsStream) {
  const LoopNest l = Loop({Neighborhood(0, {3})});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kStream);
}

TEST(Classifier, RandomFromIndirect) {
  // A[i] = B[C[i]] : B random, C (the index array) streams.
  const LoopNest l = Loop({Affine(0, 1, true), Indirect(1, 2)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 1), AccessPattern::kRandom);
  EXPECT_EQ(ClassifyObjectInLoop(l, 2), AccessPattern::kStream);
}

TEST(Classifier, OpaqueIsUnknown) {
  ArrayRef r;
  r.object = 0;
  r.subscript.kind = Subscript::Kind::kOpaque;
  const LoopNest l = Loop({r});
  EXPECT_EQ(ClassifyObjectInLoop(l, 0), AccessPattern::kUnknown);
}

TEST(Classifier, UnreferencedIsUnknown) {
  const LoopNest l = Loop({Affine(0, 1)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 5), AccessPattern::kUnknown);
}

TEST(Classifier, MixedReferencesTakeLeastCacheFriendly) {
  // Object read both streamed and gathered -> Random wins.
  const LoopNest l = Loop({Affine(1, 1), Indirect(1, 0)});
  EXPECT_EQ(ClassifyObjectInLoop(l, 1), AccessPattern::kRandom);
}

TEST(Classifier, TaskLevelMergesAcrossLoops) {
  TaskIr task;
  task.task = 0;
  task.loops.push_back(Loop({Affine(0, 1)}));           // stream
  task.loops.push_back(Loop({Neighborhood(0, {-1, 1})}));  // stencil
  const auto patterns = ClassifyTask(task, 1);
  EXPECT_EQ(patterns[0], AccessPattern::kStencil);
}

TEST(Classifier, DistinctPatternsForTable1) {
  TaskIr t0;
  t0.task = 0;
  t0.loops.push_back(Loop({Affine(0, 1), Indirect(1, 0)}));
  TaskIr t1;
  t1.task = 1;
  t1.loops.push_back(Loop({Affine(2, 4)}));
  const auto distinct = DistinctPatterns({t0, t1}, 3);
  // Stream (obj 0), Strided (obj 2), Random (obj 1).
  EXPECT_EQ(distinct.size(), 3u);
}

// ------------------------------------------------------------------ Lowering

TEST(Lowering, AccessCountsFromTripCount) {
  LoopNest l = Loop({Affine(0, 1), Affine(0, 1, true)}, 500);
  const sim::Kernel k = LowerLoop(l, {AccessPattern::kStream});
  ASSERT_EQ(k.accesses.size(), 1u);
  EXPECT_EQ(k.accesses[0].program_accesses, 1000u);  // 2 refs x 500 trips
  EXPECT_NEAR(k.accesses[0].read_fraction, 0.5, 1e-12);
}

TEST(Lowering, AccessesPerIterationScales) {
  LoopNest l = Loop({}, 1000);
  ArrayRef r = Affine(0, 1);
  r.accesses_per_iteration = 0.25;
  l.refs.push_back(r);
  const sim::Kernel k = LowerLoop(l, {AccessPattern::kStream});
  ASSERT_EQ(k.accesses.size(), 1u);
  EXPECT_EQ(k.accesses[0].program_accesses, 250u);
}

TEST(Lowering, IndirectChargesIndexObject) {
  LoopNest l = Loop({Indirect(0, 1)}, 100);
  const sim::Kernel k =
      LowerLoop(l, {AccessPattern::kRandom, AccessPattern::kStream});
  ASSERT_EQ(k.accesses.size(), 2u);
  // Object 0 gathered 100 times; index object 1 read 100 times.
  EXPECT_EQ(k.accesses[0].program_accesses, 100u);
  EXPECT_EQ(k.accesses[0].pattern, AccessPattern::kRandom);
  EXPECT_EQ(k.accesses[1].program_accesses, 100u);
  EXPECT_EQ(k.accesses[1].pattern, AccessPattern::kStream);
}

TEST(Lowering, InstructionsFromPerIteration) {
  LoopNest l = Loop({Affine(0, 1)}, 1000);
  l.instructions_per_iteration = 7.5;
  const sim::Kernel k = LowerLoop(l, {AccessPattern::kStream});
  EXPECT_EQ(k.instructions, 7500u);
}

TEST(Lowering, TaskProducesKernelPerLoop) {
  TaskIr task;
  task.task = 3;
  task.loops.push_back(Loop({Affine(0, 1)}));
  task.loops.push_back(Loop({Affine(0, 2)}));
  const auto kernels = LowerTask(task, 1);
  ASSERT_EQ(kernels.size(), 2u);
  // Task-level classification merges to Strided for both kernels.
  EXPECT_EQ(kernels[0].accesses[0].pattern, AccessPattern::kStrided);
  EXPECT_EQ(kernels[1].accesses[0].pattern, AccessPattern::kStrided);
}

TEST(Lowering, StrideRecordedFromAffine) {
  LoopNest l = Loop({Affine(0, 16)});
  const sim::Kernel k = LowerLoop(l, {AccessPattern::kStrided});
  EXPECT_EQ(k.accesses[0].stride_elements, 16u);
}

}  // namespace
}  // namespace merch::core
