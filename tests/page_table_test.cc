// Unit tests for the simulated page table (hm/page_table.h).
#include <gtest/gtest.h>

#include <vector>

#include "hm/page_table.h"

namespace merch::hm {
namespace {

HmSpec SmallSpec() {
  HmSpec spec = HmSpec::PaperOptane();
  spec[Tier::kDram].capacity_bytes = 8 * kPageBytes * 1024;  // 8 Ki pages...
  spec[Tier::kDram].capacity_bytes = 8 * 4096;               // 8 pages of 4K
  spec[Tier::kPm].capacity_bytes = 64 * 4096;                // 64 pages
  return spec;
}

TEST(PageTable, RegisterAllocatesContiguousPages) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 3, Tier::kPm);
  const auto b = pt.RegisterObject(4096 * 2, Tier::kPm);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(pt.extent(*a).first_page, 0u);
  EXPECT_EQ(pt.extent(*a).num_pages, 3u);
  EXPECT_EQ(pt.extent(*b).first_page, 3u);
  EXPECT_EQ(pt.num_pages(), 5u);
}

TEST(PageTable, PartialPageRoundsUp) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4097, Tier::kPm);
  ASSERT_TRUE(a);
  EXPECT_EQ(pt.extent(*a).num_pages, 2u);
}

TEST(PageTable, FallsBackToOtherTierWhenFull) {
  PageTable pt(SmallSpec(), 4096);
  // DRAM holds 8 pages; ask for 10 on DRAM -> lands on PM.
  const auto a = pt.RegisterObject(4096 * 10, Tier::kDram);
  ASSERT_TRUE(a);
  EXPECT_EQ(pt.page_tier(pt.extent(*a).first_page), Tier::kPm);
}

TEST(PageTable, RejectsWhenBothTiersFull) {
  PageTable pt(SmallSpec(), 4096);
  ASSERT_TRUE(pt.RegisterObject(4096 * 64, Tier::kPm));
  EXPECT_FALSE(pt.RegisterObject(4096 * 16, Tier::kPm).has_value());
}

TEST(PageTable, MovePageUpdatesUsage) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 4, Tier::kPm);
  ASSERT_TRUE(a);
  EXPECT_EQ(pt.tier_used_bytes(Tier::kDram), 0u);
  EXPECT_TRUE(pt.MovePage(0, Tier::kDram));
  EXPECT_EQ(pt.tier_used_bytes(Tier::kDram), 4096u);
  EXPECT_EQ(pt.page_tier(0), Tier::kDram);
  EXPECT_EQ(pt.object_pages_on(*a, Tier::kDram), 1u);
  EXPECT_EQ(pt.object_pages_on(*a, Tier::kPm), 3u);
}

TEST(PageTable, MovePageToSameTierIsNoop) {
  PageTable pt(SmallSpec(), 4096);
  ASSERT_TRUE(pt.RegisterObject(4096, Tier::kPm));
  EXPECT_TRUE(pt.MovePage(0, Tier::kPm));
  EXPECT_EQ(pt.tier_used_bytes(Tier::kDram), 0u);
}

TEST(PageTable, MovePageFailsAtCapacity) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 16, Tier::kPm);
  ASSERT_TRUE(a);
  // Fill DRAM (8 pages).
  EXPECT_EQ(pt.MoveHottest(*a, 8, Tier::kDram), 8u);
  EXPECT_FALSE(pt.MovePage(15, Tier::kDram));
}

TEST(PageTable, MoveHottestTakesPrefix) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 6, Tier::kPm);
  ASSERT_TRUE(a);
  EXPECT_EQ(pt.MoveHottest(*a, 3, Tier::kDram), 3u);
  EXPECT_EQ(pt.page_tier(0), Tier::kDram);
  EXPECT_EQ(pt.page_tier(2), Tier::kDram);
  EXPECT_EQ(pt.page_tier(3), Tier::kPm);
}

TEST(PageTable, MoveHottestSkipsAlreadyResident) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 6, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MoveHottest(*a, 2, Tier::kDram);
  EXPECT_EQ(pt.MoveHottest(*a, 2, Tier::kDram), 2u);
  EXPECT_EQ(pt.object_pages_on(*a, Tier::kDram), 4u);
  EXPECT_EQ(pt.page_tier(3), Tier::kDram);
}

TEST(PageTable, EvictColdestTakesSuffix) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 6, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MoveHottest(*a, 6, Tier::kDram);
  EXPECT_EQ(pt.EvictColdest(*a, 2, Tier::kDram), 2u);
  EXPECT_EQ(pt.page_tier(5), Tier::kPm);
  EXPECT_EQ(pt.page_tier(4), Tier::kPm);
  EXPECT_EQ(pt.page_tier(3), Tier::kDram);
}

TEST(PageTable, AccessCountersAccumulateAndReset) {
  PageTable pt(SmallSpec(), 4096);
  ASSERT_TRUE(pt.RegisterObject(4096 * 2, Tier::kPm));
  pt.RecordAccesses(0, 5);
  pt.RecordAccesses(0, 7);
  pt.RecordAccesses(1, 1);
  EXPECT_EQ(pt.page(0).epoch_accesses, 12u);
  EXPECT_EQ(pt.TotalEpochAccesses(), 13u);
  pt.ResetEpochCounters();
  EXPECT_EQ(pt.TotalEpochAccesses(), 0u);
  EXPECT_EQ(pt.page(0).total_accesses, 12u);  // lifetime survives reset
}

TEST(PageTable, ObjectOfPage) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 2, Tier::kPm);
  const auto b = pt.RegisterObject(4096 * 3, Tier::kPm);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(pt.ObjectOfPage(0), *a);
  EXPECT_EQ(pt.ObjectOfPage(2), *b);
  EXPECT_EQ(pt.ObjectOfPage(4), *b);
  EXPECT_FALSE(pt.ObjectOfPage(99).has_value());
}

TEST(PageTable, ReleaseFreesCapacity) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 60, Tier::kPm);
  ASSERT_TRUE(a);
  EXPECT_FALSE(pt.RegisterObject(4096 * 10, Tier::kPm).has_value());
  pt.ReleaseObject(*a);
  EXPECT_FALSE(pt.is_live(*a));
  EXPECT_TRUE(pt.RegisterObject(4096 * 10, Tier::kPm).has_value());
}

TEST(PageTable, ObjectOfPageIgnoresReleasedObjects) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 2, Tier::kPm);
  const auto b = pt.RegisterObject(4096 * 3, Tier::kPm);
  ASSERT_TRUE(a && b);
  pt.ReleaseObject(*a);
  EXPECT_FALSE(pt.ObjectOfPage(0).has_value());  // released
  EXPECT_EQ(pt.ObjectOfPage(2), *b);             // later extents unaffected
}

TEST(PageTable, RankResidencyMirrorsPageTiers) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 6, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MoveHottest(*a, 2, Tier::kDram);
  pt.MovePage(4, Tier::kDram);
  for (std::uint64_t r = 0; r < 6; ++r) {
    EXPECT_EQ(pt.page_rank_on_dram(*a, r),
              pt.page_tier(pt.extent(*a).first_page + r) == Tier::kDram);
  }
}

TEST(PageTable, DramPagesInRankRange) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 8, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MovePage(1, Tier::kDram);
  pt.MovePage(2, Tier::kDram);
  pt.MovePage(6, Tier::kDram);
  EXPECT_EQ(pt.dram_pages_in_rank_range(*a, 0, 8), 3u);
  EXPECT_EQ(pt.dram_pages_in_rank_range(*a, 1, 3), 2u);
  EXPECT_EQ(pt.dram_pages_in_rank_range(*a, 3, 6), 0u);
  EXPECT_EQ(pt.dram_pages_in_rank_range(*a, 4, 4), 0u);  // empty range
  EXPECT_EQ(pt.dram_pages_in_rank_range(*a, 6, 99), 1u);  // clamped end
}

TEST(PageTable, FindRankWalksResidency) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 8, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MovePage(2, Tier::kDram);
  pt.MovePage(5, Tier::kDram);
  EXPECT_EQ(pt.FindRank(*a, 0, true), 2u);
  EXPECT_EQ(pt.FindRank(*a, 3, true), 5u);
  EXPECT_EQ(pt.FindRank(*a, 6, true), 8u);  // none left -> num_pages
  EXPECT_EQ(pt.FindRank(*a, 0, false), 0u);
  EXPECT_EQ(pt.FindRankBefore(*a, 8, true), 5u);
  EXPECT_EQ(pt.FindRankBefore(*a, 5, true), 2u);
  EXPECT_EQ(pt.FindRankBefore(*a, 2, true), 8u);  // none below -> num_pages
  EXPECT_EQ(pt.FindRankBefore(*a, 0, false), 8u);  // empty prefix
}

TEST(PageTable, LegacyScanMatchesIndexedOps) {
  PageTable fast(SmallSpec(), 4096);
  PageTable legacy(SmallSpec(), 4096);
  legacy.set_legacy_scan(true);
  for (PageTable* pt : {&fast, &legacy}) {
    ASSERT_TRUE(pt->RegisterObject(4096 * 7, Tier::kPm));
    pt->MoveHottest(0, 3, Tier::kDram);
    pt->MovePage(5, Tier::kDram);
    pt->EvictColdest(0, 2, Tier::kDram);
  }
  for (PageId p = 0; p < fast.num_pages(); ++p) {
    EXPECT_EQ(fast.page_tier(p), legacy.page_tier(p));
  }
  EXPECT_EQ(fast.ObjectOfPage(4), legacy.ObjectOfPage(4));
}

TEST(PageTable, MoveListenerObservesMoves) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 4, Tier::kPm);
  ASSERT_TRUE(a);
  std::vector<PageId> moved;
  pt.SetMoveListener([&](PageId p, Tier from, Tier to) {
    EXPECT_EQ(from, Tier::kPm);
    EXPECT_EQ(to, Tier::kDram);
    moved.push_back(p);
  });
  pt.MoveHottest(*a, 2, Tier::kDram);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], 0u);
  EXPECT_EQ(moved[1], 1u);
}

TEST(PageTable, ListenerSeesEvictions) {
  PageTable pt(SmallSpec(), 4096);
  const auto a = pt.RegisterObject(4096 * 4, Tier::kPm);
  ASSERT_TRUE(a);
  pt.MoveHottest(*a, 4, Tier::kDram);
  int demotions = 0;
  pt.SetMoveListener([&](PageId, Tier from, Tier to) {
    EXPECT_EQ(from, Tier::kDram);
    EXPECT_EQ(to, Tier::kPm);
    ++demotions;
  });
  pt.EvictColdest(*a, 3, Tier::kDram);
  EXPECT_EQ(demotions, 3);
}

}  // namespace
}  // namespace merch::hm
