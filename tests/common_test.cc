// Unit tests for src/common: RNG, statistics, tables, byte formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace merch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(n), n);
    }
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(19);
  const auto perm = rng.Permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(100, 40);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 40u);
  for (const auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementLargeDomain) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(std::size_t(1) << 22, 64);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsHottest) {
  ZipfSampler zipf(50, 0.8);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(49));
}

TEST(Zipf, SampleFrequencyMatchesPmf) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.02)
        << "rank " << k;
  }
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(2.0));
}

TEST(Stats, EmptyInputsSafe) {
  const std::vector<double> empty;
  EXPECT_EQ(Mean(empty), 0.0);
  EXPECT_EQ(Variance(empty), 0.0);
  EXPECT_EQ(CoefficientOfVariation(empty), 0.0);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> same = {4, 4, 4, 4};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(same), 0.0);
  const std::vector<double> spread = {2, 4, 6};
  EXPECT_NEAR(CoefficientOfVariation(spread), StdDev(spread) / 4.0, 1e-12);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(Stats, BoxStatsQuartiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const BoxStats b = ComputeBoxStats(xs);
  EXPECT_NEAR(b.median, 50.5, 0.01);
  EXPECT_NEAR(b.q1, 25.75, 0.01);
  EXPECT_NEAR(b.q3, 75.25, 0.01);
  EXPECT_EQ(b.outliers, 0u);
}

TEST(Stats, BoxStatsDetectsOutliers) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 1000};
  const BoxStats b = ComputeBoxStats(xs);
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_LT(b.max, 1000.0);
}

TEST(Stats, CosineSimilarity) {
  const std::vector<double> a = {1, 0}, b = {0, 1}, c = {2, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-12);
  const std::vector<double> zero = {0, 0};
  EXPECT_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(Stats, RSquaredPerfectAndMeanBaseline) {
  const std::vector<double> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(truth, truth), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(RSquared(truth, mean_pred), 0.0, 1e-12);
}

TEST(Stats, MapeAccuracy) {
  const std::vector<double> truth = {100, 200};
  const std::vector<double> pred = {90, 220};  // 10% errors
  EXPECT_NEAR(MapeAccuracy(truth, pred), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(MapeAccuracy(truth, truth), 1.0);
}

TEST(Stats, MeanSquaredError) {
  const std::vector<double> truth = {0, 0}, pred = {3, 4};
  EXPECT_DOUBLE_EQ(MeanSquaredError(truth, pred), 12.5);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Pct(0.171), "17.1%");
}

TEST(Types, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536ull * GiB), "1.5 TiB");
}

TEST(Types, PageAndLineMath) {
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageBytes), 1u);
  EXPECT_EQ(PagesForBytes(kPageBytes + 1), 2u);
  EXPECT_EQ(LinesForBytes(64), 1u);
  EXPECT_EQ(LinesForBytes(65), 2u);
}

}  // namespace
}  // namespace merch
