// Tests for the analytic access oracle (sim/oracle.h), including sweep
// windows.
#include <gtest/gtest.h>

#include "hm/page_table.h"
#include "sim/oracle.h"

namespace merch::sim {
namespace {

Workload TwoObjectWorkload() {
  Workload w;
  w.name = "test";
  w.objects.push_back(ObjectDecl{.name = "uniform", .bytes = 10 * 4096,
                                 .owner = 0,
                                 .heat = trace::HeatProfile::Uniform()});
  w.objects.push_back(ObjectDecl{.name = "zipf", .bytes = 20 * 4096,
                                 .owner = 1,
                                 .heat = trace::HeatProfile::Zipf(1.0)});
  Region r;
  r.name = "r";
  r.tasks.push_back(TaskProgram{.task = 0, .kernels = {}});
  r.tasks.push_back(TaskProgram{.task = 1, .kernels = {}});
  w.regions.push_back(r);
  return w;
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : workload_(TwoObjectWorkload()),
        pages_([] {
          hm::HmSpec spec = hm::HmSpec::PaperOptane();
          spec[hm::Tier::kDram].capacity_bytes = 16 * 4096;
          spec[hm::Tier::kPm].capacity_bytes = 64 * 4096;
          return spec;
        }(), 4096) {
    handles_.push_back(*pages_.RegisterObject(10 * 4096, hm::Tier::kPm, 0));
    handles_.push_back(*pages_.RegisterObject(20 * 4096, hm::Tier::kPm, 1));
    oracle_ = std::make_unique<AccessOracle>(workload_, pages_, handles_);
  }

  Workload workload_;
  hm::PageTable pages_;
  std::vector<ObjectId> handles_;
  std::unique_ptr<AccessOracle> oracle_;
};

TEST_F(OracleTest, StaticAddAccumulates) {
  oracle_->Add(0, 0, 100);
  oracle_->Add(0, 0, 50);
  EXPECT_DOUBLE_EQ(oracle_->ObjectEpochAccesses(0), 150.0);
  EXPECT_DOUBLE_EQ(oracle_->TaskEpochAccesses(0), 150.0);
  EXPECT_DOUBLE_EQ(oracle_->TaskObjectEpochAccesses(0, 0), 150.0);
  EXPECT_DOUBLE_EQ(oracle_->TotalEpochAccesses(), 150.0);
}

TEST_F(OracleTest, StaticHeatDistribution) {
  oracle_->Add(0, 0, 1000);  // uniform over 10 pages
  EXPECT_DOUBLE_EQ(oracle_->EpochAccesses(0), 100.0);
  EXPECT_DOUBLE_EQ(oracle_->EpochAccesses(9), 100.0);
  oracle_->Add(1, 1, 1000);  // zipf over pages 10..29
  EXPECT_GT(oracle_->EpochAccesses(10), oracle_->EpochAccesses(29));
}

TEST_F(OracleTest, SweepWindowLandsOnRankRange) {
  // Sweep covering the first half of object 0 (ranks [0, 0.5)).
  oracle_->AddSweep(0, 0, 0.0, 0.5, 500);
  // 5 pages in the window, 100 each; pages beyond get nothing.
  EXPECT_NEAR(oracle_->EpochAccesses(0), 100.0, 1e-9);
  EXPECT_NEAR(oracle_->EpochAccesses(4), 100.0, 1e-9);
  EXPECT_NEAR(oracle_->EpochAccesses(5), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(oracle_->ObjectEpochAccesses(0), 500.0);
}

TEST_F(OracleTest, ContiguousSweepsMerge) {
  oracle_->AddSweep(0, 0, 0.0, 0.25, 100);
  oracle_->AddSweep(0, 0, 0.25, 0.5, 100);
  // Merged window [0, 0.5) with 200 accesses -> 40 per page over 5 pages.
  EXPECT_NEAR(oracle_->EpochAccesses(2), 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(oracle_->ObjectEpochAccesses(0), 200.0);
}

TEST_F(OracleTest, SweepAttributesToTask) {
  oracle_->AddSweep(1, 1, 0.0, 1.0, 700);
  EXPECT_DOUBLE_EQ(oracle_->TaskEpochAccesses(1), 700.0);
  EXPECT_DOUBLE_EQ(oracle_->TaskObjectEpochAccesses(1, 1), 700.0);
}

TEST_F(OracleTest, ResetClearsEpochKeepsLifetime) {
  oracle_->Add(0, 0, 100);
  oracle_->AddSweep(1, 1, 0.0, 1.0, 200);
  oracle_->ResetEpoch();
  EXPECT_DOUBLE_EQ(oracle_->TotalEpochAccesses(), 0.0);
  EXPECT_DOUBLE_EQ(oracle_->EpochAccesses(0), 0.0);
  EXPECT_DOUBLE_EQ(oracle_->ObjectLifetimeAccesses(0), 100.0);
  EXPECT_DOUBLE_EQ(oracle_->ObjectLifetimeAccesses(1), 200.0);
}

TEST_F(OracleTest, PageMetadata) {
  EXPECT_EQ(oracle_->num_pages(), 30u);
  EXPECT_EQ(oracle_->PageObject(5), 0u);
  EXPECT_EQ(oracle_->PageObject(15), 1u);
  EXPECT_EQ(oracle_->PageTask(5), 0u);
  EXPECT_EQ(oracle_->PageTask(15), 1u);
  EXPECT_EQ(oracle_->PageTier(5), hm::Tier::kPm);
  pages_.MovePage(5, hm::Tier::kDram);
  EXPECT_EQ(oracle_->PageTier(5), hm::Tier::kDram);
}

TEST_F(OracleTest, HandleLookup) {
  EXPECT_EQ(oracle_->handle(0), handles_[0]);
  EXPECT_EQ(oracle_->handle(1), handles_[1]);
}

}  // namespace
}  // namespace merch::sim
