// Placement-service subsystem tests: thread-pool ordering and shutdown,
// LRU eviction and key canonicalization, in-flight duplicate coalescing,
// request-file parsing, and cross-pool-width determinism (the service must
// return bit-identical results whether it simulates on 1 thread or 8).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/batch.h"
#include "service/placement_service.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace merch::service {
namespace {

// Small enough that one simulation finishes in well under a second, big
// enough that a job spans many epochs and pages.
PlacementRequest TinyRequest(std::string app, std::string policy,
                             std::uint64_t seed = 42) {
  PlacementRequest req;
  req.app = std::move(app);
  req.policy = std::move(policy);
  req.scale = 0.005;
  req.work = 0.02;
  req.train_regions = 6;
  req.seed = seed;
  return req;
}

PlacementResult MakeResult(double makespan) {
  PlacementResult r;
  r.makespan_seconds = makespan;
  return r;
}

// --- ThreadPool ---

TEST(ThreadPool, RunsEveryAcceptedJob) {
  std::atomic<int> count{0};
  ThreadPool pool(4, 8);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.jobs_accepted(), 100u);
  EXPECT_EQ(pool.jobs_executed(), 100u);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  std::vector<int> order;
  ThreadPool pool(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&order, i] { order.push_back(i); }));
  }
  pool.Shutdown();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobsBeforeJoining) {
  std::atomic<int> count{0};
  ThreadPool pool(1, 64);
  ASSERT_TRUE(pool.Submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); }));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Shutdown();  // must run the 10 queued jobs, not drop them
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RejectsSubmissionAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_EQ(pool.jobs_accepted(), 0u);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressureWithoutDeadlock) {
  std::atomic<int> count{0};
  ThreadPool pool(2, 2);  // queue much smaller than the burst
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++count;
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 64);
}

// --- ResultCache ---

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Put("a", MakeResult(1));
  cache.Put("b", MakeResult(2));
  ASSERT_TRUE(cache.Get("a").has_value());  // bump "a": "b" is now LRU
  cache.Put("c", MakeResult(3));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(ResultCache, CountsHitsAndMisses) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Get("x").has_value());
  cache.Put("x", MakeResult(7));
  const auto hit = cache.Get("x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->makespan_seconds, 7.0);
  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(ResultCache, PutExistingKeyOverwritesAndRefreshes) {
  ResultCache cache(2);
  cache.Put("a", MakeResult(1));
  cache.Put("b", MakeResult(2));
  cache.Put("a", MakeResult(10));  // refresh "a": "b" becomes LRU
  cache.Put("c", MakeResult(3));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_EQ(cache.Get("a")->makespan_seconds, 10.0);
}

// --- Canonicalization ---

TEST(Canonicalize, ResolvesAppCaseInsensitively) {
  PlacementRequest req = TinyRequest("spgemm", "PM");
  ASSERT_EQ(CanonicalizeRequest(req), "");
  EXPECT_EQ(req.app, "SpGEMM");
  EXPECT_EQ(req.policy, "pm");

  PlacementRequest other = TinyRequest("SPGEMM", "pm");
  ASSERT_EQ(CanonicalizeRequest(other), "");
  EXPECT_EQ(CanonicalKey(req), CanonicalKey(other));
}

TEST(Canonicalize, CollapsesTrainingBudgetForPoliciesThatNeverTrain) {
  PlacementRequest a = TinyRequest("BFS", "pm");
  a.train_regions = 100;
  PlacementRequest b = TinyRequest("BFS", "pm");
  b.train_regions = 281;
  ASSERT_EQ(CanonicalizeRequest(a), "");
  ASSERT_EQ(CanonicalizeRequest(b), "");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));

  PlacementRequest m1 = TinyRequest("BFS", "merch");
  m1.train_regions = 100;
  PlacementRequest m2 = TinyRequest("BFS", "merch");
  m2.train_regions = 281;
  ASSERT_EQ(CanonicalizeRequest(m1), "");
  ASSERT_EQ(CanonicalizeRequest(m2), "");
  EXPECT_NE(CanonicalKey(m1), CanonicalKey(m2));
}

TEST(Canonicalize, DistinguishesEveryRequestField) {
  PlacementRequest base = TinyRequest("DMRG", "mo");
  ASSERT_EQ(CanonicalizeRequest(base), "");
  for (auto mutate : {+[](PlacementRequest& r) { r.app = "BFS"; },
                      +[](PlacementRequest& r) { r.policy = "mm"; },
                      +[](PlacementRequest& r) { r.scale *= 2; },
                      +[](PlacementRequest& r) { r.work *= 2; },
                      +[](PlacementRequest& r) { r.seed += 1; }}) {
    PlacementRequest changed = base;
    mutate(changed);
    ASSERT_EQ(CanonicalizeRequest(changed), "");
    EXPECT_NE(CanonicalKey(changed), CanonicalKey(base));
  }
}

TEST(Canonicalize, RejectsBadFieldsWithClearMessages) {
  PlacementRequest bad_app = TinyRequest("NoSuchApp", "pm");
  EXPECT_NE(CanonicalizeRequest(bad_app).find("unknown application"),
            std::string::npos);

  PlacementRequest bad_policy = TinyRequest("SpGEMM", "fastest");
  EXPECT_NE(CanonicalizeRequest(bad_policy).find("unknown policy"),
            std::string::npos);

  PlacementRequest bad_scale = TinyRequest("SpGEMM", "pm");
  bad_scale.scale = 0;
  EXPECT_NE(CanonicalizeRequest(bad_scale), "");

  PlacementRequest bad_train = TinyRequest("SpGEMM", "merch");
  bad_train.train_regions = 0;
  EXPECT_NE(CanonicalizeRequest(bad_train), "");
}

// --- Request-file parsing ---

TEST(ParseRequestLine, ParsesKeyValueTokensInAnyOrder) {
  PlacementRequest req;
  std::string err;
  ASSERT_EQ(ParseRequestLine(
                "seed=9 app=BFS scale=0.25 policy=mo work=0.5 train_regions=3",
                &req, &err),
            ParseStatus::kRequest);
  EXPECT_EQ(req.app, "BFS");
  EXPECT_EQ(req.policy, "mo");
  EXPECT_EQ(req.scale, 0.25);
  EXPECT_EQ(req.work, 0.5);
  EXPECT_EQ(req.train_regions, 3u);
  EXPECT_EQ(req.seed, 9u);
}

TEST(ParseRequestLine, SkipsBlankAndCommentLines) {
  PlacementRequest req;
  std::string err;
  EXPECT_EQ(ParseRequestLine("", &req, &err), ParseStatus::kSkip);
  EXPECT_EQ(ParseRequestLine("   ", &req, &err), ParseStatus::kSkip);
  EXPECT_EQ(ParseRequestLine("# app=BFS", &req, &err), ParseStatus::kSkip);
}

TEST(ParseRequestLine, ReportsMalformedTokens) {
  PlacementRequest req;
  std::string err;
  EXPECT_EQ(ParseRequestLine("app=BFS bogus", &req, &err),
            ParseStatus::kError);
  EXPECT_NE(err.find("bogus"), std::string::npos);
  EXPECT_EQ(ParseRequestLine("scale=fast", &req, &err), ParseStatus::kError);
  EXPECT_EQ(ParseRequestLine("speed=1.0", &req, &err), ParseStatus::kError);
}

// --- PlacementService ---

TEST(PlacementService, InvalidRequestYieldsReadyErrorFuture) {
  PlacementService svc({.threads = 1});
  auto ticket = svc.Submit(TinyRequest("NoSuchApp", "pm"));
  const PlacementResult r = ticket.future.get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown application"), std::string::npos);
  EXPECT_EQ(svc.Stats().failed, 1u);
}

TEST(PlacementService, CoalescesConcurrentDuplicatesIntoOneSimulation) {
  PlacementService svc({.threads = 1});
  // Occupy the single worker so the duplicates below stay in flight.
  auto blocker = svc.Submit(TinyRequest("SpGEMM", "pm"));

  const PlacementRequest dup = TinyRequest("BFS", "pm");
  std::vector<PlacementService::Ticket> tickets;
  for (int i = 0; i < 5; ++i) tickets.push_back(svc.Submit(dup));

  std::size_t coalesced = 0;
  for (const auto& t : tickets) coalesced += t.coalesced ? 1 : 0;
  EXPECT_EQ(coalesced, 4u);  // first starts the job, the rest join it

  const PlacementResult first = tickets[0].future.get();
  ASSERT_TRUE(first.ok());
  for (auto& t : tickets) {
    const PlacementResult r = t.future.get();
    EXPECT_EQ(r.makespan_seconds, first.makespan_seconds);
  }
  blocker.future.wait();

  const ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.simulated, 2u);  // blocker + one shared duplicate job

  // Identical request after completion: served from cache, no new job.
  auto cached = svc.Submit(dup);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.future.get().makespan_seconds, first.makespan_seconds);
  EXPECT_EQ(svc.Stats().simulated, 2u);
}

TEST(PlacementService, ResultsAreBitIdenticalAcrossPoolWidths) {
  const std::vector<PlacementRequest> requests = {
      TinyRequest("SpGEMM", "pm", 9), TinyRequest("BFS", "mo", 9),
      TinyRequest("WarpX", "mm", 9), TinyRequest("DMRG", "merch", 9)};

  PlacementService narrow({.threads = 1});
  PlacementService wide({.threads = 8});
  const BatchReport a = RunBatch(narrow, requests);
  const BatchReport b = RunBatch(wide, requests);

  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const PlacementResult& ra = a.results[i];
    const PlacementResult& rb = b.results[i];
    ASSERT_TRUE(ra.ok()) << ra.error;
    ASSERT_TRUE(rb.ok()) << rb.error;
    // Exact floating-point equality on purpose: same request + seed must
    // reproduce bit-identical results regardless of service concurrency.
    EXPECT_EQ(ra.makespan_seconds, rb.makespan_seconds);
    EXPECT_EQ(ra.task_cov, rb.task_cov);
    EXPECT_EQ(ra.migrated_bytes, rb.migrated_bytes);
    ASSERT_EQ(ra.placements.size(), rb.placements.size());
    for (std::size_t j = 0; j < ra.placements.size(); ++j) {
      EXPECT_EQ(ra.placements[j].object, rb.placements[j].object);
      EXPECT_EQ(ra.placements[j].dram_fraction,
                rb.placements[j].dram_fraction);
    }
  }
}

TEST(PlacementService, SubmitFusedMatchesPerRequestSubmissionBitwise) {
  // Three policies over one SpGEMM instance share a fused group (one app
  // build), BFS rides alone, a duplicate coalesces, and a bad request
  // fails — all in one batch, answers indexed like the input.
  std::vector<PlacementRequest> requests = {
      TinyRequest("SpGEMM", "pm", 7),  TinyRequest("SpGEMM", "mm", 7),
      TinyRequest("SpGEMM", "mo", 7),  TinyRequest("BFS", "mo", 7),
      TinyRequest("SpGEMM", "pm", 7),  TinyRequest("NoSuchApp", "pm", 7)};

  PlacementService fused_svc({.threads = 2});
  auto tickets = fused_svc.SubmitFused(requests);
  ASSERT_EQ(tickets.size(), requests.size());
  EXPECT_TRUE(tickets[4].coalesced);  // duplicate of requests[0]

  PlacementService plain_svc({.threads = 2});
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    const PlacementResult f = tickets[i].future.get();
    const PlacementResult p = plain_svc.Submit(requests[i]).future.get();
    ASSERT_TRUE(f.ok()) << f.error;
    EXPECT_EQ(f.makespan_seconds, p.makespan_seconds) << i;
    EXPECT_EQ(f.task_cov, p.task_cov) << i;
    EXPECT_EQ(f.migrated_bytes, p.migrated_bytes) << i;
  }
  const PlacementResult bad = tickets.back().future.get();
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("unknown application"), std::string::npos);

  const ServiceStats stats = fused_svc.Stats();
  EXPECT_GE(stats.fused_groups, 1u);  // the three-policy SpGEMM group
  EXPECT_EQ(stats.failed, 1u);

  // Completed fused answers land in the same cache as Submit's.
  auto cached = fused_svc.Submit(requests[0]);
  EXPECT_TRUE(cached.cache_hit);
}

TEST(PlacementService, SubmitIncrementalMatchesPerRequestSubmissionBitwise) {
  // A five-policy sweep over one SpGEMM instance: the incremental path
  // drives one shared engine and forks on divergence, yet every answer —
  // placements included — must be bit-identical to a plain Submit().
  std::vector<PlacementRequest> requests = {
      TinyRequest("SpGEMM", "pm", 11),     TinyRequest("SpGEMM", "mm", 11),
      TinyRequest("SpGEMM", "mo", 11),     TinyRequest("SpGEMM", "sparta", 11),
      TinyRequest("SpGEMM", "merch", 11)};

  PlacementService inc_svc({.threads = 2});
  auto tickets = inc_svc.SubmitIncremental(requests);
  ASSERT_EQ(tickets.size(), requests.size());

  PlacementService plain_svc({.threads = 2});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const PlacementResult a = tickets[i].future.get();
    const PlacementResult b = plain_svc.Submit(requests[i]).future.get();
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.makespan_seconds, b.makespan_seconds) << i;
    EXPECT_EQ(a.task_cov, b.task_cov) << i;
    EXPECT_EQ(a.migrated_bytes, b.migrated_bytes) << i;
    EXPECT_EQ(a.regions, b.regions) << i;
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (std::size_t j = 0; j < a.placements.size(); ++j) {
      EXPECT_EQ(a.placements[j].object, b.placements[j].object);
      EXPECT_EQ(a.placements[j].bytes, b.placements[j].bytes);
      EXPECT_EQ(a.placements[j].dram_fraction, b.placements[j].dram_fraction);
    }
  }

  const ServiceStats stats = inc_svc.Stats();
  EXPECT_EQ(stats.incremental_groups, 1u);  // the five-policy ladder
  EXPECT_EQ(stats.fused_groups, 0u);

  // Completed incremental answers land in the shared result cache.
  auto cached = inc_svc.Submit(requests[0]);
  EXPECT_TRUE(cached.cache_hit);
}

TEST(PlacementService, IncrementalBatchModeAndCkptHatch) {
  const std::vector<PlacementRequest> requests = {
      TinyRequest("BFS", "pm", 13), TinyRequest("BFS", "mo", 13),
      TinyRequest("BFS", "merch", 13)};

  PlacementService inc({.threads = 1});
  const BatchReport a = RunBatch(inc, requests, BatchMode::kIncremental);
  EXPECT_EQ(inc.Stats().incremental_groups, 1u);

  // MERCH_CKPT=0 must fall back to the plain fused path.
  ASSERT_EQ(setenv("MERCH_CKPT", "0", 1), 0);
  PlacementService fused({.threads = 1});
  const BatchReport b = RunBatch(fused, requests, BatchMode::kIncremental);
  ASSERT_EQ(unsetenv("MERCH_CKPT"), 0);
  const ServiceStats fs = fused.Stats();
  EXPECT_EQ(fs.incremental_groups, 0u);
  EXPECT_EQ(fs.fused_groups, 1u);

  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_TRUE(a.results[i].ok()) << a.results[i].error;
    ASSERT_TRUE(b.results[i].ok()) << b.results[i].error;
    EXPECT_EQ(a.results[i].makespan_seconds, b.results[i].makespan_seconds);
    EXPECT_EQ(a.results[i].task_cov, b.results[i].task_cov);
    EXPECT_EQ(a.results[i].migrated_bytes, b.results[i].migrated_bytes);
  }
}

TEST(PlacementService, SeedIsPartOfTheRequestIdentity) {
  PlacementService svc({.threads = 2});
  auto t1 = svc.Submit(TinyRequest("BFS", "mo", 1));
  auto t2 = svc.Submit(TinyRequest("BFS", "mo", 2));
  ASSERT_TRUE(t1.future.get().ok());
  ASSERT_TRUE(t2.future.get().ok());
  // Different seeds are different requests: no coalescing, no cache hit.
  EXPECT_FALSE(t2.cache_hit);
  EXPECT_FALSE(t2.coalesced);
  EXPECT_EQ(svc.Stats().simulated, 2u);
}

}  // namespace
}  // namespace merch::service
