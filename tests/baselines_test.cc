// Tests for the baseline policies: PM-only, MemoryOptimizer, Memory Mode,
// and the application-specific static-priority policies.
#include <gtest/gtest.h>

#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "sim/engine.h"

namespace merch::baselines {
namespace {

sim::Workload HotColdWorkload(int regions = 1) {
  sim::Workload w;
  w.name = "hotcold";
  // Object 0: hot random object; object 1: cold stream object.
  w.objects.push_back(sim::ObjectDecl{.name = "hot", .bytes = 4 * GiB,
                                      .owner = 0,
                                      .heat = trace::HeatProfile::Zipf(0.9)});
  w.objects.push_back(sim::ObjectDecl{.name = "cold", .bytes = 8 * GiB,
                                      .owner = 1});
  for (int r = 0; r < regions; ++r) {
    sim::Region region;
    region.name = "r" + std::to_string(r);
    {
      sim::Kernel k;
      k.name = "gather";
      k.instructions = 10000000;
      trace::ObjectAccess a;
      a.object = 0;
      a.pattern = trace::AccessPattern::kRandom;
      a.program_accesses = 120000000;
      k.accesses.push_back(a);
      region.tasks.push_back(sim::TaskProgram{.task = 0, .kernels = {k}});
    }
    {
      sim::Kernel k;
      k.name = "sweep";
      k.instructions = 10000000;
      trace::ObjectAccess a;
      a.object = 1;
      a.pattern = trace::AccessPattern::kStream;
      a.program_accesses = 50000000;
      k.accesses.push_back(a);
      region.tasks.push_back(sim::TaskProgram{.task = 1, .kernels = {k}});
    }
    region.active_bytes = {4 * GiB, 8 * GiB};
    w.regions.push_back(region);
  }
  return w;
}

sim::MachineSpec Machine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = 6 * GiB;
  m.hm[hm::Tier::kPm].capacity_bytes = 64 * GiB;
  return m;
}

sim::SimConfig Config() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.01;
  cfg.interval_seconds = 0.2;
  cfg.page_bytes = 16 * MiB;
  cfg.migration_gbps = 8.0;
  return cfg;
}

TEST(PmOnly, NeverMigrates) {
  const sim::Workload w = HotColdWorkload();
  PmOnlyPolicy policy;
  sim::Engine engine(w, Machine(), Config(), &policy);
  const auto r = engine.Run();
  EXPECT_EQ(r.migration.pages_to_dram, 0u);
  EXPECT_EQ(r.migration.pages_to_pm, 0u);
}

TEST(MemoryOptimizer, PromotesHotPages) {
  const sim::Workload w = HotColdWorkload(3);
  MemoryOptimizerPolicy policy;
  sim::Engine engine(w, Machine(), Config(), &policy);
  const auto r = engine.Run();
  EXPECT_GT(policy.pages_promoted(), 0u);
  EXPECT_GT(r.migration.pages_to_dram, 0u);
}

TEST(MemoryOptimizer, ImprovesOverPmOnly) {
  const sim::Workload w = HotColdWorkload(3);
  PmOnlyPolicy pm;
  sim::Engine pm_engine(w, Machine(), Config(), &pm);
  const double pm_time = pm_engine.Run().total_seconds;
  MemoryOptimizerPolicy mo;
  sim::Engine mo_engine(w, Machine(), Config(), &mo);
  const double mo_time = mo_engine.Run().total_seconds;
  // The persistent hot random object benefits from reactive promotion.
  EXPECT_LT(mo_time, pm_time);
}

TEST(MemoryMode, ServesFromHardwareCache) {
  const sim::Workload w = HotColdWorkload(2);
  MemoryModePolicy policy;
  sim::Engine engine(w, Machine(), Config(), &policy);
  const auto r = engine.Run();
  // No page migration under Memory Mode (hardware-managed cache).
  EXPECT_EQ(r.migration.pages_to_dram, 0u);
  // But DRAM traffic appears (cache hits).
  double dram_traffic = 0;
  for (const auto& s : r.bandwidth) dram_traffic += s.dram_gbps;
  EXPECT_GT(dram_traffic, 0.0);
}

TEST(MemoryMode, FasterThanPmOnly) {
  const sim::Workload w = HotColdWorkload(2);
  PmOnlyPolicy pm;
  sim::Engine pm_engine(w, Machine(), Config(), &pm);
  const double pm_time = pm_engine.Run().total_seconds;
  MemoryModePolicy mm;
  sim::Engine mm_engine(w, Machine(), Config(), &mm);
  EXPECT_LT(mm_engine.Run().total_seconds, pm_time);
}

TEST(StaticPriority, PlacesListedObjectsFirst) {
  const sim::Workload w = HotColdWorkload();
  // Prioritise the hot object only.
  StaticPriorityPolicy policy("Sparta-like", std::vector<std::size_t>{0});
  sim::Engine engine(w, Machine(), Config(), &policy);
  sim::SimContext* unused = nullptr;
  (void)unused;
  const auto r = engine.Run();
  EXPECT_GT(r.migration.pages_to_dram, 0u);
}

TEST(StaticPriority, LifetimeVariantSwitchesPerRegion) {
  const sim::Workload w = HotColdWorkload(2);
  // Region 0 prioritises object 0, region 1 prioritises object 1: the
  // placement flip forces demotions in region 1.
  StaticPriorityPolicy policy(
      "WarpX-PM-like",
      std::vector<std::vector<std::size_t>>{{0}, {1}});
  sim::Engine engine(w, Machine(), Config(), &policy);
  const auto r = engine.Run();
  EXPECT_GT(r.migration.pages_to_dram, 0u);
  EXPECT_GT(r.migration.pages_to_pm, 0u);  // demotions happened
}

TEST(StaticPriority, RespectsDramBudget) {
  const sim::Workload w = HotColdWorkload();
  // Prioritise everything; budget (98% of 6 GiB) must still hold.
  StaticPriorityPolicy policy("greedy",
                              std::vector<std::size_t>{0, 1});
  sim::Engine engine(w, Machine(), Config(), &policy);
  engine.Run();
  // 6 GiB at 16 MiB pages = 384 pages; 98% = ~376.
  EXPECT_LE(engine.pages().tier_used_bytes(hm::Tier::kDram),
            static_cast<std::uint64_t>(6.01 * GiB));
}

}  // namespace
}  // namespace merch::baselines
