// Tests for Algorithm 1 (core/greedy.h) against a stub performance model.
//
// The stub correlation function makes Eq. 2 behave linearly:
// f == 1 => T(r) = t_pm (1 - r) + t_dram r, so allocations are easy to
// verify analytically.
#include <gtest/gtest.h>

#include <cmath>

#include "core/greedy.h"
#include "workloads/training.h"

namespace merch::core {
namespace {

/// Correlation function trained to approximate f == 1.
const CorrelationFunction& UnitCorrelation() {
  static const CorrelationFunction* kF = [] {
    std::vector<workloads::TrainingSample> samples;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
      workloads::TrainingSample s;
      for (auto& e : s.pmcs) e = rng.NextDoubleInRange(0, 1);
      s.r_dram = rng.NextDoubleInRange(0, 1);
      s.f_target = 1.0;
      samples.push_back(s);
    }
    auto* f = new CorrelationFunction();
    f->Train(samples);
    return f;
  }();
  return *kF;
}

GreedyTaskInput Task(TaskId id, double t_pm, double t_dram, double accesses,
                     std::uint64_t pages) {
  GreedyTaskInput in;
  in.task = id;
  in.t_pm_only = t_pm;
  in.t_dram_only = t_dram;
  in.total_accesses = accesses;
  in.footprint_pages = pages;
  return in;
}

TEST(Greedy, SingleTaskRunsToCapacity) {
  PerformanceModel model(&UnitCorrelation());
  const std::vector<GreedyTaskInput> tasks = {Task(0, 10.0, 4.0, 1e6, 1000)};
  const GreedyResult r = RunGreedyAllocation(tasks, 10000, model);
  // No capacity pressure: the lone task reaches r = 1.
  EXPECT_NEAR(r.dram_fraction[0], 1.0, 1e-9);
  EXPECT_NEAR(r.predicted_seconds[0], 4.0, 0.5);
}

TEST(Greedy, CapacityBindsSingleTask) {
  PerformanceModel model(&UnitCorrelation());
  const std::vector<GreedyTaskInput> tasks = {Task(0, 10.0, 4.0, 1e6, 1000)};
  const GreedyResult r = RunGreedyAllocation(tasks, 300, model);
  EXPECT_LE(r.dram_pages[0], 300u);
  EXPECT_LE(r.dram_fraction[0], 0.31);
}

TEST(Greedy, LongestTaskServedFirst) {
  PerformanceModel model(&UnitCorrelation());
  // Task 0 is much slower; with tight capacity it must get everything.
  const std::vector<GreedyTaskInput> tasks = {
      Task(0, 20.0, 8.0, 1e6, 1000), Task(1, 5.0, 2.0, 1e6, 1000)};
  const GreedyResult r = RunGreedyAllocation(tasks, 400, model);
  EXPECT_GT(r.dram_fraction[0], 0.3);
  EXPECT_LE(r.dram_fraction[1], 0.05 + 1e-9);
}

TEST(Greedy, EqualizesPredictedTimes) {
  PerformanceModel model(&UnitCorrelation());
  const std::vector<GreedyTaskInput> tasks = {
      Task(0, 20.0, 8.0, 1e6, 1000), Task(1, 14.0, 6.0, 1e6, 1000),
      Task(2, 10.0, 4.0, 1e6, 1000)};
  const GreedyResult r = RunGreedyAllocation(tasks, 1400, model);
  // With capacity for roughly half the pages, predicted times should be
  // pulled together: spread well below the no-placement spread (10s).
  const double lo =
      *std::min_element(r.predicted_seconds.begin(), r.predicted_seconds.end());
  const double hi =
      *std::max_element(r.predicted_seconds.begin(), r.predicted_seconds.end());
  EXPECT_LT(hi - lo, 3.0);
  // Slowest task gets the largest share.
  EXPECT_GE(r.dram_fraction[0], r.dram_fraction[1] - 1e-9);
  EXPECT_GE(r.dram_fraction[1], r.dram_fraction[2] - 1e-9);
}

TEST(Greedy, StepGranularityRespected) {
  PerformanceModel model(&UnitCorrelation());
  const std::vector<GreedyTaskInput> tasks = {Task(0, 10.0, 4.0, 1e6, 100)};
  GreedyConfig cfg;
  cfg.step = 0.25;
  const GreedyResult r = RunGreedyAllocation(tasks, 1000, model, cfg);
  // r must be a multiple of the step (possibly clamped at 1).
  const double rem = std::fmod(r.dram_fraction[0] + 1e-12, 0.25);
  EXPECT_LT(std::min(rem, 0.25 - rem), 1e-6);
}

TEST(Greedy, PagesFollowEvenDistributionByDefault) {
  PerformanceModel model(&UnitCorrelation());
  const std::vector<GreedyTaskInput> tasks = {Task(0, 10.0, 4.0, 1e6, 800)};
  const GreedyResult r = RunGreedyAllocation(tasks, 10000, model);
  EXPECT_EQ(r.dram_pages[0],
            static_cast<std::uint64_t>(
                std::ceil(r.dram_fraction[0] * 800.0)));
}

TEST(Greedy, PageCostCurveReducesPageCharge) {
  PerformanceModel model(&UnitCorrelation());
  GreedyTaskInput dense = Task(0, 10.0, 4.0, 1e6, 1000);
  // Dense-first placement: 80% of accesses live on 20% of pages.
  dense.pages_for_access_fraction = {{0.8, 200.0}, {1.0, 1000.0}};
  const std::vector<GreedyTaskInput> tasks = {dense};
  const GreedyResult r = RunGreedyAllocation(tasks, 220, model);
  // 220 pages buy ~84% of accesses under the curve (vs 22% evenly).
  EXPECT_GT(r.dram_fraction[0], 0.5);
}

TEST(Greedy, ZeroTasks) {
  PerformanceModel model(&UnitCorrelation());
  const GreedyResult r = RunGreedyAllocation({}, 100, model);
  EXPECT_TRUE(r.dram_fraction.empty());
}

TEST(Greedy, CapacityNeverExceeded) {
  PerformanceModel model(&UnitCorrelation());
  for (const std::uint64_t cap : {50u, 500u, 1500u, 5000u}) {
    const std::vector<GreedyTaskInput> tasks = {
        Task(0, 20.0, 8.0, 1e6, 1000), Task(1, 14.0, 6.0, 1e6, 1000),
        Task(2, 10.0, 4.0, 1e6, 1000)};
    const GreedyResult r = RunGreedyAllocation(tasks, cap, model);
    std::uint64_t total = 0;
    for (const auto p : r.dram_pages) total += p;
    EXPECT_LE(total, cap + 1000u / 20)  // one step of slack at most
        << "capacity " << cap;
  }
}

TEST(Greedy, TerminatesOnDegenerateInputs) {
  PerformanceModel model(&UnitCorrelation());
  // Identical tasks with zero dram benefit: must not loop forever.
  const std::vector<GreedyTaskInput> tasks = {
      Task(0, 5.0, 5.0, 1e6, 100), Task(1, 5.0, 5.0, 1e6, 100)};
  const GreedyResult r = RunGreedyAllocation(tasks, 10000, model);
  EXPECT_LE(r.rounds, 10000);
}

}  // namespace
}  // namespace merch::core
