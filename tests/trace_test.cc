// Tests for pattern traits and the synthetic page-access source.
#include <gtest/gtest.h>

#include <string>

#include "trace/pattern.h"
#include "trace/synthetic_trace.h"

namespace merch::trace {
namespace {

TEST(Pattern, NamesAreDistinct) {
  EXPECT_STREQ(PatternName(AccessPattern::kStream), "Stream");
  EXPECT_STREQ(PatternName(AccessPattern::kStrided), "Strided");
  EXPECT_STREQ(PatternName(AccessPattern::kStencil), "Stencil");
  EXPECT_STREQ(PatternName(AccessPattern::kRandom), "Random");
  EXPECT_STREQ(PatternName(AccessPattern::kUnknown), "Unknown");
}

TEST(Pattern, TraitsReflectLatencyTolerance) {
  // Streams overlap and parallelise far better than dependent random
  // chains — the premise of the tier-sensitivity model.
  EXPECT_GT(TraitsOf(AccessPattern::kStream).mlp,
            TraitsOf(AccessPattern::kRandom).mlp);
  EXPECT_GT(TraitsOf(AccessPattern::kStream).overlap,
            TraitsOf(AccessPattern::kRandom).overlap);
  EXPECT_LT(TraitsOf(AccessPattern::kStream).prefetch_miss,
            TraitsOf(AccessPattern::kRandom).prefetch_miss);
}

TEST(Pattern, SweepingFlagsSequentialPatterns) {
  EXPECT_TRUE(TraitsOf(AccessPattern::kStream).sweeping);
  EXPECT_TRUE(TraitsOf(AccessPattern::kStrided).sweeping);
  EXPECT_TRUE(TraitsOf(AccessPattern::kStencil).sweeping);
  EXPECT_FALSE(TraitsOf(AccessPattern::kRandom).sweeping);
  EXPECT_FALSE(TraitsOf(AccessPattern::kUnknown).sweeping);
}

TEST(Pattern, UnknownSharesRandomTraits) {
  const PatternTraits& u = TraitsOf(AccessPattern::kUnknown);
  const PatternTraits& r = TraitsOf(AccessPattern::kRandom);
  EXPECT_EQ(u.mlp, r.mlp);
  EXPECT_EQ(u.sequential_latency, r.sequential_latency);
}

class SyntheticSourceTest : public ::testing::Test {
 protected:
  SyntheticAccessSource MakeSource() {
    return SyntheticAccessSource({
        {.task = 0, .num_pages = 10, .heat = HeatProfile::Uniform(),
         .epoch_accesses = 1000, .tier = hm::Tier::kPm},
        {.task = 1, .num_pages = 20, .heat = HeatProfile::Zipf(1.0),
         .epoch_accesses = 2000, .tier = hm::Tier::kDram},
        {.task = 1, .num_pages = 5, .heat = HeatProfile::Uniform(),
         .epoch_accesses = 500, .tier = hm::Tier::kPm},
    });
  }
};

TEST_F(SyntheticSourceTest, PageLayout) {
  const auto src = MakeSource();
  EXPECT_EQ(src.num_pages(), 35u);
  EXPECT_EQ(src.PageObject(0), 0u);
  EXPECT_EQ(src.PageObject(9), 0u);
  EXPECT_EQ(src.PageObject(10), 1u);
  EXPECT_EQ(src.PageObject(34), 2u);
}

TEST_F(SyntheticSourceTest, TierAndTaskAttribution) {
  const auto src = MakeSource();
  EXPECT_EQ(src.PageTier(0), hm::Tier::kPm);
  EXPECT_EQ(src.PageTier(15), hm::Tier::kDram);
  EXPECT_EQ(src.PageTask(0), 0u);
  EXPECT_EQ(src.PageTask(12), 1u);
  EXPECT_EQ(src.PageTask(32), 1u);
}

TEST_F(SyntheticSourceTest, PerPageAccessesSumToObjectTotal) {
  const auto src = MakeSource();
  double sum = 0;
  for (PageId p = 10; p < 30; ++p) sum += src.EpochAccesses(p);
  EXPECT_NEAR(sum, 2000.0, 15.0);  // zipf harmonic approximation tolerance
}

TEST_F(SyntheticSourceTest, UniformPagesEqual) {
  const auto src = MakeSource();
  EXPECT_DOUBLE_EQ(src.EpochAccesses(0), 100.0);
  EXPECT_DOUBLE_EQ(src.EpochAccesses(9), 100.0);
}

TEST_F(SyntheticSourceTest, ZipfPagesDecreasing) {
  const auto src = MakeSource();
  EXPECT_GT(src.EpochAccesses(10), src.EpochAccesses(11));
  EXPECT_GT(src.EpochAccesses(11), src.EpochAccesses(29));
}

TEST_F(SyntheticSourceTest, GroundTruthQueries) {
  const auto src = MakeSource();
  EXPECT_DOUBLE_EQ(src.ObjectAccesses(1), 2000.0);
  EXPECT_DOUBLE_EQ(src.TaskAccesses(1), 2500.0);
  EXPECT_DOUBLE_EQ(src.TaskAccesses(0), 1000.0);
  EXPECT_DOUBLE_EQ(src.TaskAccesses(9), 0.0);
}

}  // namespace
}  // namespace merch::trace
