// System-level integration test: the Figure 4 shape on a downscaled
// SpGEMM — Merchandiser must beat PM-only and at least match the generic
// baselines, while reducing task-time variance on apps with inherent
// imbalance (the paper's headline claims, at test scale).
#include <gtest/gtest.h>

#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace merch {
namespace {

constexpr double kScale = 1.0 / 64;

sim::MachineSpec ScaledMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kDram].capacity_bytes) * kScale);
  m.hm[hm::Tier::kPm].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kPm].capacity_bytes) * kScale);
  return m;
}

sim::SimConfig ScaledConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.02;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 512 * KiB;
  return cfg;
}

const core::MerchandiserSystem& System() {
  static const core::MerchandiserSystem* kSystem = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 48;
    cfg.placements_per_region = 6;
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

struct AppRun {
  double pm_only = 0;
  double memory_mode = 0;
  double memory_optimizer = 0;
  double merchandiser = 0;
  double pm_cov = 0;
  double merch_cov = 0;
};

AppRun RunApp(const std::string& name) {
  const apps::AppBundle bundle = apps::BuildApp(name, kScale, kScale / 4);
  const sim::MachineSpec machine = ScaledMachine();
  AppRun out;
  {
    baselines::PmOnlyPolicy p;
    sim::Engine e(bundle.workload, machine, ScaledConfig(), &p);
    const auto r = e.Run();
    out.pm_only = r.total_seconds;
    out.pm_cov = r.AverageCoV();
  }
  {
    baselines::MemoryModePolicy p;
    sim::Engine e(bundle.workload, machine, ScaledConfig(), &p);
    out.memory_mode = e.Run().total_seconds;
  }
  {
    baselines::MemoryOptimizerPolicy p;
    sim::Engine e(bundle.workload, machine, ScaledConfig(), &p);
    out.memory_optimizer = e.Run().total_seconds;
  }
  {
    auto p = System().MakePolicy(bundle.workload, machine);
    sim::Engine e(bundle.workload, machine, ScaledConfig(), p.get());
    const auto r = e.Run();
    out.merchandiser = r.total_seconds;
    out.merch_cov = r.AverageCoV();
  }
  return out;
}

TEST(Integration, SpGemmFigure4Shape) {
  const AppRun r = RunApp("SpGEMM");
  EXPECT_LT(r.merchandiser, r.pm_only);
  EXPECT_LT(r.merchandiser, r.memory_optimizer * 1.1);
  EXPECT_LT(r.merchandiser, r.memory_mode * 1.1);
}

TEST(Integration, DmrgFigure4And5Shape) {
  const AppRun r = RunApp("DMRG");
  EXPECT_LT(r.merchandiser, r.pm_only * 0.98);
  // Figure 5: Merchandiser reduces task-time variance.
  EXPECT_LT(r.merch_cov, r.pm_cov);
}

TEST(Integration, BfsMerchandiserReducesImbalance) {
  const AppRun r = RunApp("BFS");
  EXPECT_LT(r.merchandiser, r.pm_only);
  EXPECT_LT(r.merch_cov, r.pm_cov);
}

TEST(Integration, SpartaComparisonRuns) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", kScale, kScale / 4);
  baselines::StaticPriorityPolicy sparta("Sparta-like",
                                         bundle.sparta_priority);
  sim::Engine e(bundle.workload, ScaledMachine(), ScaledConfig(), &sparta);
  const auto r = e.Run();
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.migration.pages_to_dram, 0u);
}

TEST(Integration, WarpxPmComparisonRuns) {
  const apps::AppBundle bundle = apps::BuildApp("WarpX", kScale, kScale / 4);
  baselines::StaticPriorityPolicy warpx_pm("WarpX-PM",
                                           bundle.lifetime_priority);
  sim::Engine e(bundle.workload, ScaledMachine(), ScaledConfig(), &warpx_pm);
  const auto r = e.Run();
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  const apps::AppBundle bundle = apps::BuildApp("DMRG", kScale, kScale / 4);
  baselines::MemoryOptimizerPolicy p1, p2;
  sim::Engine e1(bundle.workload, ScaledMachine(), ScaledConfig(), &p1);
  sim::Engine e2(bundle.workload, ScaledMachine(), ScaledConfig(), &p2);
  EXPECT_DOUBLE_EQ(e1.Run().total_seconds, e2.Run().total_seconds);
}

}  // namespace
}  // namespace merch
