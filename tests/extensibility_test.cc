// Tests for the paper's extensibility claim (Section 5.3): porting
// Merchandiser to a different HM system needs only (1) regenerated
// training data, (2) a re-trained scaling function, (3) re-measured
// basic-block times — all automated here via MachineSpec swap.
#include <gtest/gtest.h>

#include "baselines/pm_only.h"
#include "core/merchandiser.h"
#include "sim/engine.h"

namespace merch {
namespace {

sim::MachineSpec CxlMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm = hm::HmSpec::CxlLike();
  return m;
}

sim::Workload SmallWorkload() {
  sim::Workload w;
  w.name = "ext";
  w.objects.push_back(
      sim::ObjectDecl{.name = "a", .bytes = 8 * GiB, .owner = 0});
  w.objects.push_back(
      sim::ObjectDecl{.name = "b", .bytes = 4 * GiB, .owner = 1});
  for (int r = 0; r < 3; ++r) {
    sim::Region region;
    region.name = "r" + std::to_string(r);
    for (int t = 0; t < 2; ++t) {
      sim::Kernel k;
      k.name = "k";
      k.instructions = 10000000;
      trace::ObjectAccess a;
      a.object = static_cast<ObjectId>(t);
      a.pattern = trace::AccessPattern::kRandom;
      a.program_accesses =
          static_cast<std::uint64_t>((t == 0 ? 6e7 : 2.5e7) * (1.0 + 0.1 * r));
      k.accesses.push_back(a);
      region.tasks.push_back(
          sim::TaskProgram{.task = static_cast<TaskId>(t), .kernels = {k}});
    }
    region.active_bytes = {8 * GiB, 4 * GiB};
    w.regions.push_back(region);
  }
  return w;
}

TEST(Extensibility, CxlSpecIsFasterSlowTierThanOptane) {
  const hm::HmSpec cxl = hm::HmSpec::CxlLike();
  const hm::HmSpec optane = hm::HmSpec::PaperOptane();
  EXPECT_GT(cxl[hm::Tier::kPm].read_bandwidth_gbps,
            optane[hm::Tier::kPm].read_bandwidth_gbps);
  EXPECT_LT(cxl[hm::Tier::kPm].rand_latency_ns,
            optane[hm::Tier::kPm].rand_latency_ns);
  EXPECT_LT(cxl[hm::Tier::kPm].write_latency_factor,
            optane[hm::Tier::kPm].write_latency_factor);
}

TEST(Extensibility, RetrainedSystemImprovesOnCxl) {
  // Step 1+2: regenerate training data on the CXL machine and retrain f.
  workloads::TrainingConfig training;
  training.num_regions = 40;
  training.placements_per_region = 6;
  training.machine = CxlMachine();
  const auto system = core::MerchandiserSystem::Train(training);
  EXPECT_GT(system.correlation().test_r2(), 0.3);

  // Step 3: per-application preparation happens inside MakePolicy.
  const sim::Workload w = SmallWorkload();
  sim::MachineSpec machine = CxlMachine();
  machine.hm[hm::Tier::kDram].capacity_bytes = 6 * GiB;
  machine.hm[hm::Tier::kPm].capacity_bytes = 48 * GiB;
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.01;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 16 * MiB;

  baselines::PmOnlyPolicy slow_only;
  const double base =
      sim::Engine(w, machine, cfg, &slow_only).Run().total_seconds;
  auto policy = system.MakePolicy(w, machine);
  const double merch =
      sim::Engine(w, machine, cfg, policy.get()).Run().total_seconds;
  EXPECT_LT(merch, base);
}

TEST(Extensibility, CxlGainsSmallerThanOptaneGains) {
  // CXL's slow tier is much closer to DRAM, so the placement upside is
  // smaller than on Optane — the tier gap drives the opportunity.
  const sim::Workload w = SmallWorkload();
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.01;
  cfg.interval_seconds = 1e9;

  const auto gap = [&](const sim::MachineSpec& machine) {
    const auto pm =
        sim::SimulateHomogeneous(w, machine, hm::Tier::kPm, cfg);
    const auto dram =
        sim::SimulateHomogeneous(w, machine, hm::Tier::kDram, cfg);
    return pm.total_seconds / dram.total_seconds;
  };
  EXPECT_LT(gap(CxlMachine()), gap(sim::MachineSpec::Paper()));
}

}  // namespace
}  // namespace merch
