// End-to-end contract of `merchctl analyze` (exit codes and machine
// outputs), exec-ing the real binary the way CI and users do:
//   exit 0  clean program (warnings allowed)
//   exit 1  error-severity findings (lint or dependence)
//   exit 2  parse failure / usage error
// `--dag --json` must parse with the in-tree JSON parser (obs::ParseJson)
// and carry the task/edge/finding structure; `--dag --dot` must be a
// balanced Graphviz digraph.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace merch {
namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout only — stderr goes to the test log
};

CmdResult RunCtl(const std::string& args) {
  CmdResult r;
  const std::string cmd = std::string(MERCHCTL_BIN) + " " + args;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string Example(const char* name) {
  return std::string(KIR_EXAMPLES_DIR) + "/" + name;
}

const obs::JsonValue* Field(const obs::JsonValue& obj, const char* name) {
  for (const auto& [key, value] : obj.fields) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(AnalyzeCli, CleanProgramExitsZero) {
  const CmdResult r = RunCtl("analyze " + Example("spgemm.kir") + " --dag");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("task DAG"), std::string::npos);
  EXPECT_NE(r.output.find("RAW on 'C_part'"), std::string::npos);
}

TEST(AnalyzeCli, WarningsStillExitZero) {
  // bfs carries the benign-BFS potential-race warning but no errors.
  const CmdResult r = RunCtl("analyze " + Example("bfs.kir") + " --dag");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("potential-race"), std::string::npos);
}

TEST(AnalyzeCli, RaceFixtureReportsEveryPlantedFindingAndExitsOne) {
  const CmdResult r = RunCtl("analyze " + Example("race_fixture.kir") + " --dag");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* code : {"data-race", "potential-race",
                           "over-synchronization",
                           "placement-interference"}) {
    EXPECT_NE(r.output.find(code), std::string::npos) << code;
  }
}

TEST(AnalyzeCli, ParseFailureExitsTwo) {
  // A .kir that is not a .kir at all.
  const std::string bogus = ::testing::TempDir() + "/bogus.kir";
  std::ofstream(bogus) << "this is { not a kernel\n";
  EXPECT_EQ(RunCtl("analyze " + bogus).exit_code, 2);
  EXPECT_EQ(RunCtl("analyze " + bogus + " --dag").exit_code, 2);
  EXPECT_EQ(RunCtl("analyze").exit_code, 2);  // usage error
}

TEST(AnalyzeCli, DagJsonIsWellFormedAndStructured) {
  for (const char* file : {"spgemm.kir", "bfs.kir", "race_fixture.kir",
                           "lint_fixture.kir"}) {
    const CmdResult r = RunCtl("analyze " + Example(file) + " --dag --json");
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::ParseJson(r.output, &doc, &err)) << file << ": " << err;
    ASSERT_EQ(doc.kind, obs::JsonValue::Kind::kObject) << file;
    const obs::JsonValue* tasks = Field(doc, "tasks");
    ASSERT_NE(tasks, nullptr) << file;
    EXPECT_EQ(tasks->kind, obs::JsonValue::Kind::kArray);
    EXPECT_FALSE(tasks->items.empty()) << file;
    ASSERT_NE(Field(doc, "edges"), nullptr) << file;
    ASSERT_NE(Field(doc, "findings"), nullptr) << file;
    for (const obs::JsonValue& t : tasks->items) {
      EXPECT_NE(Field(t, "footprint_bytes"), nullptr) << file;
      EXPECT_NE(Field(t, "dram_hungry_bytes"), nullptr) << file;
    }
  }
}

TEST(AnalyzeCli, DagDotIsABalancedDigraph) {
  const CmdResult r =
      RunCtl("analyze " + Example("race_fixture.kir") + " --dag --dot");
  EXPECT_EQ(r.exit_code, 1);  // --dot still gates on findings
  ASSERT_EQ(r.output.rfind("digraph", 0), 0u) << r.output;
  int depth = 0;
  for (const char c : r.output) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // The planted race renders as a dashed red conflict edge.
  EXPECT_NE(r.output.find("style=dashed, color=red"), std::string::npos);
}

}  // namespace
}  // namespace merch
