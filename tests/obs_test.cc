// Observability layer tests (ctest label "obs"): trace recording and
// Chrome-JSON export, ring-buffer drop accounting, metrics instruments
// and their Prometheus/JSON exports, thread-safety under concurrent
// emitters, and the engine integration (tracing must observe a run, never
// change it).
#include <algorithm>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "baselines/memory_optimizer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "service/placement_service.h"
#include "sim/engine.h"

namespace merch::obs {
namespace {

// The recorder and registry are process-wide; every test starts from a
// clean slate and leaves the recorder stopped.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Instance().set_ring_capacity(1u << 16);
    TraceRecorder::Instance().Start();
    MetricsRegistry::Instance().Reset();
  }
  void TearDown() override { TraceRecorder::Instance().Stop(); }
};

TEST_F(ObsTest, ChromeJsonIsWellFormed) {
  TraceRecorder& rec = TraceRecorder::Instance();
  {
    MERCH_TRACE_SPAN(Category::kApp, "outer");
    MERCH_TRACE_INSTANT_ARG(Category::kApp, "tick", "n", 7);
  }
  rec.Stop();

  const std::string json = rec.ChromeJson();
  const TraceValidation v = ValidateChromeTrace(json);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 2u);
  EXPECT_EQ(v.spans, 1u);
  EXPECT_EQ(v.instants, 1u);
  EXPECT_EQ(v.categories.count("app"), 1u);

  // The instant's argument must survive the export.
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &doc, &err)) << err;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_arg = false;
  for (const JsonValue& ev : events->items) {
    const JsonValue* args = ev.Find("args");
    if (args == nullptr) continue;
    const JsonValue* n = args->Find("n");
    if (n != nullptr && n->is_number() && n->number == 7.0) found_arg = true;
  }
  EXPECT_TRUE(found_arg);
}

TEST_F(ObsTest, SpansNestAndOrder) {
  TraceRecorder& rec = TraceRecorder::Instance();
  {
    MERCH_TRACE_SPAN_VAR(outer, Category::kSim, "outer");
    {
      MERCH_TRACE_SPAN(Category::kSim, "inner");
    }
  }
  rec.Stop();

  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto outer = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return std::string(e.name) == "outer"; });
  const auto inner = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return std::string(e.name) == "inner"; });
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  // The inner span lies entirely within the outer one.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  // Snapshot is sorted by start time.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(ObsTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.set_ring_capacity(64);  // applies to buffers created after this
  constexpr int kEmitted = 500;
  std::thread emitter([&] {
    for (int i = 0; i < kEmitted; ++i) {
      rec.RecordInstant(Category::kApp, "e", "i", i);
    }
  });
  emitter.join();
  rec.Stop();

  const std::vector<TraceEvent> events = rec.Snapshot();
  std::size_t from_emitter = 0;
  std::int64_t max_arg = -1;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "e") {
      ++from_emitter;
      max_arg = std::max(max_arg, e.arg);
    }
  }
  EXPECT_EQ(from_emitter, 64u);
  EXPECT_EQ(rec.dropped(), static_cast<std::uint64_t>(kEmitted - 64));
  // The newest events are the ones retained.
  EXPECT_EQ(max_arg, kEmitted - 1);
}

TEST_F(ObsTest, ConcurrentEmittersAreAllRecorded) {
  TraceRecorder& rec = TraceRecorder::Instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::latch go(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      go.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        MERCH_TRACE_SPAN(Category::kService, "work");
        MERCH_TRACE_INSTANT(Category::kPool, "tick");
        MERCH_METRIC_COUNT("obs_test_concurrent_total", 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  rec.Stop();

  std::size_t spans = 0, instants = 0;
  for (const TraceEvent& e : rec.Snapshot()) {
    if (std::string(e.name) == "work") ++spans;
    if (std::string(e.name) == "tick") ++instants;
  }
  // 2000 events per thread fit comfortably in the default ring.
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(spans, instants);
  EXPECT_EQ(MetricsRegistry::Instance()
                .GetCounter("obs_test_concurrent_total")
                .Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const TraceValidation v = ValidateChromeTrace(rec.ChromeJson());
  ASSERT_TRUE(v.ok) << v.error;
}

TEST_F(ObsTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Stop();
  MERCH_TRACE_SPAN(Category::kApp, "ignored");
  MERCH_TRACE_INSTANT(Category::kApp, "ignored");
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(ObsHistogram, BucketBoundariesAreLessOrEqual) {
  Histogram h({1.0, 2.0, 4.0});
  // A value equal to a bound belongs to that bound's bucket (Prometheus
  // `le` semantics).
  h.Observe(0.5);  // le 1.0
  h.Observe(1.0);  // le 1.0 (boundary)
  h.Observe(1.5);  // le 2.0
  h.Observe(2.0);  // le 2.0 (boundary)
  h.Observe(4.0);  // le 4.0 (boundary)
  h.Observe(9.0);  // +Inf
  const std::vector<std::uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(ObsMetrics, PrometheusTextFormat) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.Reset();
  reg.GetCounter("obs_test_requests_total").Add(3);
  reg.GetGauge("obs_test_depth").Set(2.5);
  Histogram& h = reg.GetHistogram("obs_test_latency_seconds", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(0.5);
  h.Observe(5.0);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE obs_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_latency_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative and end in +Inf.
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_sum"), std::string::npos);
}

TEST(ObsMetrics, JsonExportIsWellFormed) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.Reset();
  reg.GetCounter("obs_test_json_total").Add(11);
  reg.GetGauge("obs_test_json_gauge").Set(-1.5);
  reg.GetHistogram("obs_test_json_hist", {1.0}).Observe(0.5);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(reg.Json(), &doc, &err)) << err;
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Find("obs_test_json_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->number, 11.0);
  const JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* g = gauges->Find("obs_test_json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->number, -1.5);
  const JsonValue* hists = doc.Find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->Find("obs_test_json_hist"), nullptr);
}

TEST(ObsMetrics, ResetZeroesButKeepsIdentity) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& c = reg.GetCounter("obs_test_reset_total");
  c.Add(5);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(&c, &reg.GetCounter("obs_test_reset_total"));
}

// Tracing observes an engine run; it must never change its results.
TEST(ObsEngine, TracingIsInvisibleToResults) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", 0.01, 0.02);
  service::PlacementRequest req{"SpGEMM", "mo", 0.01, 0.02, 6, 42};
  const sim::MachineSpec machine =
      service::PlacementService::RequestMachine(req);
  const sim::SimConfig cfg = service::PlacementService::RequestSimConfig(req);

  auto run = [&] {
    baselines::MemoryOptimizerPolicy policy;
    return sim::Engine(bundle.workload, machine, cfg, &policy).Run();
  };
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Stop();
  const sim::SimResult untraced = run();
  rec.set_ring_capacity(1u << 18);
  rec.Start();
  const sim::SimResult traced = run();
  rec.Stop();

  EXPECT_EQ(untraced.total_seconds, traced.total_seconds);
  ASSERT_EQ(untraced.regions.size(), traced.regions.size());
  for (std::size_t i = 0; i < untraced.regions.size(); ++i) {
    EXPECT_EQ(untraced.regions[i].duration, traced.regions[i].duration);
  }

#if defined(MERCH_OBS_ENABLED)
  // The traced run must have produced spans from the sim and hm layers.
  const TraceValidation v = ValidateChromeTrace(rec.ChromeJson());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.categories.count("sim"), 1u);
  EXPECT_EQ(v.categories.count("hm"), 1u);
  EXPECT_GT(v.spans, 0u);
#endif
}

}  // namespace
}  // namespace merch::obs
