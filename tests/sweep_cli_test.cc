// End-to-end contract of `merchctl sweep --fused`: routing a sweep
// through PlacementService::SubmitFused (one pool job per shared app
// instance) must change throughput only, never answers. We exec the
// real binary both ways and require the outputs byte-identical after
// dropping the two wall-clock lines ("pass N: ... in X.XXs" and the
// "service:" stats line, whose coalesced/cached counters legitimately
// differ between submission paths).
#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace merch {
namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout only — stderr goes to the test log
};

CmdResult RunCtl(const std::string& args, const std::string& env = "") {
  CmdResult r;
  const std::string cmd = (env.empty() ? "" : "env " + env + " ") +
                          std::string(MERCHCTL_BIN) + " " + args;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

// Strips the wall-clock reporting lines so the comparison covers only
// simulation answers (makespans, CoVs, placements).
std::string Answers(const std::string& output) {
  std::istringstream in(output);
  std::string line;
  std::string kept;
  while (std::getline(in, line)) {
    if (line.rfind("pass ", 0) == 0) continue;
    if (line.rfind("service:", 0) == 0) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

TEST(SweepCli, FusedAndUnfusedAnswersAreByteIdentical) {
  const std::string grid =
      "sweep --apps SpGEMM,BFS --policies pm,mo,merch "
      "--scales 0.02,0.05 --work 0.1 --train-regions 6 --threads 2";
  const CmdResult plain = RunCtl(grid);
  const CmdResult fused = RunCtl(grid + " --fused");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(fused.exit_code, 0) << fused.output;

  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(fused.output));
  // Guard the filter itself: real answers must survive it.
  EXPECT_NE(plain_answers.find("makespan"), std::string::npos)
      << plain.output;
}

TEST(SweepCli, FusedSweepWithPlacementsPrintsIdenticalPlans) {
  const std::string grid =
      "sweep --apps DMRG --policies merch --scales 0.02 --work 0.1 "
      "--train-regions 6 --threads 2 --placements";
  const CmdResult plain = RunCtl(grid);
  const CmdResult fused = RunCtl(grid + " --fused");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(fused.exit_code, 0) << fused.output;
  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(fused.output));
  EXPECT_NE(plain_answers.find("DRAM"), std::string::npos) << plain.output;
}

TEST(SweepCli, IncrementalAnswersAreByteIdenticalAcrossAllAppsAndPolicies) {
  // The acceptance grid: all five apps x all five defined policies. The
  // incremental path shares one engine per (app, cache-mode) ladder and
  // forks on divergence, so this exercises every fork/converge path the
  // real sweep hits. ("sparta" is undefined for some apps; those ERROR
  // lines must match byte-for-byte too.)
  const std::string grid =
      "sweep --apps all --policies pm,mm,mo,sparta,merch "
      "--scales 0.02 --work 0.1 --train-regions 6 --threads 2";
  const CmdResult plain = RunCtl(grid);
  const CmdResult incremental = RunCtl(grid + " --incremental");
  // The sparta ERROR rows make both exits 1; what matters is that the
  // paths agree, line for line.
  EXPECT_EQ(plain.exit_code, incremental.exit_code);

  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(incremental.output));
  EXPECT_NE(plain_answers.find("makespan"), std::string::npos)
      << plain.output;
  EXPECT_NE(plain_answers.find("ERROR"), std::string::npos) << plain.output;
}

TEST(SweepCli, IncrementalSweepWithPlacementsPrintsIdenticalPlans) {
  const std::string grid =
      "sweep --apps WarpX --policies pm,mo,merch --scales 0.02 --work 0.1 "
      "--train-regions 6 --threads 2 --placements";
  const CmdResult plain = RunCtl(grid);
  const CmdResult incremental = RunCtl(grid + " --incremental");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(incremental.exit_code, 0) << incremental.output;
  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(incremental.output));
  EXPECT_NE(plain_answers.find("DRAM"), std::string::npos) << plain.output;
}

TEST(SweepCli, CkptHatchRestoresTheFusedPath) {
  // MERCH_CKPT=0 must make --incremental behave exactly like --fused:
  // same answers, and the service line reports fused groups again.
  const std::string grid =
      "sweep --apps BFS --policies pm,mo --scales 0.02 --work 0.1 "
      "--threads 1";
  const CmdResult fused = RunCtl(grid + " --fused");
  const CmdResult off = RunCtl(grid + " --incremental", "MERCH_CKPT=0");
  ASSERT_EQ(fused.exit_code, 0) << fused.output;
  ASSERT_EQ(off.exit_code, 0) << off.output;
  EXPECT_EQ(Answers(fused.output), Answers(off.output));
}

}  // namespace
}  // namespace merch
