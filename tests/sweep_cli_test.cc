// End-to-end contract of `merchctl sweep --fused`: routing a sweep
// through PlacementService::SubmitFused (one pool job per shared app
// instance) must change throughput only, never answers. We exec the
// real binary both ways and require the outputs byte-identical after
// dropping the two wall-clock lines ("pass N: ... in X.XXs" and the
// "service:" stats line, whose coalesced/cached counters legitimately
// differ between submission paths).
#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace merch {
namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout only — stderr goes to the test log
};

CmdResult RunCtl(const std::string& args) {
  CmdResult r;
  const std::string cmd = std::string(MERCHCTL_BIN) + " " + args;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

// Strips the wall-clock reporting lines so the comparison covers only
// simulation answers (makespans, CoVs, placements).
std::string Answers(const std::string& output) {
  std::istringstream in(output);
  std::string line;
  std::string kept;
  while (std::getline(in, line)) {
    if (line.rfind("pass ", 0) == 0) continue;
    if (line.rfind("service:", 0) == 0) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

TEST(SweepCli, FusedAndUnfusedAnswersAreByteIdentical) {
  const std::string grid =
      "sweep --apps SpGEMM,BFS --policies pm,mo,merch "
      "--scales 0.02,0.05 --work 0.1 --train-regions 6 --threads 2";
  const CmdResult plain = RunCtl(grid);
  const CmdResult fused = RunCtl(grid + " --fused");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(fused.exit_code, 0) << fused.output;

  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(fused.output));
  // Guard the filter itself: real answers must survive it.
  EXPECT_NE(plain_answers.find("makespan"), std::string::npos)
      << plain.output;
}

TEST(SweepCli, FusedSweepWithPlacementsPrintsIdenticalPlans) {
  const std::string grid =
      "sweep --apps DMRG --policies merch --scales 0.02 --work 0.1 "
      "--train-regions 6 --threads 2 --placements";
  const CmdResult plain = RunCtl(grid);
  const CmdResult fused = RunCtl(grid + " --fused");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(fused.exit_code, 0) << fused.output;
  const std::string plain_answers = Answers(plain.output);
  EXPECT_EQ(plain_answers, Answers(fused.output));
  EXPECT_NE(plain_answers.find("DRAM"), std::string::npos) << plain.output;
}

}  // namespace
}  // namespace merch
