// Tests for the trace-driven pattern detector (the paper's no-source-code
// fallback path, Section 5.3 Limitation).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/trace_classifier.h"

namespace merch::core {
namespace {

using trace::AccessPattern;

std::vector<std::uint64_t> StrideTrace(std::uint64_t base, std::int64_t stride,
                                       std::size_t n,
                                       std::uint32_t elem = 8) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(base + static_cast<std::uint64_t>(i) * stride * elem);
  }
  return out;
}

TEST(TraceClassifier, DetectsStream) {
  const auto t = StrideTrace(0x1000, 1, 256);
  const TraceClassification c = ClassifyTrace(t);
  EXPECT_EQ(c.pattern, AccessPattern::kStream);
  EXPECT_EQ(c.stride, 1);
  EXPECT_GT(c.confidence, 0.95);
}

TEST(TraceClassifier, DetectsReverseStream) {
  auto t = StrideTrace(0x1000, 1, 256);
  std::reverse(t.begin(), t.end());
  EXPECT_EQ(ClassifyTrace(t).pattern, AccessPattern::kStream);
}

TEST(TraceClassifier, DetectsStride) {
  const auto t = StrideTrace(0x1000, 16, 256);
  const TraceClassification c = ClassifyTrace(t);
  EXPECT_EQ(c.pattern, AccessPattern::kStrided);
  EXPECT_EQ(c.stride, 16);
}

TEST(TraceClassifier, ElementSizeMatters) {
  // Byte stride 32 = element stride 8 for 4-byte elements.
  const auto t = StrideTrace(0x1000, 8, 128, 4);
  TraceClassifierConfig cfg;
  cfg.element_bytes = 4;
  const TraceClassification c = ClassifyTrace(t, cfg);
  EXPECT_EQ(c.pattern, AccessPattern::kStrided);
  EXPECT_EQ(c.stride, 8);
}

TEST(TraceClassifier, DetectsStencil) {
  // A[i-1], A[i], A[i+1] per iteration: deltas -1, +1, +1, 0-ish pattern.
  std::vector<std::uint64_t> t;
  for (std::uint64_t i = 1; i < 100; ++i) {
    t.push_back(0x1000 + (i - 1) * 8);
    t.push_back(0x1000 + i * 8);
    t.push_back(0x1000 + (i + 1) * 8);
  }
  const TraceClassification c = ClassifyTrace(t);
  EXPECT_EQ(c.pattern, AccessPattern::kStencil);
}

TEST(TraceClassifier, DetectsRandom) {
  Rng rng(13);
  std::vector<std::uint64_t> t;
  for (int i = 0; i < 500; ++i) {
    t.push_back(0x1000 + rng.NextBelow(1 << 20) * 8);
  }
  EXPECT_EQ(ClassifyTrace(t).pattern, AccessPattern::kRandom);
}

TEST(TraceClassifier, StreamSurvivesSparseNoise) {
  Rng rng(17);
  auto t = StrideTrace(0x1000, 1, 400);
  // 5% of accesses jump elsewhere (interleaved scalar accesses).
  for (std::size_t i = 0; i < t.size(); i += 20) {
    t[i] = 0x900000 + rng.NextBelow(4096) * 8;
  }
  EXPECT_EQ(ClassifyTrace(t).pattern, AccessPattern::kStream);
}

TEST(TraceClassifier, ShortTraceIsUnknown) {
  const auto t = StrideTrace(0x1000, 1, 4);
  EXPECT_EQ(ClassifyTrace(t).pattern, AccessPattern::kUnknown);
}

TEST(TraceClassifier, AgreesWithStaticClassifierOnGeneratedTraces) {
  // Property: traces synthesised from each pattern re-classify to it.
  Rng rng(23);
  // Stream.
  EXPECT_EQ(ClassifyTrace(StrideTrace(0, 1, 200)).pattern,
            AccessPattern::kStream);
  // Strided, several widths.
  for (const std::int64_t s : {2, 4, 32, 128}) {
    EXPECT_EQ(ClassifyTrace(StrideTrace(0, s, 200)).pattern,
              AccessPattern::kStrided)
        << "stride " << s;
  }
  // Random (gather through an index array).
  std::vector<std::uint64_t> gather;
  for (int i = 0; i < 300; ++i) {
    gather.push_back(rng.NextBelow(100000) * 8);
  }
  EXPECT_EQ(ClassifyTrace(gather).pattern, AccessPattern::kRandom);
}

}  // namespace
}  // namespace merch::core
