// Correctness tests for the real application algorithms (apps/kernels):
// CSR/SpGEMM/BFS, dense linear algebra + Davidson, PIC, and tensor
// contraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "apps/kernels/csr.h"
#include "apps/kernels/dense.h"
#include "apps/kernels/pic.h"
#include "apps/kernels/tensor.h"

namespace merch::apps {
namespace {

// ------------------------------------------------------------------- CSR

CsrMatrix TinyMatrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  CsrMatrix m;
  m.rows = 3;
  m.cols = 3;
  m.row_ptr = {0, 2, 3, 5};
  m.col_idx = {0, 2, 1, 0, 2};
  m.values = {1, 2, 3, 4, 5};
  return m;
}

/// Dense reference product for validation.
std::vector<double> DenseProduct(const CsrMatrix& a, const CsrMatrix& b) {
  std::vector<double> c(a.rows * b.cols, 0.0);
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    for (std::uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      for (std::uint64_t j = b.row_ptr[a.col_idx[k]];
           j < b.row_ptr[a.col_idx[k] + 1]; ++j) {
        c[i * b.cols + b.col_idx[j]] += a.values[k] * b.values[j];
      }
    }
  }
  return c;
}

TEST(Csr, SymbolicCountsMatchDenseReference) {
  const CsrMatrix a = TinyMatrix();
  const auto nnz = SpGemmSymbolic(a, a);
  const auto dense = DenseProduct(a, a);
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::uint64_t expected = 0;
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (dense[i * 3 + j] != 0.0) ++expected;
    }
    EXPECT_EQ(nnz[i], expected) << "row " << i;
  }
}

TEST(Csr, NumericMatchesDenseReference) {
  const CsrMatrix a = TinyMatrix();
  const CsrMatrix c = SpGemmNumeric(a, a);
  const auto dense = DenseProduct(a, a);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint64_t k = c.row_ptr[i]; k < c.row_ptr[i + 1]; ++k) {
      EXPECT_NEAR(c.values[k], dense[i * 3 + c.col_idx[k]], 1e-12);
    }
    // Every dense nonzero is present.
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (dense[i * 3 + j] == 0.0) continue;
      bool found = false;
      for (std::uint64_t k = c.row_ptr[i]; k < c.row_ptr[i + 1]; ++k) {
        found |= c.col_idx[k] == j;
      }
      EXPECT_TRUE(found) << "missing C(" << i << "," << j << ")";
    }
  }
}

TEST(Csr, NumericOnGeneratedMatrixMatchesReference) {
  Rng rng(5);
  const CsrMatrix a = GenerateKronMatrix(64, 4.0, 0.8, rng);
  const CsrMatrix c = SpGemmNumeric(a, a);
  const auto dense = DenseProduct(a, a);
  double max_err = 0;
  for (std::uint32_t i = 0; i < c.rows; ++i) {
    for (std::uint64_t k = c.row_ptr[i]; k < c.row_ptr[i + 1]; ++k) {
      max_err = std::max(max_err,
                         std::abs(c.values[k] - dense[i * 64 + c.col_idx[k]]));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(Csr, GeneratorProducesValidCsr) {
  Rng rng(7);
  const CsrMatrix m = GenerateKronMatrix(1024, 8.0, 0.9, rng);
  EXPECT_EQ(m.row_ptr.size(), 1025u);
  EXPECT_EQ(m.row_ptr[0], 0u);
  EXPECT_EQ(m.row_ptr[1024], m.nnz());
  for (std::uint32_t i = 0; i < 1024; ++i) {
    EXPECT_LE(m.row_ptr[i], m.row_ptr[i + 1]);
    for (std::uint64_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      EXPECT_LT(m.col_idx[k], 1024u);
      if (k > m.row_ptr[i]) {
        EXPECT_LE(m.col_idx[k - 1], m.col_idx[k]) << "rows must be sorted";
      }
    }
  }
  // Average degree near the request.
  EXPECT_NEAR(static_cast<double>(m.nnz()) / 1024.0, 8.0, 2.0);
}

TEST(Csr, GeneratorDegreeSkew) {
  Rng rng(9);
  const CsrMatrix m = GenerateKronMatrix(4096, 16.0, 1.0, rng);
  std::vector<std::uint64_t> degrees;
  for (std::uint32_t i = 0; i < m.rows; ++i) {
    degrees.push_back(m.row_ptr[i + 1] - m.row_ptr[i]);
  }
  std::sort(degrees.begin(), degrees.end());
  // Power-law: the top 1% of rows hold far more than 1% of edges.
  std::uint64_t top = 0;
  for (std::size_t i = degrees.size() - 41; i < degrees.size(); ++i) {
    top += degrees[i];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(m.nnz()), 0.05);
}

TEST(Csr, SpGemmFlopsMatchesManualCount) {
  const CsrMatrix a = TinyMatrix();
  // Row 0 of A has cols {0,2} -> flops = nnz(B row 0) + nnz(B row 2) = 2+2.
  EXPECT_EQ(SpGemmFlops(a, a, 0, 1), 4u);
  EXPECT_EQ(SpGemmFlops(a, a, 0, 3),
            SpGemmFlops(a, a, 0, 1) + SpGemmFlops(a, a, 1, 2) +
                SpGemmFlops(a, a, 2, 3));
}

TEST(Bfs, LevelsCorrectOnPathGraph) {
  // 0 -> 1 -> 2 -> 3 chain.
  CsrMatrix g;
  g.rows = 4;
  g.cols = 4;
  g.row_ptr = {0, 1, 2, 3, 3};
  g.col_idx = {1, 2, 3};
  g.values = {1, 1, 1};
  std::vector<std::uint64_t> relaxed;
  const auto levels = BfsLevels(g, 0, 2, &relaxed);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 2u);
  EXPECT_EQ(levels[3], 3u);
  // Partition 0 (vertices 0,1) relaxed 2 edges, partition 1 relaxed 1.
  EXPECT_EQ(relaxed[0], 2u);
  EXPECT_EQ(relaxed[1], 1u);
}

TEST(Bfs, UnreachableVerticesMarked) {
  CsrMatrix g;
  g.rows = 3;
  g.cols = 3;
  g.row_ptr = {0, 1, 1, 1};
  g.col_idx = {1};
  g.values = {1};
  const auto levels = BfsLevels(g, 0, 1, nullptr);
  EXPECT_EQ(levels[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Bfs, RelaxedEdgesBoundedByTotal) {
  Rng rng(11);
  const CsrMatrix g = GenerateKronMatrix(2048, 8.0, 0.9, rng);
  std::vector<std::uint64_t> relaxed;
  BfsLevels(g, 1, 4, &relaxed);
  std::uint64_t total = 0;
  for (const auto e : relaxed) total += e;
  EXPECT_LE(total, g.nnz());
}

// ----------------------------------------------------------------- Dense

TEST(Dense, MatMulMatchesManual) {
  DenseMatrix a = DenseMatrix::Zero(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const DenseMatrix c = MatMul(a, a);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 7);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 10);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 15);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 22);
}

TEST(Dense, MatVecMatchesMatMul) {
  Rng rng(13);
  const DenseMatrix a = DenseMatrix::Random(5, 5, rng);
  DenseMatrix x_mat = DenseMatrix::Zero(5, 1);
  std::vector<double> x(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    x[i] = rng.NextDoubleInRange(-1, 1);
    x_mat.at(i, 0) = x[i];
  }
  const auto y = MatVec(a, x);
  const DenseMatrix y_mat = MatMul(a, x_mat);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(y[i], y_mat.at(i, 0), 1e-12);
  }
}

TEST(Dense, DavidsonFindsEigenpair) {
  Rng rng(17);
  const DenseMatrix a = DenseMatrix::RandomSymmetric(48, rng);
  const DavidsonResult r = DavidsonSolve(a, 1e-9, 500);
  // Residual ||A v - lambda v|| should be tiny.
  const auto av = MatVec(a, r.eigenvector);
  double res = 0;
  for (std::uint32_t i = 0; i < 48; ++i) {
    const double d = av[i] - r.eigenvalue * r.eigenvector[i];
    res += d * d;
  }
  EXPECT_LT(std::sqrt(res), 1e-5 * std::abs(r.eigenvalue));
  EXPECT_NEAR(Norm2(r.eigenvector), 1.0, 1e-6);
  EXPECT_GT(r.iterations, 1);
}

// -------------------------------------------------------------------- PIC

TEST(Pic, InitialisationShape) {
  Rng rng(19);
  PicConfig cfg;
  cfg.cells = 128;
  cfg.particles = 1024;
  const PicState s = InitTwoStream(cfg, rng);
  EXPECT_EQ(s.position.size(), 1024u);
  EXPECT_EQ(s.efield.size(), 128u);
  for (const double x : s.position) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 128.0);
  }
}

TEST(Pic, ChargeDepositConservesParticles) {
  Rng rng(23);
  PicConfig cfg;
  cfg.cells = 64;
  cfg.particles = 4096;
  PicState s = InitTwoStream(cfg, rng);
  PicStep(s, cfg.dt);
  // Density integrates to cells (normalised weight: mean density 1).
  double total = 0;
  for (const double d : s.density) total += d;
  EXPECT_NEAR(total, 64.0, 1e-6);
}

TEST(Pic, EnergyApproximatelyConserved) {
  Rng rng(29);
  PicConfig cfg;
  cfg.cells = 256;
  cfg.particles = 1 << 14;
  cfg.dt = 0.02;
  PicState s = InitTwoStream(cfg, rng);
  const double e0 = PicEnergy(s);
  double e_last = e0;
  for (int step = 0; step < 50; ++step) e_last = PicStep(s, cfg.dt);
  // The two-stream instability converts beam kinetic energy into field
  // energy; the crude cumulative-sum field solve is not exactly
  // conservative, so we assert boundedness (no numerical blow-up), not
  // strict conservation.
  EXPECT_GT(e_last, 0.2 * e0);
  EXPECT_LT(e_last, 5.0 * e0);
}

TEST(Pic, ParticlesStayInDomain) {
  Rng rng(31);
  PicConfig cfg;
  cfg.cells = 64;
  cfg.particles = 2048;
  PicState s = InitTwoStream(cfg, rng);
  for (int step = 0; step < 20; ++step) PicStep(s, 0.1);
  for (const double x : s.position) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 64.0);
  }
}

// ----------------------------------------------------------------- Tensor

TEST(Tensor, PartitionCoversPlaneWithoutOverlap) {
  const auto tiles = PartitionTiles(400, 400, 24);
  std::uint64_t covered = 0;
  for (const TensorTile& t : tiles) covered += t.elements();
  EXPECT_EQ(covered, 400u * 400u);
}

TEST(Tensor, PartitionEdgeTilesSmaller) {
  const auto tiles = PartitionTiles(400, 400, 24);
  std::uint64_t min_e = UINT64_MAX, max_e = 0;
  for (const TensorTile& t : tiles) {
    if (t.elements() == 0) continue;
    min_e = std::min(min_e, t.elements());
    max_e = std::max(max_e, t.elements());
  }
  EXPECT_LT(min_e, max_e);  // integer tiling leaves uneven edges
}

TEST(Tensor, ContractionMatchesNaive) {
  Rng rng(37);
  const Tensor4 a = Tensor4::Random(6, 5, 4, 3, rng);
  std::vector<double> m(4 * 3);
  for (double& v : m) v = rng.NextDoubleInRange(-1, 1);
  TensorTile tile{.a_begin = 1, .a_end = 4, .b_begin = 0, .b_end = 5};
  std::vector<double> c;
  const std::uint64_t flops = ContractTile(a, m, tile, &c);
  EXPECT_EQ(flops, tile.elements() * 2 * 12);
  std::size_t out = 0;
  for (std::uint32_t ai = 1; ai < 4; ++ai) {
    for (std::uint32_t bi = 0; bi < 5; ++bi) {
      double expect = 0;
      for (std::uint32_t i = 0; i < 4; ++i) {
        for (std::uint32_t j = 0; j < 3; ++j) {
          expect += a.at(ai, bi, i, j) * m[i * 3 + j];
        }
      }
      EXPECT_NEAR(c[out++], expect, 1e-12);
    }
  }
}

}  // namespace
}  // namespace merch::apps
