// Bit-identity contract of the engine hot-path optimisations.
//
// The residency index, timing-base memoization, parallel timing refresh,
// and the index-backed eviction gather are pure constant-factor changes:
// every SimResult field must match the pre-index engine exactly, double
// for double. These tests run the full app/policy matrix across engine
// variants and compare results with operator== semantics (no tolerances),
// plus randomized brute-force checks of the page-table residency index
// itself. They carry the "perf" ctest label (`ctest -L perf`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "core/merchandiser.h"
#include "hm/migration.h"
#include "hm/page_table.h"
#include "sim/engine.h"

namespace merch {
namespace {

constexpr double kScale = 1.0 / 64;

sim::MachineSpec ScaledMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kDram].capacity_bytes) * kScale);
  m.hm[hm::Tier::kPm].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kPm].capacity_bytes) * kScale);
  return m;
}

sim::SimConfig ScaledConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.02;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 512 * KiB;
  return cfg;
}

const core::MerchandiserSystem& System() {
  static const core::MerchandiserSystem* kSystem = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 12;
    cfg.placements_per_region = 4;
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

struct RunOutcome {
  sim::SimResult result;
  sim::EngineCounters counters;
};

/// One engine run with a fresh policy instance (policies are stateful).
RunOutcome RunOnce(const apps::AppBundle& bundle, const std::string& policy,
                   const sim::SimConfig& cfg) {
  const sim::MachineSpec machine = ScaledMachine();
  baselines::PmOnlyPolicy pm;
  baselines::MemoryModePolicy mm;
  baselines::MemoryOptimizerPolicy mo;
  std::unique_ptr<core::MerchandiserPolicy> merch;
  sim::PlacementPolicy* p = nullptr;
  if (policy == "pm") {
    p = &pm;
  } else if (policy == "mm") {
    p = &mm;
  } else if (policy == "mo") {
    p = &mo;
  } else {
    merch = System().MakePolicy(bundle.workload, machine);
    p = merch.get();
  }
  sim::Engine engine(bundle.workload, machine, cfg, p);
  RunOutcome out;
  out.result = engine.Run();
  out.counters = engine.counters();
  return out;
}

/// Exact (no-tolerance) equality over every SimResult field.
void ExpectIdentical(const sim::SimResult& a, const sim::SimResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.migration.pages_to_dram, b.migration.pages_to_dram);
  EXPECT_EQ(a.migration.pages_to_pm, b.migration.pages_to_pm);
  EXPECT_EQ(a.migration.bytes_to_dram, b.migration.bytes_to_dram);
  EXPECT_EQ(a.migration.bytes_to_pm, b.migration.bytes_to_pm);
  EXPECT_EQ(a.migration.failed_capacity, b.migration.failed_capacity);
  ASSERT_EQ(a.bandwidth.size(), b.bandwidth.size());
  for (std::size_t i = 0; i < a.bandwidth.size(); ++i) {
    EXPECT_EQ(a.bandwidth[i].t, b.bandwidth[i].t);
    EXPECT_EQ(a.bandwidth[i].dram_gbps, b.bandwidth[i].dram_gbps);
    EXPECT_EQ(a.bandwidth[i].pm_gbps, b.bandwidth[i].pm_gbps);
    EXPECT_EQ(a.bandwidth[i].migration_gbps, b.bandwidth[i].migration_gbps);
  }
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    const sim::RegionStats& ra = a.regions[r];
    const sim::RegionStats& rb = b.regions[r];
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.start_time, rb.start_time);
    EXPECT_EQ(ra.duration, rb.duration);
    ASSERT_EQ(ra.tasks.size(), rb.tasks.size());
    for (std::size_t t = 0; t < ra.tasks.size(); ++t) {
      const sim::TaskStats& ta = ra.tasks[t];
      const sim::TaskStats& tb = rb.tasks[t];
      EXPECT_EQ(ta.task, tb.task);
      EXPECT_EQ(ta.exec_seconds, tb.exec_seconds);
      EXPECT_EQ(ta.barrier_wait, tb.barrier_wait);
      EXPECT_EQ(ta.agg.instructions, tb.agg.instructions);
      EXPECT_EQ(ta.agg.program_accesses, tb.agg.program_accesses);
      EXPECT_EQ(ta.agg.mm_accesses, tb.agg.mm_accesses);
      EXPECT_EQ(ta.agg.l2_misses, tb.agg.l2_misses);
      EXPECT_EQ(ta.agg.compute_seconds, tb.agg.compute_seconds);
      EXPECT_EQ(ta.agg.memory_seconds, tb.agg.memory_seconds);
      EXPECT_EQ(ta.pmcs, tb.pmcs);
      EXPECT_EQ(ta.object_program_accesses, tb.object_program_accesses);
      EXPECT_EQ(ta.object_mm_accesses, tb.object_mm_accesses);
      EXPECT_EQ(ta.kernel_seconds, tb.kernel_seconds);
    }
  }
}

// --- Engine variants -------------------------------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, VariantsBitIdentical) {
  const std::string app = GetParam();
  const apps::AppBundle bundle = apps::BuildApp(app, kScale, kScale / 4);
  for (const std::string policy : {"pm", "mm", "mo", "merch"}) {
    const RunOutcome baseline = RunOnce(bundle, policy, ScaledConfig());

    sim::SimConfig no_index = ScaledConfig();
    no_index.sweep_index = false;
    ExpectIdentical(baseline.result, RunOnce(bundle, policy, no_index).result,
                    app + "/" + policy + " sweep_index=off");

    sim::SimConfig no_memo = ScaledConfig();
    no_memo.timing_memo = false;
    const RunOutcome plain = RunOnce(bundle, policy, no_memo);
    ExpectIdentical(baseline.result, plain.result,
                    app + "/" + policy + " timing_memo=off");
    // Without memoization every timing evaluation rebuilds its base; with
    // it the rebuilds are the small invalidated fraction.
    EXPECT_EQ(plain.counters.base_builds, plain.counters.timing_evals);
    EXPECT_LT(baseline.counters.base_builds, baseline.counters.timing_evals);

    sim::SimConfig threads = ScaledConfig();
    threads.timing_threads = 4;
    threads.timing_fanout_min_lanes = 0;  // force the parallel path
    ExpectIdentical(baseline.result, RunOnce(bundle, policy, threads).result,
                    app + "/" + policy + " timing_threads=4");
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, EngineEquivalence,
                         ::testing::ValuesIn(apps::AppNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// Full optimization matrix: {SIMD lanes on/off} x {timing_threads 1,3,8}
/// x {epoch arena on/off}, each combination run on a randomized
/// app/policy draw and compared field-for-field against the default
/// single-threaded engine. The toggles are resolved from the environment
/// per Engine construction, exactly as production runs resolve them.
TEST(EngineEquivalence, RandomizedSimdThreadArenaMatrixBitIdentical) {
  std::mt19937_64 rng(0x5EED);
  const std::vector<std::string>& apps = apps::AppNames();
  const std::vector<std::string> policies = {"pm", "mm", "mo", "merch"};
  for (const bool simd : {true, false}) {
    for (const std::size_t threads : {1u, 3u, 8u}) {
      for (const bool arena : {true, false}) {
        const std::string app = apps[rng() % apps.size()];
        const std::string policy = policies[rng() % policies.size()];
        const std::string label = app + "/" + policy + " simd=" +
                                  (simd ? "1" : "0") + " threads=" +
                                  std::to_string(threads) + " arena=" +
                                  (arena ? "1" : "0");
        const apps::AppBundle bundle =
            apps::BuildApp(app, kScale, kScale / 4);
        const RunOutcome baseline = RunOnce(bundle, policy, ScaledConfig());

        setenv("MERCH_SIMD", simd ? "1" : "0", 1);
        setenv("MERCH_ARENA", arena ? "1" : "0", 1);
        sim::SimConfig cfg = ScaledConfig();
        cfg.timing_threads = threads;
        cfg.timing_fanout_min_lanes = 0;  // force the parallel path
        const RunOutcome variant = RunOnce(bundle, policy, cfg);
        unsetenv("MERCH_SIMD");
        unsetenv("MERCH_ARENA");
        ExpectIdentical(baseline.result, variant.result, label);
      }
    }
  }
}

TEST(EngineEquivalence, EnvEscapeHatchesDisableBothPaths) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", kScale, kScale / 4);
  const RunOutcome baseline = RunOnce(bundle, "mo", ScaledConfig());
  setenv("MERCH_SWEEP_INDEX", "0", 1);
  setenv("MERCH_ENGINE_MEMO", "0", 1);
  const RunOutcome legacy = RunOnce(bundle, "mo", ScaledConfig());
  unsetenv("MERCH_SWEEP_INDEX");
  unsetenv("MERCH_ENGINE_MEMO");
  ExpectIdentical(baseline.result, legacy.result, "env hatches");
  // The hatches took effect: every evaluation was a full build.
  EXPECT_EQ(legacy.counters.base_builds, legacy.counters.timing_evals);
  EXPECT_LT(baseline.counters.base_builds, baseline.counters.timing_evals);
}

// --- Residency index vs brute force ----------------------------------------

hm::HmSpec TinySpec() {
  hm::HmSpec spec = hm::HmSpec::PaperOptane();
  spec[hm::Tier::kDram].capacity_bytes = 96 * 4096;
  spec[hm::Tier::kPm].capacity_bytes = 512 * 4096;
  return spec;
}

/// The move listener is the ground truth: whatever the table reports
/// moved is mirrored into a flat tier array, and every index query must
/// agree with a linear scan of that array.
struct BruteMirror {
  std::vector<hm::Tier> tier;
  void Attach(hm::PageTable& pt) {
    pt.SetMoveListener([this](PageId p, hm::Tier, hm::Tier to) {
      tier[p] = to;
    });
  }
};

TEST(ResidencyIndex, RandomOpsMatchBruteForce) {
  std::mt19937_64 rng(0xC0FFEE);
  hm::PageTable pt(TinySpec(), 4096);
  std::vector<ObjectId> objects;
  for (const std::uint64_t pages : {37u, 5u, 64u, 3u, 129u, 18u, 1u, 70u}) {
    const auto id = pt.RegisterObject(pages * 4096,
                                      pages % 2 ? hm::Tier::kDram
                                                : hm::Tier::kPm);
    ASSERT_TRUE(id.has_value());
    objects.push_back(*id);
  }
  BruteMirror brute;
  brute.tier.resize(pt.num_pages());
  for (PageId p = 0; p < pt.num_pages(); ++p) brute.tier[p] = pt.page_tier(p);
  brute.Attach(pt);

  auto live_object = [&]() -> std::optional<ObjectId> {
    std::vector<ObjectId> live;
    for (const ObjectId id : objects) {
      if (pt.is_live(id)) live.push_back(id);
    }
    if (live.empty()) return std::nullopt;
    return live[rng() % live.size()];
  };

  int releases = 0;
  for (int op = 0; op < 4000; ++op) {
    const auto obj = live_object();
    if (!obj.has_value()) break;
    const hm::ObjectExtent& e = pt.extent(*obj);
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
        pt.MovePage(e.first_page + rng() % e.num_pages,
                    rng() % 2 ? hm::Tier::kDram : hm::Tier::kPm);
        break;
      case 3:
      case 4:
        pt.MoveHottest(*obj, rng() % 12,
                       rng() % 2 ? hm::Tier::kDram : hm::Tier::kPm);
        break;
      case 5:
      case 6:
        pt.EvictColdest(*obj, rng() % 12,
                        rng() % 2 ? hm::Tier::kDram : hm::Tier::kPm);
        break;
      default:
        if (releases < 2 && op > 1000) {
          pt.ReleaseObject(*obj);
          ++releases;
        }
        break;
    }

    // Spot-check every index query against the brute mirror.
    const ObjectId probe = objects[rng() % objects.size()];
    const hm::ObjectExtent& pe = pt.extent(probe);
    const std::uint64_t rank = rng() % pe.num_pages;
    EXPECT_EQ(pt.page_rank_on_dram(probe, rank),
              brute.tier[pe.first_page + rank] == hm::Tier::kDram);
    std::uint64_t r0 = rng() % (pe.num_pages + 1);
    std::uint64_t r1 = rng() % (pe.num_pages + 1);
    if (r0 > r1) std::swap(r0, r1);
    std::uint64_t expect = 0;
    for (std::uint64_t r = r0; r < r1; ++r) {
      if (brute.tier[pe.first_page + r] == hm::Tier::kDram) ++expect;
    }
    ASSERT_EQ(pt.dram_pages_in_rank_range(probe, r0, r1), expect);
    if (pt.is_live(probe)) {
      std::uint64_t on_dram = 0;
      for (std::uint64_t r = 0; r < pe.num_pages; ++r) {
        if (brute.tier[pe.first_page + r] == hm::Tier::kDram) ++on_dram;
      }
      ASSERT_EQ(pt.object_pages_on(probe, hm::Tier::kDram), on_dram);
      // FindRank / FindRankBefore agree with linear scans.
      const bool want_dram = rng() % 2;
      const std::uint64_t start = rng() % pe.num_pages;
      std::uint64_t first = pe.num_pages;
      for (std::uint64_t r = start; r < pe.num_pages; ++r) {
        if ((brute.tier[pe.first_page + r] == hm::Tier::kDram) == want_dram) {
          first = r;
          break;
        }
      }
      EXPECT_EQ(pt.FindRank(probe, start, want_dram), first);
      const std::uint64_t end = rng() % (pe.num_pages + 1);
      std::uint64_t last = pe.num_pages;
      for (std::uint64_t r = end; r > 0; --r) {
        if ((brute.tier[pe.first_page + r - 1] == hm::Tier::kDram) ==
            want_dram) {
          last = r - 1;
          break;
        }
      }
      EXPECT_EQ(pt.FindRankBefore(probe, end, want_dram), last);
    } else {
      EXPECT_EQ(pt.object_pages_on(probe, hm::Tier::kDram), 0u);
    }
    const PageId page = rng() % pt.num_pages();
    const auto owner = pt.ObjectOfPage(page);
    std::optional<ObjectId> expect_owner;
    for (const ObjectId id : objects) {
      const hm::ObjectExtent& oe = pt.extent(id);
      if (pt.is_live(id) && page >= oe.first_page &&
          page < oe.first_page + oe.num_pages) {
        expect_owner = id;
      }
    }
    ASSERT_EQ(owner, expect_owner);
  }
  EXPECT_EQ(releases, 2);
}

/// legacy_scan routes lookups and bulk moves through the pre-index linear
/// scans; the same operation sequence must produce the identical move
/// stream (same pages, same order) on both configurations.
TEST(ResidencyIndex, LegacyScanIsBitIdentical) {
  hm::PageTable fast(TinySpec(), 4096);
  hm::PageTable legacy(TinySpec(), 4096);
  legacy.set_legacy_scan(true);
  std::vector<std::pair<PageId, hm::Tier>> fast_moves, legacy_moves;
  fast.SetMoveListener(
      [&](PageId p, hm::Tier, hm::Tier to) { fast_moves.emplace_back(p, to); });
  legacy.SetMoveListener([&](PageId p, hm::Tier, hm::Tier to) {
    legacy_moves.emplace_back(p, to);
  });
  for (hm::PageTable* pt : {&fast, &legacy}) {
    for (const std::uint64_t pages : {23u, 64u, 7u, 130u, 41u}) {
      ASSERT_TRUE(pt->RegisterObject(pages * 4096,
                                     pages % 2 ? hm::Tier::kDram
                                               : hm::Tier::kPm));
    }
  }
  hm::MigrationEngine fast_mig(fast);
  hm::MigrationEngine legacy_mig(legacy);
  // Deterministic synthetic heat: hash of the page id.
  const auto heat = [](PageId p) {
    return static_cast<double>((p * 2654435761u) % 97);
  };
  std::mt19937_64 rng(7);
  for (int op = 0; op < 600; ++op) {
    const ObjectId obj = rng() % fast.num_objects();
    const std::uint64_t k = rng() % 9;
    const hm::Tier t = rng() % 2 ? hm::Tier::kDram : hm::Tier::kPm;
    switch (rng() % 4) {
      case 0:
        ASSERT_EQ(fast.MoveHottest(obj, k, t), legacy.MoveHottest(obj, k, t));
        break;
      case 1:
        ASSERT_EQ(fast.EvictColdest(obj, k, t),
                  legacy.EvictColdest(obj, k, t));
        break;
      case 2: {
        const PageId p = rng() % fast.num_pages();
        ASSERT_EQ(fast.MovePage(p, t), legacy.MovePage(p, t));
        ASSERT_EQ(fast.ObjectOfPage(p), legacy.ObjectOfPage(p));
        break;
      }
      default:
        // The index-backed gather + nth_element selection must evict the
        // same pages in the same order as the legacy full sort.
        ASSERT_EQ(fast_mig.MakeRoomInDram(k * 3, heat),
                  legacy_mig.MakeRoomInDram(k * 3, heat));
        break;
    }
    ASSERT_EQ(fast_moves, legacy_moves);
  }
  for (PageId p = 0; p < fast.num_pages(); ++p) {
    ASSERT_EQ(fast.page_tier(p), legacy.page_tier(p));
  }
}

}  // namespace
}  // namespace merch
