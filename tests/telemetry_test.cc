// Edge cases of the SimResult summary metrics (the Figure 5 / A.C.V
// inputs): empty results, degenerate regions, zero durations.
#include "sim/telemetry.h"

#include <gtest/gtest.h>

namespace merch::sim {
namespace {

TaskStats Task(TaskId id, double exec) {
  TaskStats t;
  t.task = id;
  t.exec_seconds = exec;
  return t;
}

RegionStats Region(double duration, std::vector<TaskStats> tasks) {
  RegionStats r;
  r.duration = duration;
  r.tasks = std::move(tasks);
  return r;
}

TEST(Telemetry, EmptyResultYieldsZeroCovAndNoTimes) {
  SimResult r;
  EXPECT_EQ(r.AverageCoV(), 0.0);
  EXPECT_TRUE(r.NormalizedTaskTimes().empty());
}

TEST(Telemetry, SingleTaskRegionIsSkippedByCov) {
  // CoV of one sample is undefined; the region must not drag the average
  // toward zero.
  SimResult r;
  r.regions.push_back(Region(2.0, {Task(0, 2.0)}));
  EXPECT_EQ(r.AverageCoV(), 0.0);
  // ...but its normalized time still exists (2.0 / 2.0).
  const std::vector<double> times = r.NormalizedTaskTimes();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
}

TEST(Telemetry, ZeroDurationRegionIsSkippedByNormalizedTimes) {
  // A zero-length region cannot normalize (division by zero); it must be
  // dropped rather than emit inf/nan.
  SimResult r;
  r.regions.push_back(Region(0.0, {Task(0, 0.0), Task(1, 0.0)}));
  r.regions.push_back(Region(4.0, {Task(0, 2.0), Task(1, 4.0)}));
  const std::vector<double> times = r.NormalizedTaskTimes();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
}

TEST(Telemetry, EmptyRegionContributesNothing) {
  SimResult r;
  r.regions.push_back(Region(1.0, {}));
  EXPECT_EQ(r.AverageCoV(), 0.0);
  EXPECT_TRUE(r.NormalizedTaskTimes().empty());
}

TEST(Telemetry, PerfectlyBalancedRegionHasZeroCov) {
  SimResult r;
  r.regions.push_back(Region(3.0, {Task(0, 3.0), Task(1, 3.0), Task(2, 3.0)}));
  EXPECT_DOUBLE_EQ(r.AverageCoV(), 0.0);
}

TEST(Telemetry, CovAveragesOnlyEligibleRegions) {
  SimResult r;
  // Eligible: two tasks, imbalanced (CoV > 0).
  r.regions.push_back(Region(4.0, {Task(0, 2.0), Task(1, 4.0)}));
  // Ineligible: single task — must not dilute the average.
  r.regions.push_back(Region(1.0, {Task(0, 1.0)}));
  const double cov_one_region = r.AverageCoV();
  EXPECT_GT(cov_one_region, 0.0);

  SimResult only_eligible;
  only_eligible.regions.push_back(r.regions.front());
  EXPECT_DOUBLE_EQ(cov_one_region, only_eligible.AverageCoV());
}

}  // namespace
}  // namespace merch::sim
