// Tests for the sampling profilers: PTE-scan (MemoryOptimizer-style),
// Thermostat-style DRAM sampling, and PEBS-style event sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "profiler/pebs.h"
#include "profiler/pte_scan.h"
#include "profiler/thermostat.h"
#include "trace/synthetic_trace.h"

namespace merch::profiler {
namespace {

using trace::HeatProfile;
using trace::SyntheticAccessSource;
using trace::SyntheticObjectSpec;

SyntheticAccessSource HotColdSource() {
  return SyntheticAccessSource({
      // Object 0: hot PM object (task 0).
      {.task = 0, .num_pages = 64, .heat = HeatProfile::Zipf(1.0),
       .epoch_accesses = 100000, .tier = hm::Tier::kPm},
      // Object 1: completely cold PM object (task 1).
      {.task = 1, .num_pages = 64, .heat = HeatProfile::Uniform(),
       .epoch_accesses = 0, .tier = hm::Tier::kPm},
      // Object 2: warm DRAM object (task 2).
      {.task = 2, .num_pages = 32, .heat = HeatProfile::Uniform(),
       .epoch_accesses = 3200, .tier = hm::Tier::kDram},
  });
}

TEST(PteScan, FindsOnlyAccessedPmPages) {
  const auto src = HotColdSource();
  PteScanProfiler profiler({.sample_pages = 128, .scans_per_interval = 12},
                           42);
  const auto hot = profiler.Profile(src);
  EXPECT_FALSE(hot.empty());
  for (const HotPage& h : hot) {
    EXPECT_EQ(src.PageTier(h.page), hm::Tier::kPm);
    EXPECT_LT(h.page, 64u) << "cold object pages must not appear";
    EXPECT_GT(h.est_accesses, 0.0);
  }
}

TEST(PteScan, SortedDescending) {
  const auto src = HotColdSource();
  PteScanProfiler profiler({.sample_pages = 128}, 43);
  const auto hot = profiler.Profile(src);
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].est_accesses, hot[i].est_accesses);
  }
}

TEST(PteScan, EstimatesSaturate) {
  // A page receiving far more accesses than scan rounds cannot be
  // distinguished beyond the saturation cap — the paper's core argument
  // about indiscriminate PTE-based profiling.
  const auto src = HotColdSource();
  PteScanProfiler profiler({.sample_pages = 128, .scans_per_interval = 10},
                           44);
  const auto hot = profiler.Profile(src);
  ASSERT_FALSE(hot.empty());
  for (const HotPage& h : hot) {
    EXPECT_LE(h.est_accesses, 10.0 * 3.0 + 1e-9);
  }
}

TEST(PteScan, AllTiersWhenNotPmOnly) {
  const auto src = HotColdSource();
  PteScanProfiler profiler({.sample_pages = 160, .pm_only = false}, 45);
  const auto hot = profiler.Profile(src);
  bool saw_dram = false;
  for (const HotPage& h : hot) {
    saw_dram |= src.PageTier(h.page) == hm::Tier::kDram;
  }
  EXPECT_TRUE(saw_dram);
}

TEST(PteScan, AggregationAttributesByObjectAndTask) {
  const auto src = HotColdSource();
  PteScanProfiler profiler({.sample_pages = 128}, 46);
  const auto hot = profiler.Profile(src);
  const auto by_object = AggregateByObject(hot, src, 3);
  const auto by_task = AggregateByTask(hot, src, 3);
  EXPECT_GT(by_object[0], 0.0);
  EXPECT_EQ(by_object[1], 0.0);
  EXPECT_EQ(by_object[2], 0.0);  // DRAM pages excluded by pm_only sampling
  EXPECT_GT(by_task[0], 0.0);
  EXPECT_EQ(by_task[1], 0.0);
}

TEST(PteScan, DeterministicForSeed) {
  const auto src = HotColdSource();
  PteScanProfiler a({.sample_pages = 64}, 7);
  PteScanProfiler b({.sample_pages = 64}, 7);
  const auto ha = a.Profile(src);
  const auto hb = b.Profile(src);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].page, hb[i].page);
    EXPECT_DOUBLE_EQ(ha[i].est_accesses, hb[i].est_accesses);
  }
}

TEST(SaturatedHeat, JustSweptLooksLikePersistentlyHot) {
  const auto src = HotColdSource();
  // Page 0 (very hot) and a mid page of object 0 both saturate.
  const double hot0 = SaturatedEvictionHeat(src, 0, 12, 1);
  const double cold = SaturatedEvictionHeat(src, 64, 12, 1);  // 0 accesses
  EXPECT_GT(hot0, 11.0);
  EXPECT_LT(cold, 1.0);  // only jitter
}

TEST(Thermostat, ProfilesOnlyDram) {
  const auto src = HotColdSource();
  ThermostatSampler sampler({}, 48);
  const auto pages = sampler.ProfileDram(src);
  EXPECT_EQ(pages.size(), 32u);
  for (const HotPage& h : pages) {
    EXPECT_EQ(src.PageTier(h.page), hm::Tier::kDram);
  }
}

TEST(Thermostat, EstimatesUnbiasedWithinTolerance) {
  const auto src = HotColdSource();
  ThermostatSampler sampler({.sample_sigma = 0.35}, 49);
  const auto pages = sampler.ProfileDram(src);
  double total = 0;
  for (const HotPage& h : pages) total += h.est_accesses;
  // True DRAM total is 3200; lognormal(0, .35) has mean e^{sigma^2/2}~1.063.
  EXPECT_NEAR(total, 3200.0 * 1.063, 3200.0 * 0.25);
}

TEST(Thermostat, ColdPagesAreColdestFirst) {
  SyntheticAccessSource src({
      {.task = 0, .num_pages = 16, .heat = HeatProfile::Zipf(1.2),
       .epoch_accesses = 100, .tier = hm::Tier::kDram},
  });
  ThermostatSampler sampler({.cold_threshold = 2.0}, 50);
  const auto cold = sampler.ColdDramPages(src);
  for (std::size_t i = 1; i < cold.size(); ++i) {
    EXPECT_LE(cold[i - 1].est_accesses, cold[i].est_accesses);
  }
  for (const HotPage& h : cold) EXPECT_LT(h.est_accesses, 2.0);
}

// PEBS property: over many estimates, mean error shrinks like sqrt(n).
class PebsAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(PebsAccuracy, MeanApproximatesTruth) {
  const double truth = GetParam();
  PebsSampler sampler(1000.0, 51);
  double sum = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) sum += sampler.Estimate(truth);
  const double mean = sum / trials;
  EXPECT_NEAR(mean, truth, std::max(truth * 0.15, 900.0));
}

INSTANTIATE_TEST_SUITE_P(Scales, PebsAccuracy,
                         ::testing::Values(5e3, 5e4, 5e5, 5e6));

TEST(Pebs, ZeroIsZero) {
  PebsSampler sampler(1000.0, 52);
  EXPECT_EQ(sampler.Estimate(0.0), 0.0);
  EXPECT_EQ(sampler.Estimate(-5.0), 0.0);
}

TEST(Pebs, EstimateAllMatchesShape) {
  PebsSampler sampler(100.0, 53);
  const std::vector<double> truth = {1000, 0, 50000};
  const auto est = sampler.EstimateAll(truth);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_EQ(est[1], 0.0);
  EXPECT_GT(est[2], est[0]);
}

TEST(Pebs, QuantisedToPeriodMultiples) {
  PebsSampler sampler(500.0, 54);
  const double e = sampler.Estimate(2000.0);
  EXPECT_NEAR(std::fmod(e, 500.0), 0.0, 1e-9);
}

}  // namespace
}  // namespace merch::profiler
