// Tests for the five application workload builders: structural validity,
// footprints near the paper's Table 2 sizes, Table 1 access patterns, and
// the presence/absence of application-inherent load imbalance.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/registry.h"
#include "core/pattern_classifier.h"

namespace merch::apps {
namespace {

using trace::AccessPattern;

constexpr double kScale = 1.0 / 64;  // fast test-size footprints

AppBundle& Bundle(const std::string& name) {
  static std::map<std::string, AppBundle>* cache =
      new std::map<std::string, AppBundle>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, BuildApp(name, kScale, kScale)).first;
  }
  return it->second;
}

class AppBundleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppBundleTest, WorkloadValidates) {
  const AppBundle& b = Bundle(GetParam());
  EXPECT_EQ(b.workload.Validate(), "");
  EXPECT_EQ(b.workload.name, GetParam());
}

TEST_P(AppBundleTest, HasMultipleInstancesAndTasks) {
  const AppBundle& b = Bundle(GetParam());
  EXPECT_GE(b.workload.regions.size(), 4u);  // base + >=3 new inputs
  EXPECT_GE(b.workload.TaskIds().size(), 6u);
  // Every region runs every task (task-parallel instances).
  for (const auto& region : b.workload.regions) {
    EXPECT_EQ(region.tasks.size(), b.workload.TaskIds().size());
  }
}

TEST_P(AppBundleTest, FootprintNearTable2Target) {
  const AppBundle& b = Bundle(GetParam());
  const std::map<std::string, double> target_gib = {
      {"SpGEMM", 429.3}, {"WarpX", 1056.0}, {"BFS", 731.9},
      {"DMRG", 1271.0},  {"NWChem-TC", 308.1}};
  const double expected = target_gib.at(GetParam()) * kScale;
  const double actual =
      static_cast<double>(b.workload.TotalBytes()) / (1024.0 * 1024 * 1024);
  EXPECT_NEAR(actual, expected, expected * 0.1) << GetParam();
}

TEST_P(AppBundleTest, TaskIrsCoverAllTasks) {
  const AppBundle& b = Bundle(GetParam());
  EXPECT_EQ(b.task_irs.size(), b.workload.TaskIds().size());
}

TEST_P(AppBundleTest, ActiveBytesWithinAllocation) {
  const AppBundle& b = Bundle(GetParam());
  for (const auto& region : b.workload.regions) {
    ASSERT_EQ(region.active_bytes.size(), b.workload.objects.size());
    for (std::size_t o = 0; o < region.active_bytes.size(); ++o) {
      EXPECT_LE(region.active_bytes[o], b.workload.objects[o].bytes);
    }
  }
}

TEST_P(AppBundleTest, InputsVaryAcrossInstances) {
  const AppBundle& b = Bundle(GetParam());
  // At least one object's active size (or one task's access count) must
  // change between instances — the "new input" premise of Eq. 1.
  bool varies = false;
  const auto& r0 = b.workload.regions.front();
  for (const auto& region : b.workload.regions) {
    if (region.active_bytes != r0.active_bytes) varies = true;
  }
  if (!varies) {
    for (std::size_t t = 0; t < r0.tasks.size() && !varies; ++t) {
      const auto& k0 = r0.tasks[t].kernels;
      const auto& k1 = b.workload.regions[1].tasks[t].kernels;
      for (std::size_t k = 0; k < k0.size() && !varies; ++k) {
        for (std::size_t a = 0; a < k0[k].accesses.size(); ++a) {
          if (k0[k].accesses[a].program_accesses !=
              k1[k].accesses[a].program_accesses) {
            varies = true;
            break;
          }
        }
      }
    }
  }
  EXPECT_TRUE(varies) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppBundleTest,
                         ::testing::ValuesIn(AppNames()));

// ---------------------------------------------------- Table 1 patterns

std::set<AccessPattern> PatternsOf(const AppBundle& b) {
  std::set<AccessPattern> out;
  for (const core::TaskIr& ir : b.task_irs) {
    const auto per_object =
        core::ClassifyTask(ir, b.workload.objects.size());
    for (const sim::Region& region : {b.workload.regions.front()}) {
      (void)region;
    }
    for (const auto& loop : ir.loops) {
      for (const auto& ref : loop.refs) {
        out.insert(per_object[ref.object]);
        if (ref.subscript.kind == core::Subscript::Kind::kIndirect &&
            ref.subscript.index_object != SIZE_MAX) {
          out.insert(per_object[ref.subscript.index_object]);
        }
      }
    }
  }
  return out;
}

TEST(Table1, SpGemmHasStreamAndRandom) {
  const auto p = PatternsOf(Bundle("SpGEMM"));
  EXPECT_TRUE(p.count(AccessPattern::kStream));
  // Gather through A's columns into B -> random; accumulator is opaque.
  EXPECT_TRUE(p.count(AccessPattern::kRandom) ||
              p.count(AccessPattern::kUnknown));
}

TEST(Table1, WarpxHasStridedAndStencil) {
  const auto p = PatternsOf(Bundle("WarpX"));
  EXPECT_TRUE(p.count(AccessPattern::kStrided));
  EXPECT_TRUE(p.count(AccessPattern::kStencil));
}

TEST(Table1, BfsHasStreamAndRandom) {
  const auto p = PatternsOf(Bundle("BFS"));
  EXPECT_TRUE(p.count(AccessPattern::kStream));
  EXPECT_TRUE(p.count(AccessPattern::kRandom));
}

TEST(Table1, DmrgHasStreamAndStrided) {
  const auto p = PatternsOf(Bundle("DMRG"));
  EXPECT_TRUE(p.count(AccessPattern::kStream));
  EXPECT_TRUE(p.count(AccessPattern::kStrided));
  // DMRG is regular: no random accesses anywhere.
  EXPECT_FALSE(p.count(AccessPattern::kRandom));
}

TEST(Table1, NwchemHasStreamAndRandomish) {
  const auto p = PatternsOf(Bundle("NWChem-TC"));
  EXPECT_TRUE(p.count(AccessPattern::kStream));
  EXPECT_TRUE(p.count(AccessPattern::kRandom) ||
              p.count(AccessPattern::kUnknown));
}

// ------------------------------------------- inherent imbalance structure

double WorkImbalance(const AppBundle& b) {
  // Max/mean of per-task program accesses in the base region.
  const auto& region = b.workload.regions.front();
  std::vector<double> work;
  for (const auto& tp : region.tasks) {
    double w = 0;
    for (const auto& k : tp.kernels) {
      for (const auto& a : k.accesses) {
        w += static_cast<double>(a.program_accesses);
      }
    }
    work.push_back(w);
  }
  double mean = 0, max = 0;
  for (const double w : work) {
    mean += w;
    max = std::max(max, w);
  }
  mean /= static_cast<double>(work.size());
  return max / mean;
}

TEST(Imbalance, SparseAppsAreSkewed) {
  // Paper Section 7.2: SpGEMM/BFS/NWChem-TC carry app-inherent imbalance.
  EXPECT_GT(WorkImbalance(Bundle("SpGEMM")), 1.1);
  EXPECT_GT(WorkImbalance(Bundle("BFS")), 1.1);
  EXPECT_GT(WorkImbalance(Bundle("NWChem-TC")), 1.05);
}

TEST(Imbalance, WarpxIsBalanced) {
  // Paper: "WarpX and DMRG do not have such load imbalance caused by
  // themselves."
  EXPECT_LT(WorkImbalance(Bundle("WarpX")), 1.1);
}

TEST(Apps, SpartaPriorityOnlyForSpGemm) {
  EXPECT_FALSE(Bundle("SpGEMM").sparta_priority.empty());
  EXPECT_TRUE(Bundle("DMRG").sparta_priority.empty());
}

TEST(Apps, LifetimePriorityOnlyForWarpx) {
  const auto& warpx = Bundle("WarpX");
  EXPECT_EQ(warpx.lifetime_priority.size(), warpx.workload.regions.size());
  EXPECT_TRUE(Bundle("BFS").lifetime_priority.empty());
}

TEST(Apps, UnknownNameThrows) {
  EXPECT_THROW(BuildApp("NotAnApp"), std::invalid_argument);
}

}  // namespace
}  // namespace merch::apps
