// Tests for workload validation and the synthetic code-region generator
// (CERE stand-in).
#include <gtest/gtest.h>

#include "sim/workload.h"
#include "workloads/code_region.h"

namespace merch {
namespace {

TEST(Workload, ValidateAcceptsEmpty) {
  sim::Workload w;
  EXPECT_EQ(w.Validate(), "");
}

TEST(Workload, ValidateCatchesBadObjectIndex) {
  sim::Workload w;
  w.objects.push_back(sim::ObjectDecl{.name = "x", .bytes = 4096});
  sim::Kernel k;
  k.name = "k";
  trace::ObjectAccess a;
  a.object = 5;  // out of range
  a.program_accesses = 10;
  k.accesses.push_back(a);
  sim::Region r;
  r.tasks.push_back(sim::TaskProgram{.task = 0, .kernels = {k}});
  w.regions.push_back(r);
  EXPECT_NE(w.Validate().find("out of range"), std::string::npos);
}

TEST(Workload, ValidateCatchesDuplicateTask) {
  sim::Workload w;
  sim::Region r;
  r.tasks.push_back(sim::TaskProgram{.task = 3});
  r.tasks.push_back(sim::TaskProgram{.task = 3});
  w.regions.push_back(r);
  EXPECT_NE(w.Validate().find("duplicate task"), std::string::npos);
}

TEST(Workload, ValidateCatchesActiveBytesMismatch) {
  sim::Workload w;
  w.objects.push_back(sim::ObjectDecl{.name = "x", .bytes = 4096});
  sim::Region r;
  r.active_bytes = {1, 2, 3};  // objects.size() == 1
  w.regions.push_back(r);
  EXPECT_NE(w.Validate().find("active_bytes"), std::string::npos);
}

TEST(Workload, TaskIdsSortedUnique) {
  sim::Workload w;
  sim::Region r1, r2;
  r1.tasks.push_back(sim::TaskProgram{.task = 4});
  r1.tasks.push_back(sim::TaskProgram{.task = 1});
  r2.tasks.push_back(sim::TaskProgram{.task = 4});
  w.regions = {r1, r2};
  const auto ids = w.TaskIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 4u);
}

TEST(Workload, TotalBytes) {
  sim::Workload w;
  w.objects.push_back(sim::ObjectDecl{.name = "a", .bytes = 100});
  w.objects.push_back(sim::ObjectDecl{.name = "b", .bytes = 250});
  EXPECT_EQ(w.TotalBytes(), 350u);
}

TEST(CodeRegions, GeneratorIsDeterministic) {
  Rng a(5), b(5);
  const auto sa = workloads::GenerateCodeRegionSpecs(10, a);
  const auto sb = workloads::GenerateCodeRegionSpecs(10, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].objects.size(), sb[i].objects.size());
    for (std::size_t o = 0; o < sa[i].objects.size(); ++o) {
      EXPECT_EQ(sa[i].objects[o].bytes, sb[i].objects[o].bytes);
      EXPECT_EQ(sa[i].objects[o].pattern, sb[i].objects[o].pattern);
    }
  }
}

TEST(CodeRegions, SpecsWithinDocumentedRanges) {
  Rng rng(6);
  const auto specs = workloads::GenerateCodeRegionSpecs(60, rng);
  ASSERT_EQ(specs.size(), 60u);
  for (const auto& spec : specs) {
    EXPECT_GE(spec.objects.size(), 1u);
    EXPECT_LE(spec.objects.size(), 4u);
    for (const auto& obj : spec.objects) {
      EXPECT_GE(obj.bytes, 32 * MiB);
      EXPECT_LE(obj.bytes, 33ull * 1024 * MiB);
      EXPECT_GT(obj.accesses_per_byte, 0.0);
    }
    EXPECT_GT(spec.instructions_per_access, 0.0);
  }
}

TEST(CodeRegions, SpecsCoverAllPatterns) {
  Rng rng(7);
  const auto specs = workloads::GenerateCodeRegionSpecs(100, rng);
  std::set<int> seen;
  for (const auto& spec : specs) {
    for (const auto& obj : spec.objects) {
      seen.insert(static_cast<int>(obj.pattern));
    }
  }
  EXPECT_GE(seen.size(), 4u);
}

TEST(CodeRegions, BuildProducesValidSingleTaskWorkload) {
  Rng rng(8);
  const auto specs = workloads::GenerateCodeRegionSpecs(5, rng);
  for (const auto& spec : specs) {
    const sim::Workload w = workloads::BuildCodeRegionWorkload(spec);
    EXPECT_EQ(w.Validate(), "");
    ASSERT_EQ(w.regions.size(), 1u);
    ASSERT_EQ(w.regions[0].tasks.size(), 1u);
    EXPECT_EQ(w.objects.size(), spec.objects.size());
  }
}

TEST(CodeRegions, InputScaleShrinksEverything) {
  Rng rng(9);
  const auto specs = workloads::GenerateCodeRegionSpecs(1, rng);
  const sim::Workload full = workloads::BuildCodeRegionWorkload(specs[0], 1.0);
  const sim::Workload half = workloads::BuildCodeRegionWorkload(specs[0], 0.5);
  EXPECT_LT(half.TotalBytes(), full.TotalBytes());
  EXPECT_LT(half.regions[0].tasks[0].kernels[0].accesses[0].program_accesses,
            full.regions[0].tasks[0].kernels[0].accesses[0].program_accesses);
}

}  // namespace
}  // namespace merch
