// Bit-identity contract of the decision-path optimisations.
//
// The flattened SoA forest, the per-row partial specialization, the
// lazy-deletion heap greedy, and the policy decision memos are pure
// constant-factor changes: every prediction and every GreedyResult field
// must match the legacy paths exactly, double for double. These tests
// check randomized trained ensembles (flat walk and partial collapse vs
// the pointer walk), heap-vs-rescan Algorithm 1 equality on randomized
// synthetic inputs and on every captured decision of the five
// applications, and that the env escape hatches round-trip. They carry
// the "perf" ctest label (`ctest -L perf`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/greedy.h"
#include "core/merchandiser.h"
#include "ml/flat_forest.h"
#include "ml/forest.h"
#include "ml/gbr.h"
#include "sim/engine.h"
#include "workloads/training.h"

namespace merch {
namespace {

constexpr double kScale = 1.0 / 64;

sim::MachineSpec ScaledMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kDram].capacity_bytes) * kScale);
  m.hm[hm::Tier::kPm].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kPm].capacity_bytes) * kScale);
  return m;
}

sim::SimConfig ScaledConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.02;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 512 * KiB;
  return cfg;
}

const core::MerchandiserSystem& System() {
  static const core::MerchandiserSystem* kSystem = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 12;
    cfg.placements_per_region = 4;
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

ml::Dataset RandomDataset(std::mt19937_64& rng, std::size_t rows,
                          std::size_t features) {
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  ml::Dataset data(features);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(features);
    for (double& v : x) v = u(rng);
    // A mildly nonlinear target so trees actually split on every feature.
    const double y = x[0] * x[0] - 2.0 * x[features / 2] + 0.25 * u(rng);
    data.Add(std::move(x), y);
  }
  return data;
}

// --- Flat forest vs pointer walk -------------------------------------------

/// PredictBatch (SoA flat forest) must be bitwise equal to the per-tree
/// pointer walk for randomized ensembles and rows, both one row at a time
/// and as a batch.
template <typename Model>
void CheckFlatAgainstScalar(Model& model, std::mt19937_64& rng,
                            std::size_t features) {
  std::uniform_real_distribution<double> u(-4.0, 4.0);
  constexpr std::size_t kRows = 64;
  std::vector<double> rows(kRows * features);
  for (double& v : rows) v = u(rng);
  std::vector<double> batched(kRows);
  model.PredictBatch(rows, features, batched);
  for (std::size_t i = 0; i < kRows; ++i) {
    const std::span<const double> row(rows.data() + i * features, features);
    const double scalar = model.Predict(row);
    ASSERT_EQ(scalar, batched[i]) << "row " << i;
    double one = 0;
    model.PredictBatch(row, features, std::span<double>(&one, 1));
    ASSERT_EQ(scalar, one) << "row " << i;
  }
}

TEST(FlatForest, GbrBatchMatchesPointerWalkExactly) {
  std::mt19937_64 rng(11);
  for (const std::size_t features : {3u, 7u}) {
    ml::GbrConfig cfg;
    cfg.num_stages = 60;
    ml::GradientBoostedRegressor gbr(cfg, /*seed=*/rng());
    gbr.Fit(RandomDataset(rng, 300, features));
    CheckFlatAgainstScalar(gbr, rng, features);
  }
}

TEST(FlatForest, RfrBatchMatchesPointerWalkExactly) {
  std::mt19937_64 rng(13);
  for (const std::size_t features : {4u, 9u}) {
    ml::RandomForestRegressor rfr({}, /*seed=*/rng());
    rfr.Fit(RandomDataset(rng, 300, features));
    CheckFlatAgainstScalar(rfr, rng, features);
  }
}

/// The 4-lane walk's edge cases: a batch size that is not a multiple of
/// the lane width (the tail rows take the remainder path), NaN features
/// (x <= t is false, so the walk takes the right child — same as the
/// scalar comparison), and denormal features. Both lane settings must be
/// bitwise equal to the per-tree pointer walk.
TEST(FlatForest, LaneBoundaryNanAndDenormalRowsMatchScalar) {
  std::mt19937_64 rng(17);
  constexpr std::size_t kFeatures = 5;
  ml::GbrConfig cfg;
  cfg.num_stages = 40;
  ml::GradientBoostedRegressor gbr(cfg, /*seed=*/rng());
  gbr.Fit(RandomDataset(rng, 250, kFeatures));

  std::uniform_real_distribution<double> u(-4.0, 4.0);
  constexpr std::size_t kRows = 7;  // 4-lane block + 3-row tail
  std::vector<double> rows(kRows * kFeatures);
  for (double& v : rows) v = u(rng);
  rows[1 * kFeatures + 2] = std::numeric_limits<double>::quiet_NaN();
  rows[3 * kFeatures + 0] = std::numeric_limits<double>::denorm_min();
  rows[4 * kFeatures + 1] = -std::numeric_limits<double>::denorm_min();
  rows[6 * kFeatures + 4] = std::numeric_limits<double>::quiet_NaN();

  ml::FlatForest forest = gbr.flat_forest();  // mutable copy: toggle lanes
  std::vector<double> lanes_on(kRows), lanes_off(kRows);
  forest.simd = true;
  forest.PredictBatch(rows, kFeatures, lanes_on);
  forest.simd = false;
  forest.PredictBatch(rows, kFeatures, lanes_off);
  for (std::size_t i = 0; i < kRows; ++i) {
    const std::span<const double> row(rows.data() + i * kFeatures, kFeatures);
    const double scalar = gbr.Predict(row);
    ASSERT_EQ(scalar, lanes_on[i]) << "lanes row " << i;
    ASSERT_EQ(scalar, lanes_off[i]) << "scalar-batch row " << i;
  }
}

// --- Partial specialization vs full evaluation -----------------------------

/// Specialize(row, var) collapses the ensemble to a piecewise-constant
/// function of the free feature; its Predict(x) must be bitwise what the
/// full model returns for the row with row[var] = x — including x exactly
/// on split thresholds, where the `x <= t` tie decides the interval.
template <typename Model>
void CheckPartialAgainstFull(const Model& model, std::mt19937_64& rng,
                             std::size_t features) {
  std::uniform_real_distribution<double> u(-4.0, 4.0);
  for (std::size_t var = 0; var < features; ++var) {
    std::vector<double> row(features);
    for (double& v : row) v = u(rng);
    const auto partial = model.Specialize(row, var);
    ASSERT_NE(partial, nullptr);
    std::vector<double> probe_xs;
    for (int i = 0; i < 200; ++i) probe_xs.push_back(u(rng));
    // Exercise the interval boundaries themselves: every threshold the
    // ensemble tests against `var`, plus a value on either side.
    for (const double t : model.flat_forest().threshold) {
      probe_xs.push_back(t);
      probe_xs.push_back(std::nextafter(t, 100.0));
      probe_xs.push_back(std::nextafter(t, -100.0));
    }
    for (const double x : probe_xs) {
      row[var] = x;
      ASSERT_EQ(partial->Predict(x), model.Predict(row))
          << "var " << var << " x " << x;
    }
  }
}

TEST(FlatForestPartial, GbrSpecializationIsExact) {
  std::mt19937_64 rng(17);
  ml::GbrConfig cfg;
  cfg.num_stages = 40;
  ml::GradientBoostedRegressor gbr(cfg, 23);
  gbr.Fit(RandomDataset(rng, 250, 5));
  CheckPartialAgainstFull(gbr, rng, 5);
}

TEST(FlatForestPartial, RfrSpecializationIsExact) {
  std::mt19937_64 rng(19);
  ml::RandomForestRegressor rfr({}, 29);
  rfr.Fit(RandomDataset(rng, 250, 6));
  CheckPartialAgainstFull(rfr, rng, 6);
}

TEST(FlatForestPartial, EscapeHatchDisablesSpecialization) {
  std::mt19937_64 rng(23);
  ml::GradientBoostedRegressor gbr({}, 31);
  gbr.Fit(RandomDataset(rng, 100, 4));
  setenv("MERCH_FLAT_FOREST", "0", 1);
  EXPECT_EQ(gbr.Specialize(std::vector<double>(4, 0.5), 3), nullptr);
  unsetenv("MERCH_FLAT_FOREST");
  EXPECT_NE(gbr.Specialize(std::vector<double>(4, 0.5), 3), nullptr);
}

// --- Heap greedy vs rescan -------------------------------------------------

void ExpectSameGreedy(const core::GreedyResult& a, const core::GreedyResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.dram_fraction.size(), b.dram_fraction.size());
  for (std::size_t i = 0; i < a.dram_fraction.size(); ++i) {
    EXPECT_EQ(a.dram_fraction[i], b.dram_fraction[i]) << "task " << i;
    EXPECT_EQ(a.dram_pages[i], b.dram_pages[i]) << "task " << i;
    EXPECT_EQ(a.predicted_seconds[i], b.predicted_seconds[i]) << "task " << i;
  }
  EXPECT_EQ(a.rounds, b.rounds);
}

core::GreedyResult RunVariant(std::span<const core::GreedyTaskInput> tasks,
                              std::uint64_t capacity, bool incremental) {
  static const core::PerformanceModel kModel(&System().correlation());
  core::GreedyConfig cfg;
  cfg.incremental = incremental;
  return core::RunGreedyAllocation(tasks, capacity, kModel, cfg);
}

TEST(GreedyEquivalence, RandomizedInputsMatchExactly) {
  std::mt19937_64 rng(0xA11CE);
  const auto samples = workloads::GenerateTrainingSamples({
      .num_regions = 4,
  });
  std::uniform_real_distribution<double> ud(0.0, 1.0);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng() % 14;
    std::vector<core::GreedyTaskInput> tasks(n);
    std::uint64_t footprint_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      core::GreedyTaskInput& t = tasks[i];
      t.task = static_cast<TaskId>(i);
      t.t_dram_only = 0.1 + 2.0 * ud(rng);
      t.t_pm_only = t.t_dram_only * (1.0 + 3.0 * ud(rng));
      t.pmcs = samples[rng() % samples.size()].pmcs;
      t.total_accesses = 1e6 * (0.5 + ud(rng));
      t.footprint_pages = 64 + rng() % 4096;
      footprint_total += t.footprint_pages;
      if (rng() % 2) {
        // Piecewise page-cost curve with increasing breakpoints.
        double f = 0, p = 0;
        while (f < 0.95) {
          f += 0.1 + 0.3 * ud(rng);
          p += static_cast<double>(t.footprint_pages) * (0.05 + 0.4 * ud(rng));
          t.pages_for_access_fraction.emplace_back(std::min(f, 1.0), p);
        }
      }
      // Duplicated predicted times exercise the heap's index tie-break
      // against the rescan's strict-> argmax.
      if (i > 0 && rng() % 4 == 0) {
        t.t_pm_only = tasks[i - 1].t_pm_only;
        t.t_dram_only = tasks[i - 1].t_dram_only;
        t.pmcs = tasks[i - 1].pmcs;
      }
    }
    // Sweep capacity from starved through roomy to hit the claw-back,
    // capacity-stop, and saturation exits.
    for (const double frac : {0.05, 0.35, 1.0, 2.5}) {
      const auto capacity = static_cast<std::uint64_t>(
          frac * static_cast<double>(footprint_total));
      ExpectSameGreedy(RunVariant(tasks, capacity, true),
                       RunVariant(tasks, capacity, false),
                       "trial " + std::to_string(trial) + " capacity " +
                           std::to_string(capacity));
    }
  }
}

TEST(GreedyEquivalence, EnvHatchForcesRescan) {
  const auto samples = workloads::GenerateTrainingSamples({.num_regions = 4});
  std::vector<core::GreedyTaskInput> tasks(3);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].task = static_cast<TaskId>(i);
    tasks[i].t_dram_only = 0.5 + 0.2 * static_cast<double>(i);
    tasks[i].t_pm_only = 2.0 + 0.3 * static_cast<double>(i);
    tasks[i].pmcs = samples[i].pmcs;
    tasks[i].total_accesses = 1e6;
    tasks[i].footprint_pages = 1024;
  }
  const core::GreedyResult heap = RunVariant(tasks, 2048, true);
  setenv("MERCH_GREEDY_HEAP", "0", 1);
  // config.incremental=true is overridden by the hatch; the result must
  // still be identical because the implementations are bit-equal.
  const core::GreedyResult forced = RunVariant(tasks, 2048, true);
  unsetenv("MERCH_GREEDY_HEAP");
  ExpectSameGreedy(heap, forced, "MERCH_GREEDY_HEAP=0");
  ExpectSameGreedy(heap, RunVariant(tasks, 2048, true), "hatch unset");
}

// --- Full application decisions --------------------------------------------

std::vector<core::InstanceDecision> RunMerch(const apps::AppBundle& bundle) {
  const sim::MachineSpec machine = ScaledMachine();
  const auto policy = System().MakePolicy(bundle.workload, machine);
  sim::Engine engine(bundle.workload, machine, ScaledConfig(), policy.get());
  engine.Run();
  return policy->decisions();
}

void ExpectSameDecisions(const std::vector<core::InstanceDecision>& a,
                         const std::vector<core::InstanceDecision>& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tasks, b[i].tasks);
    EXPECT_EQ(a[i].dram_fraction, b[i].dram_fraction);
    EXPECT_EQ(a[i].predicted_seconds, b[i].predicted_seconds);
    EXPECT_EQ(a[i].t_pm_only, b[i].t_pm_only);
    EXPECT_EQ(a[i].t_dram_only, b[i].t_dram_only);
    EXPECT_EQ(a[i].estimated_accesses, b[i].estimated_accesses);
    EXPECT_EQ(a[i].greedy_rounds, b[i].greedy_rounds);
  }
}

class DecisionEquivalence : public ::testing::TestWithParam<std::string> {};

/// Every captured Algorithm 1 call of a full Merchandiser run must replay
/// to the identical GreedyResult under both implementations, and the
/// end-to-end decisions must be identical with every decision-path
/// optimisation disabled through the env hatches.
TEST_P(DecisionEquivalence, HeapRescanAndHatchesBitIdentical) {
  const apps::AppBundle bundle = apps::BuildApp(GetParam(), kScale, kScale / 4);
  const std::vector<core::InstanceDecision> baseline = RunMerch(bundle);
  ASSERT_FALSE(baseline.empty());
  std::size_t replayed = 0;
  for (const core::InstanceDecision& d : baseline) {
    if (d.greedy_inputs.empty()) continue;
    ExpectSameGreedy(
        RunVariant(d.greedy_inputs, d.dram_capacity_pages, true),
        RunVariant(d.greedy_inputs, d.dram_capacity_pages, false),
        GetParam() + " region " + std::to_string(d.region));
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);

  setenv("MERCH_FLAT_FOREST", "0", 1);
  setenv("MERCH_GREEDY_HEAP", "0", 1);
  setenv("MERCH_POLICY_MEMO", "0", 1);
  const std::vector<core::InstanceDecision> legacy = RunMerch(bundle);
  unsetenv("MERCH_FLAT_FOREST");
  unsetenv("MERCH_GREEDY_HEAP");
  unsetenv("MERCH_POLICY_MEMO");
  ExpectSameDecisions(baseline, legacy, GetParam() + " legacy env");
  ExpectSameDecisions(baseline, RunMerch(bundle),
                      GetParam() + " hatches unset");
}

INSTANTIATE_TEST_SUITE_P(AllApps, DecisionEquivalence,
                         ::testing::ValuesIn(apps::AppNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace merch
