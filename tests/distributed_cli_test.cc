// End-to-end distributed-tracing contract, exec-style against the real
// binaries (MERCHD_BIN / MERCHCTL_BIN / TRACE_MERGE_BIN, injected by
// CMake): a traced `merchctl remote` through a 2-shard `merchd --router`
// must yield per-process trace files that trace_merge stitches into one
// Perfetto-loadable timeline where the client, router, and worker spans
// share one trace_id connected by flow arrows.
//
// Carries the "net" ctest label (`ctest -L net`), like the other live
// router contracts.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/validate.h"

namespace merch {
namespace {

std::string TestDir() {
  const std::string dir = ::testing::TempDir() + "/merch_distributed_cli";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Spawn `argv` with stdout/stderr sent to /dev/null; returns the pid.
pid_t Spawn(const std::vector<std::string>& argv) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    raw.push_back(const_cast<char*>(arg.c_str()));
  }
  raw.push_back(nullptr);
  std::freopen("/dev/null", "w", stdout);
  std::freopen("/dev/null", "w", stderr);
  ::execv(raw[0], raw.data());
  ::_exit(127);
}

/// Exit code of a shell command, or -1 if it did not exit normally.
int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool WaitForFile(const std::string& path, int timeout_ms = 30000) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

TEST(DistributedCli, TracedRemoteThroughRouterMergesIntoOneTimeline) {
  const std::string dir = TestDir();
  const std::string port_file = dir + "/router.port";
  const std::string router_trace = dir + "/router.json";
  const std::string client_trace = dir + "/client.json";
  const std::string merged = dir + "/merged.json";
  for (const std::string& stale :
       {port_file, router_trace, router_trace + ".shard0.json",
        router_trace + ".shard1.json", client_trace, merged}) {
    std::remove(stale.c_str());
  }

  // Router with 2 traced shard workers; --trace doubles as the workers'
  // trace prefix.
  const pid_t router = Spawn({MERCHD_BIN, "--router", "--shards", "2",
                              "--port", "0", "--port-file", port_file,
                              "--threads", "1", "--trace", router_trace});
  ASSERT_GT(router, 0);
  ASSERT_TRUE(WaitForFile(port_file)) << "router never published its port";
  const int port = std::atoi(ReadWholeFile(port_file).c_str());
  ASSERT_GT(port, 0);

  // Two traced remote calls (distinct requests, so both shards of the
  // rendezvous hash have a chance to serve).
  for (const char* policy : {"pm", "mo"}) {
    const int rc =
        RunCommand(std::string(MERCHCTL_BIN) + " remote --port " +
            std::to_string(port) + " --app SpGEMM --policy " + policy +
            " --scale 0.01 --work 0.02 --trace " + client_trace +
            " >/dev/null 2>&1");
    if (rc != 0) {
      ::kill(router, SIGKILL);
      FAIL() << "merchctl remote failed with exit " << rc;
    }
  }

  // Graceful stop drains the shards and flushes every trace file.
  ASSERT_EQ(::kill(router, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(router, &status, 0), router);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (const std::string& path :
       {client_trace, router_trace, router_trace + ".shard0.json",
        router_trace + ".shard1.json"}) {
    ASSERT_TRUE(WaitForFile(path, 5000)) << "missing trace export " << path;
  }

  ASSERT_EQ(RunCommand(std::string(TRACE_MERGE_BIN) + " --out " + merged + " " +
                client_trace + " " + router_trace + " " + router_trace +
                ".shard0.json " + router_trace + ".shard1.json" +
                " >/dev/null 2>&1"),
            0);

  const std::string json = ReadWholeFile(merged);
  ASSERT_FALSE(json.empty());
  // Perfetto-loadable: structurally valid, with events from the net,
  // service, and sim layers on one timeline.
  const obs::TraceValidation v = obs::ValidateChromeTrace(json);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.flows, 2u);
  for (const char* cat : {"net", "service", "sim"}) {
    EXPECT_EQ(v.categories.count(cat), 1u) << "no events from " << cat;
  }

  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(json, &doc, &err)) << err;
  std::map<std::uint64_t, std::set<double>> span_pids_by_trace;
  std::map<std::uint64_t, std::set<std::string>> flow_phases_by_trace;
  for (const obs::JsonValue& ev : doc.Find("traceEvents")->items) {
    const obs::JsonValue* ph = ev.Find("ph");
    const obs::JsonValue* pid = ev.Find("pid");
    if (ph == nullptr || !ph->is_string() || pid == nullptr) continue;
    if (ph->str == "X") {
      const obs::JsonValue* args = ev.Find("args");
      const obs::JsonValue* id =
          args != nullptr ? args->Find("trace_id") : nullptr;
      if (id != nullptr && id->is_number() && id->number > 0) {
        span_pids_by_trace[static_cast<std::uint64_t>(id->number)].insert(
            pid->number);
      }
    } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      const obs::JsonValue* id = ev.Find("id");
      ASSERT_TRUE(id != nullptr && id->is_number());
      flow_phases_by_trace[static_cast<std::uint64_t>(id->number)].insert(
          ph->str);
    }
  }

  // The acceptance contract: at least one trace_id whose spans cross the
  // client, the router, and a shard worker (3 distinct pids), with a
  // complete flow chain (start, finish, and — across 3 processes — a
  // middle step) drawn under that same id.
  std::size_t crossing = 0;
  for (const auto& [trace_id, pids] : span_pids_by_trace) {
    if (pids.size() < 3) continue;
    ++crossing;
    const auto flows = flow_phases_by_trace.find(trace_id);
    ASSERT_NE(flows, flow_phases_by_trace.end())
        << "trace " << trace_id << " has no flow arrows";
    EXPECT_EQ(flows->second,
              (std::set<std::string>{"s", "t", "f"}))
        << "trace " << trace_id << " has a broken flow chain";
  }
  EXPECT_GE(crossing, 1u)
      << "no trace_id spans client + router + worker";
}

}  // namespace
}  // namespace merch
