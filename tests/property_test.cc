// Cross-module property sweeps (parameterized): invariants that must hold
// across wide input ranges rather than single examples.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/alpha.h"
#include "core/greedy.h"
#include "profiler/pte_scan.h"
#include "sim/engine.h"
#include "sim/fixed_fraction.h"
#include "trace/synthetic_trace.h"
#include "workloads/training.h"

namespace merch {
namespace {

// ------------------------------------------------------------ Eq. 1 alpha

// Property: for affine patterns, the Eq. 1 estimate with the offline alpha
// reproduces the unit-rounded access-count ratio exactly, for any size
// pair / element size / stride.
class LinearAlphaProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint64_t, std::uint32_t,
                     std::uint32_t>> {};

TEST_P(LinearAlphaProperty, EstimateMatchesUnitCounts) {
  const auto [s_base, s_new, elem, stride] = GetParam();
  const std::uint64_t step = static_cast<std::uint64_t>(elem) * stride;
  const std::uint64_t unit = std::max<std::uint64_t>(64, step);
  const double units_base =
      static_cast<double>((s_base + unit - 1) / unit);
  const double units_new = static_cast<double>((s_new + unit - 1) / unit);

  core::AlphaEstimator est(stride == 1 ? trace::AccessPattern::kStream
                                       : trace::AccessPattern::kStrided,
                           elem, stride);
  const double prof = units_base;  // profiled accesses = units touched
  est.SetBase(static_cast<double>(s_base), prof);
  EXPECT_NEAR(est.EstimateAccesses(static_cast<double>(s_new)), units_new,
              1e-6 * units_new)
      << "base=" << s_base << " new=" << s_new << " elem=" << elem
      << " stride=" << stride;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearAlphaProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(128, 4096, 1 << 20),
                       ::testing::Values<std::uint64_t>(192, 1 << 16,
                                                        3u << 20),
                       ::testing::Values<std::uint32_t>(4, 8),
                       ::testing::Values<std::uint32_t>(1, 2, 16)));

// ------------------------------------------------------------- Algorithm 1

const core::CorrelationFunction& FlatF() {
  static const core::CorrelationFunction* kF = [] {
    std::vector<workloads::TrainingSample> samples;
    Rng rng(5);
    for (int i = 0; i < 150; ++i) {
      workloads::TrainingSample s;
      for (auto& e : s.pmcs) e = rng.NextDoubleInRange(0, 1);
      s.r_dram = rng.NextDoubleInRange(0, 1);
      s.f_target = 1.0;
      samples.push_back(s);
    }
    auto* f = new core::CorrelationFunction();
    f->Train(samples);
    return f;
  }();
  return *kF;
}

// Property: total granted pages are monotone non-decreasing in capacity,
// and the predicted makespan (max predicted time) is monotone
// non-increasing.
class GreedyCapacityProperty : public ::testing::TestWithParam<int> {};

TEST_P(GreedyCapacityProperty, MonotoneInCapacity) {
  const int num_tasks = GetParam();
  core::PerformanceModel model(&FlatF());
  Rng rng(17);
  std::vector<core::GreedyTaskInput> tasks;
  for (int t = 0; t < num_tasks; ++t) {
    core::GreedyTaskInput in;
    in.task = static_cast<TaskId>(t);
    in.t_pm_only = rng.NextDoubleInRange(5, 20);
    in.t_dram_only = in.t_pm_only * rng.NextDoubleInRange(0.3, 0.7);
    in.total_accesses = 1e6;
    in.footprint_pages = 1000;
    tasks.push_back(in);
  }
  std::uint64_t prev_pages = 0;
  double prev_makespan = 1e18;
  for (const std::uint64_t cap : {100u, 400u, 1600u, 6400u, 25600u}) {
    const auto r = core::RunGreedyAllocation(tasks, cap, model);
    std::uint64_t total = 0;
    double makespan = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      total += r.dram_pages[i];
      makespan = std::max(makespan, r.predicted_seconds[i]);
    }
    EXPECT_GE(total + 50, prev_pages) << "capacity " << cap;
    EXPECT_LE(makespan, prev_makespan + 1e-9) << "capacity " << cap;
    prev_pages = total;
    prev_makespan = makespan;
  }
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, GreedyCapacityProperty,
                         ::testing::Values(1, 2, 6, 12, 24));

// ---------------------------------------------------------------- Profiler

// Property: larger page samples give per-object aggregates closer to the
// truth (relative error shrinks with sample size).
TEST(PteScanProperty, AggregateErrorShrinksWithSampleSize) {
  trace::SyntheticAccessSource source({
      {.task = 0, .num_pages = 4096, .heat = trace::HeatProfile::Zipf(0.7),
       .epoch_accesses = 1e6, .tier = hm::Tier::kPm},
      {.task = 1, .num_pages = 4096, .heat = trace::HeatProfile::Uniform(),
       .epoch_accesses = 2e6, .tier = hm::Tier::kPm},
  });
  // Compare the *ratio* of per-object aggregates to the true 1:2 ratio.
  auto ratio_error = [&](std::size_t sample_pages) {
    double err = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      profiler::PteScanProfiler profiler(
          {.sample_pages = sample_pages, .scans_per_interval = 100},
          1000 + t);
      const auto hot = profiler.Profile(source);
      const auto agg = profiler::AggregateByObject(hot, source, 2);
      if (agg[0] <= 0) return 1.0;
      err += std::abs(agg[1] / agg[0] - 2.0) / 2.0;
    }
    return err / trials;
  };
  EXPECT_LT(ratio_error(4096), ratio_error(128));
}

// -------------------------------------------------------------- Simulator

sim::Workload PatternWorkload(trace::AccessPattern pattern) {
  sim::Workload w;
  w.name = "prop";
  w.objects.push_back(
      sim::ObjectDecl{.name = "x", .bytes = 4 * GiB, .owner = 0});
  sim::Kernel k;
  k.name = "k";
  k.instructions = 10000000;
  trace::ObjectAccess a;
  a.object = 0;
  a.pattern = pattern;
  a.program_accesses = 50000000;
  a.stride_elements = pattern == trace::AccessPattern::kStrided ? 8 : 1;
  k.accesses.push_back(a);
  sim::Region region;
  region.name = "r";
  region.tasks.push_back(sim::TaskProgram{.task = 0, .kernels = {k}});
  region.active_bytes = {4 * GiB};
  w.regions.push_back(region);
  return w;
}

// Property: tier sensitivity (PM-only / DRAM-only time ratio) orders as
// random >= strided >= stream — the premise behind pattern
// classification driving placement value.
TEST(EngineProperty, TierSensitivityOrdersByPattern) {
  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  const sim::MachineSpec machine = sim::MachineSpec::Paper();
  auto ratio = [&](trace::AccessPattern p) {
    const sim::Workload w = PatternWorkload(p);
    return sim::SimulateHomogeneous(w, machine, hm::Tier::kPm, cfg)
               .total_seconds /
           sim::SimulateHomogeneous(w, machine, hm::Tier::kDram, cfg)
               .total_seconds;
  };
  const double stream = ratio(trace::AccessPattern::kStream);
  const double strided = ratio(trace::AccessPattern::kStrided);
  const double random = ratio(trace::AccessPattern::kRandom);
  EXPECT_GE(random, strided - 0.05);
  EXPECT_GE(strided, stream - 0.05);
  EXPECT_GT(random, 1.5);
}

// Property: simulated time under a fixed fraction decreases monotonically
// (within tolerance) as the fraction rises, for every pattern.
class FractionMonotone
    : public ::testing::TestWithParam<trace::AccessPattern> {};

TEST_P(FractionMonotone, TimeDecreasesWithDramFraction) {
  const sim::Workload w = PatternWorkload(GetParam());
  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  double prev = 1e18;
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::FixedFractionPolicy policy = sim::FixedFractionPolicy::Uniform(1, frac);
    sim::Engine engine(w, sim::MachineSpec::Paper(), cfg, &policy);
    const double t = engine.Run().total_seconds;
    EXPECT_LE(t, prev * 1.02) << "fraction " << frac;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, FractionMonotone,
                         ::testing::Values(trace::AccessPattern::kStream,
                                           trace::AccessPattern::kStrided,
                                           trace::AccessPattern::kStencil,
                                           trace::AccessPattern::kRandom));

// Property: page-granularity choice does not change homogeneous timings
// (placement granularity must only matter when placement differs).
class PageSizeInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageSizeInvariance, HomogeneousTimeIndependentOfPageSize) {
  const sim::Workload w = PatternWorkload(trace::AccessPattern::kRandom);
  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  cfg.page_bytes = GetParam();
  const double t =
      sim::SimulateHomogeneous(w, sim::MachineSpec::Paper(), hm::Tier::kPm,
                               cfg)
          .total_seconds;
  cfg.page_bytes = 2 * MiB;
  const double t_ref =
      sim::SimulateHomogeneous(w, sim::MachineSpec::Paper(), hm::Tier::kPm,
                               cfg)
          .total_seconds;
  EXPECT_NEAR(t, t_ref, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeInvariance,
                         ::testing::Values<std::uint64_t>(64 * KiB, 512 * KiB,
                                                          2 * MiB, 16 * MiB));

// Property: the engine conserves access counts — the oracle's lifetime
// totals equal the per-task stats totals.
TEST(EngineProperty, AccessAccountingConsistent) {
  const sim::Workload w = PatternWorkload(trace::AccessPattern::kStream);
  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  sim::FixedFractionPolicy policy = sim::FixedFractionPolicy::Uniform(1, 0.4);
  sim::Engine engine(w, sim::MachineSpec::Paper(), cfg, &policy);
  const auto r = engine.Run();
  const double stats_total = r.regions[0].tasks[0].object_mm_accesses[0];
  EXPECT_NEAR(engine.oracle().ObjectLifetimeAccesses(0), stats_total,
              0.01 * stats_total);
}

}  // namespace
}  // namespace merch
