// Tests for the distributed-observability layer (src/obs/distributed):
// trace-context generation and scoping, span stamping, clock-offset
// estimation, process export metadata, Prometheus parsing/federation
// (including the mismatched-bucket-layout rejection), and the
// cross-process trace merge with flow-event synthesis.
//
// Carries the "obs" ctest label (`ctest -L obs`).
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/distributed/context.h"
#include "obs/distributed/export.h"
#include "obs/distributed/federation.h"
#include "obs/distributed/merge.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/validate.h"

namespace merch::obs {
namespace {

// --- trace context -------------------------------------------------------

TEST(Context, IdsAreNonzeroDistinctAnd48Bit) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = i % 2 == 0 ? NewTraceId() : NewSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id & ~kTraceIdMask, 0u) << "id exceeds 48 bits";
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id";
  }
}

TEST(Context, ScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentTraceContext(), (TraceContext{0, 0}));
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    TraceContextScope outer({42, 7});
    EXPECT_EQ(CurrentTraceContext(), (TraceContext{42, 7}));
    EXPECT_TRUE(CurrentTraceContext().valid());
    {
      TraceContextScope inner({99, 42});
      EXPECT_EQ(CurrentTraceContext(), (TraceContext{99, 42}));
    }
    EXPECT_EQ(CurrentTraceContext(), (TraceContext{42, 7}));
  }
  EXPECT_EQ(CurrentTraceContext(), (TraceContext{0, 0}));
}

TEST(Context, SpansAreStampedWithTheActiveTraceId) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Start();
  rec.RecordSpan(Category::kApp, "outside", 0, 10);
  {
    TraceContextScope scope({0xABCDEF, 1});
    rec.RecordSpan(Category::kApp, "inside", 20, 10);
    rec.RecordInstant(Category::kApp, "inside-instant");
  }
  rec.Stop();
  std::uint64_t outside_id = 1, inside_id = 0, instant_id = 0;
  for (const TraceEvent& ev : rec.Snapshot()) {
    const std::string name = ev.name;
    if (name == "outside") outside_id = ev.trace_id;
    if (name == "inside") inside_id = ev.trace_id;
    if (name == "inside-instant") instant_id = ev.trace_id;
  }
  EXPECT_EQ(outside_id, 0u);
  EXPECT_EQ(inside_id, 0xABCDEFu);
  EXPECT_EQ(instant_id, 0xABCDEFu);
}

// --- clock offsets -------------------------------------------------------

TEST(ClockOffset, MinimumRttSampleWins) {
  // Sample 1: RTT 100, midpoint 150, peer read 1000 -> offset -850.
  // Sample 2: RTT 40 (least queueing noise), midpoint 320, peer read
  // 1320 -> offset -1000. The estimator must keep sample 2.
  const std::vector<ClockSample> samples = {
      {100, 200, 1000},
      {300, 340, 1320},
      {400, 600, 1200},
  };
  EXPECT_EQ(EstimateClockOffset(samples), -1000);
  EXPECT_EQ(EstimateClockOffset({}), 0);
}

TEST(ClockOffset, OffsetMapsPeerTimeToLocalTime) {
  // peer time + offset = local time: a peer whose clock started 5ms
  // after ours reads 5ms less at the same instant.
  const std::vector<ClockSample> samples = {{10'000'000, 10'002'000,
                                             5'001'000}};
  EXPECT_EQ(EstimateClockOffset(samples), 10'001'000 - 5'001'000);
}

// --- export metadata -----------------------------------------------------

TEST(ProcessExport, MetaCarriesIdentityAndPeers) {
  ProcessExportMeta meta;
  meta.process_name = "client";
  meta.pid = 123;
  meta.peers.push_back({"server", 456, -7890});
  const ExportMeta lowered = BuildExportMeta(meta);
  EXPECT_EQ(lowered.process_name, "client");
  EXPECT_EQ(lowered.pid, 123u);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(lowered.extra_json, &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("process_name")->str, "client");
  EXPECT_EQ(doc.Find("pid")->number, 123);
  const JsonValue* peers = doc.Find("peers");
  ASSERT_TRUE(peers != nullptr && peers->is_array());
  ASSERT_EQ(peers->items.size(), 1u);
  EXPECT_EQ(peers->items[0].Find("name")->str, "server");
  EXPECT_EQ(peers->items[0].Find("pid")->number, 456);
  EXPECT_EQ(peers->items[0].Find("offset_ns")->number, -7890);
}

TEST(ProcessExport, ChromeJsonEmbedsMerchMeta) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Start();
  rec.RecordSpan(Category::kApp, "work", 0, 5);
  rec.Stop();
  ProcessExportMeta meta;
  meta.process_name = "merchctl";
  meta.pid = 77;
  const ExportMeta lowered = BuildExportMeta(meta);
  const std::string json = rec.ChromeJson(&lowered);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &doc, &err)) << err;
  const JsonValue* mm = doc.Find("merchMeta");
  ASSERT_TRUE(mm != nullptr && mm->is_object());
  EXPECT_EQ(mm->Find("pid")->number, 77);
  // The export stays a valid Chrome trace (with the process_name "M"
  // metadata event counted, not rejected).
  const TraceValidation v = ValidateChromeTrace(json);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.metadata, 1u);
}

// --- Prometheus parsing --------------------------------------------------

TEST(PromParse, RoundTripsTheRegistryExport) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.Reset();
  reg.GetCounter("rt_requests_total").Add(281);
  reg.GetGauge("rt_depth").Set(2.5);
  Histogram& h = reg.GetHistogram("rt_seconds", {0.1, 1.0});
  h.Observe(0.05, /*exemplar_trace_id=*/0xBEEF);
  h.Observe(0.5);
  h.Observe(3.0);

  ParsedMetrics parsed;
  std::string err;
  ASSERT_TRUE(ParsePrometheusText(reg.PrometheusText(), &parsed, &err))
      << err;
  EXPECT_EQ(parsed.counters.at("rt_requests_total"), 281);
  EXPECT_EQ(parsed.gauges.at("rt_depth"), 2.5);
  // Every export carries the build-info identity (version/sha/obs).
  EXPECT_NE(parsed.build_info_labels.find("version="), std::string::npos);
  EXPECT_NE(parsed.build_info_labels.find("obs="), std::string::npos);

  const PromHistogram& hist = parsed.histograms.at("rt_seconds");
  ASSERT_EQ(hist.bounds, (std::vector<double>{0.1, 1.0}));
  EXPECT_EQ(hist.cumulative, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(hist.count, 3u);
  EXPECT_NEAR(hist.sum, 3.55, 1e-9);
  ASSERT_EQ(hist.exemplars.size(), 3u);
  EXPECT_EQ(hist.exemplars[0].trace_id, 0xBEEFu);
  EXPECT_NEAR(hist.exemplars[0].value, 0.05, 1e-9);
  EXPECT_EQ(hist.exemplars[1].trace_id, 0u);
  reg.Reset();
}

TEST(PromParse, MalformedLinesFailWithLineNumbers) {
  ParsedMetrics parsed;
  std::string err;
  EXPECT_FALSE(ParsePrometheusText("!!!\n", &parsed, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  // A sample for a metric that never had a # TYPE declaration.
  EXPECT_FALSE(
      ParsePrometheusText("# TYPE a counter\na 1\nmystery 2\n", &parsed,
                          &err));
  EXPECT_NE(err.find("line 3"), std::string::npos);
  EXPECT_NE(err.find("mystery"), std::string::npos);
}

// --- federation ----------------------------------------------------------

ParsedMetrics ShardExport(double requests, std::uint64_t b0,
                          std::uint64_t b1, std::uint64_t binf,
                          std::uint64_t exemplar_id, double exemplar_v) {
  ParsedMetrics m;
  m.counters["fed_requests_total"] = requests;
  m.gauges["fed_depth"] = requests / 2;
  PromHistogram h;
  h.bounds = {0.1, 1.0};
  h.cumulative = {b0, b1, binf};
  h.count = binf;
  h.sum = static_cast<double>(binf) * 0.25;
  h.exemplars.resize(3);
  h.exemplars[0] = {exemplar_id, exemplar_v};
  m.histograms["fed_seconds"] = h;
  m.build_info_labels = "version=\"0.9.0\"";
  return m;
}

TEST(Federation, SumsCountersAndBucketsExactly) {
  const std::vector<ShardMetrics> shards = {
      {"shard0", ShardExport(5, 1, 2, 4, 0xA, 0.05)},
      {"shard1", ShardExport(7, 2, 3, 5, 0xB, 0.09)},
  };
  std::string text, err;
  ASSERT_TRUE(FederateMetrics(shards, &text, &err)) << err;

  // Per-shard contributions stay visible as labelled series...
  EXPECT_NE(text.find("fed_requests_total{shard=\"shard0\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("fed_requests_total{shard=\"shard1\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("merch_build_info{shard=\"shard0\","),
            std::string::npos);

  // ...and re-parsing the federated text lands on the exact fleet sums
  // (the unlabelled totals are emitted after the labelled series).
  ParsedMetrics fed;
  ASSERT_TRUE(ParsePrometheusText(text, &fed, &err)) << err;
  EXPECT_EQ(fed.counters.at("fed_requests_total"), 12);
  EXPECT_EQ(fed.gauges.at("fed_depth"), 6);
  const PromHistogram& h = fed.histograms.at("fed_seconds");
  EXPECT_EQ(h.cumulative, (std::vector<std::uint64_t>{3, 5, 9}));
  EXPECT_EQ(h.count, 9u);
  EXPECT_NEAR(h.sum, 2.25, 1e-9);
  // The larger-valued exemplar survives federation with its trace id.
  EXPECT_EQ(h.exemplars[0].trace_id, 0xBu);
  EXPECT_NEAR(h.exemplars[0].value, 0.09, 1e-9);
}

TEST(Federation, MissingSeriesOnOneShardStillSums) {
  ShardMetrics a{"a", {}};
  a.metrics.counters["only_on_a_total"] = 3;
  ShardMetrics b{"b", {}};
  std::string text, err;
  ASSERT_TRUE(FederateMetrics({a, b}, &text, &err)) << err;
  ParsedMetrics fed;
  ASSERT_TRUE(ParsePrometheusText(text, &fed, &err)) << err;
  EXPECT_EQ(fed.counters.at("only_on_a_total"), 3);
}

TEST(Federation, MismatchedBucketLayoutsAreRejectedWithClearError) {
  std::vector<ShardMetrics> shards = {
      {"shard0", ShardExport(1, 1, 1, 1, 0, 0)},
      {"shard1", ShardExport(1, 1, 1, 1, 0, 0)},
  };
  shards[1].metrics.histograms["fed_seconds"].bounds = {0.25, 2.0};
  std::string text, err;
  EXPECT_FALSE(FederateMetrics(shards, &text, &err));
  // The error must name the histogram, both shards, and both layouts —
  // never a silent mis-sum of incomparable buckets.
  EXPECT_NE(err.find("fed_seconds"), std::string::npos);
  EXPECT_NE(err.find("shard0"), std::string::npos);
  EXPECT_NE(err.find("shard1"), std::string::npos);
  EXPECT_NE(err.find("refusing to merge"), std::string::npos);
}

// --- cross-process trace merge -------------------------------------------

/// Record `events` (name, start_ns, dur_ns, trace_id) as one process's
/// export with the given identity and measured peers.
std::string ProcessTraceJson(
    const std::string& name, std::uint64_t pid,
    const std::vector<PeerClock>& peers,
    const std::vector<std::tuple<const char*, std::uint64_t, std::uint64_t,
                                 std::uint64_t>>& events) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Start();
  for (const auto& [ev_name, start, dur, trace_id] : events) {
    TraceContextScope scope({trace_id, 0});
    rec.RecordSpan(Category::kNet, ev_name, start, dur);
  }
  rec.Stop();
  ProcessExportMeta meta;
  meta.process_name = name;
  meta.pid = pid;
  meta.peers = peers;
  const ExportMeta lowered = BuildExportMeta(meta);
  return rec.ChromeJson(&lowered);
}

TEST(Merge, LinksSharedTraceIdsWithFlowArrows) {
  const std::uint64_t kTrace = 0x123456;
  // The client measured the server's clock: server + (-500000) = client,
  // i.e. the server's clock started 0.5ms before the client's.
  const std::string client = ProcessTraceJson(
      "client", 100, {{"server", 200, -500'000}},
      {{"remote.call", 1'000'000, 2'000'000, kTrace}});
  const std::string server = ProcessTraceJson(
      "server", 200, {},
      {{"net.request", 2'200'000, 1'000'000, kTrace},
       {"unrelated", 50'000, 10'000, 0}});

  std::string merged, err;
  MergeSummary summary;
  ASSERT_TRUE(MergeTraces({client, server}, &merged, &err, &summary)) << err;
  EXPECT_EQ(summary.files, 2u);
  EXPECT_EQ(summary.root_process, "client");
  EXPECT_EQ(summary.linked_traces, 1u);
  EXPECT_EQ(summary.flows, 2u);  // one s -> f arrow for the one hop
  EXPECT_EQ(summary.unanchored, 0u);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(merged, &doc, &err)) << err;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());

  // Clock alignment: server ts shifts by -0.5ms into the client frame,
  // then the whole timeline rebases to the earliest event (the server's
  // "unrelated" span at aligned -450us). Expected ts in exported us:
  //   unrelated 0, remote.call 1450, net.request 2150.
  double client_ts = -1, server_ts = -1;
  std::size_t flow_events = 0;
  std::set<double> flow_pids;
  for (const JsonValue& ev : events->items) {
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* ev_name = ev.Find("name");
    if (ph == nullptr || !ph->is_string()) continue;
    if (ph->str == "X" && ev_name != nullptr) {
      if (ev_name->str == "remote.call") client_ts = ts->number;
      if (ev_name->str == "net.request") server_ts = ts->number;
    }
    if (ph->str == "s" || ph->str == "f") {
      ++flow_events;
      const JsonValue* id = ev.Find("id");
      ASSERT_TRUE(id != nullptr && id->is_number());
      EXPECT_EQ(static_cast<std::uint64_t>(id->number), kTrace);
      flow_pids.insert(ev.Find("pid")->number);
    }
  }
  EXPECT_NEAR(client_ts, 1450.0, 1.0);
  EXPECT_NEAR(server_ts, 2150.0, 1.0);
  EXPECT_EQ(flow_events, 2u);
  EXPECT_EQ(flow_pids, (std::set<double>{100, 200}));

  // The merged document is itself a valid trace with counted flows.
  const TraceValidation v = ValidateChromeTrace(merged);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.flows, 2u);
}

TEST(Merge, ShiftsPropagateThroughTwoHops) {
  const std::uint64_t kTrace = 0x777;
  // client measures router (+1ms), router measures shard (+2ms): the
  // shard's events must shift by the composed +3ms into the client frame.
  const std::string client = ProcessTraceJson(
      "client", 1, {{"router", 2, 1'000'000}},
      {{"remote.call", 0, 9'000'000, kTrace}});
  const std::string router = ProcessTraceJson(
      "router", 2, {{"shard0", 3, 2'000'000}},
      {{"router.forward", 500'000, 7'000'000, kTrace}});
  const std::string shard = ProcessTraceJson(
      "shard0", 3, {}, {{"net.request", 100'000, 5'000'000, kTrace}});

  std::string merged, err;
  MergeSummary summary;
  ASSERT_TRUE(MergeTraces({shard, router, client}, &merged, &err, &summary))
      << err;
  EXPECT_EQ(summary.root_process, "client");
  EXPECT_EQ(summary.linked_traces, 1u);
  EXPECT_EQ(summary.flows, 3u);  // s -> t -> f across three processes
  EXPECT_EQ(summary.unanchored, 0u);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(merged, &doc, &err)) << err;
  double shard_ts = -1;
  for (const JsonValue& ev : doc.Find("traceEvents")->items) {
    const JsonValue* ev_name = ev.Find("name");
    const JsonValue* ph = ev.Find("ph");
    if (ev_name != nullptr && ph != nullptr && ph->str == "X" &&
        ev_name->str == "net.request") {
      shard_ts = ev.Find("ts")->number;
    }
  }
  // shard 100us + 2ms (to router) + 1ms (to client) = 3100us; the client
  // span at 0 is the earliest event, so no rebase shift applies.
  EXPECT_NEAR(shard_ts, 3100.0, 1.0);
}

TEST(Merge, RejectsDuplicatePids) {
  const std::string a =
      ProcessTraceJson("a", 42, {}, {{"x", 0, 1, 0}});
  const std::string b =
      ProcessTraceJson("b", 42, {}, {{"y", 0, 1, 0}});
  std::string merged, err;
  EXPECT_FALSE(MergeTraces({a, b}, &merged, &err));
  EXPECT_NE(err.find("42"), std::string::npos);
}

TEST(Merge, RejectsExportsWithoutProcessMetadata) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Start();
  rec.RecordSpan(Category::kApp, "bare", 0, 1);
  rec.Stop();
  const std::string bare = rec.ChromeJson();  // no merchMeta
  std::string merged, err;
  EXPECT_FALSE(MergeTraces({bare}, &merged, &err));
  EXPECT_NE(err.find("merchMeta"), std::string::npos);
}

}  // namespace
}  // namespace merch::obs
