// Checkpoint fidelity and incremental-sweep equivalence.
//
// The contracts under test (both carry the "perf" ctest label):
//   1. Pausing a run at an arbitrary policy hook, round-tripping the
//      checkpoint through its binary encoding, and resuming on a freshly
//      constructed engine yields a SimResult byte-identical to the
//      uninterrupted run — across the {SIMD} x {threads} x {arena}
//      optimisation matrix.
//   2. RunIncrementalSweep's fork-tree delta simulation returns, for every
//      sweep point, exactly the SimResult a standalone Engine::Run of that
//      point produces, while actually sharing epochs between points.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "core/merchandiser.h"
#include "sim/checkpoint.h"
#include "sim/engine.h"
#include "sim/incremental.h"

namespace merch {
namespace {

constexpr double kScale = 1.0 / 64;

sim::MachineSpec ScaledMachine() {
  sim::MachineSpec m = sim::MachineSpec::Paper();
  m.hm[hm::Tier::kDram].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kDram].capacity_bytes) * kScale);
  m.hm[hm::Tier::kPm].capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(m.hm[hm::Tier::kPm].capacity_bytes) * kScale);
  return m;
}

sim::SimConfig ScaledConfig() {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.02;
  cfg.interval_seconds = 0.25;
  cfg.page_bytes = 512 * KiB;
  return cfg;
}

const core::MerchandiserSystem& System() {
  static const core::MerchandiserSystem* kSystem = [] {
    workloads::TrainingConfig cfg;
    cfg.num_regions = 12;
    cfg.placements_per_region = 4;
    return new core::MerchandiserSystem(core::MerchandiserSystem::Train(cfg));
  }();
  return *kSystem;
}

/// Fresh policy instance (policies are stateful: one object per run).
std::unique_ptr<sim::PlacementPolicy> MakePolicy(
    const std::string& policy, const apps::AppBundle& bundle,
    const sim::MachineSpec& machine) {
  if (policy == "pm") return std::make_unique<baselines::PmOnlyPolicy>();
  if (policy == "mm") return std::make_unique<baselines::MemoryModePolicy>();
  if (policy == "mo") {
    return std::make_unique<baselines::MemoryOptimizerPolicy>();
  }
  return System().MakePolicy(bundle.workload, machine);
}

/// Exact (no-tolerance) equality over every SimResult field.
void ExpectIdentical(const sim::SimResult& a, const sim::SimResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.migration.pages_to_dram, b.migration.pages_to_dram);
  EXPECT_EQ(a.migration.pages_to_pm, b.migration.pages_to_pm);
  EXPECT_EQ(a.migration.bytes_to_dram, b.migration.bytes_to_dram);
  EXPECT_EQ(a.migration.bytes_to_pm, b.migration.bytes_to_pm);
  EXPECT_EQ(a.migration.failed_capacity, b.migration.failed_capacity);
  ASSERT_EQ(a.bandwidth.size(), b.bandwidth.size());
  for (std::size_t i = 0; i < a.bandwidth.size(); ++i) {
    EXPECT_EQ(a.bandwidth[i].t, b.bandwidth[i].t);
    EXPECT_EQ(a.bandwidth[i].dram_gbps, b.bandwidth[i].dram_gbps);
    EXPECT_EQ(a.bandwidth[i].pm_gbps, b.bandwidth[i].pm_gbps);
    EXPECT_EQ(a.bandwidth[i].migration_gbps, b.bandwidth[i].migration_gbps);
  }
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    const sim::RegionStats& ra = a.regions[r];
    const sim::RegionStats& rb = b.regions[r];
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.start_time, rb.start_time);
    EXPECT_EQ(ra.duration, rb.duration);
    ASSERT_EQ(ra.tasks.size(), rb.tasks.size());
    for (std::size_t t = 0; t < ra.tasks.size(); ++t) {
      const sim::TaskStats& ta = ra.tasks[t];
      const sim::TaskStats& tb = rb.tasks[t];
      EXPECT_EQ(ta.task, tb.task);
      EXPECT_EQ(ta.exec_seconds, tb.exec_seconds);
      EXPECT_EQ(ta.barrier_wait, tb.barrier_wait);
      EXPECT_EQ(ta.agg.instructions, tb.agg.instructions);
      EXPECT_EQ(ta.agg.program_accesses, tb.agg.program_accesses);
      EXPECT_EQ(ta.agg.mm_accesses, tb.agg.mm_accesses);
      EXPECT_EQ(ta.agg.l2_misses, tb.agg.l2_misses);
      EXPECT_EQ(ta.agg.compute_seconds, tb.agg.compute_seconds);
      EXPECT_EQ(ta.agg.memory_seconds, tb.agg.memory_seconds);
      EXPECT_EQ(ta.pmcs, tb.pmcs);
      EXPECT_EQ(ta.object_program_accesses, tb.object_program_accesses);
      EXPECT_EQ(ta.object_mm_accesses, tb.object_mm_accesses);
      EXPECT_EQ(ta.kernel_seconds, tb.kernel_seconds);
    }
  }
}

/// Counts hooks and, at hook `stop_at`, snapshots the engine and abandons
/// the run. Hooks always pass through to the engine's policy first, so the
/// captured checkpoint is the post-hook state.
class PauseObserver : public sim::Engine::HookObserver {
 public:
  explicit PauseObserver(int stop_at) : stop_at_(stop_at) {}

  void OnHook(sim::Engine& engine, sim::HookPoint hook) override {
    engine.RunHookDirect(hook);
    if (count_++ == stop_at_) {
      checkpoint_ = engine.SaveCheckpoint(hook);
      engine.RequestStop();
    }
  }

  int count() const { return count_; }
  const std::optional<sim::EngineCheckpoint>& checkpoint() const {
    return checkpoint_;
  }

 private:
  int stop_at_;
  int count_ = 0;
  std::optional<sim::EngineCheckpoint> checkpoint_;
};

/// Pause at hook `stop_at`, serialize/deserialize the checkpoint, resume on
/// a fresh engine with the same (prefix-advanced) policy object, and demand
/// byte-identity with `baseline`. Returns the total hook count observed.
int PauseAndResume(const apps::AppBundle& bundle, const std::string& policy,
                   const sim::SimConfig& cfg, const sim::SimResult& baseline,
                   int stop_at, const std::string& label) {
  const sim::MachineSpec machine = ScaledMachine();
  const std::unique_ptr<sim::PlacementPolicy> p =
      MakePolicy(policy, bundle, machine);
  sim::Engine paused(bundle.workload, machine, cfg, p.get());
  PauseObserver observer(stop_at);
  paused.set_hook_observer(&observer);
  const sim::SimResult partial = paused.Run();

  if (!observer.checkpoint().has_value()) {
    // stop_at was past the last hook: the observer was a pure passthrough
    // and the run completed normally — still a contract worth checking.
    ExpectIdentical(baseline, partial, label + " passthrough");
    return observer.count();
  }

  const std::vector<std::uint8_t> bytes = observer.checkpoint()->ToBytes();
  const std::optional<sim::EngineCheckpoint> decoded =
      sim::EngineCheckpoint::FromBytes(bytes);
  EXPECT_TRUE(decoded.has_value()) << label;
  if (!decoded.has_value()) return observer.count();

  sim::Engine resumed(bundle.workload, machine, cfg, p.get());
  ExpectIdentical(baseline, resumed.ResumeRun(*decoded), label);
  return observer.count();
}

sim::SimResult RunBaseline(const apps::AppBundle& bundle,
                           const std::string& policy,
                           const sim::SimConfig& cfg) {
  const sim::MachineSpec machine = ScaledMachine();
  const std::unique_ptr<sim::PlacementPolicy> p =
      MakePolicy(policy, bundle, machine);
  sim::Engine engine(bundle.workload, machine, cfg, p.get());
  return engine.Run();
}

// --- checkpoint fidelity ---------------------------------------------------

/// Every hook flavour (kSimStart, kRegionStart, kInterval, kFlush,
/// kRegionEnd — i.e. every EnginePhase a checkpoint can encode) is hit by
/// pausing at each of the first hooks of a run, plus deeper random ones.
TEST(CheckpointFidelity, EveryEarlyHookRoundTripsBitIdentical) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", kScale, kScale / 4);
  const sim::SimResult baseline = RunBaseline(bundle, "merch", ScaledConfig());
  // A never-firing pause point exercises the passthrough contract and
  // reports the run's total hook count.
  const int total_hooks = PauseAndResume(bundle, "merch", ScaledConfig(),
                                         baseline, 1 << 30,
                                         "SpGEMM/merch passthrough");
  for (int stop_at = 0; stop_at < 10; ++stop_at) {
    PauseAndResume(bundle, "merch", ScaledConfig(), baseline, stop_at,
                   "SpGEMM/merch hook " + std::to_string(stop_at));
  }
  ASSERT_GT(total_hooks, 10);
  std::mt19937_64 rng(0x5EED5);
  for (int i = 0; i < 4; ++i) {
    const int stop_at = 10 + static_cast<int>(
        rng() % static_cast<std::uint64_t>(total_hooks - 10));
    PauseAndResume(bundle, "merch", ScaledConfig(), baseline, stop_at,
                   "SpGEMM/merch hook " + std::to_string(stop_at));
  }
}

/// Randomized pause points across the {SIMD} x {threads} x {arena} matrix
/// and the full policy set, with the toggles resolved from the environment
/// exactly as production runs resolve them.
TEST(CheckpointFidelity, PauseResumeMatrixBitIdentical) {
  std::mt19937_64 rng(0xF1DE11);
  const std::vector<std::string>& apps = apps::AppNames();
  const std::vector<std::string> policies = {"pm", "mm", "mo", "merch"};
  for (const bool simd : {true, false}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const bool arena : {true, false}) {
        const std::string app = apps[rng() % apps.size()];
        const std::string policy = policies[rng() % policies.size()];
        const int stop_at = static_cast<int>(rng() % 24);
        const std::string label =
            app + "/" + policy + " simd=" + (simd ? "1" : "0") +
            " threads=" + std::to_string(threads) + " arena=" +
            (arena ? "1" : "0") + " hook=" + std::to_string(stop_at);
        const apps::AppBundle bundle = apps::BuildApp(app, kScale, kScale / 4);

        setenv("MERCH_SIMD", simd ? "1" : "0", 1);
        setenv("MERCH_ARENA", arena ? "1" : "0", 1);
        sim::SimConfig cfg = ScaledConfig();
        cfg.timing_threads = threads;
        if (threads > 1) cfg.timing_fanout_min_lanes = 0;
        const sim::SimResult baseline = RunBaseline(bundle, policy, cfg);
        PauseAndResume(bundle, policy, cfg, baseline, stop_at, label);
        unsetenv("MERCH_SIMD");
        unsetenv("MERCH_ARENA");
      }
    }
  }
}

TEST(CheckpointCodec, RejectsTruncatedAndCorruptedInput) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", kScale, kScale / 4);
  const sim::MachineSpec machine = ScaledMachine();
  const std::unique_ptr<sim::PlacementPolicy> p =
      MakePolicy("mo", bundle, machine);
  sim::Engine engine(bundle.workload, machine, ScaledConfig(), p.get());
  PauseObserver observer(3);
  engine.set_hook_observer(&observer);
  (void)engine.Run();
  ASSERT_TRUE(observer.checkpoint().has_value());

  const std::vector<std::uint8_t> bytes = observer.checkpoint()->ToBytes();
  ASSERT_TRUE(sim::EngineCheckpoint::FromBytes(bytes).has_value());

  // Every strict prefix must be rejected, not crash or misparse.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(sim::EngineCheckpoint::FromBytes(
                     std::span<const std::uint8_t>(bytes.data(), cut))
                     .has_value())
        << "prefix " << cut;
  }
  // Trailing garbage and a bad magic are rejected too.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(sim::EngineCheckpoint::FromBytes(padded).has_value());
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(sim::EngineCheckpoint::FromBytes(bad_magic).has_value());
}

// --- incremental sweep equivalence -----------------------------------------

/// The fork-tree driver across a DRAM-capacity ladder x the full policy
/// set must reproduce every standalone run byte for byte, while sharing a
/// meaningful number of epochs between points.
TEST(IncrementalSweep, CapacityPolicyLadderMatchesStandaloneRuns) {
  const apps::AppBundle bundle = apps::BuildApp("SpGEMM", kScale, kScale / 4);
  const std::vector<double> capacity_scale = {0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> policies = {"pm", "mm", "mo", "merch"};
  const sim::SimConfig cfg = ScaledConfig();

  std::vector<std::unique_ptr<sim::PlacementPolicy>> owners;
  std::vector<sim::SweepPointSpec> specs;
  for (const std::string& policy : policies) {
    for (const double scale : capacity_scale) {
      sim::MachineSpec machine = ScaledMachine();
      machine.hm[hm::Tier::kDram].capacity_bytes =
          static_cast<std::uint64_t>(
              static_cast<double>(
                  machine.hm[hm::Tier::kDram].capacity_bytes) *
              scale);
      owners.push_back(MakePolicy(policy, bundle, machine));
      specs.push_back(sim::SweepPointSpec{machine, owners.back().get()});
    }
  }

  const std::vector<sim::SweepPointOutcome> outcomes =
      sim::RunIncrementalSweep(bundle.workload, cfg, specs);
  ASSERT_EQ(outcomes.size(), specs.size());

  std::uint64_t skipped = 0;
  std::size_t i = 0;
  for (const std::string& policy : policies) {
    for (const double scale : capacity_scale) {
      const sim::SweepPointSpec& spec = specs[i];
      const std::unique_ptr<sim::PlacementPolicy> standalone_policy =
          MakePolicy(policy, bundle, spec.machine);
      sim::Engine standalone(bundle.workload, spec.machine, cfg,
                             standalone_policy.get());
      const sim::SimResult expect = standalone.Run();
      const std::string label =
          policy + " @" + std::to_string(scale) + "x DRAM";
      ExpectIdentical(expect, outcomes[i].result, label);
      // The shared+own epochs of each point account for exactly the epochs
      // its standalone run executes.
      EXPECT_EQ(outcomes[i].epochs_skipped + outcomes[i].epochs_executed,
                standalone.epoch_count())
          << label;
      for (const double f : outcomes[i].final_dram_fraction) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
      skipped += outcomes[i].epochs_skipped;
      ++i;
    }
  }
  // Delta simulation actually happened: a meaningful share of the ladder's
  // epochs ran once on a shared engine instead of per point.
  EXPECT_GT(skipped, 0u);
}

/// Identical policies on identical machines never diverge: one engine
/// serves the whole ladder and every passenger skips every epoch.
TEST(IncrementalSweep, IdenticalPointsFullyConverge) {
  const apps::AppBundle bundle = apps::BuildApp("BFS", kScale, kScale / 4);
  const sim::SimConfig cfg = ScaledConfig();
  std::vector<std::unique_ptr<sim::PlacementPolicy>> owners;
  std::vector<sim::SweepPointSpec> specs;
  for (int i = 0; i < 3; ++i) {
    owners.push_back(MakePolicy("mo", bundle, ScaledMachine()));
    specs.push_back(sim::SweepPointSpec{ScaledMachine(), owners.back().get()});
  }
  const std::vector<sim::SweepPointOutcome> outcomes =
      sim::RunIncrementalSweep(bundle.workload, cfg, specs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_GT(outcomes[0].epochs_executed, 0u);
  EXPECT_EQ(outcomes[0].checkpoint_forks, 0u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].epochs_executed, 0u);
    EXPECT_EQ(outcomes[i].checkpoint_forks, 0u);
    EXPECT_EQ(outcomes[i].epochs_skipped, outcomes[0].epochs_executed);
    ExpectIdentical(outcomes[0].result, outcomes[i].result, "converged twin");
  }
}

}  // namespace
}  // namespace merch
