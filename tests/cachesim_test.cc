// Tests for the CPU-cache miss model and the Memory Mode DRAM-cache model.
#include <gtest/gtest.h>

#include "cachesim/cpu_cache.h"
#include "cachesim/memory_mode.h"
#include "common/types.h"

namespace merch::cachesim {
namespace {

using trace::AccessPattern;
using trace::ObjectAccess;

CpuCacheSpec Cache() { return CpuCacheSpec::PaperXeon(); }

ObjectAccess Access(AccessPattern p, std::uint32_t elem = 8,
                    std::uint32_t stride = 1) {
  ObjectAccess a;
  a.pattern = p;
  a.element_bytes = elem;
  a.stride_elements = stride;
  return a;
}

TEST(CpuCache, StreamMissesOncePerLine) {
  const double m = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                      1 * GiB, Cache());
  EXPECT_NEAR(m, 8.0 / 64.0, 1e-12);
}

TEST(CpuCache, StreamElementSizeScalesMisses) {
  const double m4 = MainMemoryMissRate(Access(AccessPattern::kStream, 4),
                                       1 * GiB, Cache());
  const double m8 = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                       1 * GiB, Cache());
  EXPECT_NEAR(m8, 2.0 * m4, 1e-12);
}

TEST(CpuCache, WideStrideMissesEveryAccess) {
  const double m = MainMemoryMissRate(Access(AccessPattern::kStrided, 8, 16),
                                      1 * GiB, Cache());
  EXPECT_DOUBLE_EQ(m, 1.0);
}

TEST(CpuCache, NarrowStrideBetweenStreamAndOne) {
  const double stream = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                           1 * GiB, Cache());
  const double strided = MainMemoryMissRate(
      Access(AccessPattern::kStrided, 8, 4), 1 * GiB, Cache());
  EXPECT_GT(strided, stream);
  EXPECT_LE(strided, 1.0);
}

TEST(CpuCache, StencilReusesNeighborLines) {
  const double stream = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                           1 * GiB, Cache());
  const double stencil = MainMemoryMissRate(Access(AccessPattern::kStencil, 8),
                                            1 * GiB, Cache());
  EXPECT_LT(stencil, stream);
}

TEST(CpuCache, RandomMissesScaleWithObjectSize) {
  const double small = MainMemoryMissRate(Access(AccessPattern::kRandom, 8),
                                          Cache().llc_bytes / 2, Cache());
  const double large = MainMemoryMissRate(Access(AccessPattern::kRandom, 8),
                                          100 * GiB, Cache());
  EXPECT_LT(small, 0.01);  // fits in LLC
  EXPECT_GT(large, 0.99);  // far exceeds LLC
}

TEST(CpuCache, ZipfHeatAbsorbsHotLines) {
  const trace::HeatProfile skew = trace::HeatProfile::Zipf(1.0);
  const double uniform = MainMemoryMissRate(Access(AccessPattern::kRandom, 8),
                                            50 * GiB, Cache());
  const double skewed = MainMemoryMissRate(Access(AccessPattern::kRandom, 8),
                                           50 * GiB, Cache(), 1.0, &skew);
  // Hub lines live in the LLC: the skewed stream misses much less.
  EXPECT_LT(skewed, uniform);
  EXPECT_LT(skewed, 0.7);
}

TEST(CpuCache, ReusePassesAmortiseCacheResidentObjects) {
  const std::uint64_t small = Cache().llc_bytes / 4;
  const double once = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                         small, Cache(), 1.0);
  const double many = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                         small, Cache(), 10.0);
  EXPECT_NEAR(many, once / 10.0, 1e-12);
  // No amortisation for objects bigger than the cache.
  const double big = MainMemoryMissRate(Access(AccessPattern::kStream, 8),
                                        10 * GiB, Cache(), 10.0);
  EXPECT_DOUBLE_EQ(big, once);
}

TEST(CpuCache, L2MissesAtLeastLlcMisses) {
  for (const auto p : {AccessPattern::kStream, AccessPattern::kRandom}) {
    const ObjectAccess a = Access(p, 8);
    EXPECT_GE(L2MissRate(a, 1 * GiB, Cache()),
              MainMemoryMissRate(a, 1 * GiB, Cache()) - 1e-12);
  }
}

TEST(CpuCache, UnknownTreatedAsRandom) {
  const double unknown = MainMemoryMissRate(Access(AccessPattern::kUnknown, 8),
                                            10 * GiB, Cache());
  const double random = MainMemoryMissRate(Access(AccessPattern::kRandom, 8),
                                           10 * GiB, Cache());
  EXPECT_DOUBLE_EQ(unknown, random);
}

// ---------------------------------------------------------------- MemoryMode

TEST(MemoryMode, FractionsWithinBounds) {
  MemoryModeCache cache(192 * GiB);
  std::vector<MemoryModeObject> objects = {
      {.bytes = 100 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9},
      {.bytes = 300 * GiB, .pattern = AccessPattern::kRandom, .mm_accesses = 1e9},
  };
  const MemoryModeResult r = cache.Evaluate(objects, 2 * MiB);
  for (const double f : r.dram_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(MemoryMode, RandomLocalityWorseThanStream) {
  MemoryModeCache cache(192 * GiB);
  std::vector<MemoryModeObject> objects = {
      {.bytes = 50 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9},
      {.bytes = 50 * GiB, .pattern = AccessPattern::kRandom, .mm_accesses = 1e9},
  };
  const MemoryModeResult r = cache.Evaluate(objects, 2 * MiB);
  EXPECT_GT(r.dram_fraction[0], r.dram_fraction[1]);
}

TEST(MemoryMode, PressureLowersHitRates) {
  MemoryModeCache cache(192 * GiB);
  std::vector<MemoryModeObject> light = {
      {.bytes = 50 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9}};
  std::vector<MemoryModeObject> heavy = {
      {.bytes = 50 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9},
      {.bytes = 900 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9}};
  const double f_light = cache.Evaluate(light, 2 * MiB).dram_fraction[0];
  const double f_heavy = cache.Evaluate(heavy, 2 * MiB).dram_fraction[0];
  EXPECT_GT(f_light, f_heavy);
}

TEST(MemoryMode, IdleObjectsIgnored) {
  MemoryModeCache cache(192 * GiB);
  std::vector<MemoryModeObject> objects = {
      {.bytes = 100 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 0},
      {.bytes = 100 * GiB, .pattern = AccessPattern::kStream, .mm_accesses = 1e9},
  };
  const MemoryModeResult r = cache.Evaluate(objects, 2 * MiB);
  EXPECT_EQ(r.dram_fraction[0], 0.0);
  EXPECT_GT(r.dram_fraction[1], 0.5);  // only 100 GiB active in 163 GiB eff.
}

TEST(MemoryMode, WritebackTrafficGrowsWithMisses) {
  MemoryModeCache cache(16 * GiB);  // tiny cache => many misses
  std::vector<MemoryModeObject> objects = {
      {.bytes = 800 * GiB, .pattern = AccessPattern::kRandom, .mm_accesses = 1e9}};
  const MemoryModeResult r = cache.Evaluate(objects, 2 * MiB);
  EXPECT_GT(r.writeback_bytes_to_pm, 0.0);
}

TEST(MemoryMode, EmptyActivity) {
  MemoryModeCache cache(192 * GiB);
  const MemoryModeResult r = cache.Evaluate({}, 2 * MiB);
  EXPECT_TRUE(r.dram_fraction.empty());
  EXPECT_EQ(r.writeback_bytes_to_pm, 0.0);
}

}  // namespace
}  // namespace merch::cachesim
