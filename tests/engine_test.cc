// Simulator engine tests: homogeneous bounds, barrier semantics, placement
// sensitivity, contention, telemetry, and PMC synthesis.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.h"
#include "sim/fixed_fraction.h"

namespace merch::sim {
namespace {

/// One task, one kernel, memory-bound on a single object.
Workload SingleTaskWorkload(trace::AccessPattern pattern,
                            std::uint64_t bytes = 2 * GiB,
                            double accesses = 5e7, int regions = 1) {
  Workload w;
  w.name = "single";
  w.objects.push_back(ObjectDecl{.name = "data", .bytes = bytes, .owner = 0});
  for (int r = 0; r < regions; ++r) {
    Kernel k;
    k.name = "kernel";
    k.instructions = static_cast<std::uint64_t>(accesses * 4);
    trace::ObjectAccess a;
    a.object = 0;
    a.pattern = pattern;
    a.program_accesses = static_cast<std::uint64_t>(accesses);
    k.accesses.push_back(a);
    Region region;
    region.name = "r" + std::to_string(r);
    region.tasks.push_back(TaskProgram{.task = 0, .kernels = {k}});
    region.active_bytes = {bytes};
    w.regions.push_back(region);
  }
  return w;
}

/// Two tasks with asymmetric work in one region.
Workload TwoTaskWorkload(double accesses_a, double accesses_b) {
  Workload w;
  w.name = "two";
  w.objects.push_back(ObjectDecl{.name = "a", .bytes = 2 * GiB, .owner = 0});
  w.objects.push_back(ObjectDecl{.name = "b", .bytes = 2 * GiB, .owner = 1});
  Region region;
  region.name = "r";
  for (int t = 0; t < 2; ++t) {
    Kernel k;
    k.name = "k";
    k.instructions = 1000000;
    trace::ObjectAccess a;
    a.object = static_cast<ObjectId>(t);
    a.pattern = trace::AccessPattern::kRandom;
    a.program_accesses =
        static_cast<std::uint64_t>(t == 0 ? accesses_a : accesses_b);
    k.accesses.push_back(a);
    region.tasks.push_back(
        TaskProgram{.task = static_cast<TaskId>(t), .kernels = {k}});
  }
  region.active_bytes = {2 * GiB, 2 * GiB};
  w.regions.push_back(region);
  return w;
}

SimConfig FastConfig() {
  SimConfig cfg;
  cfg.epoch_seconds = 0.01;
  cfg.interval_seconds = 1e9;
  cfg.page_bytes = 2 * MiB;
  cfg.pmc_noise = 0.0;
  return cfg;
}

TEST(Engine, DramOnlyFasterThanPmOnly) {
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kRandom);
  const MachineSpec machine = MachineSpec::Paper();
  const auto pm = SimulateHomogeneous(w, machine, hm::Tier::kPm, FastConfig());
  const auto dram =
      SimulateHomogeneous(w, machine, hm::Tier::kDram, FastConfig());
  EXPECT_GT(pm.total_seconds, dram.total_seconds * 1.5);
}

TEST(Engine, RandomPatternMoreTierSensitiveThanStream) {
  const MachineSpec machine = MachineSpec::Paper();
  const auto ratio = [&](trace::AccessPattern p) {
    const Workload w = SingleTaskWorkload(p);
    return SimulateHomogeneous(w, machine, hm::Tier::kPm, FastConfig())
               .total_seconds /
           SimulateHomogeneous(w, machine, hm::Tier::kDram, FastConfig())
               .total_seconds;
  };
  EXPECT_GT(ratio(trace::AccessPattern::kRandom),
            ratio(trace::AccessPattern::kStream));
}

TEST(Engine, BarrierDurationIsSlowestTask) {
  const Workload w = TwoTaskWorkload(4e7, 1e7);
  const auto r = SimulateHomogeneous(w, MachineSpec::Paper(), hm::Tier::kPm,
                                     FastConfig());
  ASSERT_EQ(r.regions.size(), 1u);
  const RegionStats& region = r.regions[0];
  ASSERT_EQ(region.tasks.size(), 2u);
  const double t0 = region.tasks[0].exec_seconds;
  const double t1 = region.tasks[1].exec_seconds;
  EXPECT_GT(t0, t1 * 2);
  EXPECT_NEAR(region.duration, t0, 1e-9);
  EXPECT_NEAR(region.tasks[1].barrier_wait, t0 - t1, 1e-9);
  EXPECT_NEAR(region.tasks[0].barrier_wait, 0.0, 1e-9);
}

TEST(Engine, ContentionSlowsSharedTier) {
  // One streaming task is latency/MLP-capped near ~6 GB/s; a dozen of them
  // exceed PM's 52 GB/s and must slow each other down.
  auto make = [](int tasks) {
    Workload w;
    w.name = "contend";
    Region region;
    region.name = "r";
    for (int t = 0; t < tasks; ++t) {
      w.objects.push_back(ObjectDecl{.name = "o" + std::to_string(t),
                                     .bytes = 8 * GiB,
                                     .owner = static_cast<TaskId>(t)});
      Kernel k;
      k.name = "k";
      k.instructions = 1000000;
      trace::ObjectAccess a;
      a.object = static_cast<ObjectId>(t);
      a.pattern = trace::AccessPattern::kStream;
      a.program_accesses = 800000000;  // ~6.4 GB of line traffic
      k.accesses.push_back(a);
      region.tasks.push_back(
          TaskProgram{.task = static_cast<TaskId>(t), .kernels = {k}});
      region.active_bytes.push_back(8 * GiB);
    }
    w.regions.push_back(region);
    return w;
  };
  const auto r1 = SimulateHomogeneous(make(1), MachineSpec::Paper(),
                                      hm::Tier::kPm, FastConfig());
  const auto r12 = SimulateHomogeneous(make(12), MachineSpec::Paper(),
                                       hm::Tier::kPm, FastConfig());
  EXPECT_GT(r12.regions[0].duration, r1.regions[0].duration * 1.2);
}

// Placement-sensitivity property: more DRAM => monotonically faster.
class FractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FractionSweep, HybridBetweenBounds) {
  const double frac = GetParam();
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kRandom);
  const MachineSpec machine = MachineSpec::Paper();
  const auto pm = SimulateHomogeneous(w, machine, hm::Tier::kPm, FastConfig());
  const auto dram =
      SimulateHomogeneous(w, machine, hm::Tier::kDram, FastConfig());
  FixedFractionPolicy policy = FixedFractionPolicy::Uniform(1, frac);
  Engine engine(w, machine, FastConfig(), &policy);
  const auto hybrid = engine.Run();
  EXPECT_LE(hybrid.total_seconds, pm.total_seconds * 1.05);
  EXPECT_GE(hybrid.total_seconds, dram.total_seconds * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

TEST(Engine, MoreDramIsFaster) {
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kRandom);
  const MachineSpec machine = MachineSpec::Paper();
  double prev = 1e18;
  for (const double frac : {0.0, 0.3, 0.6, 0.9}) {
    FixedFractionPolicy policy = FixedFractionPolicy::Uniform(1, frac);
    Engine engine(w, machine, FastConfig(), &policy);
    const double t = engine.Run().total_seconds;
    EXPECT_LT(t, prev * 1.001) << "fraction " << frac;
    prev = t;
  }
}

TEST(Engine, SweepingPatternIgnoresPagesBehindTheSweep) {
  // For a streaming kernel, placing the *prefix* helps; verify a prefix
  // placement beats no placement.
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kStream,
                                        8 * GiB, 4e8);
  const MachineSpec machine = MachineSpec::Paper();
  FixedFractionPolicy half = FixedFractionPolicy::Uniform(1, 0.5);
  Engine with(w, machine, FastConfig(), &half);
  const double t_half = with.Run().total_seconds;
  const double t_none =
      SimulateHomogeneous(w, machine, hm::Tier::kPm, FastConfig())
          .total_seconds;
  EXPECT_LT(t_half, t_none * 0.95);
}

TEST(Engine, TelemetryRecordsBandwidth) {
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kStream);
  const auto r = SimulateHomogeneous(w, MachineSpec::Paper(), hm::Tier::kPm,
                                     FastConfig());
  ASSERT_FALSE(r.bandwidth.empty());
  double peak_pm = 0;
  for (const BandwidthSample& s : r.bandwidth) {
    EXPECT_GE(s.pm_gbps, 0.0);
    EXPECT_GE(s.dram_gbps, 0.0);
    peak_pm = std::max(peak_pm, s.pm_gbps);
  }
  EXPECT_GT(peak_pm, 1.0);  // a streaming task pushes real bandwidth
}

TEST(Engine, KernelSecondsSumToExecTime) {
  Workload w = SingleTaskWorkload(trace::AccessPattern::kStream);
  // Add a second kernel.
  Kernel k2 = w.regions[0].tasks[0].kernels[0];
  k2.name = "kernel2";
  w.regions[0].tasks[0].kernels.push_back(k2);
  const auto r = SimulateHomogeneous(w, MachineSpec::Paper(), hm::Tier::kPm,
                                     FastConfig());
  const TaskStats& ts = r.regions[0].tasks[0];
  ASSERT_EQ(ts.kernel_seconds.size(), 2u);
  const double sum = ts.kernel_seconds[0] + ts.kernel_seconds[1];
  EXPECT_NEAR(sum, ts.exec_seconds, 0.02 + 0.01 * ts.exec_seconds);
  EXPECT_GT(ts.kernel_seconds[0], 0.0);
  EXPECT_GT(ts.kernel_seconds[1], 0.0);
}

TEST(Engine, PmcsReflectWorkload) {
  const Workload stream = SingleTaskWorkload(trace::AccessPattern::kStream);
  const Workload random = SingleTaskWorkload(trace::AccessPattern::kRandom);
  const MachineSpec machine = MachineSpec::Paper();
  const auto rs = SimulateHomogeneous(stream, machine, hm::Tier::kPm,
                                      FastConfig());
  const auto rr = SimulateHomogeneous(random, machine, hm::Tier::kPm,
                                      FastConfig());
  const EventVector& es = rs.regions[0].tasks[0].pmcs;
  const EventVector& er = rr.regions[0].tasks[0].pmcs;
  // Random access: more prefetch misses, lower IPC, more LLC MPKI.
  EXPECT_GT(er[kPrfMiss], es[kPrfMiss]);
  EXPECT_LT(er[kIpc], es[kIpc]);
  EXPECT_GT(er[kLlcMpki], es[kLlcMpki]);
}

TEST(Engine, MultiRegionAccumulatesHistory) {
  const Workload w =
      SingleTaskWorkload(trace::AccessPattern::kStream, 2 * GiB, 5e7, 3);
  const auto r = SimulateHomogeneous(w, MachineSpec::Paper(), hm::Tier::kPm,
                                     FastConfig());
  ASSERT_EQ(r.regions.size(), 3u);
  EXPECT_GT(r.regions[1].start_time, r.regions[0].start_time);
  EXPECT_NEAR(r.total_seconds,
              r.regions[0].duration + r.regions[1].duration +
                  r.regions[2].duration,
              1e-9);
}

TEST(Engine, NormalizedTaskTimesAndCov) {
  const Workload w = TwoTaskWorkload(4e7, 2e7);
  const auto r = SimulateHomogeneous(w, MachineSpec::Paper(), hm::Tier::kPm,
                                     FastConfig());
  const auto norm = r.NormalizedTaskTimes();
  ASSERT_EQ(norm.size(), 2u);
  EXPECT_NEAR(*std::max_element(norm.begin(), norm.end()), 1.0, 1e-9);
  EXPECT_GT(r.AverageCoV(), 0.05);
}

TEST(Engine, FixedFractionAchievedMatchesRequest) {
  const Workload w = SingleTaskWorkload(trace::AccessPattern::kRandom);
  FixedFractionPolicy policy = FixedFractionPolicy::Uniform(1, 0.5);
  Engine engine(w, MachineSpec::Paper(), FastConfig(), &policy);
  engine.Run();
  ASSERT_EQ(policy.achieved().size(), 1u);
  EXPECT_NEAR(policy.achieved()[0], 0.5, 0.05);
}

TEST(Engine, MigrationTrafficAppearsInTelemetry) {
  const Workload w =
      SingleTaskWorkload(trace::AccessPattern::kRandom, 2 * GiB, 2e8);

  // Policy that migrates a lot at the first interval.
  class Migrator final : public PlacementPolicy {
   public:
    std::string name() const override { return "migrator"; }
    void OnInterval(SimContext& ctx) override {
      if (!done_) {
        ctx.migration().MigrateHottest(ctx.oracle().handle(0), 512,
                                       hm::Tier::kDram);
        done_ = true;
      }
    }
    bool done_ = false;
  } policy;

  SimConfig cfg = FastConfig();
  cfg.interval_seconds = 0.1;
  Engine engine(w, MachineSpec::Paper(), cfg, &policy);
  const auto r = engine.Run();
  double peak_migration = 0;
  for (const BandwidthSample& s : r.bandwidth) {
    peak_migration = std::max(peak_migration, s.migration_gbps);
  }
  EXPECT_GT(peak_migration, 0.1);
  EXPECT_EQ(r.migration.pages_to_dram, 512u);
}

}  // namespace
}  // namespace merch::sim
