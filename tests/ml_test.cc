// Tests for the from-scratch ML stack (src/ml): dataset handling, every
// Table-3 regressor family, importance, and feature elimination.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/forest.h"
#include "ml/gbr.h"
#include "ml/importance.h"
#include "ml/kernel_ridge.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/tree.h"

namespace merch::ml {
namespace {

/// Nonlinear regression target: y = sin(3 x0) + x1^2 - 0.5 x2 with noise;
/// features 3 and 4 are pure distractors.
Dataset MakeDataset(std::size_t n, std::uint64_t seed, double noise = 0.02) {
  Rng rng(seed);
  Dataset data(5);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(5);
    for (double& v : x) v = rng.NextDoubleInRange(-1, 1);
    const double y = std::sin(3 * x[0]) + x[1] * x[1] - 0.5 * x[2] +
                     rng.NextGaussian(0, noise);
    data.Add(std::move(x), y);
  }
  return data;
}

TEST(Dataset, AddAndAccess) {
  Dataset d(2);
  d.Add({1.0, 2.0}, 3.0);
  d.Add({4.0, 5.0}, 6.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(d.target(0), 3.0);
}

TEST(Dataset, SplitPartitions) {
  Dataset d = MakeDataset(100, 1);
  Rng rng(2);
  auto [train, test] = d.Split(0.7, rng);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_EQ(train.num_features(), 5u);
}

TEST(Dataset, SubsetAndSelectFeatures) {
  Dataset d = MakeDataset(10, 3);
  const std::vector<std::size_t> idx = {0, 5, 9};
  const Dataset sub = d.Subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.target(1), d.target(5));

  const std::vector<std::size_t> feats = {2, 0};
  const Dataset sel = d.SelectFeatures(feats);
  EXPECT_EQ(sel.num_features(), 2u);
  EXPECT_DOUBLE_EQ(sel.row(4)[0], d.row(4)[2]);
  EXPECT_DOUBLE_EQ(sel.row(4)[1], d.row(4)[0]);
}

TEST(Dataset, PermuteFeatureOnlyTouchesOneColumn) {
  Dataset d = MakeDataset(50, 4);
  Rng rng(5);
  const Dataset p = d.PermuteFeature(1, rng);
  double col0_same = 0, col1_same = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    col0_same += d.row(i)[0] == p.row(i)[0] ? 1 : 0;
    col1_same += d.row(i)[1] == p.row(i)[1] ? 1 : 0;
  }
  EXPECT_EQ(col0_same, 50);
  EXPECT_LT(col1_same, 20);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Dataset d = MakeDataset(200, 6);
  Standardizer s;
  s.Fit(d);
  const Dataset t = s.TransformAll(d);
  for (std::size_t f = 0; f < t.num_features(); ++f) {
    double mean = 0, var = 0;
    for (std::size_t i = 0; i < t.size(); ++i) mean += t.row(i)[f];
    mean /= t.size();
    for (std::size_t i = 0; i < t.size(); ++i) {
      var += (t.row(i)[f] - mean) * (t.row(i)[f] - mean);
    }
    var /= t.size();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-6);
  }
}

// Every Table-3 model family must clearly beat the mean-baseline (R^2 = 0)
// on a smooth nonlinear target.
class RegressorFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(RegressorFamily, BeatsMeanBaseline) {
  Dataset d = MakeDataset(600, 7);
  Rng rng(8);
  auto [train, test] = d.Split(0.7, rng);
  auto model = MakeRegressor(GetParam(), 9);
  model->Fit(train);
  EXPECT_GT(model->Score(test), 0.5) << GetParam();
}

TEST_P(RegressorFamily, PredictionFiniteAndStable) {
  Dataset d = MakeDataset(200, 10);
  auto model = MakeRegressor(GetParam(), 11);
  model->Fit(d);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.0, 0.9};
  const double y1 = model->Predict(x);
  const double y2 = model->Predict(x);
  EXPECT_TRUE(std::isfinite(y1));
  EXPECT_DOUBLE_EQ(y1, y2);  // prediction is deterministic post-fit
}

INSTANTIATE_TEST_SUITE_P(Table3, RegressorFamily,
                         ::testing::ValuesIn(AllRegressorKinds()));

TEST(ModelFactory, RejectsUnknownKind) {
  EXPECT_THROW(MakeRegressor("nope"), std::invalid_argument);
}

TEST(DecisionTree, PerfectFitOnTrainWithDepth) {
  // A deep tree should interpolate a small noiseless dataset.
  Dataset d = MakeDataset(64, 12, /*noise=*/0.0);
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 20,
                                        .min_samples_leaf = 1,
                                        .min_samples_split = 2});
  tree.Fit(d);
  EXPECT_GT(tree.Score(d), 0.99);
}

TEST(DecisionTree, ImportanceFindsInformativeFeatures) {
  Dataset d = MakeDataset(800, 13);
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 8});
  tree.Fit(d);
  const auto imp = tree.FeatureImportance();
  ASSERT_EQ(imp.size(), 5u);
  // Informative features 0..2 dominate distractors 3..4.
  EXPECT_GT(imp[0] + imp[1] + imp[2], 0.9);
  double sum = 0;
  for (const double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DecisionTree, EmptyAndConstantTargets) {
  DecisionTreeRegressor tree;
  Dataset empty(3);
  tree.Fit(empty);
  EXPECT_EQ(tree.Predict(std::vector<double>{1, 2, 3}), 0.0);

  Dataset constant(2);
  for (int i = 0; i < 10; ++i) constant.Add({double(i), 0.0}, 7.0);
  tree.Fit(constant);
  EXPECT_DOUBLE_EQ(tree.Predict(std::vector<double>{3.0, 0.0}), 7.0);
}

TEST(Gbr, OutperformsSingleShallowTree) {
  Dataset d = MakeDataset(600, 14);
  Rng rng(15);
  auto [train, test] = d.Split(0.7, rng);
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 3});
  tree.Fit(train);
  GradientBoostedRegressor gbr(GbrConfig{}, 16);
  gbr.Fit(train);
  EXPECT_GT(gbr.Score(test), tree.Score(test));
}

TEST(Gbr, ImportanceNormalised) {
  Dataset d = MakeDataset(300, 17);
  GradientBoostedRegressor gbr(GbrConfig{.num_stages = 40}, 18);
  gbr.Fit(d);
  const auto imp = gbr.FeatureImportance();
  double sum = 0;
  for (const double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[3]);
}

TEST(Forest, VarianceLowerThanSingleTree) {
  // Across resampled datasets, forest predictions vary less than a deep
  // tree's (the point of bagging).
  const std::vector<double> probe = {0.5, 0.5, 0.5, 0.5, 0.5};
  std::vector<double> tree_preds, forest_preds;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Dataset d = MakeDataset(200, 100 + seed, 0.1);
    DecisionTreeRegressor tree(
        TreeConfig{.max_depth = 12, .min_samples_leaf = 1}, seed);
    tree.Fit(d);
    tree_preds.push_back(tree.Predict(probe));
    RandomForestRegressor forest(ForestConfig{.num_trees = 20}, seed);
    forest.Fit(d);
    forest_preds.push_back(forest.Predict(probe));
  }
  auto variance = [](const std::vector<double>& xs) {
    double m = 0;
    for (const double x : xs) m += x;
    m /= xs.size();
    double v = 0;
    for (const double x : xs) v += (x - m) * (x - m);
    return v / xs.size();
  };
  EXPECT_LT(variance(forest_preds), variance(tree_preds));
}

TEST(Knn, ExactOnTrainingPoints) {
  Dataset d(1);
  for (int i = 0; i < 20; ++i) d.Add({double(i)}, double(i * i));
  KNeighborsRegressor knn(KnnConfig{.k = 1});
  knn.Fit(d);
  EXPECT_NEAR(knn.Predict(std::vector<double>{5.0}), 25.0, 1e-6);
}

TEST(KernelRidge, SmoothInterpolation) {
  Dataset d(1);
  for (int i = 0; i <= 20; ++i) {
    const double x = i * 0.3;
    d.Add({x}, std::sin(x));
  }
  KernelRidgeRegressor kr(
      KernelRidgeConfig{.ridge_lambda = 1e-6, .gamma = 2.0});
  kr.Fit(d);
  EXPECT_NEAR(kr.Predict(std::vector<double>{1.55}), std::sin(1.55), 0.05);
}

TEST(Mlp, LearnsLinearFunction) {
  Rng rng(19);
  Dataset d(2);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDoubleInRange(-1, 1);
    const double b = rng.NextDoubleInRange(-1, 1);
    d.Add({a, b}, 2 * a - 3 * b + 1);
  }
  MLPRegressor mlp(MlpConfig{.hidden = {16}, .epochs = 100}, 20);
  mlp.Fit(d);
  EXPECT_GT(mlp.Score(d), 0.95);
}

TEST(Importance, PermutationFindsInformative) {
  Dataset d = MakeDataset(500, 21);
  GradientBoostedRegressor gbr(GbrConfig{.num_stages = 60}, 22);
  gbr.Fit(d);
  Rng rng(23);
  const auto imp = PermutationImportance(gbr, d, rng, 2);
  EXPECT_GT(imp[0], imp[4]);
  EXPECT_GT(imp[1], imp[3]);
}

TEST(Importance, RankFeaturesDescending) {
  const std::vector<double> imp = {0.1, 0.5, 0.2};
  const auto rank = RankFeatures(imp);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_EQ(rank[0], 1u);
  EXPECT_EQ(rank[1], 2u);
  EXPECT_EQ(rank[2], 0u);
}

TEST(Importance, RecursiveEliminationKeepsSignal) {
  Dataset d = MakeDataset(400, 24);
  Rng split_rng(25);
  auto [train, test] = d.Split(0.7, split_rng);
  Rng rng(26);
  const auto steps = RecursiveFeatureElimination(
      train, test, [] { return MakeRegressor("GBR", 27); }, rng);
  ASSERT_EQ(steps.size(), 5u);  // 5 features -> 5 elimination rounds
  EXPECT_EQ(steps.front().num_features, 5u);
  EXPECT_EQ(steps.back().num_features, 1u);
  // With 3 informative features retained, accuracy should stay high.
  EXPECT_GT(steps[2].test_r2, 0.5);
  // The very last retained feature should be informative (0, 1, or 2).
  EXPECT_LE(steps.back().features[0], 2u);
}

}  // namespace
}  // namespace merch::ml
