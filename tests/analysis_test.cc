// Tests for the static analysis subsystem (src/analysis): parser
// round-trips, pattern-classification edge cases, analytic-vs-profiled
// alpha agreement on the five applications, footprint/reuse derivation,
// and the placement lint.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/ir.h"
#include "analysis/lint.h"
#include "analysis/parser.h"
#include "analysis/passes.h"
#include "analysis/report.h"
#include "apps/registry.h"
#include "core/pattern_classifier.h"

namespace merch {
namespace {

using analysis::PatternClass;
using core::Subscript;
using trace::AccessPattern;

core::ArrayRef Affine(std::size_t object, std::int64_t stride,
                      bool write = false) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kAffine;
  ref.subscript.stride = stride;
  ref.is_write = write;
  return ref;
}

core::ArrayRef Neighborhood(std::size_t object,
                            std::vector<std::int64_t> offsets) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kNeighborhood;
  ref.subscript.offsets = std::move(offsets);
  return ref;
}

core::ArrayRef Indirect(std::size_t object, std::size_t via,
                        bool write = false) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kIndirect;
  ref.subscript.index_object = via;
  ref.is_write = write;
  return ref;
}

const char* kGatherKir = R"(
kernel gather
object values bytes=64MiB elem=8 owner=0
object idx bytes=8MiB elem=4 owner=0
object out bytes=64MiB elem=8 owner=0
register values idx out
task 0 {
  loop sweep trips=1e6 insns=6 branch=0.1 vector=0.2 {
    read idx affine stride=1 elem=4
    read values indirect via=idx
    write out affine stride=1
  }
}
)";

// ---- parser ----------------------------------------------------------

TEST(KirParser, ParsesGatherKernel) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok()) << analysis::FormatParseError("", r.errors.front());
  const analysis::Module& m = r.module;
  EXPECT_EQ(m.name, "gather");
  ASSERT_EQ(m.objects.size(), 3u);
  EXPECT_EQ(m.objects[0].name, "values");
  EXPECT_EQ(m.objects[0].bytes, 64 * MiB);
  EXPECT_EQ(m.objects[1].element_bytes, 4u);
  EXPECT_TRUE(m.objects[2].registered);
  ASSERT_EQ(m.tasks.size(), 1u);
  ASSERT_EQ(m.tasks[0].loops.size(), 1u);
  const analysis::LoopIr& loop = m.tasks[0].loops[0];
  EXPECT_EQ(loop.trip_count, 1000000u);
  ASSERT_EQ(loop.refs.size(), 3u);
  EXPECT_EQ(loop.refs[1].subscript.kind, Subscript::Kind::kIndirect);
  EXPECT_EQ(loop.refs[1].subscript.index_object, 1u);
  EXPECT_TRUE(loop.refs[2].is_write);
}

TEST(KirParser, RoundTripIsAFixedPoint) {
  // parse -> serialize -> parse -> serialize must stabilise: the canonical
  // form reproduces itself (structural round-trip property).
  const analysis::ParseResult first = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(first.ok());
  const std::string canon = analysis::SerializeKir(first.module);
  const analysis::ParseResult second = analysis::ParseKir(canon);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(analysis::SerializeKir(second.module), canon);
}

TEST(KirParser, RoundTripPreservesEverySubscriptForm) {
  analysis::Module m;
  m.name = "forms";
  for (const char* name : {"a", "b", "c", "d"}) {
    analysis::ObjectDecl obj;
    obj.name = name;
    obj.bytes = 123456789;
    obj.element_bytes = 4;
    obj.owner = 2;
    obj.registered = true;
    m.objects.push_back(obj);
  }
  m.objects[3].pattern_hint = "random";
  analysis::TaskDecl task;
  task.task = 7;
  analysis::LoopIr outer;
  outer.name = "outer";
  outer.trip_count = 12345;
  outer.instructions_per_iteration = 6.5;
  outer.branch_fraction = 0.125;
  outer.vector_fraction = 0.375;
  analysis::LoopIr inner;
  inner.name = "inner";
  inner.trip_count = 77;
  analysis::RefIr r0;  // negative-stride affine
  r0.object = 0;
  r0.subscript.kind = Subscript::Kind::kAffine;
  r0.subscript.stride = -3;
  r0.rate = 0.25;
  analysis::RefIr r1;  // multi-offset stencil, write
  r1.object = 1;
  r1.subscript.kind = Subscript::Kind::kNeighborhood;
  r1.subscript.offsets = {-2, 0, 2};
  r1.is_write = true;
  analysis::RefIr r2;  // indirect
  r2.object = 2;
  r2.subscript.kind = Subscript::Kind::kIndirect;
  r2.subscript.index_object = 0;
  r2.element_bytes = 16;
  analysis::RefIr r3;  // opaque
  r3.object = 3;
  r3.subscript.kind = Subscript::Kind::kOpaque;
  inner.refs = {r0, r1};
  outer.refs = {r2, r3};
  outer.children.push_back(inner);
  task.loops.push_back(outer);
  m.tasks.push_back(task);

  const std::string canon = analysis::SerializeKir(m);
  const analysis::ParseResult back = analysis::ParseKir(canon);
  ASSERT_TRUE(back.ok()) << canon;
  EXPECT_EQ(analysis::SerializeKir(back.module), canon);
  ASSERT_EQ(back.module.tasks.size(), 1u);
  const analysis::LoopIr& o = back.module.tasks[0].loops[0];
  ASSERT_EQ(o.children.size(), 1u);
  EXPECT_EQ(o.children[0].refs[0].subscript.stride, -3);
  EXPECT_EQ(o.children[0].refs[1].subscript.offsets,
            (std::vector<std::int64_t>{-2, 0, 2}));
  EXPECT_EQ(o.refs[0].subscript.index_object, 0u);
  EXPECT_EQ(o.refs[0].element_bytes, 16u);
  EXPECT_DOUBLE_EQ(o.children[0].refs[0].rate, 0.25);
}

TEST(KirParser, ErrorsCarrySourceLocations) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel bad\n"
      "object a bytes=1MiB\n"
      "task 0 {\n"
      "  loop l trips=10 {\n"
      "    read ghost affine stride=1\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].loc.line, 5);
  EXPECT_EQ(r.errors[0].loc.col, 10);
  EXPECT_NE(r.errors[0].message.find("ghost"), std::string::npos);
  EXPECT_NE(analysis::FormatParseError("x.kir", r.errors[0]).find("x.kir:5:10"),
            std::string::npos);
}

TEST(KirParser, ReportsMissingTripsAndVia) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel bad\n"
      "object a bytes=1MiB\n"
      "object b bytes=1MiB\n"
      "task 0 {\n"
      "  loop l {\n"
      "    read a indirect\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_NE(r.errors[0].message.find("trips"), std::string::npos);
  EXPECT_NE(r.errors[1].message.find("via"), std::string::npos);
}

TEST(KirParser, RecoversAndKeepsParsingAfterBadStatement) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel recover\n"
      "object a bytes=1MiB\n"
      "frobnicate everything\n"
      "object b bytes=2MiB\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.module.objects.size(), 2u);  // b still parsed after the error
}

TEST(KirParser, RejectsRedeclarationAndUnknownSuffix) {
  const analysis::ParseResult r = analysis::ParseKir(
      "object a bytes=1MiB\n"
      "object a bytes=2MiB\n"
      "object c bytes=3XiB\n");
  // The bad suffix also voids the bytes= attribute, so "missing bytes"
  // piggybacks on the suffix error.
  ASSERT_EQ(r.errors.size(), 3u);
  EXPECT_NE(r.errors[0].message.find("redeclared"), std::string::npos);
  EXPECT_NE(r.errors[1].message.find("suffix"), std::string::npos);
  EXPECT_NE(r.errors[2].message.find("missing bytes"), std::string::npos);
}

// ---- flattening ------------------------------------------------------

TEST(ModuleIr, NestedTripCountsMultiplyWhenFlattened) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel nest\n"
      "object a bytes=1MiB\n"
      "register a\n"
      "task 0 {\n"
      "  loop i trips=100 {\n"
      "    loop j trips=50 {\n"
      "      read a affine stride=1\n"
      "    }\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const std::vector<core::TaskIr> tasks = r.module.ToCoreIr();
  ASSERT_EQ(tasks.size(), 1u);
  ASSERT_FALSE(tasks[0].loops.empty());
  bool found = false;
  for (const core::LoopNest& loop : tasks[0].loops) {
    if (loop.refs.empty()) continue;
    EXPECT_EQ(loop.trip_count, 5000u);
    found = true;
  }
  EXPECT_TRUE(found);
}

// ---- classification edge cases ---------------------------------------

TEST(PatternClassification, NegativeStridesMatchPositiveCounterparts) {
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, -1)), PatternClass::kStream);
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, -4)), PatternClass::kStrided);
  EXPECT_EQ(core::ClassifyRef(Affine(0, -1)), AccessPattern::kStream);
  EXPECT_EQ(core::ClassifyRef(Affine(0, -4)), AccessPattern::kStrided);
}

TEST(PatternClassification, SingleOffsetNeighborhoodIsAShiftedStream) {
  EXPECT_EQ(analysis::ClassifyRefClass(Neighborhood(0, {1})),
            PatternClass::kStream);
  EXPECT_EQ(core::ClassifyRef(Neighborhood(0, {1})), AccessPattern::kStream);
  EXPECT_EQ(analysis::ClassifyRefClass(Neighborhood(0, {-1, 0, 1})),
            PatternClass::kStencil);
}

TEST(PatternClassification, ScalarBroadcastIsDegenerate) {
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, 0)), PatternClass::kScalar);
  // The 4-way paper label folds it into Stream (core parity).
  EXPECT_EQ(analysis::ToTracePattern(PatternClass::kScalar),
            AccessPattern::kStream);
  EXPECT_EQ(core::ClassifyRef(Affine(0, 0)), AccessPattern::kStream);
}

TEST(PatternClassification, IndirectThroughIndirectChain) {
  // out[i] = data[idx2[idx1[i]]] modelled as two gathers: idx2 is both an
  // indirect target (via idx1) and the index array of the data gather —
  // the random classification must win for idx2, idx1 stays a stream.
  core::TaskIr task;
  core::LoopNest loop;
  loop.name = "chain";
  loop.trip_count = 1000;
  loop.refs.push_back(Indirect(/*object=*/1, /*via=*/0));  // idx2[idx1[i]]
  loop.refs.push_back(Indirect(/*object=*/2, /*via=*/1));  // data[idx2[...]]
  task.loops.push_back(loop);

  const auto got = analysis::ClassifyTaskPatterns(task, 3);
  EXPECT_EQ(got[0], AccessPattern::kStream);
  EXPECT_EQ(got[1], AccessPattern::kRandom);
  EXPECT_EQ(got[2], AccessPattern::kRandom);
  const auto core_got = core::ClassifyTask(task, 3);
  EXPECT_EQ(core_got, got);
}

TEST(PatternClassification, IndexArrayAlsoDirectlySwept) {
  // idx is swept directly (stride 1) and used as the index array of a
  // gather — both uses are streams, so it must NOT classify random.
  core::TaskIr task;
  core::LoopNest loop;
  loop.name = "gather";
  loop.trip_count = 1000;
  loop.refs.push_back(Affine(0, 1));
  loop.refs.push_back(Indirect(/*object=*/1, /*via=*/0));
  task.loops.push_back(loop);
  const auto got = analysis::ClassifyTaskPatterns(task, 2);
  EXPECT_EQ(got[0], AccessPattern::kStream);
  EXPECT_EQ(got[1], AccessPattern::kRandom);
  EXPECT_EQ(core::ClassifyTask(task, 2), got);

  // ...but an object gathered through *itself* (a[a[i]]) is random.
  core::TaskIr self;
  core::LoopNest sl;
  sl.name = "self";
  sl.trip_count = 10;
  sl.refs.push_back(Indirect(/*object=*/0, /*via=*/0));
  self.loops.push_back(sl);
  EXPECT_EQ(analysis::ClassifyTaskPatterns(self, 1)[0], AccessPattern::kRandom);
  EXPECT_EQ(core::ClassifyTask(self, 1)[0], AccessPattern::kRandom);
}

TEST(PatternClassification, ParityWithCoreOnAllFiveApps) {
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    for (const core::TaskIr& ir : bundle.task_irs) {
      const auto ours =
          analysis::ClassifyTaskPatterns(ir, bundle.workload.objects.size());
      const auto core_labels =
          core::ClassifyTask(ir, bundle.workload.objects.size());
      EXPECT_EQ(ours, core_labels) << name << " task " << ir.task;
    }
  }
}

// ---- footprint and alpha ---------------------------------------------

TEST(AnalysisPasses, ScalarFootprintIsOneCacheLine) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel scalar\n"
      "object big bytes=1GiB\n"
      "register big\n"
      "task 0 {\n"
      "  loop l trips=1e6 {\n"
      "    read big affine stride=0\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  EXPECT_EQ(a.objects[0].pattern, PatternClass::kScalar);
  EXPECT_EQ(a.objects[0].footprint_bytes, kCacheLineBytes);
  // Size-invariant traffic: Eq. 1 alpha under doubling equals the size
  // ratio, so esti_mem_acc stays put when the object grows.
  EXPECT_TRUE(a.objects[0].analytic_alpha);
  EXPECT_DOUBLE_EQ(a.objects[0].alpha, 2.0);
}

TEST(AnalysisPasses, FootprintBoundedByObjectAndStride) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel fp\n"
      "object small bytes=1MiB\n"
      "object wide bytes=1GiB\n"
      "register small wide\n"
      "task 0 {\n"
      "  loop l trips=1e4 {\n"
      "    read small affine stride=1\n"
      "    read wide affine stride=-16\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  // 1e4 trips * 8B stream = 80 KB < 1 MiB: the sweep bound wins.
  EXPECT_EQ(a.objects[0].footprint_bytes, 80000u);
  // |stride| 16 * 8B * 1e4 trips = 1.28 MB distinct bytes reachable.
  EXPECT_EQ(a.objects[1].footprint_bytes, 1280000u);
  EXPECT_EQ(a.objects[1].pattern, PatternClass::kStrided);
}

TEST(AnalysisPasses, ReuseBucketsCountPerTaskSweeps) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  // One loop: everything single-pass.
  for (const analysis::ObjectReport& obj : a.objects) {
    EXPECT_FALSE(obj.reswept) << obj.name;
    EXPECT_EQ(obj.sweeps, 1) << obj.name;
  }
  // values is gathered (random) -> runtime-refined alpha.
  EXPECT_TRUE(a.objects[0].runtime_refined);
  EXPECT_FALSE(a.objects[0].analytic_alpha);
  // idx is only ever an index array -> stream, analytic.
  EXPECT_EQ(a.objects[1].pattern, PatternClass::kStream);
  EXPECT_TRUE(a.objects[1].analytic_alpha);
  // out is write-only.
  EXPECT_DOUBLE_EQ(a.objects[2].write_fraction, 1.0);
}

TEST(AnalysisPasses, AnalyticAlphaAgreesWithProfiledTableOnApps) {
  // Acceptance criterion: for stream/strided/stencil objects of the five
  // applications the statically derived alpha must sit within 15% of the
  // profiled table's value (core::LinearAlpha / StencilAlphaOffline).
  int checked = 0;
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const analysis::ModuleAnalysis a = analysis::Analyze(module);
    for (const analysis::ObjectReport& obj : a.objects) {
      if (!obj.referenced || !obj.analytic_alpha) continue;
      ASSERT_GT(obj.profiled_alpha, 0.0) << name << "/" << obj.name;
      const double rel = std::abs(obj.alpha - obj.profiled_alpha) /
                         obj.profiled_alpha;
      EXPECT_LE(rel, 0.15) << name << "/" << obj.name << " analytic "
                           << obj.alpha << " vs profiled "
                           << obj.profiled_alpha;
      ++checked;
    }
  }
  EXPECT_GE(checked, 5);  // the agreement must actually cover objects
}

TEST(AnalysisPasses, DistinctPatternsMatchCoreTable1Helper) {
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const analysis::ModuleAnalysis a = analysis::Analyze(module);
    const auto expected = core::DistinctPatterns(
        bundle.task_irs, bundle.workload.objects.size());
    EXPECT_EQ(a.distinct, expected) << name;
  }
}

// ---- lint ------------------------------------------------------------

std::vector<std::string> Codes(const std::vector<analysis::Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.code);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PlacementLint, FlagsUnregisteredReferencedObject) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel l\n"
      "object a bytes=1MiB\n"
      "task 0 {\n"
      "  loop x trips=10 {\n"
      "    read a affine stride=1\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "unregistered-object");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kError);
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(PlacementLint, CleanModuleHasNoFindings) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  // out is write-only -> only the write-heavy advisory remains.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "write-heavy");
  EXPECT_FALSE(analysis::HasErrors(findings));
}

TEST(PlacementLint, FlagsOpaqueDeadIndexMisregisteredAndMismatch) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel l\n"
      "object data bytes=64MiB\n"
      "object idx bytes=1MiB elem=4 pattern=random\n"
      "object tbl bytes=8MiB\n"
      "object ghost bytes=1MiB\n"
      "object claimed bytes=4MiB pattern=stencil\n"
      "register data idx tbl ghost claimed\n"
      "task 0 {\n"
      "  loop x trips=1000 {\n"
      "    read idx affine stride=1 elem=4\n"
      "    read data indirect via=idx\n"
      "    read tbl opaque\n"
      "    read claimed affine stride=4\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  const auto codes = Codes(findings);
  EXPECT_EQ(codes,
            (std::vector<std::string>{"dead-object", "index-misregistered",
                                      "opaque-subscript", "pattern-mismatch"}));
  EXPECT_FALSE(analysis::HasErrors(findings));  // all advisory
  for (const auto& f : findings) {
    if (f.code == "dead-object") {
      EXPECT_EQ(f.object, "ghost");
      EXPECT_EQ(f.severity, analysis::Severity::kWarning);
    }
    if (f.code == "index-misregistered") EXPECT_EQ(f.object, "idx");
    if (f.code == "pattern-mismatch") EXPECT_EQ(f.object, "claimed");
  }
}

TEST(PlacementLint, AppBundlesLintClean) {
  // The five builders register everything they reference: the service
  // gate must pass them.
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const auto findings =
        analysis::Lint(module, analysis::Analyze(module));
    EXPECT_FALSE(analysis::HasErrors(findings)) << name;
  }
}

TEST(Reports, TextAndJsonCarryPatternsAndFindings) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  const auto findings = analysis::Lint(r.module, a);
  const std::string text =
      analysis::TextReport("g.kir", r.module, a, findings);
  EXPECT_NE(text.find("Random"), std::string::npos);
  EXPECT_NE(text.find("write-heavy"), std::string::npos);
  const std::string json =
      analysis::JsonReport("g.kir", r.module, a, findings);
  EXPECT_NE(json.find("\"pattern\": \"Random\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
}

}  // namespace
}  // namespace merch
