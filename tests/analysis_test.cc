// Tests for the static analysis subsystem (src/analysis): parser
// round-trips, pattern-classification edge cases, analytic-vs-profiled
// alpha agreement on the five applications, footprint/reuse derivation,
// the placement lint, and the whole-program dependence analysis (access
// summaries, task-DAG inference, race detection) — including a dynamic
// soundness gate that replays a sampled access oracle over every
// examples/*.kir program and demands a static edge for every observed
// inter-task overlap.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "analysis/ir.h"
#include "analysis/lint.h"
#include "analysis/parser.h"
#include "analysis/passes.h"
#include "analysis/report.h"
#include "analysis/summaries.h"
#include "apps/registry.h"
#include "core/pattern_classifier.h"
#include "hm/tier.h"

namespace merch {
namespace {

using analysis::PatternClass;
using core::Subscript;
using trace::AccessPattern;

core::ArrayRef Affine(std::size_t object, std::int64_t stride,
                      bool write = false) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kAffine;
  ref.subscript.stride = stride;
  ref.is_write = write;
  return ref;
}

core::ArrayRef Neighborhood(std::size_t object,
                            std::vector<std::int64_t> offsets) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kNeighborhood;
  ref.subscript.offsets = std::move(offsets);
  return ref;
}

core::ArrayRef Indirect(std::size_t object, std::size_t via,
                        bool write = false) {
  core::ArrayRef ref;
  ref.object = object;
  ref.subscript.kind = Subscript::Kind::kIndirect;
  ref.subscript.index_object = via;
  ref.is_write = write;
  return ref;
}

const char* kGatherKir = R"(
kernel gather
object values bytes=64MiB elem=8 owner=0
object idx bytes=8MiB elem=4 owner=0
object out bytes=64MiB elem=8 owner=0
register values idx out
task 0 {
  loop sweep trips=1e6 insns=6 branch=0.1 vector=0.2 {
    read idx affine stride=1 elem=4
    read values indirect via=idx
    write out affine stride=1
  }
}
)";

// ---- parser ----------------------------------------------------------

TEST(KirParser, ParsesGatherKernel) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok()) << analysis::FormatParseError("", r.errors.front());
  const analysis::Module& m = r.module;
  EXPECT_EQ(m.name, "gather");
  ASSERT_EQ(m.objects.size(), 3u);
  EXPECT_EQ(m.objects[0].name, "values");
  EXPECT_EQ(m.objects[0].bytes, 64 * MiB);
  EXPECT_EQ(m.objects[1].element_bytes, 4u);
  EXPECT_TRUE(m.objects[2].registered);
  ASSERT_EQ(m.tasks.size(), 1u);
  ASSERT_EQ(m.tasks[0].loops.size(), 1u);
  const analysis::LoopIr& loop = m.tasks[0].loops[0];
  EXPECT_EQ(loop.trip_count, 1000000u);
  ASSERT_EQ(loop.refs.size(), 3u);
  EXPECT_EQ(loop.refs[1].subscript.kind, Subscript::Kind::kIndirect);
  EXPECT_EQ(loop.refs[1].subscript.index_object, 1u);
  EXPECT_TRUE(loop.refs[2].is_write);
}

TEST(KirParser, RoundTripIsAFixedPoint) {
  // parse -> serialize -> parse -> serialize must stabilise: the canonical
  // form reproduces itself (structural round-trip property).
  const analysis::ParseResult first = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(first.ok());
  const std::string canon = analysis::SerializeKir(first.module);
  const analysis::ParseResult second = analysis::ParseKir(canon);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(analysis::SerializeKir(second.module), canon);
}

TEST(KirParser, RoundTripPreservesEverySubscriptForm) {
  analysis::Module m;
  m.name = "forms";
  for (const char* name : {"a", "b", "c", "d"}) {
    analysis::ObjectDecl obj;
    obj.name = name;
    obj.bytes = 123456789;
    obj.element_bytes = 4;
    obj.owner = 2;
    obj.registered = true;
    m.objects.push_back(obj);
  }
  m.objects[3].pattern_hint = "random";
  analysis::TaskDecl task;
  task.task = 7;
  analysis::LoopIr outer;
  outer.name = "outer";
  outer.trip_count = 12345;
  outer.instructions_per_iteration = 6.5;
  outer.branch_fraction = 0.125;
  outer.vector_fraction = 0.375;
  analysis::LoopIr inner;
  inner.name = "inner";
  inner.trip_count = 77;
  analysis::RefIr r0;  // negative-stride affine
  r0.object = 0;
  r0.subscript.kind = Subscript::Kind::kAffine;
  r0.subscript.stride = -3;
  r0.rate = 0.25;
  analysis::RefIr r1;  // multi-offset stencil, write
  r1.object = 1;
  r1.subscript.kind = Subscript::Kind::kNeighborhood;
  r1.subscript.offsets = {-2, 0, 2};
  r1.is_write = true;
  analysis::RefIr r2;  // indirect
  r2.object = 2;
  r2.subscript.kind = Subscript::Kind::kIndirect;
  r2.subscript.index_object = 0;
  r2.element_bytes = 16;
  analysis::RefIr r3;  // opaque
  r3.object = 3;
  r3.subscript.kind = Subscript::Kind::kOpaque;
  inner.refs = {r0, r1};
  outer.refs = {r2, r3};
  outer.children.push_back(inner);
  task.loops.push_back(outer);
  m.tasks.push_back(task);

  const std::string canon = analysis::SerializeKir(m);
  const analysis::ParseResult back = analysis::ParseKir(canon);
  ASSERT_TRUE(back.ok()) << canon;
  EXPECT_EQ(analysis::SerializeKir(back.module), canon);
  ASSERT_EQ(back.module.tasks.size(), 1u);
  const analysis::LoopIr& o = back.module.tasks[0].loops[0];
  ASSERT_EQ(o.children.size(), 1u);
  EXPECT_EQ(o.children[0].refs[0].subscript.stride, -3);
  EXPECT_EQ(o.children[0].refs[1].subscript.offsets,
            (std::vector<std::int64_t>{-2, 0, 2}));
  EXPECT_EQ(o.refs[0].subscript.index_object, 0u);
  EXPECT_EQ(o.refs[0].element_bytes, 16u);
  EXPECT_DOUBLE_EQ(o.children[0].refs[0].rate, 0.25);
}

TEST(KirParser, ErrorsCarrySourceLocations) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel bad\n"
      "object a bytes=1MiB\n"
      "task 0 {\n"
      "  loop l trips=10 {\n"
      "    read ghost affine stride=1\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].loc.line, 5);
  EXPECT_EQ(r.errors[0].loc.col, 10);
  EXPECT_NE(r.errors[0].message.find("ghost"), std::string::npos);
  EXPECT_NE(analysis::FormatParseError("x.kir", r.errors[0]).find("x.kir:5:10"),
            std::string::npos);
}

TEST(KirParser, ReportsMissingTripsAndVia) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel bad\n"
      "object a bytes=1MiB\n"
      "object b bytes=1MiB\n"
      "task 0 {\n"
      "  loop l {\n"
      "    read a indirect\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_NE(r.errors[0].message.find("trips"), std::string::npos);
  EXPECT_NE(r.errors[1].message.find("via"), std::string::npos);
}

TEST(KirParser, RecoversAndKeepsParsingAfterBadStatement) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel recover\n"
      "object a bytes=1MiB\n"
      "frobnicate everything\n"
      "object b bytes=2MiB\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.module.objects.size(), 2u);  // b still parsed after the error
}

TEST(KirParser, RejectsRedeclarationAndUnknownSuffix) {
  const analysis::ParseResult r = analysis::ParseKir(
      "object a bytes=1MiB\n"
      "object a bytes=2MiB\n"
      "object c bytes=3XiB\n");
  // The bad suffix also voids the bytes= attribute, so "missing bytes"
  // piggybacks on the suffix error.
  ASSERT_EQ(r.errors.size(), 3u);
  EXPECT_NE(r.errors[0].message.find("redeclared"), std::string::npos);
  EXPECT_NE(r.errors[1].message.find("suffix"), std::string::npos);
  EXPECT_NE(r.errors[2].message.find("missing bytes"), std::string::npos);
}

// ---- flattening ------------------------------------------------------

TEST(ModuleIr, NestedTripCountsMultiplyWhenFlattened) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel nest\n"
      "object a bytes=1MiB\n"
      "register a\n"
      "task 0 {\n"
      "  loop i trips=100 {\n"
      "    loop j trips=50 {\n"
      "      read a affine stride=1\n"
      "    }\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const std::vector<core::TaskIr> tasks = r.module.ToCoreIr();
  ASSERT_EQ(tasks.size(), 1u);
  ASSERT_FALSE(tasks[0].loops.empty());
  bool found = false;
  for (const core::LoopNest& loop : tasks[0].loops) {
    if (loop.refs.empty()) continue;
    EXPECT_EQ(loop.trip_count, 5000u);
    found = true;
  }
  EXPECT_TRUE(found);
}

// ---- classification edge cases ---------------------------------------

TEST(PatternClassification, NegativeStridesMatchPositiveCounterparts) {
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, -1)), PatternClass::kStream);
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, -4)), PatternClass::kStrided);
  EXPECT_EQ(core::ClassifyRef(Affine(0, -1)), AccessPattern::kStream);
  EXPECT_EQ(core::ClassifyRef(Affine(0, -4)), AccessPattern::kStrided);
}

TEST(PatternClassification, SingleOffsetNeighborhoodIsAShiftedStream) {
  EXPECT_EQ(analysis::ClassifyRefClass(Neighborhood(0, {1})),
            PatternClass::kStream);
  EXPECT_EQ(core::ClassifyRef(Neighborhood(0, {1})), AccessPattern::kStream);
  EXPECT_EQ(analysis::ClassifyRefClass(Neighborhood(0, {-1, 0, 1})),
            PatternClass::kStencil);
}

TEST(PatternClassification, ScalarBroadcastIsDegenerate) {
  EXPECT_EQ(analysis::ClassifyRefClass(Affine(0, 0)), PatternClass::kScalar);
  // The 4-way paper label folds it into Stream (core parity).
  EXPECT_EQ(analysis::ToTracePattern(PatternClass::kScalar),
            AccessPattern::kStream);
  EXPECT_EQ(core::ClassifyRef(Affine(0, 0)), AccessPattern::kStream);
}

TEST(PatternClassification, IndirectThroughIndirectChain) {
  // out[i] = data[idx2[idx1[i]]] modelled as two gathers: idx2 is both an
  // indirect target (via idx1) and the index array of the data gather —
  // the random classification must win for idx2, idx1 stays a stream.
  core::TaskIr task;
  core::LoopNest loop;
  loop.name = "chain";
  loop.trip_count = 1000;
  loop.refs.push_back(Indirect(/*object=*/1, /*via=*/0));  // idx2[idx1[i]]
  loop.refs.push_back(Indirect(/*object=*/2, /*via=*/1));  // data[idx2[...]]
  task.loops.push_back(loop);

  const auto got = analysis::ClassifyTaskPatterns(task, 3);
  EXPECT_EQ(got[0], AccessPattern::kStream);
  EXPECT_EQ(got[1], AccessPattern::kRandom);
  EXPECT_EQ(got[2], AccessPattern::kRandom);
  const auto core_got = core::ClassifyTask(task, 3);
  EXPECT_EQ(core_got, got);
}

TEST(PatternClassification, IndexArrayAlsoDirectlySwept) {
  // idx is swept directly (stride 1) and used as the index array of a
  // gather — both uses are streams, so it must NOT classify random.
  core::TaskIr task;
  core::LoopNest loop;
  loop.name = "gather";
  loop.trip_count = 1000;
  loop.refs.push_back(Affine(0, 1));
  loop.refs.push_back(Indirect(/*object=*/1, /*via=*/0));
  task.loops.push_back(loop);
  const auto got = analysis::ClassifyTaskPatterns(task, 2);
  EXPECT_EQ(got[0], AccessPattern::kStream);
  EXPECT_EQ(got[1], AccessPattern::kRandom);
  EXPECT_EQ(core::ClassifyTask(task, 2), got);

  // ...but an object gathered through *itself* (a[a[i]]) is random.
  core::TaskIr self;
  core::LoopNest sl;
  sl.name = "self";
  sl.trip_count = 10;
  sl.refs.push_back(Indirect(/*object=*/0, /*via=*/0));
  self.loops.push_back(sl);
  EXPECT_EQ(analysis::ClassifyTaskPatterns(self, 1)[0], AccessPattern::kRandom);
  EXPECT_EQ(core::ClassifyTask(self, 1)[0], AccessPattern::kRandom);
}

TEST(PatternClassification, ParityWithCoreOnAllFiveApps) {
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    for (const core::TaskIr& ir : bundle.task_irs) {
      const auto ours =
          analysis::ClassifyTaskPatterns(ir, bundle.workload.objects.size());
      const auto core_labels =
          core::ClassifyTask(ir, bundle.workload.objects.size());
      EXPECT_EQ(ours, core_labels) << name << " task " << ir.task;
    }
  }
}

// ---- footprint and alpha ---------------------------------------------

TEST(AnalysisPasses, ScalarFootprintIsOneCacheLine) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel scalar\n"
      "object big bytes=1GiB\n"
      "register big\n"
      "task 0 {\n"
      "  loop l trips=1e6 {\n"
      "    read big affine stride=0\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  EXPECT_EQ(a.objects[0].pattern, PatternClass::kScalar);
  EXPECT_EQ(a.objects[0].footprint_bytes, kCacheLineBytes);
  // Size-invariant traffic: Eq. 1 alpha under doubling equals the size
  // ratio, so esti_mem_acc stays put when the object grows.
  EXPECT_TRUE(a.objects[0].analytic_alpha);
  EXPECT_DOUBLE_EQ(a.objects[0].alpha, 2.0);
}

TEST(AnalysisPasses, FootprintBoundedByObjectAndStride) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel fp\n"
      "object small bytes=1MiB\n"
      "object wide bytes=1GiB\n"
      "register small wide\n"
      "task 0 {\n"
      "  loop l trips=1e4 {\n"
      "    read small affine stride=1\n"
      "    read wide affine stride=-16\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  // 1e4 trips * 8B stream = 80 KB < 1 MiB: the sweep bound wins.
  EXPECT_EQ(a.objects[0].footprint_bytes, 80000u);
  // |stride| 16 * 8B * 1e4 trips = 1.28 MB distinct bytes reachable.
  EXPECT_EQ(a.objects[1].footprint_bytes, 1280000u);
  EXPECT_EQ(a.objects[1].pattern, PatternClass::kStrided);
}

TEST(AnalysisPasses, ReuseBucketsCountPerTaskSweeps) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  // One loop: everything single-pass.
  for (const analysis::ObjectReport& obj : a.objects) {
    EXPECT_FALSE(obj.reswept) << obj.name;
    EXPECT_EQ(obj.sweeps, 1) << obj.name;
  }
  // values is gathered (random) -> runtime-refined alpha.
  EXPECT_TRUE(a.objects[0].runtime_refined);
  EXPECT_FALSE(a.objects[0].analytic_alpha);
  // idx is only ever an index array -> stream, analytic.
  EXPECT_EQ(a.objects[1].pattern, PatternClass::kStream);
  EXPECT_TRUE(a.objects[1].analytic_alpha);
  // out is write-only.
  EXPECT_DOUBLE_EQ(a.objects[2].write_fraction, 1.0);
}

TEST(AnalysisPasses, AnalyticAlphaAgreesWithProfiledTableOnApps) {
  // Acceptance criterion: for stream/strided/stencil objects of the five
  // applications the statically derived alpha must sit within 15% of the
  // profiled table's value (core::LinearAlpha / StencilAlphaOffline).
  int checked = 0;
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const analysis::ModuleAnalysis a = analysis::Analyze(module);
    for (const analysis::ObjectReport& obj : a.objects) {
      if (!obj.referenced || !obj.analytic_alpha) continue;
      ASSERT_GT(obj.profiled_alpha, 0.0) << name << "/" << obj.name;
      const double rel = std::abs(obj.alpha - obj.profiled_alpha) /
                         obj.profiled_alpha;
      EXPECT_LE(rel, 0.15) << name << "/" << obj.name << " analytic "
                           << obj.alpha << " vs profiled "
                           << obj.profiled_alpha;
      ++checked;
    }
  }
  EXPECT_GE(checked, 5);  // the agreement must actually cover objects
}

TEST(AnalysisPasses, DistinctPatternsMatchCoreTable1Helper) {
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const analysis::ModuleAnalysis a = analysis::Analyze(module);
    const auto expected = core::DistinctPatterns(
        bundle.task_irs, bundle.workload.objects.size());
    EXPECT_EQ(a.distinct, expected) << name;
  }
}

// ---- lint ------------------------------------------------------------

std::vector<std::string> Codes(const std::vector<analysis::Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.code);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PlacementLint, FlagsUnregisteredReferencedObject) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel l\n"
      "object a bytes=1MiB\n"
      "task 0 {\n"
      "  loop x trips=10 {\n"
      "    read a affine stride=1\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "unregistered-object");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kError);
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(PlacementLint, CleanModuleHasNoFindings) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  // out is write-only -> only the write-heavy advisory remains.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "write-heavy");
  EXPECT_FALSE(analysis::HasErrors(findings));
}

TEST(PlacementLint, FlagsOpaqueDeadIndexMisregisteredAndMismatch) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel l\n"
      "object data bytes=64MiB\n"
      "object idx bytes=1MiB elem=4 pattern=random\n"
      "object tbl bytes=8MiB\n"
      "object ghost bytes=1MiB\n"
      "object claimed bytes=4MiB pattern=stencil\n"
      "register data idx tbl ghost claimed\n"
      "task 0 {\n"
      "  loop x trips=1000 {\n"
      "    read idx affine stride=1 elem=4\n"
      "    read data indirect via=idx\n"
      "    read tbl opaque\n"
      "    read claimed affine stride=4\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = analysis::Lint(r.module, analysis::Analyze(r.module));
  const auto codes = Codes(findings);
  EXPECT_EQ(codes,
            (std::vector<std::string>{"dead-object", "index-misregistered",
                                      "opaque-subscript", "pattern-mismatch"}));
  EXPECT_FALSE(analysis::HasErrors(findings));  // all advisory
  for (const auto& f : findings) {
    if (f.code == "dead-object") {
      EXPECT_EQ(f.object, "ghost");
      EXPECT_EQ(f.severity, analysis::Severity::kWarning);
    }
    if (f.code == "index-misregistered") EXPECT_EQ(f.object, "idx");
    if (f.code == "pattern-mismatch") EXPECT_EQ(f.object, "claimed");
  }
}

TEST(PlacementLint, AppBundlesLintClean) {
  // The five builders register everything they reference: the service
  // gate must pass them.
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    const auto findings =
        analysis::Lint(module, analysis::Analyze(module));
    EXPECT_FALSE(analysis::HasErrors(findings)) << name;
  }
}

// ---- task ordering in the grammar ------------------------------------

const char* kPipelineKir = R"(
kernel pipeline
object a bytes=8MiB elem=8 owner=shared
object b bytes=8MiB elem=8 owner=shared
register a b
task 0 {
  loop produce trips=500000 insns=4 {
    write a affine stride=1 base=0
  }
}
task 1 {
  loop produce trips=500000 insns=4 {
    write a affine stride=1 base=524288
  }
}
task 2 after 0,1 {
  loop consume trips=1000000 insns=4 {
    read a affine stride=1
    write b affine stride=1
  }
}
)";

TEST(KirParser, ParsesAfterClauseAndBaseOffset) {
  const analysis::ParseResult r = analysis::ParseKir(kPipelineKir);
  ASSERT_TRUE(r.ok()) << analysis::FormatParseError("", r.errors.front());
  ASSERT_EQ(r.module.tasks.size(), 3u);
  EXPECT_TRUE(r.module.tasks[0].after.empty());
  EXPECT_EQ(r.module.tasks[2].after, (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(r.module.tasks[1].loops[0].refs[0].subscript.base, 524288);
  EXPECT_FALSE(r.module.fork_join);
}

TEST(KirParser, AfterAndBaseSurviveTheCanonicalRoundTrip) {
  const analysis::ParseResult first = analysis::ParseKir(kPipelineKir);
  ASSERT_TRUE(first.ok());
  const std::string canon = analysis::SerializeKir(first.module);
  EXPECT_NE(canon.find("task 2 after 0,1 {"), std::string::npos);
  EXPECT_NE(canon.find("base=524288"), std::string::npos);
  const analysis::ParseResult second = analysis::ParseKir(canon);
  ASSERT_TRUE(second.ok()) << canon;
  EXPECT_EQ(analysis::SerializeKir(second.module), canon);
  EXPECT_EQ(second.module.tasks[2].after, (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(second.module.tasks[1].loops[0].refs[0].subscript.base, 524288);
}

TEST(KirParser, RejectsEmptySelfAndNegativeAfterLists) {
  EXPECT_FALSE(analysis::ParseKir("task 0 after {\n}\n").ok());
  EXPECT_FALSE(analysis::ParseKir("task 1 after 1 {\n}\n").ok());
  EXPECT_FALSE(analysis::ParseKir("task 1 after -2 {\n}\n").ok());
  // Duplicates collapse silently (a set, not a list).
  const analysis::ParseResult r =
      analysis::ParseKir("task 1 after 0,0,0 {\n}\ntask 0 {\n}\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.module.tasks[0].after, (std::vector<TaskId>{0}));
}

// ---- parser robustness (fuzz-lite) -----------------------------------

TEST(KirParserFuzz, DeeplyNestedLoopsHitTheDepthLimitNotTheStack) {
  std::string text = "kernel deep\nobject a bytes=1MiB\nregister a\ntask 0 {\n";
  for (int i = 0; i < 10000; ++i) text += "loop l trips=2 {\n";
  text += "read a affine stride=1\n";
  for (int i = 0; i < 10000; ++i) text += "}\n";
  text += "}\n";
  const analysis::ParseResult r = analysis::ParseKir(text);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const analysis::ParseError& e : r.errors) {
    if (e.message.find("maximum depth") != std::string::npos) found = true;
    EXPECT_GE(e.loc.line, 1);
  }
  EXPECT_TRUE(found);
}

TEST(KirParserFuzz, EveryTruncationOfAValidProgramParsesOrErrorsCleanly) {
  const std::string whole = kPipelineKir;
  for (std::size_t len = 0; len <= whole.size(); ++len) {
    const analysis::ParseResult r = analysis::ParseKir(whole.substr(0, len));
    for (const analysis::ParseError& e : r.errors) {
      EXPECT_GE(e.loc.line, 1) << "truncated at " << len;
      EXPECT_FALSE(e.message.empty()) << "truncated at " << len;
    }
  }
}

TEST(KirParserFuzz, GarbageBytesNeverCrashAndAlwaysLocateErrors) {
  std::mt19937 rng(0xC0FFEE);
  const std::string alphabet =
      "kernel object task loop read write register after base= {}\n\t 0123=-e";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = rng() % 512;
    for (std::size_t i = 0; i < len; ++i) {
      // Mix structured tokens with raw bytes so both lexer and grammar
      // paths get exercised.
      text += trial % 2 == 0 ? alphabet[rng() % alphabet.size()]
                             : static_cast<char>(rng() % 256);
    }
    const analysis::ParseResult r = analysis::ParseKir(text);
    for (const analysis::ParseError& e : r.errors) {
      EXPECT_GE(e.loc.line, 1);
      EXPECT_FALSE(e.message.empty());
    }
  }
}

// ---- access summaries ------------------------------------------------

TEST(AccessSummaries, RefIntervalCoversEachSubscriptForm) {
  bool widened = false;
  core::ArrayRef affine = Affine(0, 2);
  affine.subscript.base = 10;
  affine.element_bytes = 8;
  // elements 10, 12, ..., 28 -> bytes [80, 232)
  const auto a = analysis::RefInterval(affine, 10, 1 * MiB, &widened);
  EXPECT_EQ(a.lo, 80u);
  EXPECT_EQ(a.hi, 232u);
  EXPECT_FALSE(widened);

  core::ArrayRef back = Affine(0, -1);
  back.subscript.base = 99;
  back.element_bytes = 8;
  // elements 99, 98, ..., 90 -> bytes [720, 800)
  const auto n = analysis::RefInterval(back, 10, 1 * MiB, &widened);
  EXPECT_EQ(n.lo, 720u);
  EXPECT_EQ(n.hi, 800u);

  core::ArrayRef sten = Neighborhood(0, {-2, 0, 1});
  sten.subscript.base = 4;
  sten.element_bytes = 4;
  // elements [2, 4+9+1+1) = [2, 15) -> bytes [8, 60)
  const auto s = analysis::RefInterval(sten, 10, 1 * MiB, &widened);
  EXPECT_EQ(s.lo, 8u);
  EXPECT_EQ(s.hi, 60u);

  core::ArrayRef gather = Indirect(0, 1);
  const auto g = analysis::RefInterval(gather, 10, 4096, &widened);
  EXPECT_TRUE(widened);
  EXPECT_EQ(g.lo, 0u);
  EXPECT_EQ(g.hi, 4096u);

  // Sweeps past the end of the object clamp to its size.
  core::ArrayRef runaway = Affine(0, 1);
  runaway.element_bytes = 8;
  const auto c = analysis::RefInterval(runaway, 1u << 30, 4096, &widened);
  EXPECT_EQ(c.hi, 4096u);
}

TEST(AccessSummaries, SummarizeSplitsReadsFromWritesPerObject) {
  const analysis::ParseResult r = analysis::ParseKir(kPipelineKir);
  ASSERT_TRUE(r.ok());
  const analysis::ModuleSummary s = analysis::Summarize(r.module);
  ASSERT_EQ(s.tasks.size(), 3u);
  // Task 0 writes the first half of `a` (500000 * 8 bytes).
  ASSERT_EQ(s.tasks[0].writes.size(), 1u);
  EXPECT_EQ(s.tasks[0].writes[0].bytes.lo, 0u);
  EXPECT_EQ(s.tasks[0].writes[0].bytes.hi, 4000000u);
  EXPECT_TRUE(s.tasks[0].reads.empty());
  // Task 1 starts at element 524288 (byte 4194304).
  EXPECT_EQ(s.tasks[1].writes[0].bytes.lo, 4194304u);
  // Task 2 reads `a` and writes `b`; write-only `b` counts DRAM-hungry.
  ASSERT_EQ(s.tasks[2].reads.size(), 1u);
  ASSERT_EQ(s.tasks[2].writes.size(), 1u);
  EXPECT_EQ(s.tasks[2].after, (std::vector<TaskId>{0, 1}));
  EXPECT_GT(s.tasks[2].dram_hungry_bytes, 0u);
  EXPECT_GE(s.tasks[2].footprint_bytes, s.tasks[2].dram_hungry_bytes);
}

// ---- dependence engine -----------------------------------------------

analysis::TaskGraph Graph(const analysis::Module& m) {
  return analysis::BuildTaskGraph(m, analysis::Summarize(m));
}

std::vector<analysis::Finding> DepFindings(const analysis::Module& m,
                                           const hm::HmSpec& hm) {
  return analysis::LintDependences(m, Graph(m), hm);
}

TEST(DepGraph, DeclaredEdgesCoverTheInferredDependences) {
  const analysis::ParseResult r = analysis::ParseKir(kPipelineKir);
  ASSERT_TRUE(r.ok());
  const analysis::TaskGraph g = Graph(r.module);
  EXPECT_FALSE(g.cyclic);
  EXPECT_EQ(g.declared.size(), 2u);
  EXPECT_TRUE(g.Ordered(0, 2));
  EXPECT_TRUE(g.Ordered(1, 2));
  EXPECT_FALSE(g.Ordered(0, 1));
  // Writers 0 and 1 touch disjoint halves: no edge between them, one RAW
  // edge each into the consumer.
  int raw = 0;
  for (const analysis::DepEdge& e : g.edges) {
    EXPECT_TRUE(e.declared);
    EXPECT_TRUE(e.exact);
    EXPECT_EQ(e.to_task, 2u);
    if (e.kind == analysis::DepKind::kRaw) ++raw;
  }
  EXPECT_EQ(raw, 2);
  const auto findings = DepFindings(r.module, hm::HmSpec::PaperOptane());
  EXPECT_TRUE(findings.empty());
}

TEST(DepGraph, UnorderedExactConflictIsADataRace) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel race\n"
      "object a bytes=8MiB elem=8 owner=shared\n"
      "register a\n"
      "task 0 {\n  loop l trips=1000 insns=4 {\n"
      "    write a affine stride=1\n  }\n}\n"
      "task 1 {\n  loop l trips=1000 insns=4 {\n"
      "    write a affine stride=1\n  }\n}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = DepFindings(r.module, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "data-race");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kError);
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(DepGraph, WidenedConflictDowngradesToPotentialRace) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel may\n"
      "object t bytes=8MiB elem=8 owner=shared\n"
      "object idx bytes=1MiB elem=4 owner=shared\n"
      "register t idx\n"
      "task 0 {\n  loop l trips=1000 insns=4 {\n"
      "    read idx affine stride=1 elem=4\n"
      "    write t indirect via=idx\n  }\n}\n"
      "task 1 {\n  loop l trips=1000 insns=4 {\n"
      "    read idx affine stride=1 elem=4\n"
      "    write t indirect via=idx\n  }\n}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = DepFindings(r.module, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "potential-race");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kWarning);
  EXPECT_FALSE(analysis::HasErrors(findings));
}

TEST(DepGraph, UselessEdgeIsOverSynchronization) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel oversync\n"
      "object a bytes=1MiB elem=8 owner=0\n"
      "object b bytes=1MiB elem=8 owner=1\n"
      "register a b\n"
      "task 0 {\n  loop l trips=100 insns=4 {\n"
      "    write a affine stride=1\n  }\n}\n"
      "task 1 after 0 {\n  loop l trips=100 insns=4 {\n"
      "    write b affine stride=1\n  }\n}\n");
  ASSERT_TRUE(r.ok());
  const auto findings = DepFindings(r.module, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "over-synchronization");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kWarning);
}

TEST(DepGraph, ConcurrentHungryFootprintsInterfereOnTinyMachines) {
  // Two unordered tasks each gather a 12 MiB random pool: together 24 MiB
  // against Tiny's 16 MiB DRAM -> interference; ordered they are fine.
  const char* racy =
      "kernel hog\n"
      "object p0 bytes=12MiB elem=8 owner=0 pattern=random\n"
      "object p1 bytes=12MiB elem=8 owner=1 pattern=random\n"
      "register p0 p1\n"
      "task 0 {\n  loop l trips=1000 insns=4 {\n"
      "    read p0 opaque\n  }\n}\n"
      "task 1 %s{\n  loop l trips=1000 insns=4 {\n"
      "    read p1 opaque\n  }\n}\n";
  char buf[512];
  std::snprintf(buf, sizeof buf, racy, "");
  const analysis::ParseResult concurrent = analysis::ParseKir(buf);
  ASSERT_TRUE(concurrent.ok());
  const auto findings = DepFindings(concurrent.module, hm::HmSpec::Tiny());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "placement-interference");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kWarning);

  std::snprintf(buf, sizeof buf, racy, "after 0 ");
  const analysis::ParseResult ordered = analysis::ParseKir(buf);
  ASSERT_TRUE(ordered.ok());
  // The serialized tasks no longer run together — but the edge now
  // carries no data, so it reports as over-synchronization instead.
  const auto ordered_findings = DepFindings(ordered.module, hm::HmSpec::Tiny());
  ASSERT_EQ(ordered_findings.size(), 1u);
  EXPECT_EQ(ordered_findings[0].code, "over-synchronization");
}

TEST(DepGraph, CyclesAndUnknownPredecessorsAreErrors) {
  const analysis::ParseResult cyc = analysis::ParseKir(
      "task 0 after 1 {\n}\ntask 1 after 0 {\n}\n");
  ASSERT_TRUE(cyc.ok());
  const analysis::TaskGraph g = Graph(cyc.module);
  EXPECT_TRUE(g.cyclic);
  auto findings = DepFindings(cyc.module, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "dependence-cycle");
  EXPECT_TRUE(analysis::HasErrors(findings));

  const analysis::ParseResult ghost =
      analysis::ParseKir("task 0 after 7 {\n}\n");
  ASSERT_TRUE(ghost.ok());
  findings = DepFindings(ghost.module, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "unknown-predecessor");
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(DepGraph, OrderingIsTransitiveThroughDeclaredChains) {
  const analysis::ParseResult r = analysis::ParseKir(
      "kernel chain\n"
      "object a bytes=1MiB elem=8 owner=shared\n"
      "register a\n"
      "task 0 {\n  loop l trips=100 insns=4 {\n"
      "    write a affine stride=1\n  }\n}\n"
      "task 1 after 0 {\n  loop l trips=100 insns=4 {\n"
      "    read a affine stride=1\n    write a affine stride=1\n  }\n}\n"
      "task 2 after 1 {\n  loop l trips=100 insns=4 {\n"
      "    read a affine stride=1\n  }\n}\n");
  ASSERT_TRUE(r.ok());
  const analysis::TaskGraph g = Graph(r.module);
  // 0 -> 2 is not a direct edge but must be ordered transitively, so the
  // 0->2 RAW on `a` counts as declared-covered, not a race.
  EXPECT_TRUE(g.Ordered(0, 2));
  const auto findings = DepFindings(r.module, hm::HmSpec::PaperOptane());
  EXPECT_TRUE(findings.empty())
      << analysis::FormatFinding("", findings.front());
}

TEST(DepGraph, ForkJoinModulesSoftenSharedWritesButNotOwnedOnes) {
  // Shared-object co-writes in a fork-join region are the runtime's
  // partitioned streams -> note; an exact write into another task's owned
  // object stays an error.
  analysis::Module m;
  m.name = "fj";
  m.fork_join = true;
  analysis::ObjectDecl shared;
  shared.name = "stream";
  shared.bytes = 1 * MiB;
  shared.registered = true;
  analysis::ObjectDecl owned;
  owned.name = "mine";
  owned.bytes = 1 * MiB;
  owned.owner = 0;
  owned.registered = true;
  m.objects = {shared, owned};
  for (TaskId t = 0; t < 2; ++t) {
    analysis::TaskDecl task;
    task.task = t;
    analysis::LoopIr loop;
    loop.name = "l";
    loop.trip_count = 1000;
    analysis::RefIr w;
    w.object = 0;
    w.subscript.kind = Subscript::Kind::kAffine;
    w.subscript.stride = 1;
    w.is_write = true;
    loop.refs.push_back(w);
    task.loops.push_back(loop);
    m.tasks.push_back(task);
  }
  auto findings = DepFindings(m, hm::HmSpec::PaperOptane());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "assumed-partitioned");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kNote);

  // Task 1 now also writes task 0's owned object: error even fork-join.
  analysis::RefIr foreign;
  foreign.object = 1;
  foreign.subscript.kind = Subscript::Kind::kAffine;
  foreign.subscript.stride = 1;
  foreign.is_write = true;
  m.tasks[1].loops[0].refs.push_back(foreign);
  analysis::RefIr own = foreign;  // owner writes it too -> conflict
  m.tasks[0].loops[0].refs.push_back(own);
  findings = DepFindings(m, hm::HmSpec::PaperOptane());
  bool raced = false;
  for (const auto& f : findings) {
    if (f.code == "data-race") raced = true;
  }
  EXPECT_TRUE(raced);
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(DepGraph, AppBundlesPassTheDependenceGate) {
  // Mirror of the PlacementService gate: the five applications' bridged
  // modules must come through without dependence errors.
  for (const std::string& name : apps::AppNames()) {
    const apps::AppBundle bundle = apps::BuildApp(name, 0.02, 0.05);
    const analysis::Module module =
        analysis::ModuleFromWorkload(bundle.workload, bundle.task_irs);
    EXPECT_TRUE(module.fork_join) << name;
    const auto findings = DepFindings(module, hm::HmSpec::PaperOptane());
    EXPECT_FALSE(analysis::HasErrors(findings)) << name;
  }
}

// ---- dynamic soundness gate ------------------------------------------

// Deterministic 64-bit mix (splitmix64) standing in for the runtime's
// data-dependent indices: the oracle must be reproducible, and only
// *true* accesses matter — any index set works for a soundness check.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Sampled concrete byte positions one reference touches across its
/// sweep. At most ~2k iterations are sampled (even spacing); every byte
/// of each touched element is recorded so differing element sizes still
/// collide. Out-of-object accesses are skipped — the static hull is
/// clipped the same way.
void SampleRefBytes(const core::ArrayRef& ref, std::uint64_t trips,
                    std::uint64_t object_bytes,
                    std::unordered_set<std::uint64_t>* out) {
  const std::uint64_t n = std::max<std::uint64_t>(1, trips);
  const std::uint64_t step = std::max<std::uint64_t>(1, n / 2048);
  const std::uint64_t elems = std::max<std::uint64_t>(
      1, object_bytes / std::max<std::uint32_t>(1, ref.element_bytes));
  auto touch = [&](std::int64_t elem) {
    if (elem < 0) return;
    const std::uint64_t lo = static_cast<std::uint64_t>(elem) *
                             ref.element_bytes;
    if (lo + ref.element_bytes > object_bytes) return;
    for (std::uint32_t b = 0; b < ref.element_bytes; ++b) out->insert(lo + b);
  };
  for (std::uint64_t i = 0; i < n; i += step) {
    switch (ref.subscript.kind) {
      case Subscript::Kind::kAffine:
        touch(ref.subscript.base +
              static_cast<std::int64_t>(i) * ref.subscript.stride);
        break;
      case Subscript::Kind::kNeighborhood:
        for (const std::int64_t off : ref.subscript.offsets) {
          touch(ref.subscript.base + static_cast<std::int64_t>(i) + off);
        }
        break;
      case Subscript::Kind::kIndirect:
      case Subscript::Kind::kOpaque:
        touch(static_cast<std::int64_t>(
            Mix(ref.object * 0x10001ull + i) % elems));
        break;
    }
  }
}

TEST(DependenceSoundness, EveryDynamicOverlapOnExamplesHasAStaticEdge) {
  // The acceptance gate: replay a sampled access oracle over every
  // examples/*.kir program; every observed inter-task overlap (with at
  // least one writer) must be covered by a statically inferred edge of
  // the matching kind — zero false negatives.
  const std::filesystem::path dir = KIR_EXAMPLES_DIR;
  int programs = 0, observed_overlaps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".kir") continue;
    const analysis::ParseResult r =
        analysis::ParseKirFile(entry.path().string());
    ASSERT_TRUE(r.ok()) << entry.path();
    ++programs;
    const analysis::TaskGraph g = Graph(r.module);

    // Oracle: per (task, object) sampled read- and write-byte sets.
    const std::vector<core::TaskIr> tasks = r.module.ToCoreIr();
    struct TaskBytes {
      std::vector<std::unordered_set<std::uint64_t>> reads, writes;
    };
    std::vector<TaskBytes> oracle(tasks.size());
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
      oracle[ti].reads.resize(r.module.objects.size());
      oracle[ti].writes.resize(r.module.objects.size());
      for (const core::LoopNest& loop : tasks[ti].loops) {
        for (const core::ArrayRef& ref : loop.refs) {
          if (ref.object >= r.module.objects.size()) continue;
          std::unordered_set<std::uint64_t> fresh;
          SampleRefBytes(ref, loop.trip_count,
                         r.module.objects[ref.object].bytes, &fresh);
          // Hull-soundness: every byte sampled from THIS reference sits
          // inside its static footprint interval.
          bool widened = false;
          const analysis::ByteInterval hull = analysis::RefInterval(
              ref, loop.trip_count, r.module.objects[ref.object].bytes,
              &widened);
          for (const std::uint64_t b : fresh) {
            ASSERT_TRUE(b >= hull.lo && b < hull.hi)
                << entry.path() << " task " << tasks[ti].task << " object "
                << r.module.objects[ref.object].name << " byte " << b;
          }
          auto& slot = ref.is_write ? oracle[ti].writes[ref.object]
                                    : oracle[ti].reads[ref.object];
          slot.insert(fresh.begin(), fresh.end());
        }
      }
    }

    auto intersects = [](const std::unordered_set<std::uint64_t>& a,
                         const std::unordered_set<std::uint64_t>& b) {
      const auto& small = a.size() <= b.size() ? a : b;
      const auto& large = a.size() <= b.size() ? b : a;
      for (const std::uint64_t v : small) {
        if (large.count(v) > 0) return true;
      }
      return false;
    };
    auto has_edge = [&](std::size_t x, std::size_t y, std::size_t obj,
                        analysis::DepKind k1, analysis::DepKind k2) {
      for (const analysis::DepEdge& e : g.edges) {
        const bool pair = (e.from == x && e.to == y) ||
                          (e.from == y && e.to == x);
        if (pair && e.object == obj && (e.kind == k1 || e.kind == k2)) {
          return true;
        }
      }
      return false;
    };

    for (std::size_t a = 0; a < tasks.size(); ++a) {
      for (std::size_t b = a + 1; b < tasks.size(); ++b) {
        for (std::size_t obj = 0; obj < r.module.objects.size(); ++obj) {
          if (intersects(oracle[a].writes[obj], oracle[b].reads[obj]) ||
              intersects(oracle[a].reads[obj], oracle[b].writes[obj])) {
            ++observed_overlaps;
            EXPECT_TRUE(has_edge(a, b, obj, analysis::DepKind::kRaw,
                                 analysis::DepKind::kWar))
                << entry.path() << ": tasks " << a << "," << b
                << " read/write-overlap on "
                << r.module.objects[obj].name << " with no static edge";
          }
          if (intersects(oracle[a].writes[obj], oracle[b].writes[obj])) {
            ++observed_overlaps;
            EXPECT_TRUE(has_edge(a, b, obj, analysis::DepKind::kWaw,
                                 analysis::DepKind::kWaw))
                << entry.path() << ": tasks " << a << "," << b
                << " write/write-overlap on "
                << r.module.objects[obj].name << " with no static edge";
          }
        }
      }
    }
  }
  EXPECT_GE(programs, 4);           // spgemm, bfs, lint_fixture, race_fixture
  EXPECT_GT(observed_overlaps, 0);  // the gate must actually bite
}

TEST(DagReports, TextJsonAndDotRenderTheGraph) {
  const analysis::ParseResult r = analysis::ParseKir(kPipelineKir);
  ASSERT_TRUE(r.ok());
  const analysis::TaskGraph g = Graph(r.module);
  const auto findings =
      analysis::LintDependences(r.module, g, hm::HmSpec::PaperOptane());
  const std::string text =
      analysis::DagTextReport("p.kir", r.module, g, findings);
  EXPECT_NE(text.find("RAW on 'a'"), std::string::npos);
  EXPECT_NE(text.find("ordered"), std::string::npos);
  const std::string json =
      analysis::DagJsonReport("p.kir", r.module, g, findings);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"RAW\""), std::string::npos);
  const std::string dot = analysis::DagDotReport(r.module, g);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("t0 -> t2"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Reports, TextAndJsonCarryPatternsAndFindings) {
  const analysis::ParseResult r = analysis::ParseKir(kGatherKir);
  ASSERT_TRUE(r.ok());
  const analysis::ModuleAnalysis a = analysis::Analyze(r.module);
  const auto findings = analysis::Lint(r.module, a);
  const std::string text =
      analysis::TextReport("g.kir", r.module, a, findings);
  EXPECT_NE(text.find("Random"), std::string::npos);
  EXPECT_NE(text.find("write-heavy"), std::string::npos);
  const std::string json =
      analysis::JsonReport("g.kir", r.module, a, findings);
  EXPECT_NE(json.find("\"pattern\": \"Random\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
}

}  // namespace
}  // namespace merch
