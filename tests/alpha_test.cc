// Tests for the alpha model (Eq. 1): offline linear alphas including the
// paper's worked example, stencil microbenchmark alpha, and runtime
// refinement.
#include <gtest/gtest.h>

#include "core/alpha.h"

namespace merch::core {
namespace {

using trace::AccessPattern;

TEST(LinearAlpha, PaperWorkedExample) {
  // Paper Section 4: stream pattern, 4-byte ints, 64B lines, S_base=128B
  // (2 memory accesses), S_new=192B (3 accesses) => alpha = 1 and the
  // estimate reproduces 3 accesses from prof=2.
  const double alpha = LinearAlpha(128, 192, 4, 1);
  EXPECT_DOUBLE_EQ(alpha, 1.0);
  AlphaEstimator est(AccessPattern::kStream, 4, 1);
  est.SetBase(128.0, 2.0);
  EXPECT_NEAR(est.EstimateAccesses(192.0), 3.0, 1e-9);
}

TEST(LinearAlpha, NonDivisibleSizesRoundUp) {
  // 100B and 130B both round to line multiples (2 and 3 lines).
  const double alpha = LinearAlpha(100, 130, 4, 1);
  AlphaEstimator est(AccessPattern::kStream, 4, 1);
  est.SetBase(100.0, 2.0);
  EXPECT_NEAR(est.EstimateAccesses(130.0), 3.0, 1e-9);
  EXPECT_GT(alpha, 0.0);
}

TEST(LinearAlpha, ProportionalForLargeSizes) {
  // For line-aligned large sizes alpha -> 1: accesses scale with size.
  EXPECT_NEAR(LinearAlpha(1 << 20, 1 << 22, 8, 1), 1.0, 1e-9);
}

TEST(LinearAlpha, WideStrideUsesElementUnits) {
  // With stride*elem = 128B > line, each element is its own access; the
  // unit is 128B and alpha corrects relative to that granularity.
  const double alpha = LinearAlpha(1280, 2560, 8, 16);
  EXPECT_NEAR(alpha, 1.0, 1e-9);
}

TEST(StencilAlpha, OfflineMicrobenchmarkReasonable) {
  const double alpha = StencilAlphaOffline(8);
  EXPECT_GT(alpha, 0.1);
  EXPECT_LT(alpha, 10.0);
}

TEST(AlphaEstimator, StreamDoesNotRefine) {
  AlphaEstimator est(AccessPattern::kStream, 8, 1);
  EXPECT_FALSE(est.refines_at_runtime());
  est.SetBase(1e6, 1e5);
  const double before = est.EstimateAccesses(2e6);
  est.Refine(2e6, 12345.0);  // must be ignored
  EXPECT_DOUBLE_EQ(est.EstimateAccesses(2e6), before);
}

TEST(AlphaEstimator, InputIndependentStencilUsesOfflineAlpha) {
  AlphaEstimator est(AccessPattern::kStencil, 8, 1, true);
  EXPECT_FALSE(est.refines_at_runtime());
  EXPECT_NE(est.alpha(), 0.0);
}

TEST(AlphaEstimator, InputDependentStencilRefines) {
  AlphaEstimator est(AccessPattern::kStencil, 8, 1, false);
  EXPECT_TRUE(est.refines_at_runtime());
  EXPECT_DOUBLE_EQ(est.alpha(), 1.0);
}

TEST(AlphaEstimator, RandomStartsAtOneAndRefines) {
  AlphaEstimator est(AccessPattern::kRandom, 8, 1);
  EXPECT_TRUE(est.refines_at_runtime());
  EXPECT_DOUBLE_EQ(est.alpha(), 1.0);
  est.SetBase(1e6, 1e5);
  // Ground truth behaviour: accesses scale with size/2 (alpha = 2).
  est.Refine(2e6, 1e5);  // measured at double size: same accesses
  // Implied alpha from that instance: (2e6 * 1e5) / (1e6 * 1e5) = 2.
  EXPECT_GT(est.alpha(), 1.5);
  EXPECT_LT(est.alpha(), 2.1);
}

TEST(AlphaEstimator, RefinementConvergesOverInstances) {
  AlphaEstimator est(AccessPattern::kRandom, 8, 1);
  est.SetBase(1e6, 1e5);
  // True relation: mm = 0.05 * size / alpha_true with alpha_true = 4:
  // measured(s) = s / (1e6 * 4) * 1e5.
  for (int i = 0; i < 6; ++i) {
    const double s = 1e6 * (1.0 + 0.3 * i);
    const double measured = s / (1e6 * 4.0) * 1e5;
    est.Refine(s, measured);
  }
  EXPECT_NEAR(est.alpha(), 4.0, 0.2);
  // Estimates now track the true relation.
  EXPECT_NEAR(est.EstimateAccesses(3e6), 3e6 / (1e6 * 4.0) * 1e5, 4000.0);
}

TEST(AlphaEstimator, IgnoresGarbageMeasurements) {
  AlphaEstimator est(AccessPattern::kRandom, 8, 1);
  est.SetBase(1e6, 1e5);
  est.Refine(2e6, 0.0);    // zero measurement: skipped
  est.Refine(0.0, 1e5);    // zero size: skipped
  EXPECT_DOUBLE_EQ(est.alpha(), 1.0);
}

TEST(AlphaEstimator, NoBaseMeansNoEstimate) {
  AlphaEstimator est(AccessPattern::kStream, 8, 1);
  EXPECT_FALSE(est.has_base());
  EXPECT_DOUBLE_EQ(est.EstimateAccesses(1e6), 0.0);
}

TEST(AlphaEstimator, UnknownPatternTreatedAsRandom) {
  AlphaEstimator est(AccessPattern::kUnknown, 8, 1);
  EXPECT_TRUE(est.refines_at_runtime());
}

}  // namespace
}  // namespace merch::core
