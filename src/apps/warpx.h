// WarpX workload (paper Table 2): beam-plasma PIC simulation, 24
// OpenMP-thread tasks each owning a spatial tile (particles + field
// arrays), with a barrier per time step. Regular access patterns
// (Table 1: Strided, Stencil), and no application-inherent load imbalance
// (Section 7.2) — what imbalance appears under tiering is the page
// manager's fault.
//
// The builder runs the real mini-PIC (apps/kernels/pic.h) to validate
// dynamics and derive per-kernel access ratios, then scales to the paper's
// 1.056 TB footprint.
#pragma once

#include "apps/app.h"

namespace merch::apps {

struct WarpxConfig {
  int num_tasks = 24;   // paper: 24 OpenMP threads
  int steps = 5;        // time steps = task instances
  std::uint32_t real_cells = 512;       // real-measurement scale
  std::uint32_t real_particles = 1u << 15;
  std::uint64_t target_bytes = static_cast<std::uint64_t>(1056.0 * 1073741824.0);
  double task_accesses = 7e9;  // per-task program accesses per step
  std::uint64_t seed = 777;
};

AppBundle BuildWarpx(const WarpxConfig& config = {});

}  // namespace merch::apps
