#include "apps/registry.h"

#include <stdexcept>

#include "apps/bfs.h"
#include "apps/dmrg.h"
#include "apps/nwchem_tc.h"
#include "apps/spgemm.h"
#include "apps/warpx.h"

namespace merch::apps {

const std::vector<std::string>& AppNames() {
  static const std::vector<std::string> kNames = {
      "SpGEMM", "WarpX", "BFS", "DMRG", "NWChem-TC"};
  return kNames;
}

AppBundle BuildApp(const std::string& name, double footprint_scale,
                   double work_scale) {
  if (name == "SpGEMM") {
    SpGemmConfig cfg;
    cfg.target_bytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.target_bytes) * footprint_scale);
    cfg.busiest_task_accesses *= work_scale;
    return BuildSpGemm(cfg);
  }
  if (name == "BFS") {
    BfsConfig cfg;
    cfg.target_bytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.target_bytes) * footprint_scale);
    cfg.busiest_task_accesses *= work_scale;
    return BuildBfs(cfg);
  }
  if (name == "WarpX") {
    WarpxConfig cfg;
    cfg.target_bytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.target_bytes) * footprint_scale);
    cfg.task_accesses *= work_scale;
    return BuildWarpx(cfg);
  }
  if (name == "DMRG") {
    DmrgConfig cfg;
    cfg.target_bytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.target_bytes) * footprint_scale);
    cfg.busiest_task_accesses *= work_scale;
    return BuildDmrg(cfg);
  }
  if (name == "NWChem-TC") {
    NwchemTcConfig cfg;
    cfg.target_bytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.target_bytes) * footprint_scale);
    cfg.busiest_task_accesses *= work_scale;
    return BuildNwchemTc(cfg);
  }
  throw std::invalid_argument("unknown application: " + name);
}

}  // namespace merch::apps
