#include "apps/spgemm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/kernels/csr.h"
#include "analysis/passes.h"

namespace merch::apps {
namespace {

struct BinStats {
  std::uint64_t nnz_a = 0;
  std::uint64_t flops = 0;
  std::uint64_t nnz_c = 0;
};

struct RegionMeasurement {
  std::vector<BinStats> bins;
  std::uint64_t b_bytes = 0;  // CSR bytes of B
};

RegionMeasurement MeasureRegion(const SpGemmConfig& cfg, Rng& rng) {
  const CsrMatrix a = GenerateKronMatrix(cfg.rows, cfg.avg_degree, cfg.skew, rng);
  const CsrMatrix& b = a;  // C = A * A (GAP-kron self-product)
  const auto row_nnz_c = SpGemmSymbolic(a, b);

  RegionMeasurement m;
  m.b_bytes = b.bytes();
  const std::uint32_t bin_rows =
      (cfg.rows + cfg.num_tasks - 1) / cfg.num_tasks;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    const std::uint32_t begin = std::min<std::uint32_t>(t * bin_rows, cfg.rows);
    const std::uint32_t end =
        std::min<std::uint32_t>((t + 1) * bin_rows, cfg.rows);
    BinStats bs;
    bs.nnz_a = a.row_ptr[end] - a.row_ptr[begin];
    bs.flops = SpGemmFlops(a, b, begin, end);
    for (std::uint32_t i = begin; i < end; ++i) bs.nnz_c += row_nnz_c[i];
    m.bins.push_back(bs);
  }
  return m;
}

}  // namespace

AppBundle BuildSpGemm(const SpGemmConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<RegionMeasurement> regions;
  regions.reserve(cfg.iterations);
  for (int r = 0; r < cfg.iterations; ++r) {
    regions.push_back(MeasureRegion(cfg, rng));
  }

  // Byte scaling: hit the paper's footprint with the max-instance sizes.
  double real_total = 0;
  std::vector<double> max_a(cfg.num_tasks, 0), max_c(cfg.num_tasks, 0),
      max_acc(cfg.num_tasks, 0);
  double max_b = 0;
  for (const RegionMeasurement& m : regions) {
    max_b = std::max(max_b, static_cast<double>(m.b_bytes));
    for (int t = 0; t < cfg.num_tasks; ++t) {
      max_a[t] = std::max(max_a[t], 12.0 * static_cast<double>(m.bins[t].nnz_a));
      max_c[t] = std::max(max_c[t], 12.0 * static_cast<double>(m.bins[t].nnz_c));
      // Per-task hash/accumulator state (Gustavson keeps a sparse
      // accumulator sized by the output row structure).
      max_acc[t] = std::max(max_acc[t], 6.0 * static_cast<double>(m.bins[t].nnz_c));
    }
  }
  real_total = max_b;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    real_total += max_a[t] + max_c[t] + max_acc[t];
  }
  const double byte_scale = static_cast<double>(cfg.target_bytes) / real_total;

  // Work scaling: the busiest bin of the first instance gets
  // busiest_task_accesses program-level accesses.
  double max_raw_work = 1;
  for (const BinStats& b : regions[0].bins) {
    max_raw_work = std::max(max_raw_work,
                            static_cast<double>(3 * b.flops + b.nnz_a + b.nnz_c));
  }
  const double work_scale = cfg.busiest_task_accesses / max_raw_work;

  AppBundle bundle;
  sim::Workload& w = bundle.workload;
  w.name = "SpGEMM";

  // Objects: B (shared, hub rows hot), per-task A bins and C parts.
  const std::size_t obj_b = 0;
  w.objects.push_back(sim::ObjectDecl{
      .name = "B_csr",
      .bytes = static_cast<std::uint64_t>(max_b * byte_scale),
      .owner = kInvalidTask,
      .heat = trace::HeatProfile::Zipf(0.6),
      .reuse_passes = 2.0});
  std::vector<std::size_t> obj_a(cfg.num_tasks), obj_c(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_a[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "A_bin" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(max_a[t] * byte_scale),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 2.0});
  }
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_c[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "C_part" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(max_c[t] * byte_scale),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 1.0});
  }
  std::vector<std::size_t> obj_acc(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_acc[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "accum" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(max_acc[t] * byte_scale),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Zipf(0.4),
        .reuse_passes = 1.0});
  }

  auto build_task_ir = [&](int t, const RegionMeasurement& m) {
    const BinStats& bs = m.bins[t];
    const double flops = std::max(1.0, static_cast<double>(bs.flops) * work_scale);
    const double nnz_a = static_cast<double>(bs.nnz_a) * work_scale;
    const double nnz_c = static_cast<double>(bs.nnz_c) * work_scale;

    core::TaskIr ir;
    ir.task = static_cast<TaskId>(t);
    // Symbolic pass: walk the bin's rows of A (stream), probe B rows via
    // A's column indices (gather).
    core::LoopNest symbolic;
    symbolic.name = "symbolic";
    symbolic.trip_count = static_cast<std::uint64_t>(flops);
    symbolic.instructions_per_iteration = 5.0;
    symbolic.branch_fraction = 0.15;
    symbolic.vector_fraction = 0.02;
    symbolic.refs.push_back(core::ArrayRef{
        .object = obj_a[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = nnz_a / flops});
    symbolic.refs.push_back(core::ArrayRef{
        .object = obj_b,
        .subscript = {.kind = core::Subscript::Kind::kIndirect,
                      .index_object = obj_a[t]},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(symbolic);

    // Numeric pass: same traversal, plus hash-accumulator updates (random
    // within the per-task accumulator) and streaming writes of C.
    core::LoopNest numeric = symbolic;
    numeric.name = "numeric";
    numeric.instructions_per_iteration = 8.0;
    numeric.vector_fraction = 0.10;
    numeric.refs.push_back(core::ArrayRef{
        .object = obj_acc[t],
        .subscript = {.kind = core::Subscript::Kind::kOpaque},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    numeric.refs.push_back(core::ArrayRef{
        .object = obj_c[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = nnz_c / flops});
    ir.loops.push_back(numeric);
    return ir;
  };

  for (int r = 0; r < cfg.iterations; ++r) {
    sim::Region region;
    region.name = "spgemm_" + std::to_string(r);
    region.active_bytes.assign(w.objects.size(), 0);
    region.active_bytes[obj_b] = static_cast<std::uint64_t>(
        static_cast<double>(regions[r].b_bytes) * byte_scale);
    for (int t = 0; t < cfg.num_tasks; ++t) {
      region.active_bytes[obj_a[t]] = static_cast<std::uint64_t>(
          12.0 * static_cast<double>(regions[r].bins[t].nnz_a) * byte_scale);
      region.active_bytes[obj_c[t]] = static_cast<std::uint64_t>(
          12.0 * static_cast<double>(regions[r].bins[t].nnz_c) * byte_scale);
      region.active_bytes[obj_acc[t]] = static_cast<std::uint64_t>(
          6.0 * static_cast<double>(regions[r].bins[t].nnz_c) * byte_scale);
      const core::TaskIr ir = build_task_ir(t, regions[r]);
      sim::TaskProgram tp;
      tp.task = static_cast<TaskId>(t);
      tp.kernels = analysis::LowerTask(ir, w.objects.size());
      region.tasks.push_back(std::move(tp));
      if (r == 0) bundle.task_irs.push_back(ir);
    }
    w.regions.push_back(std::move(region));
  }

  // Sparta-like priority: keep the reused B structure fast, then A bins,
  // then C outputs — no awareness of per-task balance.
  bundle.sparta_priority.push_back(obj_b);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    bundle.sparta_priority.push_back(obj_a[t]);
  }
  for (int t = 0; t < cfg.num_tasks; ++t) {
    bundle.sparta_priority.push_back(obj_c[t]);
  }
  assert(w.Validate().empty());
  return bundle;
}

}  // namespace merch::apps
