// NWChem-TC workload (paper Table 2, Figure 3): the tensor-contraction
// component of NWChem on a cytosine-like 400x400x58x58 tensor, 24
// OpenMP-thread tasks, five execution phases per contraction (Input
// Processing, Index Search, Accumulation, Writeback, Output Sorting —
// Figure 3's phase list). Integer tiling of the output plane makes edge
// tiles smaller and index lookups skewed ("inequable tensors", Section
// 7.2) — the app-inherent imbalance source.
//
// The builder tiles the real dims with apps/kernels/tensor.h, contracts a
// reduced-scale tensor for validation, and scales to 308.1 GB.
#pragma once

#include "apps/app.h"

namespace merch::apps {

struct NwchemTcConfig {
  int num_tasks = 24;   // paper: 24 OpenMP threads
  int contractions = 5; // contraction sequence = task instances
  std::uint32_t dim_a = 400, dim_b = 400, dim_i = 58, dim_j = 58;
  std::uint64_t target_bytes = static_cast<std::uint64_t>(308.1 * 1073741824.0);
  double busiest_task_accesses = 4e9;
  std::uint64_t seed = 888;
};

AppBundle BuildNwchemTc(const NwchemTcConfig& config = {});

/// The five phase names, Figure 3 order.
const std::vector<std::string>& NwchemPhaseNames();

}  // namespace merch::apps
