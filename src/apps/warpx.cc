#include "apps/warpx.h"

#include <cassert>
#include <cmath>

#include "apps/kernels/pic.h"
#include "analysis/passes.h"

namespace merch::apps {

AppBundle BuildWarpx(const WarpxConfig& cfg) {
  Rng rng(cfg.seed);

  // Run the real PIC briefly: validates the physics path and yields the
  // per-step particle-churn factor used to jitter per-instance sizes.
  PicConfig pic_cfg;
  pic_cfg.cells = cfg.real_cells;
  pic_cfg.particles = cfg.real_particles;
  PicState pic = InitTwoStream(pic_cfg, rng);
  std::vector<double> energies;
  for (int s = 0; s < cfg.steps; ++s) {
    energies.push_back(PicStep(pic, pic_cfg.dt));
  }

  AppBundle bundle;
  sim::Workload& w = bundle.workload;
  w.name = "WarpX";

  // Per-task objects: particle arrays (position+momentum, ~2/3 of memory in
  // PIC) and field tiles E/B/J.
  const double per_task_bytes =
      static_cast<double>(cfg.target_bytes) / cfg.num_tasks;
  const double particle_bytes = per_task_bytes * 0.66;
  const double field_bytes = per_task_bytes * 0.34 / 3.0;

  std::vector<std::size_t> obj_part(cfg.num_tasks), obj_e(cfg.num_tasks),
      obj_b(cfg.num_tasks), obj_j(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_part[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "particles" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(particle_bytes),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 1.0});
  }
  auto add_field = [&](const char* base, std::vector<std::size_t>& out,
                       double reuse) {
    for (int t = 0; t < cfg.num_tasks; ++t) {
      out[t] = w.objects.size();
      w.objects.push_back(sim::ObjectDecl{
          .name = std::string(base) + std::to_string(t),
          .bytes = static_cast<std::uint64_t>(field_bytes),
          .owner = static_cast<TaskId>(t),
          .heat = trace::HeatProfile::Uniform(),
          .reuse_passes = reuse});
    }
  };
  add_field("efield", obj_e, 4.0);
  add_field("bfield", obj_b, 4.0);
  add_field("current", obj_j, 2.0);

  auto build_task_ir = [&](int t, double work) {
    core::TaskIr ir;
    ir.task = static_cast<TaskId>(t);
    // Field gather: interpolate E/B at particle positions — strided reads
    // of the field tiles (CIC interpolation touches every other stagger
    // point), streaming reads of particle positions.
    core::LoopNest gather;
    gather.name = "field_gather";
    gather.trip_count = static_cast<std::uint64_t>(work * 0.35);
    gather.instructions_per_iteration = 10.0;
    gather.branch_fraction = 0.02;
    gather.vector_fraction = 0.5;
    // Particle structs are AoS (x, y, z, ux, uy, uz, w, ...): touching one
    // component walks memory with a constant stride.
    gather.refs.push_back(core::ArrayRef{
        .object = obj_part[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 4},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    gather.refs.push_back(core::ArrayRef{
        .object = obj_e[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 4},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.8});
    gather.refs.push_back(core::ArrayRef{
        .object = obj_b[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 4},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.8});
    ir.loops.push_back(gather);

    // Particle push: streaming update of positions and momenta.
    core::LoopNest push;
    push.name = "particle_push";
    push.trip_count = static_cast<std::uint64_t>(work * 0.30);
    push.instructions_per_iteration = 14.0;
    push.branch_fraction = 0.01;
    push.vector_fraction = 0.6;
    push.refs.push_back(core::ArrayRef{
        .object = obj_part[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 4},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 2.0});
    ir.loops.push_back(push);

    // Current deposition: strided scatter into the J tile.
    core::LoopNest deposit;
    deposit.name = "current_deposit";
    deposit.trip_count = static_cast<std::uint64_t>(work * 0.25);
    deposit.instructions_per_iteration = 8.0;
    deposit.branch_fraction = 0.03;
    deposit.vector_fraction = 0.3;
    deposit.refs.push_back(core::ArrayRef{
        .object = obj_part[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 4},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    deposit.refs.push_back(core::ArrayRef{
        .object = obj_j[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 2},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(deposit);

    // Field solve: 5-point-style stencil sweep over the tile.
    core::LoopNest solve;
    solve.name = "field_solve";
    solve.trip_count = static_cast<std::uint64_t>(work * 0.10);
    solve.instructions_per_iteration = 9.0;
    solve.branch_fraction = 0.01;
    solve.vector_fraction = 0.55;
    solve.refs.push_back(core::ArrayRef{
        .object = obj_e[t],
        .subscript = {.kind = core::Subscript::Kind::kNeighborhood,
                      .offsets = {-1, 0, 1}},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    solve.refs.push_back(core::ArrayRef{
        .object = obj_j[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(solve);
    return ir;
  };

  for (int r = 0; r < cfg.steps; ++r) {
    sim::Region region;
    region.name = "step_" + std::to_string(r);
    region.active_bytes.assign(w.objects.size(), 0);
    for (int t = 0; t < cfg.num_tasks; ++t) {
      // Mild per-step drift (+-3%): particle load shifts between tiles as
      // the beams stream — real PIC energy exchange scaled into a size
      // jitter.
      const double drift =
          1.0 + 0.03 * std::sin(0.7 * (r + 1) * (t + 1) +
                                energies[static_cast<std::size_t>(r)] * 0.01);
      region.active_bytes[obj_part[t]] = static_cast<std::uint64_t>(
          static_cast<double>(w.objects[obj_part[t]].bytes) *
          std::min(1.0, drift));
      region.active_bytes[obj_e[t]] = w.objects[obj_e[t]].bytes;
      region.active_bytes[obj_b[t]] = w.objects[obj_b[t]].bytes;
      region.active_bytes[obj_j[t]] = w.objects[obj_j[t]].bytes;
      const core::TaskIr ir = build_task_ir(t, cfg.task_accesses * drift);
      sim::TaskProgram tp;
      tp.task = static_cast<TaskId>(t);
      tp.kernels = analysis::LowerTask(ir, w.objects.size());
      region.tasks.push_back(std::move(tp));
      if (r == 0) bundle.task_irs.push_back(ir);
    }
    w.regions.push_back(std::move(region));
  }

  // WarpX-PM lifetime knowledge (manual analysis): field tiles are
  // re-swept several times per step (gather + solve) and fit in DRAM, so
  // they go first — E, then J (deposit->solve lifetime), then B, and only
  // then the huge single-sweep particle arrays take whatever DRAM is left.
  std::vector<std::size_t> priority;
  for (int t = 0; t < cfg.num_tasks; ++t) priority.push_back(obj_e[t]);
  for (int t = 0; t < cfg.num_tasks; ++t) priority.push_back(obj_j[t]);
  for (int t = 0; t < cfg.num_tasks; ++t) priority.push_back(obj_b[t]);
  for (int t = 0; t < cfg.num_tasks; ++t) priority.push_back(obj_part[t]);
  bundle.lifetime_priority.assign(cfg.steps, priority);

  assert(w.Validate().empty());
  return bundle;
}

}  // namespace merch::apps
