// Dense 4-D tensor contraction — the real algorithm behind the NWChem-TC
// workload (paper Table 2: the tensor-contraction component of NWChem on a
// cytosine-like 400x400x58x58 tensor).
//
// C[a,b] += sum_{i,j} A[a,b,i,j] * B[i,j], executed tile-by-tile; the
// five NWChem-TC execution phases (Figure 3: Input Processing, Index
// Search, Accumulation, Writeback, Output Sorting) map onto the tiled
// pipeline. The workload builder measures per-tile work to derive task
// imbalance.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace merch::apps {

struct Tensor4 {
  std::uint32_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  std::vector<double> data;

  std::size_t index(std::uint32_t a, std::uint32_t b, std::uint32_t i,
                    std::uint32_t j) const {
    return ((static_cast<std::size_t>(a) * d1 + b) * d2 + i) * d3 + j;
  }
  double at(std::uint32_t a, std::uint32_t b, std::uint32_t i,
            std::uint32_t j) const {
    return data[index(a, b, i, j)];
  }
  static Tensor4 Random(std::uint32_t d0, std::uint32_t d1, std::uint32_t d2,
                        std::uint32_t d3, Rng& rng);
  std::uint64_t bytes() const { return data.size() * 8; }
};

/// One task's tile of the (d0 x d1) output plane.
struct TensorTile {
  std::uint32_t a_begin = 0, a_end = 0;
  std::uint32_t b_begin = 0, b_end = 0;
  std::uint64_t elements() const {
    return static_cast<std::uint64_t>(a_end - a_begin) * (b_end - b_begin);
  }
};

/// Partition the output plane into `num_tasks` tiles. Remainders make
/// edge tiles smaller — the integer-tiling imbalance real NWChem-TC tiling
/// exhibits ("inequable tensors", Section 7.2).
std::vector<TensorTile> PartitionTiles(std::uint32_t d0, std::uint32_t d1,
                                       std::uint32_t num_tasks);

/// Contract one tile: C[a,b] = sum_{i,j} A[a,b,i,j] * M[i,j]. Returns the
/// tile's flop count.
std::uint64_t ContractTile(const Tensor4& a, const std::vector<double>& m,
                           const TensorTile& tile, std::vector<double>* c_out);

}  // namespace merch::apps
