#include "apps/kernels/tensor.h"

#include <cassert>
#include <cmath>

namespace merch::apps {

Tensor4 Tensor4::Random(std::uint32_t d0, std::uint32_t d1, std::uint32_t d2,
                        std::uint32_t d3, Rng& rng) {
  Tensor4 t;
  t.d0 = d0;
  t.d1 = d1;
  t.d2 = d2;
  t.d3 = d3;
  t.data.resize(static_cast<std::size_t>(d0) * d1 * d2 * d3);
  for (double& v : t.data) v = rng.NextDoubleInRange(-1.0, 1.0);
  return t;
}

std::vector<TensorTile> PartitionTiles(std::uint32_t d0, std::uint32_t d1,
                                       std::uint32_t num_tasks) {
  // Near-square process grid: p0 x p1 >= num_tasks with p0*p1 minimal.
  std::uint32_t p0 = 1;
  while (p0 * p0 < num_tasks) ++p0;
  while (num_tasks % p0 != 0 && p0 > 1) --p0;
  const std::uint32_t p1 = num_tasks / p0;

  const std::uint32_t tile0 = (d0 + p0 - 1) / p0;
  const std::uint32_t tile1 = (d1 + p1 - 1) / p1;
  std::vector<TensorTile> tiles;
  tiles.reserve(num_tasks);
  for (std::uint32_t i = 0; i < p0; ++i) {
    for (std::uint32_t j = 0; j < p1; ++j) {
      TensorTile t;
      t.a_begin = std::min(i * tile0, d0);
      t.a_end = std::min((i + 1) * tile0, d0);
      t.b_begin = std::min(j * tile1, d1);
      t.b_end = std::min((j + 1) * tile1, d1);
      tiles.push_back(t);
    }
  }
  return tiles;
}

std::uint64_t ContractTile(const Tensor4& a, const std::vector<double>& m,
                           const TensorTile& tile, std::vector<double>* c_out) {
  assert(m.size() == static_cast<std::size_t>(a.d2) * a.d3);
  std::uint64_t flops = 0;
  if (c_out != nullptr) c_out->assign(tile.elements(), 0.0);
  std::size_t out = 0;
  for (std::uint32_t ai = tile.a_begin; ai < tile.a_end; ++ai) {
    for (std::uint32_t bi = tile.b_begin; bi < tile.b_end; ++bi) {
      double acc = 0;
      const std::size_t base = a.index(ai, bi, 0, 0);
      for (std::size_t ij = 0; ij < m.size(); ++ij) {
        acc += a.data[base + ij] * m[ij];
      }
      flops += 2 * m.size();
      if (c_out != nullptr) (*c_out)[out++] = acc;
    }
  }
  return flops;
}

}  // namespace merch::apps
