// Compressed-sparse-row matrices, Gustavson SpGEMM, and level-synchronous
// BFS — the real algorithms behind the SpGEMM and BFS workloads (paper
// Table 2: Ginkgo-derived SpGEMM on GAP-kron, BFS on com-Orkut).
//
// These run for real at reduced scale; the workload builders measure their
// per-task work distributions (nnz per row bin, edges per partition) and
// scale the footprints to the paper's sizes. The examples and tests also
// exercise them directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace merch::apps {

struct CsrMatrix {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint64_t> row_ptr;  // rows + 1
  std::vector<std::uint32_t> col_idx;  // nnz
  std::vector<double> values;          // nnz

  std::uint64_t nnz() const { return col_idx.size(); }
  /// Bytes of the CSR arrays (what the application would allocate).
  std::uint64_t bytes() const {
    return row_ptr.size() * 8 + col_idx.size() * 4 + values.size() * 8;
  }
};

/// RMAT/Kronecker-style power-law sparse matrix (the GAP-kron and
/// com-Orkut stand-in): `rows` x `rows`, ~`avg_degree` nonzeros per row,
/// degree skew controlled by `skew` (Zipf exponent over columns).
CsrMatrix GenerateKronMatrix(std::uint32_t rows, double avg_degree,
                             double skew, Rng& rng);

/// Gustavson symbolic phase: nnz of each row of C = A * B.
std::vector<std::uint64_t> SpGemmSymbolic(const CsrMatrix& a,
                                          const CsrMatrix& b);

/// Gustavson numeric phase: C = A * B.
CsrMatrix SpGemmNumeric(const CsrMatrix& a, const CsrMatrix& b);

/// FLOP count of row range [row_begin, row_end) of A*B: sum over a(i,k) of
/// nnz(B row k). This is the per-bin work measure Ginkgo's binning uses.
std::uint64_t SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b,
                          std::uint32_t row_begin, std::uint32_t row_end);

/// Level-synchronous BFS from `source`; returns the level of every vertex
/// (UINT32_MAX if unreachable) and, via `edges_relaxed`, the number of
/// edges inspected per vertex-partition (partitions = contiguous vertex
/// ranges of size ceil(n/num_partitions)). `max_depth` bounds the
/// traversal (k-hop neighborhood queries); 0 = unbounded.
std::vector<std::uint32_t> BfsLevels(const CsrMatrix& graph,
                                     std::uint32_t source,
                                     std::uint32_t num_partitions,
                                     std::vector<std::uint64_t>* edges_relaxed,
                                     std::uint32_t max_depth = 0);

}  // namespace merch::apps
