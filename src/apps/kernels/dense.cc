#include "apps/kernels/dense.h"

#include <cassert>
#include <cmath>

namespace merch::apps {

DenseMatrix DenseMatrix::Zero(std::uint32_t rows, std::uint32_t cols) {
  DenseMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.data.assign(static_cast<std::size_t>(rows) * cols, 0.0);
  return m;
}

DenseMatrix DenseMatrix::Random(std::uint32_t rows, std::uint32_t cols,
                                Rng& rng) {
  DenseMatrix m = Zero(rows, cols);
  for (double& v : m.data) v = rng.NextDoubleInRange(-1.0, 1.0);
  return m;
}

DenseMatrix DenseMatrix::RandomSymmetric(std::uint32_t n, Rng& rng) {
  DenseMatrix m = Zero(n, n);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t r = 0; r <= c; ++r) {
      const double v = rng.NextDoubleInRange(-1.0, 1.0);
      m.at(r, c) = v;
      m.at(c, r) = v;
    }
    m.at(c, c) += static_cast<double>(n) * 0.1 * rng.NextDoubleInRange(0.5, 1.5);
  }
  return m;
}

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols == b.rows);
  DenseMatrix c = DenseMatrix::Zero(a.rows, b.cols);
  for (std::uint32_t j = 0; j < b.cols; ++j) {
    for (std::uint32_t k = 0; k < a.cols; ++k) {
      const double bkj = b.at(k, j);
      if (bkj == 0.0) continue;
      for (std::uint32_t i = 0; i < a.rows; ++i) {
        c.at(i, j) += a.at(i, k) * bkj;
      }
    }
  }
  return c;
}

std::vector<double> MatVec(const DenseMatrix& a, const std::vector<double>& x) {
  assert(a.cols == x.size());
  std::vector<double> y(a.rows, 0.0);
  for (std::uint32_t c = 0; c < a.cols; ++c) {
    const double xc = x[c];
    for (std::uint32_t r = 0; r < a.rows; ++r) {
      y[r] += a.at(r, c) * xc;
    }
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& x) { return std::sqrt(Dot(x, x)); }

DavidsonResult DavidsonSolve(const DenseMatrix& a, double tol,
                             int max_iterations) {
  assert(a.rows == a.cols);
  const std::uint32_t n = a.rows;
  DavidsonResult result;
  std::vector<double> v(n, 0.0);
  v[0] = 1.0;
  double lambda = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    result.iterations = it + 1;
    std::vector<double> av = MatVec(a, v);
    lambda = Dot(v, av);
    // Residual r = A v - lambda v.
    double res_norm = 0;
    std::vector<double> r(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      r[i] = av[i] - lambda * v[i];
      res_norm += r[i] * r[i];
    }
    res_norm = std::sqrt(res_norm);
    if (res_norm < tol * std::abs(lambda)) break;
    // Davidson correction with diagonal preconditioner, then re-normalise
    // (single-vector variant: preconditioned power step).
    for (std::uint32_t i = 0; i < n; ++i) {
      const double denom = a.at(i, i) - lambda;
      v[i] += std::abs(denom) > 1e-8 ? -r[i] / denom : -r[i];
    }
    const double norm = Norm2(v);
    for (double& x : v) x /= norm;
  }
  result.eigenvalue = lambda;
  result.eigenvector = std::move(v);
  return result;
}

}  // namespace merch::apps
