#include "apps/kernels/csr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace merch::apps {

CsrMatrix GenerateKronMatrix(std::uint32_t rows, double avg_degree,
                             double skew, Rng& rng) {
  assert(rows > 0);
  CsrMatrix m;
  m.rows = rows;
  m.cols = rows;
  m.row_ptr.resize(rows + 1, 0);

  // Power-law degrees: degree of row r proportional to Zipf over a random
  // permutation of ranks (so hubs are spread through the index space, as in
  // kron generators after relabeling).
  ZipfSampler zipf(rows, skew);
  const auto rank_of = rng.Permutation(rows);
  std::vector<std::uint32_t> degree(rows);
  // Normalise so the average degree matches.
  double pmf_sum = 0;
  for (std::uint32_t r = 0; r < rows; ++r) pmf_sum += zipf.Pmf(rank_of[r]);
  const double scale =
      avg_degree * static_cast<double>(rows) / std::max(pmf_sum, 1e-300);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const double want = zipf.Pmf(rank_of[r]) * scale;
    degree[r] = static_cast<std::uint32_t>(want) +
                (rng.NextDouble() < want - std::floor(want) ? 1 : 0);
    degree[r] = std::min(degree[r], rows);
  }

  std::uint64_t nnz = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    m.row_ptr[r] = nnz;
    nnz += degree[r];
  }
  m.row_ptr[rows] = nnz;
  m.col_idx.resize(nnz);
  m.values.resize(nnz);

  // Column targets also follow the Zipf (hubs receive edges too).
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint64_t begin = m.row_ptr[r];
    for (std::uint32_t k = 0; k < degree[r]; ++k) {
      const auto rank = static_cast<std::uint32_t>(zipf.Sample(rng));
      // Invert the permutation cheaply: map rank back through a hash-like
      // scramble (exact inversion is unnecessary for structure).
      m.col_idx[begin + k] =
          static_cast<std::uint32_t>(rank_of[rank % rows]);
      m.values[begin + k] = rng.NextDoubleInRange(-1.0, 1.0);
    }
    // Sort and dedup within the row for valid CSR.
    auto* cb = m.col_idx.data() + begin;
    std::sort(cb, cb + degree[r]);
  }
  return m;
}

std::vector<std::uint64_t> SpGemmSymbolic(const CsrMatrix& a,
                                          const CsrMatrix& b) {
  assert(a.cols == b.rows);
  std::vector<std::uint64_t> row_nnz(a.rows, 0);
  std::vector<std::uint32_t> marker(b.cols,
                                    std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    std::uint64_t count = 0;
    for (std::uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const std::uint32_t col = a.col_idx[k];
      for (std::uint64_t j = b.row_ptr[col]; j < b.row_ptr[col + 1]; ++j) {
        if (marker[b.col_idx[j]] != i) {
          marker[b.col_idx[j]] = i;
          ++count;
        }
      }
    }
    row_nnz[i] = count;
  }
  return row_nnz;
}

CsrMatrix SpGemmNumeric(const CsrMatrix& a, const CsrMatrix& b) {
  assert(a.cols == b.rows);
  const auto row_nnz = SpGemmSymbolic(a, b);
  CsrMatrix c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.resize(a.rows + 1, 0);
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    c.row_ptr[i + 1] = c.row_ptr[i] + row_nnz[i];
  }
  c.col_idx.resize(c.row_ptr[a.rows]);
  c.values.resize(c.row_ptr[a.rows]);

  std::vector<double> accum(b.cols, 0.0);
  std::vector<std::uint32_t> marker(b.cols,
                                    std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint32_t> cols_here;
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    cols_here.clear();
    for (std::uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const std::uint32_t col = a.col_idx[k];
      const double av = a.values[k];
      for (std::uint64_t j = b.row_ptr[col]; j < b.row_ptr[col + 1]; ++j) {
        const std::uint32_t cc = b.col_idx[j];
        if (marker[cc] != i) {
          marker[cc] = i;
          accum[cc] = 0.0;
          cols_here.push_back(cc);
        }
        accum[cc] += av * b.values[j];
      }
    }
    std::sort(cols_here.begin(), cols_here.end());
    std::uint64_t out = c.row_ptr[i];
    for (const std::uint32_t cc : cols_here) {
      c.col_idx[out] = cc;
      c.values[out] = accum[cc];
      ++out;
    }
  }
  return c;
}

std::uint64_t SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b,
                          std::uint32_t row_begin, std::uint32_t row_end) {
  std::uint64_t flops = 0;
  for (std::uint32_t i = row_begin; i < row_end && i < a.rows; ++i) {
    for (std::uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const std::uint32_t col = a.col_idx[k];
      flops += b.row_ptr[col + 1] - b.row_ptr[col];
    }
  }
  return flops;
}

std::vector<std::uint32_t> BfsLevels(const CsrMatrix& graph,
                                     std::uint32_t source,
                                     std::uint32_t num_partitions,
                                     std::vector<std::uint64_t>* edges_relaxed,
                                     std::uint32_t max_depth) {
  const std::uint32_t n = graph.rows;
  assert(source < n);
  const std::uint32_t part_size = (n + num_partitions - 1) / num_partitions;
  if (edges_relaxed != nullptr) {
    edges_relaxed->assign(num_partitions, 0);
  }
  std::vector<std::uint32_t> level(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint32_t> frontier = {source};
  level[source] = 0;
  std::uint32_t depth = 0;
  std::vector<std::uint32_t> next;
  while (!frontier.empty()) {
    if (max_depth > 0 && depth >= max_depth) break;
    next.clear();
    for (const std::uint32_t u : frontier) {
      if (edges_relaxed != nullptr) {
        (*edges_relaxed)[u / part_size] +=
            graph.row_ptr[u + 1] - graph.row_ptr[u];
      }
      for (std::uint64_t k = graph.row_ptr[u]; k < graph.row_ptr[u + 1]; ++k) {
        const std::uint32_t v = graph.col_idx[k];
        if (level[v] == std::numeric_limits<std::uint32_t>::max()) {
          level[v] = depth + 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return level;
}

}  // namespace merch::apps
