// Small dense linear algebra used by the DMRG mini-app: column-major
// matrices, GEMM, Gram-Schmidt, and a Davidson-style dominant-eigenpair
// iteration (the paper's DMRG spends its time in a Davidson solver,
// Figure 1.a line S2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace merch::apps {

struct DenseMatrix {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<double> data;  // column major

  double& at(std::uint32_t r, std::uint32_t c) {
    return data[static_cast<std::size_t>(c) * rows + r];
  }
  double at(std::uint32_t r, std::uint32_t c) const {
    return data[static_cast<std::size_t>(c) * rows + r];
  }
  static DenseMatrix Zero(std::uint32_t rows, std::uint32_t cols);
  static DenseMatrix Random(std::uint32_t rows, std::uint32_t cols, Rng& rng);
  /// Symmetric random matrix with dominant diagonal (well-conditioned for
  /// eigen iteration).
  static DenseMatrix RandomSymmetric(std::uint32_t n, Rng& rng);
};

/// C = A * B.
DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x.
std::vector<double> MatVec(const DenseMatrix& a, const std::vector<double>& x);

double Dot(const std::vector<double>& a, const std::vector<double>& b);
double Norm2(const std::vector<double>& x);

struct DavidsonResult {
  double eigenvalue = 0;
  std::vector<double> eigenvector;
  int iterations = 0;
};

/// Davidson-style dominant eigenpair solve of symmetric A (diagonal-
/// preconditioned subspace iteration). Iteration count is returned so the
/// workload builder can translate convergence behaviour into work.
DavidsonResult DavidsonSolve(const DenseMatrix& a, double tol = 1e-8,
                             int max_iterations = 200);

}  // namespace merch::apps
