#include "apps/kernels/pic.h"

#include <cassert>
#include <cmath>

namespace merch::apps {
namespace {

/// Cloud-in-cell weights for a position.
void CicWeights(double x, double dx, std::uint32_t cells, std::uint32_t* i0,
                std::uint32_t* i1, double* w0, double* w1) {
  const double xi = x / dx;
  const auto cell = static_cast<std::uint32_t>(xi) % cells;
  const double frac = xi - std::floor(xi);
  *i0 = cell;
  *i1 = (cell + 1) % cells;
  *w0 = 1.0 - frac;
  *w1 = frac;
}

}  // namespace

PicState InitTwoStream(const PicConfig& config, Rng& rng) {
  PicState s;
  s.cells = config.cells;
  s.dx = 1.0;
  s.position.resize(config.particles);
  s.velocity.resize(config.particles);
  s.efield.assign(config.cells, 0.0);
  s.density.assign(config.cells, 0.0);
  const double length = static_cast<double>(config.cells) * s.dx;
  for (std::uint32_t p = 0; p < config.particles; ++p) {
    s.position[p] = rng.NextDoubleInRange(0.0, length);
    const double beam = (p % 2 == 0) ? config.beam_velocity
                                     : -config.beam_velocity;
    s.velocity[p] = beam + rng.NextGaussian(0.0, config.thermal_spread);
  }
  return s;
}

double PicStep(PicState& s, double dt) {
  const std::uint32_t cells = s.cells;
  const double length = static_cast<double>(cells) * s.dx;
  const double weight = static_cast<double>(cells) /
                        static_cast<double>(s.position.size());

  // Deposit charge density (scatter).
  for (double& d : s.density) d = 0.0;
  for (std::size_t p = 0; p < s.position.size(); ++p) {
    std::uint32_t i0, i1;
    double w0, w1;
    CicWeights(s.position[p], s.dx, cells, &i0, &i1, &w0, &w1);
    s.density[i0] += w0 * weight;
    s.density[i1] += w1 * weight;
  }

  // Field solve: E from Gauss's law by cumulative sum of (rho - 1)
  // (uniform neutralising background), zero-mean gauge.
  double acc = 0.0, mean = 0.0;
  for (std::uint32_t c = 0; c < cells; ++c) {
    acc += (s.density[c] - 1.0) * s.dx;
    s.efield[c] = acc;
    mean += acc;
  }
  mean /= static_cast<double>(cells);
  for (double& e : s.efield) e -= mean;

  // Gather + push (leapfrog).
  for (std::size_t p = 0; p < s.position.size(); ++p) {
    std::uint32_t i0, i1;
    double w0, w1;
    CicWeights(s.position[p], s.dx, cells, &i0, &i1, &w0, &w1);
    const double e = w0 * s.efield[i0] + w1 * s.efield[i1];
    s.velocity[p] -= e * dt;  // electrons: qe/me = -1
    s.position[p] += s.velocity[p] * dt;
    // Periodic wrap.
    while (s.position[p] < 0) s.position[p] += length;
    while (s.position[p] >= length) s.position[p] -= length;
  }
  return PicEnergy(s);
}

double PicEnergy(const PicState& s) {
  double kinetic = 0;
  for (const double v : s.velocity) kinetic += 0.5 * v * v;
  kinetic /= static_cast<double>(s.velocity.size());
  double field = 0;
  for (const double e : s.efield) field += 0.5 * e * e;
  field /= static_cast<double>(s.efield.size());
  return kinetic + field;
}

}  // namespace merch::apps
