// Miniature 1D electrostatic particle-in-cell (PIC) code — the real
// algorithm behind the WarpX workload (paper Table 2: ECP-WarpX
// beam-plasma simulation).
//
// Per step: gather fields at particle positions (strided interpolation),
// push particles (stream), deposit charge/current onto the grid (scatter),
// solve fields with a stencil sweep. The per-kernel work counts drive the
// workload builder; the code itself is exercised by tests and the
// plasma-simulation example.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace merch::apps {

struct PicState {
  std::uint32_t cells = 0;
  double dx = 1.0;
  std::vector<double> position;   // per particle, in [0, cells*dx)
  std::vector<double> velocity;   // per particle
  std::vector<double> efield;     // per cell
  std::vector<double> density;    // per cell
};

struct PicConfig {
  std::uint32_t cells = 1024;
  std::uint32_t particles = 1 << 16;
  double dt = 0.05;
  double beam_velocity = 0.8;   // two-stream setup: +/- beam_velocity
  double thermal_spread = 0.05;
};

PicState InitTwoStream(const PicConfig& config, Rng& rng);

/// One PIC step: deposit -> field solve -> gather+push. Returns total
/// kinetic + field energy (conserved to a few percent — the correctness
/// check).
double PicStep(PicState& state, double dt);

/// Total energy (kinetic + field) of the current state.
double PicEnergy(const PicState& state);

}  // namespace merch::apps
