#include "apps/nwchem_tc.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/kernels/tensor.h"
#include "analysis/passes.h"

namespace merch::apps {

const std::vector<std::string>& NwchemPhaseNames() {
  static const std::vector<std::string> kNames = {
      "input_processing", "index_search", "accumulation", "writeback",
      "output_sorting"};
  return kNames;
}

AppBundle BuildNwchemTc(const NwchemTcConfig& cfg) {
  Rng rng(cfg.seed);

  // Real tiling of the output plane: tile areas differ at the edges.
  const auto tiles = PartitionTiles(cfg.dim_a, cfg.dim_b,
                                    static_cast<std::uint32_t>(cfg.num_tasks));
  assert(tiles.size() >= static_cast<std::size_t>(cfg.num_tasks));

  // Per-task relative work: tile elements x inner extent, plus a skewed
  // index-search cost (symmetry-unique index blocks cluster unevenly).
  const double inner = static_cast<double>(cfg.dim_i) * cfg.dim_j;
  std::vector<double> tile_work(cfg.num_tasks);
  std::vector<double> index_skew(cfg.num_tasks);
  double max_work = 1;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    tile_work[t] = static_cast<double>(tiles[t].elements()) * inner;
    index_skew[t] = 0.6 + 0.8 * rng.NextDouble();
    max_work = std::max(max_work, tile_work[t] * (1.0 + 0.4 * index_skew[t]));
  }

  AppBundle bundle;
  sim::Workload& w = bundle.workload;
  w.name = "NWChem-TC";

  // Bytes: the 4-D input tensor slices dominate (~75%); index maps and
  // output tiles share the rest.
  double area_sum = 0;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    area_sum += static_cast<double>(tiles[t].elements());
  }
  const double a_total = static_cast<double>(cfg.target_bytes) * 0.75;
  const double c_total = static_cast<double>(cfg.target_bytes) * 0.15;
  const double idx_total = static_cast<double>(cfg.target_bytes) * 0.10;

  std::vector<std::size_t> obj_a(cfg.num_tasks), obj_c(cfg.num_tasks);
  const std::size_t obj_idx = 0;
  w.objects.push_back(sim::ObjectDecl{
      .name = "index_map",
      .bytes = static_cast<std::uint64_t>(idx_total),
      .owner = kInvalidTask,
      .heat = trace::HeatProfile::Zipf(0.7),
      .reuse_passes = 2.0});
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_a[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "A_slice" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(
            a_total * static_cast<double>(tiles[t].elements()) / area_sum),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 1.0});
  }
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_c[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "C_tile" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(
            c_total * static_cast<double>(tiles[t].elements()) / area_sum),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 2.0});
  }

  const double work_scale = cfg.busiest_task_accesses / max_work;

  auto build_task_ir = [&](int t, double contraction_scale) {
    const double work = tile_work[t] * work_scale * contraction_scale;
    const double idx_work = work * 0.3 * index_skew[t];

    core::TaskIr ir;
    ir.task = static_cast<TaskId>(t);

    // Phase 1 — Input Processing: stream the A slice in (unpack).
    core::LoopNest input;
    input.name = "input_processing";
    input.trip_count = static_cast<std::uint64_t>(work * 0.20);
    input.instructions_per_iteration = 4.0;
    input.vector_fraction = 0.4;
    input.refs.push_back(core::ArrayRef{
        .object = obj_a[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.2});
    ir.loops.push_back(input);

    // Phase 2 — Index Search: gather through the symmetry index map.
    core::LoopNest search;
    search.name = "index_search";
    search.trip_count = static_cast<std::uint64_t>(idx_work);
    search.instructions_per_iteration = 6.0;
    search.branch_fraction = 0.25;
    search.refs.push_back(core::ArrayRef{
        .object = obj_idx,
        .subscript = {.kind = core::Subscript::Kind::kOpaque},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(search);

    // Phase 3 — Accumulation: the contraction loop; streams A, gathers
    // the block offsets.
    core::LoopNest accum;
    accum.name = "accumulation";
    accum.trip_count = static_cast<std::uint64_t>(work * 0.35);
    accum.instructions_per_iteration = 10.0;
    accum.vector_fraction = 0.7;
    accum.refs.push_back(core::ArrayRef{
        .object = obj_a[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    accum.refs.push_back(core::ArrayRef{
        .object = obj_idx,
        .subscript = {.kind = core::Subscript::Kind::kIndirect,
                      .index_object = obj_a[t]},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.2});
    ir.loops.push_back(accum);

    // Phase 4 — Writeback: streaming writes of the C tile.
    core::LoopNest writeback;
    writeback.name = "writeback";
    writeback.trip_count = static_cast<std::uint64_t>(work * 0.15);
    writeback.instructions_per_iteration = 3.0;
    writeback.vector_fraction = 0.4;
    writeback.refs.push_back(core::ArrayRef{
        .object = obj_c[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.5});
    ir.loops.push_back(writeback);

    // Phase 5 — Output Sorting: permute the tile into NWChem's canonical
    // index order — strided rewrites.
    core::LoopNest sorting;
    sorting.name = "output_sorting";
    sorting.trip_count = static_cast<std::uint64_t>(work * 0.10);
    sorting.instructions_per_iteration = 5.0;
    sorting.branch_fraction = 0.12;
    sorting.refs.push_back(core::ArrayRef{
        .object = obj_c[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 16},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(sorting);
    return ir;
  };

  for (int r = 0; r < cfg.contractions; ++r) {
    sim::Region region;
    region.name = "contraction_" + std::to_string(r);
    region.active_bytes.assign(w.objects.size(), 0);
    // Successive contractions in the sequence vary in inner extent
    // (+-15%) — the "new input problems" per task instance.
    const double contraction_scale =
        1.0 + 0.15 * std::sin(1.3 * static_cast<double>(r + 1));
    region.active_bytes[obj_idx] = w.objects[obj_idx].bytes;
    for (int t = 0; t < cfg.num_tasks; ++t) {
      region.active_bytes[obj_a[t]] = static_cast<std::uint64_t>(
          static_cast<double>(w.objects[obj_a[t]].bytes) *
          std::min(1.0, contraction_scale));
      region.active_bytes[obj_c[t]] = w.objects[obj_c[t]].bytes;
      const core::TaskIr ir = build_task_ir(t, contraction_scale);
      sim::TaskProgram tp;
      tp.task = static_cast<TaskId>(t);
      tp.kernels = analysis::LowerTask(ir, w.objects.size());
      region.tasks.push_back(std::move(tp));
      if (r == 0) bundle.task_irs.push_back(ir);
    }
    w.regions.push_back(std::move(region));
  }
  assert(w.Validate().empty());
  return bundle;
}

}  // namespace merch::apps
