#include "apps/dmrg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/kernels/dense.h"
#include "analysis/passes.h"

namespace merch::apps {

AppBundle BuildDmrg(const DmrgConfig& cfg) {
  Rng rng(cfg.seed);

  // Block sizes vary across the Hamiltonian partition (boundary blocks are
  // smaller): deterministic +-25% spread.
  std::vector<double> block_scale(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    block_scale[t] = 0.75 + 0.5 * (static_cast<double>(t) + 0.5) /
                                static_cast<double>(cfg.num_tasks);
  }

  // Real Davidson runs on block-size proxies: convergence iterations per
  // block per sweep (harder blocks iterate more — a real imbalance source).
  std::vector<std::vector<int>> iterations(cfg.sweeps,
                                           std::vector<int>(cfg.num_tasks));
  for (int t = 0; t < cfg.num_tasks; ++t) {
    const auto n = static_cast<std::uint32_t>(
        std::max(16.0, cfg.real_block * block_scale[t]));
    for (int s = 0; s < cfg.sweeps; ++s) {
      Rng block_rng(cfg.seed + 100 * t + s);
      const DenseMatrix a = DenseMatrix::RandomSymmetric(n, block_rng);
      iterations[s][t] = DavidsonSolve(a, 1e-6, 64).iterations;
    }
  }

  AppBundle bundle;
  sim::Workload& w = bundle.workload;
  w.name = "DMRG";

  // Bytes: H blocks (static) take ~55%, PSI (grows per sweep) ~45% at its
  // final size.
  double scale_sum = 0;
  for (const double s : block_scale) scale_sum += s;
  const double h_total = static_cast<double>(cfg.target_bytes) * 0.55;
  const double psi_total_final = static_cast<double>(cfg.target_bytes) * 0.45;
  const double psi_final_growth =
      std::pow(cfg.psi_growth, cfg.sweeps - 1);

  std::vector<std::size_t> obj_h(cfg.num_tasks), obj_psi(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_h[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "H_block" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(h_total * block_scale[t] / scale_sum),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 6.0});
  }
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_psi[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "PSI" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(psi_total_final * block_scale[t] /
                                            scale_sum),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Uniform(),
        .reuse_passes = 4.0});
  }

  // Work scale from the busiest (block, sweep-0) pair.
  double max_raw = 1;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    max_raw = std::max(max_raw, block_scale[t] *
                                    static_cast<double>(iterations[0][t]));
  }
  const double work_scale = cfg.busiest_task_accesses / max_raw;

  auto build_task_ir = [&](int t, int sweep) {
    const double psi_size = std::pow(cfg.psi_growth, sweep);
    const double dav_work = block_scale[t] *
                            static_cast<double>(iterations[sweep][t]) *
                            work_scale;
    const double sweep_work = block_scale[t] * psi_size * work_scale * 0.15;

    core::TaskIr ir;
    ir.task = static_cast<TaskId>(t);

    // S1: construct the effective problem — stream over H and PSI.
    core::LoopNest construct;
    construct.name = "construct";
    construct.trip_count = static_cast<std::uint64_t>(sweep_work);
    construct.instructions_per_iteration = 6.0;
    construct.branch_fraction = 0.02;
    construct.vector_fraction = 0.5;
    construct.refs.push_back(core::ArrayRef{
        .object = obj_h[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    construct.refs.push_back(core::ArrayRef{
        .object = obj_psi[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.6});
    ir.loops.push_back(construct);

    // S2: Davidson solve — repeated H*psi products: streaming through H,
    // strided through the multi-vector PSI panel (column-major panel,
    // row-wise traversal).
    core::LoopNest davidson;
    davidson.name = "davidson";
    davidson.trip_count = static_cast<std::uint64_t>(dav_work);
    davidson.instructions_per_iteration = 12.0;
    davidson.branch_fraction = 0.01;
    davidson.vector_fraction = 0.7;
    davidson.refs.push_back(core::ArrayRef{
        .object = obj_h[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    davidson.refs.push_back(core::ArrayRef{
        .object = obj_psi[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 8},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.7});
    ir.loops.push_back(davidson);

    // S3: SVD truncation and PSI update — streaming rewrite of PSI.
    core::LoopNest svd;
    svd.name = "svd_update";
    svd.trip_count = static_cast<std::uint64_t>(sweep_work * 1.2);
    svd.instructions_per_iteration = 9.0;
    svd.branch_fraction = 0.02;
    svd.vector_fraction = 0.6;
    svd.refs.push_back(core::ArrayRef{
        .object = obj_psi[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.5});
    ir.loops.push_back(svd);
    return ir;
  };

  for (int s = 0; s < cfg.sweeps; ++s) {
    sim::Region region;
    region.name = "sweep_" + std::to_string(s);
    region.active_bytes.assign(w.objects.size(), 0);
    const double psi_frac = std::pow(cfg.psi_growth, s) / psi_final_growth;
    for (int t = 0; t < cfg.num_tasks; ++t) {
      region.active_bytes[obj_h[t]] = w.objects[obj_h[t]].bytes;
      region.active_bytes[obj_psi[t]] = static_cast<std::uint64_t>(
          static_cast<double>(w.objects[obj_psi[t]].bytes) *
          std::min(1.0, psi_frac));
      const core::TaskIr ir = build_task_ir(t, s);
      sim::TaskProgram tp;
      tp.task = static_cast<TaskId>(t);
      tp.kernels = analysis::LowerTask(ir, w.objects.size());
      region.tasks.push_back(std::move(tp));
      if (s == 0) bundle.task_irs.push_back(ir);
    }
    w.regions.push_back(std::move(region));
  }
  assert(w.Validate().empty());
  return bundle;
}

}  // namespace merch::apps
