#include "apps/bfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/kernels/csr.h"
#include "analysis/passes.h"

namespace merch::apps {

AppBundle BuildBfs(const BfsConfig& cfg) {
  Rng rng(cfg.seed);

  // Each traversal runs on an updated graph snapshot (a dynamic social
  // graph between analytics passes): edge ownership per partition shifts
  // mildly between instances — the per-instance "new input" of Eq. 1 —
  // while the partition skew (the imbalance source) persists.
  const std::uint32_t part_size =
      (cfg.vertices + cfg.num_tasks - 1) / cfg.num_tasks;
  std::vector<std::uint64_t> part_edges(cfg.num_tasks, 0);
  std::vector<std::vector<std::uint64_t>> relaxed_per_region;
  std::vector<std::vector<std::uint64_t>> part_edges_per_region;
  for (int r = 0; r < cfg.traversals; ++r) {
    Rng snapshot_rng(cfg.seed + 17 * r);
    const CsrMatrix graph = GenerateKronMatrix(
        cfg.vertices, cfg.avg_degree * (1.0 + 0.05 * (r % 3)), cfg.skew,
        snapshot_rng);
    std::vector<std::uint64_t> snapshot_edges(cfg.num_tasks, 0);
    for (std::uint32_t v = 0; v < cfg.vertices; ++v) {
      snapshot_edges[v / part_size] += graph.row_ptr[v + 1] - graph.row_ptr[v];
    }
    for (int t = 0; t < cfg.num_tasks; ++t) {
      part_edges[t] = std::max(part_edges[t], snapshot_edges[t]);
    }
    // Pick a source with nonzero degree.
    std::uint32_t source;
    do {
      source = static_cast<std::uint32_t>(rng.NextBelow(cfg.vertices));
    } while (graph.row_ptr[source + 1] == graph.row_ptr[source]);
    std::vector<std::uint64_t> relaxed;
    BfsLevels(graph, source, cfg.num_tasks, &relaxed);
    relaxed_per_region.push_back(std::move(relaxed));
    part_edges_per_region.push_back(std::move(snapshot_edges));
  }

  // Byte scaling to the paper footprint. Real bytes: adjacency shards
  // (8B offsets amortised + 4B targets ~ 8B/edge), visited/level arrays.
  double real_total = 0;
  for (int t = 0; t < cfg.num_tasks; ++t) {
    real_total += 8.0 * static_cast<double>(part_edges[t]);  // adjacency
    // Per-vertex state: level/parent/visited plus the rank and component
    // labels BFS-based analytics keep per vertex (GAP-style) — a
    // substantial fraction of the adjacency bytes on social graphs.
    real_total += 3.0 * static_cast<double>(part_edges[t]);
  }
  real_total += 8.0 * cfg.vertices;  // frontier queues
  const double byte_scale = static_cast<double>(cfg.target_bytes) / real_total;

  double max_raw = 1;
  for (const auto& relaxed : relaxed_per_region) {
    for (const std::uint64_t e : relaxed) {
      max_raw = std::max(max_raw, static_cast<double>(e));
    }
  }
  const double work_scale = cfg.busiest_task_accesses / (2.0 * max_raw);

  AppBundle bundle;
  sim::Workload& w = bundle.workload;
  w.name = "BFS";

  const std::size_t obj_frontier = 0;  // shared frontier queues
  w.objects.push_back(sim::ObjectDecl{
      .name = "frontier",
      .bytes = static_cast<std::uint64_t>(8.0 * cfg.vertices * byte_scale),
      .owner = kInvalidTask,
      .heat = trace::HeatProfile::Uniform(),
      .reuse_passes = 1.0});
  std::vector<std::size_t> obj_adj(cfg.num_tasks), obj_vis(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_adj[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "adjacency" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(
            8.0 * static_cast<double>(part_edges[t]) * byte_scale),
        .owner = static_cast<TaskId>(t),
        // Hub vertices concentrate accesses on few adjacency pages.
        .heat = trace::HeatProfile::Zipf(0.7),
        .reuse_passes = 1.0});
  }
  for (int t = 0; t < cfg.num_tasks; ++t) {
    obj_vis[t] = w.objects.size();
    w.objects.push_back(sim::ObjectDecl{
        .name = "visited" + std::to_string(t),
        .bytes = static_cast<std::uint64_t>(
            3.0 * static_cast<double>(part_edges[t]) * byte_scale),
        .owner = static_cast<TaskId>(t),
        .heat = trace::HeatProfile::Zipf(0.5),
        .reuse_passes = 3.0});
  }

  auto build_task_ir = [&](int t, const std::vector<std::uint64_t>& relaxed) {
    const double edges =
        std::max(1.0, static_cast<double>(relaxed[t]) * work_scale);
    core::TaskIr ir;
    ir.task = static_cast<TaskId>(t);
    // Frontier expansion: pop frontier (stream), scan adjacency shard
    // (stream over CSR rows), probe visited bitmap of neighbor owners
    // (gather via column index).
    core::LoopNest expand;
    expand.name = "expand";
    expand.trip_count = static_cast<std::uint64_t>(edges);
    expand.instructions_per_iteration = 4.0;
    expand.branch_fraction = 0.20;
    expand.vector_fraction = 0.0;
    expand.refs.push_back(core::ArrayRef{
        .object = obj_frontier,
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1, .offsets = {}, .index_object = SIZE_MAX},
        .is_write = false,
        .element_bytes = 8,
        .accesses_per_iteration = 0.1});
    expand.refs.push_back(core::ArrayRef{
        .object = obj_adj[t],
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1, .offsets = {}, .index_object = SIZE_MAX},
        .is_write = false,
        .element_bytes = 4,
        .accesses_per_iteration = 1.0});
    expand.refs.push_back(core::ArrayRef{
        .object = obj_vis[t],
        .subscript = {.kind = core::Subscript::Kind::kIndirect,
                      .index_object = obj_adj[t]},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(expand);
    // Next-frontier write-out.
    core::LoopNest emit;
    emit.name = "emit_frontier";
    emit.trip_count = static_cast<std::uint64_t>(edges * 0.15);
    emit.instructions_per_iteration = 3.0;
    emit.branch_fraction = 0.1;
    emit.refs.push_back(core::ArrayRef{
        .object = obj_frontier,
        .subscript = {.kind = core::Subscript::Kind::kAffine, .stride = 1, .offsets = {}, .index_object = SIZE_MAX},
        .is_write = true,
        .element_bytes = 8,
        .accesses_per_iteration = 1.0});
    ir.loops.push_back(emit);
    return ir;
  };

  for (int r = 0; r < cfg.traversals; ++r) {
    sim::Region region;
    region.name = "bfs_" + std::to_string(r);
    region.active_bytes.assign(w.objects.size(), 0);
    // Input size proxy: the traversal's touched share of each structure.
    double total_relaxed = 0, total_edges = 0;
    for (int t = 0; t < cfg.num_tasks; ++t) {
      total_relaxed += static_cast<double>(relaxed_per_region[r][t]);
      total_edges += static_cast<double>(part_edges[t]);
    }
    const double coverage = std::min(1.0, total_relaxed / total_edges);
    region.active_bytes[obj_frontier] = static_cast<std::uint64_t>(
        std::max(1.0, 8.0 * cfg.vertices * byte_scale * coverage));
    for (int t = 0; t < cfg.num_tasks; ++t) {
      const double touched =
          std::min<double>(static_cast<double>(relaxed_per_region[r][t]),
                           static_cast<double>(part_edges[t]));
      region.active_bytes[obj_adj[t]] = static_cast<std::uint64_t>(
          std::max(1.0, 8.0 * touched * byte_scale));
      region.active_bytes[obj_vis[t]] = w.objects[obj_vis[t]].bytes;
      const core::TaskIr ir = build_task_ir(t, relaxed_per_region[r]);
      sim::TaskProgram tp;
      tp.task = static_cast<TaskId>(t);
      tp.kernels = analysis::LowerTask(ir, w.objects.size());
      region.tasks.push_back(std::move(tp));
      if (r == 0) bundle.task_irs.push_back(ir);
    }
    w.regions.push_back(std::move(region));
  }
  assert(w.Validate().empty());
  return bundle;
}

}  // namespace merch::apps
