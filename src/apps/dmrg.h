// DMRG workload (paper Table 2, Figure 1.a): density-matrix
// renormalization group on a Hubbard-2D-like model, MPI-style — the
// Hamiltonian is partitioned into blocks, one per MPI-process task; each
// sweep iterates construct-problem / Davidson-solve / SVD-update with a
// global synchronisation per sweep. Task instances share H but see a new
// PSI each sweep (the growing matrix-product state), which is exactly the
// "same task, new input" structure Merchandiser exploits.
//
// The builder runs the real Davidson solver (apps/kernels/dense.h) on
// block-sized proxies to obtain per-block iteration counts, then scales to
// the paper's 1.271 TB.
#pragma once

#include "apps/app.h"

namespace merch::apps {

struct DmrgConfig {
  int num_tasks = 6;     // paper: 6 MPI processes
  int sweeps = 5;        // task instances
  std::uint32_t real_block = 96;  // Davidson proxy matrix size
  std::uint64_t target_bytes = static_cast<std::uint64_t>(1271.0 * 1073741824.0);
  double busiest_task_accesses = 5e9;
  /// PSI growth per sweep (bond dimension growth until truncation).
  double psi_growth = 1.12;
  std::uint64_t seed = 555;
};

AppBundle BuildDmrg(const DmrgConfig& config = {});

}  // namespace merch::apps
