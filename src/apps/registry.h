// Uniform access to the five paper applications (Table 2) at paper scale
// or an arbitrary downscale (tests use ~1/64 footprints).
#pragma once

#include <string>
#include <vector>

#include "apps/app.h"

namespace merch::apps {

/// Names in the paper's Table 2 / Figure 4 order.
const std::vector<std::string>& AppNames();

/// Build one application's bundle. `footprint_scale` scales memory
/// footprints; `work_scale` scales per-task access counts (simulation
/// duration). Scale 1.0 = paper configuration.
AppBundle BuildApp(const std::string& name, double footprint_scale = 1.0,
                   double work_scale = 1.0);

}  // namespace merch::apps
