// SpGEMM workload (paper Table 2, Figure 1.b): general sparse matrix-
// matrix multiplication as in Ginkgo — a main loop of C = A * B products,
// A partitioned into row bins, one OpenMP-thread task per bin, with two
// synchronisation points per product (symbolic NNZ pass, numeric pass).
//
// The builder runs the *real* Gustavson SpGEMM (apps/kernels/csr.h) on a
// GAP-kron-like power-law matrix at reduced scale, measures each bin's
// nnz/flops (the source of the load imbalance: "different distributions of
// non-zero elements", Section 7.2), and scales footprints to the paper's
// 429.3 GB.
#pragma once

#include "apps/app.h"

namespace merch::apps {

struct SpGemmConfig {
  int num_tasks = 12;        // paper: 12 OpenMP threads
  int iterations = 5;        // main-loop products = task instances
  std::uint32_t rows = 1u << 15;  // real-measurement scale
  double avg_degree = 16.0;
  double skew = 0.85;        // kron power-law exponent
  std::uint64_t target_bytes = static_cast<std::uint64_t>(429.3 * 1073741824.0);
  /// Program-level accesses of the busiest task per instance (work scale).
  double busiest_task_accesses = 3e9;
  std::uint64_t seed = 1234;
};

AppBundle BuildSpGemm(const SpGemmConfig& config = {});

}  // namespace merch::apps
