// BFS workload (paper Table 2): breadth-first search over a com-Orkut-like
// social graph, vertex-partitioned across 12 OpenMP-thread tasks with a
// barrier per traversal. The paper attributes BFS's inherent imbalance to
// "the uneven graph partitioning approach" — reproduced here by measuring
// the edges each partition relaxes during *real* BFS runs on a power-law
// graph, then scaling to the paper's 731.9 GB footprint.
#pragma once

#include "apps/app.h"

namespace merch::apps {

struct BfsConfig {
  int num_tasks = 12;          // paper: 12 OpenMP threads
  int traversals = 5;          // BFS runs from distinct sources (regions)
  std::uint32_t vertices = 1u << 16;  // real-measurement scale
  double avg_degree = 30.0;    // Orkut-like density
  double skew = 0.9;
  std::uint64_t target_bytes = static_cast<std::uint64_t>(731.9 * 1073741824.0);
  double busiest_task_accesses = 1.2e9;
  std::uint64_t seed = 4321;
};

AppBundle BuildBfs(const BfsConfig& config = {});

}  // namespace merch::apps
