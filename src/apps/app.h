// Common bundle type produced by every application workload builder.
#pragma once

#include <string>
#include <vector>

#include "core/kernel_ir.h"
#include "sim/workload.h"

namespace merch::apps {

struct AppBundle {
  sim::Workload workload;
  /// One kernel-IR per task (the code Spindle would analyse; region-0
  /// shape — the code does not change across task instances).
  std::vector<core::TaskIr> task_irs;
  /// Sparta-like static priority (SpGEMM only): object indices,
  /// most-important first.
  std::vector<std::size_t> sparta_priority;
  /// WarpX-PM-like lifetime priorities (WarpX only): per region.
  std::vector<std::vector<std::size_t>> lifetime_priority;
};

}  // namespace merch::apps
