// Simulated page table: tracks which tier owns each page, per-page access
// counters (the "accessed bit" history that PTE-scan profilers read), and
// per-object residency bookkeeping.
//
// Objects are allocated as contiguous page ranges. Within an object, pages
// are indexed in *heat order*: page 0 receives the most accesses under the
// object's heat profile (src/trace). This canonical ordering loses nothing
// for placement studies (any permutation of page ids would behave
// identically) and makes "migrate the hottest k pages" an O(1) range
// operation for ideal policies while sampling-based policies still probe
// individual pages.
//
// Residency queries are served from an incremental per-object index kept
// in lock-step with every page move:
//   - a rank-order DRAM bitset   -> page_rank_on_dram is O(1)
//   - a Fenwick tree over ranks  -> dram_pages_in_rank_range is O(log n)
//   - sorted contiguous extents  -> ObjectOfPage is O(log #objects)
// The index mirrors physical page tiers exactly (including pages of
// released objects, whose tiers do not change on release), so the probing
// and indexed read paths agree bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "hm/tier.h"

namespace merch::hm {

/// Per-page metadata.
struct PageEntry {
  Tier tier = Tier::kPm;
  /// Accesses recorded since the last epoch reset (profilers read this).
  std::uint64_t epoch_accesses = 0;
  /// Accesses over the whole simulation.
  std::uint64_t total_accesses = 0;
};

/// One registered data object's page range.
struct ObjectExtent {
  ObjectId id = kInvalidObject;
  TaskId owner = kInvalidTask;  // task that predominantly accesses it
  PageId first_page = 0;
  std::uint64_t num_pages = 0;
  std::uint64_t bytes = 0;
};

class PageTable {
 public:
  /// `page_bytes` is the placement granularity. The paper migrates 4 KiB
  /// pages; large simulations use 2 MiB regions to bound metadata (the
  /// ratio of sizes, not the absolute granularity, drives every result).
  PageTable(HmSpec spec, std::uint64_t page_bytes = kHugeRegionBytes);

  /// Allocate `bytes` for an object on `initial` tier (falls back to the
  /// other tier if full; returns nullopt only if both tiers are full).
  std::optional<ObjectId> RegisterObject(std::uint64_t bytes, Tier initial,
                                         TaskId owner = kInvalidTask);

  /// Release an object's pages (WarpX-PM-style lifetime management needs
  /// deallocation). Its ObjectId is not reused.
  void ReleaseObject(ObjectId id);

  std::size_t num_objects() const { return extents_.size(); }
  const ObjectExtent& extent(ObjectId id) const { return extents_[id]; }
  bool is_live(ObjectId id) const { return live_[id]; }

  std::uint64_t page_bytes() const { return page_bytes_; }
  const HmSpec& spec() const { return spec_; }

  /// Tier of page `p`, served from the packed per-page record so random
  /// probes (profiler sampling, sweep windows) stay cache-resident; always
  /// equal to page(p).tier. Tier and owner share a cache line on purpose:
  /// a profiler sample reads both, and the strided PageEntry array would
  /// cost two misses where this costs one.
  Tier page_tier(PageId p) const { return page_ref_[p].tier; }
  const PageEntry& page(PageId p) const { return pages_[p]; }
  std::uint64_t num_pages() const { return pages_.size(); }

  /// Which live object owns page `p`. O(1) via the packed per-page record
  /// (inline: profiler samples hit this tens of millions of times per
  /// run); the legacy cost profile keeps the pre-index linear extent scan.
  std::optional<ObjectId> ObjectOfPage(PageId p) const {
    if (legacy_scan_) return ObjectOfPageLegacy(p);
    if (p >= page_ref_.size()) return std::nullopt;
    const ObjectId id = page_ref_[p].owner;
    if (!live_[id]) return std::nullopt;
    return id;
  }

  /// Bytes currently resident on `t`.
  std::uint64_t tier_used_bytes(Tier t) const {
    return used_pages_[static_cast<std::size_t>(t)] * page_bytes_;
  }
  std::uint64_t tier_free_bytes(Tier t) const {
    const std::uint64_t cap = spec_[t].capacity_bytes;
    const std::uint64_t used = tier_used_bytes(t);
    return cap > used ? cap - used : 0;
  }
  std::uint64_t tier_free_pages(Tier t) const {
    return tier_free_bytes(t) / page_bytes_;
  }

  /// Number of an object's pages resident on `t` (O(1); zero for a
  /// released object regardless of where its stale pages sit).
  std::uint64_t object_pages_on(ObjectId id, Tier t) const;

  /// Whether the page at heat rank `rank` of `id` is on DRAM. O(1) bitset
  /// probe; mirrors page_tier(extent.first_page + rank) exactly.
  bool page_rank_on_dram(ObjectId id, std::uint64_t rank) const {
    const std::vector<std::uint64_t>& bits = residency_[id].bits;
    return ((bits[rank >> 6] >> (rank & 63)) & 1u) != 0;
  }

  /// Raw rank-order DRAM bitset of `id` (bit = 1 means on DRAM). Lets
  /// batched probe loops (the engine's SIMD sweep windows) hoist the
  /// per-object indirection out of their inner loop; each word read agrees
  /// with page_rank_on_dram bit for bit.
  std::span<const std::uint64_t> residency_bits(ObjectId id) const {
    return residency_[id].bits;
  }

  /// DRAM pages among heat ranks [r0, r1) of `id`. O(log num_pages) via
  /// the per-object Fenwick tree.
  std::uint64_t dram_pages_in_rank_range(ObjectId id, std::uint64_t r0,
                                         std::uint64_t r1) const;

  /// Move one page to `to`. Returns false if `to` is at capacity.
  bool MovePage(PageId p, Tier to);

  /// Move the first `k` not-yet-on-`to` pages of the object, scanning from
  /// the hot end (rank 0). Returns pages actually moved.
  std::uint64_t MoveHottest(ObjectId id, std::uint64_t k, Tier to);

  /// Move the last `k` pages of the object that are on `from` (cold end)
  /// to the other tier. Returns pages actually moved.
  std::uint64_t EvictColdest(ObjectId id, std::uint64_t k, Tier from);

  /// Record `count` accesses against page `p` (profilers see these).
  void RecordAccesses(PageId p, std::uint64_t count);

  /// Zero all epoch counters (start of a profiling interval).
  void ResetEpochCounters();

  /// Sum of epoch accesses over all pages (sanity checks / tests).
  std::uint64_t TotalEpochAccesses() const;

  /// Observer invoked after every page move (p, from, to). The simulator
  /// uses it to maintain per-object heat-weighted DRAM fractions
  /// incrementally. At most one listener.
  using MoveListener = std::function<void(PageId, Tier, Tier)>;
  void SetMoveListener(MoveListener listener) {
    move_listener_ = std::move(listener);
  }

  /// First rank in [start, num_pages) of `id` whose residency matches
  /// `on_dram`, or num_pages. Word-skipping scan over the bitset; visits
  /// ranks in the same ascending order a per-page probe loop would, so
  /// callers can enumerate an object's DRAM pages without touching its PM
  /// pages.
  std::uint64_t FindRank(ObjectId id, std::uint64_t start, bool on_dram) const;

  /// Append every page of `id` whose residency matches `on_dram`, in
  /// ascending page order — the sequence FindRank hops would visit, in one
  /// scan over the bitset words instead of a call per page. Eviction
  /// gathers enumerate tens of millions of pages per run; the per-call
  /// overhead of the hop loop was their largest cost.
  void AppendTierPages(ObjectId id, bool on_dram,
                       std::vector<PageId>& out) const;

  /// Highest rank < end whose residency matches `on_dram`, or num_pages
  /// when none exists.
  std::uint64_t FindRankBefore(ObjectId id, std::uint64_t end,
                               bool on_dram) const;

  /// Benchmark-only escape hatch: route ObjectOfPage, MoveHottest,
  /// EvictColdest, and MigrationEngine::MakeRoomInDram through the
  /// pre-index linear page/extent scans so bench/engine_speed can measure
  /// the legacy engine's cost profile. Results are identical either way
  /// (the scans visit pages in the same order the word-skipping bitset
  /// walks do); only the constant factors change. The residency index
  /// stays maintained.
  void set_legacy_scan(bool on) { legacy_scan_ = on; }
  bool legacy_scan() const { return legacy_scan_; }

  /// Per-page tier snapshot in page order (checkpointing).
  std::vector<Tier> SnapshotTiers() const;

  /// Overwrite every page's tier and rebuild the derived state (usage
  /// counters, per-object DRAM counts, residency bitsets, Fenwick trees)
  /// from scratch. The registered extents must match the snapshot's; the
  /// move listener is NOT notified — this is state restoration, not
  /// migration. The rebuilt index is bit-identical to one maintained
  /// incrementally, because both mirror the same tier array.
  void RestoreTiers(std::span<const Tier> tiers);

  /// Checkpoint-probe override of one tier's capacity (the incremental
  /// sweep driver evaluates a neighbouring sweep point's policy against
  /// shared page state under *that point's* DRAM budget). Occupancy is not
  /// revalidated: callers only shrink capacity when current occupancy
  /// provably fits.
  void OverrideTierCapacity(Tier t, std::uint64_t capacity_bytes) {
    spec_[t].capacity_bytes = capacity_bytes;
  }

 private:
  /// Per-object incremental DRAM-residency index over heat ranks.
  struct ResidencyIndex {
    std::vector<std::uint64_t> bits;   // bit per rank, 1 = on DRAM
    std::vector<std::uint32_t> tree;   // 1-based Fenwick over ranks
  };

  void NotifyMove(PageId p, Tier from, Tier to) {
    if (move_listener_) move_listener_(p, from, to);
  }

  /// Owning extent of `p` ignoring liveness (index maintenance must track
  /// stale pages of released objects too). Served from the dense
  /// page->owner record filled at registration — O(1).
  std::optional<ObjectId> OwnerOfPage(PageId p) const {
    if (p >= page_ref_.size()) return std::nullopt;
    return page_ref_[p].owner;
  }

  /// Pre-index cost profile of ObjectOfPage (bench baseline): linear scan
  /// over every extent.
  std::optional<ObjectId> ObjectOfPageLegacy(PageId p) const;

  /// Retier page `p` of object `owner`: usage counters, residency index,
  /// live-object DRAM count, listener. Caller has verified `p` is not on
  /// `to` and `to` has capacity.
  void CommitMove(ObjectId owner, PageId p, Tier to);

  void SetResidency(ObjectId id, std::uint64_t rank, bool on_dram);

  MoveListener move_listener_;
  HmSpec spec_;
  std::uint64_t page_bytes_;
  bool legacy_scan_ = false;
  /// Dense per-page mirror of (owner, tier): one 8-byte record per page so
  /// a random probe that needs both — every profiler sample — takes one
  /// cache miss, not two. Owner ignores liveness, like OwnerOfPage.
  struct PageRef {
    ObjectId owner;
    Tier tier;
  };
  std::vector<PageEntry> pages_;
  std::vector<PageRef> page_ref_;
  std::vector<ObjectExtent> extents_;
  std::vector<bool> live_;
  std::uint64_t used_pages_[kNumTiers] = {0, 0};
  // Per-object count of pages on DRAM, to answer object_pages_on in O(1).
  std::vector<std::uint64_t> dram_pages_per_object_;
  std::vector<ResidencyIndex> residency_;
};

}  // namespace merch::hm
