// Migration engine: the mechanical layer policies use to move pages.
//
// It wraps PageTable moves with traffic accounting (migration consumes
// bandwidth on both tiers — visible in the Figure 6 reproduction) and a
// make-room path that evicts cold DRAM pages to PM, mirroring the paper's
// "DRAM space management" (Section 6): when DRAM has no space, the least
// frequently accessed DRAM pages move to PM.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "hm/page_table.h"

namespace merch::hm {

struct MigrationStats {
  std::uint64_t pages_to_dram = 0;
  std::uint64_t pages_to_pm = 0;
  std::uint64_t bytes_to_dram = 0;
  std::uint64_t bytes_to_pm = 0;
  std::uint64_t failed_capacity = 0;  // moves rejected: destination full

  MigrationStats& operator+=(const MigrationStats& o) {
    pages_to_dram += o.pages_to_dram;
    pages_to_pm += o.pages_to_pm;
    bytes_to_dram += o.bytes_to_dram;
    bytes_to_pm += o.bytes_to_pm;
    failed_capacity += o.failed_capacity;
    return *this;
  }
};

class MigrationEngine {
 public:
  explicit MigrationEngine(PageTable& table) : table_(&table) {}

  /// Move `k` hottest not-yet-resident pages of `obj` to `to`.
  /// Returns pages moved.
  std::uint64_t MigrateHottest(ObjectId obj, std::uint64_t k, Tier to);

  /// Move individual pages (sampling-based policies decide page ids).
  std::uint64_t MigratePages(std::span<const PageId> pages, Tier to);

  /// Ensure at least `pages_needed` free DRAM pages by demoting the
  /// coldest DRAM pages (least-frequently-accessed first) across all live
  /// objects. `heat` supplies a page's access count for ranking; when
  /// null, the page table's epoch counters are used. Returns pages freed.
  using HeatFn = std::function<double(PageId)>;
  std::uint64_t MakeRoomInDram(std::uint64_t pages_needed,
                               const HeatFn& heat = nullptr);

  /// As above, with an exact per-object pruning bound: `floor(first_page)`
  /// must return a lower bound of `heat(p)` over every page of the object
  /// whose extent starts at `first_page`. The gather then skips whole
  /// objects that provably cannot contain one of the coldest pages —
  /// typically the hot objects that fill DRAM — instead of probing every
  /// DRAM-resident page's heat. The evicted page sequence is identical to
  /// the unpruned gather (the bound only skips, never reorders).
  using HeatFloorFn = std::function<double(PageId)>;
  /// `batch_heat(pages, obj_floor, threshold, out)`, when non-null, must
  /// fill `out[i]` with exactly `heat(pages[i])` — or +infinity when it can
  /// prove `heat(pages[i]) > threshold` more cheaply (`obj_floor` is the
  /// `floor` value for the pages' object). The gather treats +infinity as
  /// "provably hotter than every retained candidate" and drops the page; it
  /// passes a finite threshold only once the candidate heap is full, so a
  /// dropped page can never be among the `to_free` coldest.
  using BatchHeatFn = std::function<void(
      std::span<const PageId>, double, double, std::span<double>)>;
  std::uint64_t MakeRoomInDram(std::uint64_t pages_needed, const HeatFn& heat,
                               const HeatFloorFn& floor,
                               const BatchHeatFn& batch_heat = nullptr);

  /// Demote `k` cold-end pages of `obj` from DRAM to PM, with traffic
  /// accounting.
  std::uint64_t DemoteColdest(ObjectId obj, std::uint64_t k);

  /// Traffic since the last TakeEpochStats call.
  MigrationStats TakeEpochStats();
  const MigrationStats& lifetime_stats() const { return lifetime_; }

  /// Pending epoch accumulator (checkpointing / divergence fingerprints
  /// read it without consuming it).
  const MigrationStats& epoch_stats() const { return epoch_; }

  /// Overwrite both accumulators (checkpoint restore / sandbox rollback).
  void RestoreStats(const MigrationStats& epoch, const MigrationStats& lifetime) {
    epoch_ = epoch;
    lifetime_ = lifetime;
  }

 private:
  void Account(Tier to, std::uint64_t pages);

  PageTable* table_;
  MigrationStats epoch_;
  MigrationStats lifetime_;
};

}  // namespace merch::hm
