#include "hm/migration.h"

#include <algorithm>

namespace merch::hm {

void MigrationEngine::Account(Tier to, std::uint64_t pages) {
  const std::uint64_t bytes = pages * table_->page_bytes();
  if (to == Tier::kDram) {
    epoch_.pages_to_dram += pages;
    epoch_.bytes_to_dram += bytes;
    lifetime_.pages_to_dram += pages;
    lifetime_.bytes_to_dram += bytes;
  } else {
    epoch_.pages_to_pm += pages;
    epoch_.bytes_to_pm += bytes;
    lifetime_.pages_to_pm += pages;
    lifetime_.bytes_to_pm += bytes;
  }
}

std::uint64_t MigrationEngine::MigrateHottest(ObjectId obj, std::uint64_t k,
                                              Tier to) {
  const std::uint64_t moved = table_->MoveHottest(obj, k, to);
  if (moved < k) {
    epoch_.failed_capacity += k - moved;
    lifetime_.failed_capacity += k - moved;
  }
  Account(to, moved);
  return moved;
}

std::uint64_t MigrationEngine::MigratePages(std::span<const PageId> pages,
                                            Tier to) {
  std::uint64_t moved = 0;
  for (const PageId p : pages) {
    if (table_->page_tier(p) == to) continue;
    if (table_->MovePage(p, to)) {
      ++moved;
    } else {
      ++epoch_.failed_capacity;
      ++lifetime_.failed_capacity;
    }
  }
  Account(to, moved);
  return moved;
}

std::uint64_t MigrationEngine::DemoteColdest(ObjectId obj, std::uint64_t k) {
  const std::uint64_t moved = table_->EvictColdest(obj, k, Tier::kDram);
  Account(Tier::kPm, moved);
  return moved;
}

std::uint64_t MigrationEngine::MakeRoomInDram(std::uint64_t pages_needed,
                                              const HeatFn& heat) {
  const std::uint64_t free_now = table_->tier_free_pages(Tier::kDram);
  if (free_now >= pages_needed) return 0;
  std::uint64_t to_free = pages_needed - free_now;

  // Gather DRAM-resident pages with their epoch counts, coldest first.
  // Object page ranges are heat-ordered, so the cold end of each object is
  // its range tail; we still sort globally by observed epoch accesses to
  // mimic an LFU decision over profiling data.
  struct Cold {
    PageId page;
    double accesses;
  };
  std::vector<Cold> candidates;
  for (ObjectId id = 0; id < table_->num_objects(); ++id) {
    if (!table_->is_live(id)) continue;
    const ObjectExtent& e = table_->extent(id);
    for (PageId p = e.first_page; p < e.first_page + e.num_pages; ++p) {
      if (table_->page_tier(p) == Tier::kDram) {
        const double a = heat ? heat(p)
                              : static_cast<double>(table_->page(p).epoch_accesses);
        candidates.push_back({p, a});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Cold& a, const Cold& b) { return a.accesses < b.accesses; });

  std::uint64_t freed = 0;
  for (const Cold& c : candidates) {
    if (freed >= to_free) break;
    if (table_->MovePage(c.page, Tier::kPm)) ++freed;
  }
  Account(Tier::kPm, freed);
  return freed;
}

MigrationStats MigrationEngine::TakeEpochStats() {
  MigrationStats out = epoch_;
  epoch_ = MigrationStats{};
  return out;
}

}  // namespace merch::hm
