#include "hm/migration.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::hm {

void MigrationEngine::Account(Tier to, std::uint64_t pages) {
  const std::uint64_t bytes = pages * table_->page_bytes();
  if (to == Tier::kDram) {
    MERCH_METRIC_COUNT("merch_hm_pages_to_dram_total", pages);
  } else {
    MERCH_METRIC_COUNT("merch_hm_pages_to_pm_total", pages);
  }
  if (to == Tier::kDram) {
    epoch_.pages_to_dram += pages;
    epoch_.bytes_to_dram += bytes;
    lifetime_.pages_to_dram += pages;
    lifetime_.bytes_to_dram += bytes;
  } else {
    epoch_.pages_to_pm += pages;
    epoch_.bytes_to_pm += bytes;
    lifetime_.pages_to_pm += pages;
    lifetime_.bytes_to_pm += bytes;
  }
}

std::uint64_t MigrationEngine::MigrateHottest(ObjectId obj, std::uint64_t k,
                                              Tier to) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.migrate_hottest");
  const std::uint64_t moved = table_->MoveHottest(obj, k, to);
  if (moved < k) {
    epoch_.failed_capacity += k - moved;
    lifetime_.failed_capacity += k - moved;
    MERCH_METRIC_COUNT("merch_hm_failed_capacity_total", k - moved);
  }
  Account(to, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::MigratePages(std::span<const PageId> pages,
                                            Tier to) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.migrate_batch");
  std::uint64_t moved = 0;
  for (const PageId p : pages) {
    if (table_->page_tier(p) == to) continue;
    if (table_->MovePage(p, to)) {
      ++moved;
    } else {
      ++epoch_.failed_capacity;
      ++lifetime_.failed_capacity;
      MERCH_METRIC_COUNT("merch_hm_failed_capacity_total", 1);
    }
  }
  Account(to, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::DemoteColdest(ObjectId obj, std::uint64_t k) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.demote_coldest");
  const std::uint64_t moved = table_->EvictColdest(obj, k, Tier::kDram);
  Account(Tier::kPm, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::MakeRoomInDram(std::uint64_t pages_needed,
                                              const HeatFn& heat) {
  return MakeRoomInDram(pages_needed, heat, nullptr, nullptr);
}

std::uint64_t MigrationEngine::MakeRoomInDram(std::uint64_t pages_needed,
                                              const HeatFn& heat,
                                              const HeatFloorFn& floor,
                                              const BatchHeatFn& batch_heat) {
  const std::uint64_t free_now = table_->tier_free_pages(Tier::kDram);
  if (free_now >= pages_needed) return 0;
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.make_room");
  const std::uint64_t to_free = pages_needed - free_now;

  // Gather DRAM-resident pages with their observed epoch counts, coldest
  // first. Object page ranges are heat-ordered, so the cold end of each
  // object is its range tail; we still order globally by observed epoch
  // accesses to mimic an LFU decision over profiling data. Ties are
  // common (saturated profiler heat collides on the 16-bit jitter), so
  // the order tie-breaks on page id: a total order makes the eviction
  // sequence independent of the selection algorithm below.
  struct Cold {
    PageId page;
    double accesses;
  };
  const auto colder = [](const Cold& a, const Cold& b) {
    if (a.accesses != b.accesses) return a.accesses < b.accesses;
    return a.page < b.page;
  };
  const auto count_of = [&](PageId p) {
    return heat ? heat(p)
                : static_cast<double>(table_->page(p).epoch_accesses);
  };
  std::vector<Cold> candidates;
  // Index of the first candidate not yet in sorted order.
  std::size_t sorted = 0;
  // Set when candidates hold only the `to_free` coldest pages (object-floor
  // pruning below); the overflow continuation then re-gathers instead of
  // extending a full list.
  bool pruned = false;
  if (table_->legacy_scan()) {
    // Pre-index cost profile (bench baseline): probe every page of every
    // live object and sort the full candidate set.
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      const ObjectExtent& e = table_->extent(id);
      for (PageId p = e.first_page; p < e.first_page + e.num_pages; ++p) {
        if (table_->page(p).tier == Tier::kDram) {
          candidates.push_back({p, count_of(p)});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(), colder);
    sorted = candidates.size();
  } else if (heat && floor) {
    // Object-floor pruning: rank live objects by an exact lower bound of
    // their pages' heat, then fill a bounded max-heap of the `to_free`
    // coldest pages object by object, coldest-bound first. Once the heap
    // is full, any object whose bound exceeds the heap's hottest retained
    // key cannot contribute — pages strictly hotter than every retained
    // one can never displace them under the total order — so the gather
    // stops without probing the (typically hot, DRAM-filling) remainder.
    pruned = true;
    struct ObjFloor {
      double lb;
      ObjectId id;
    };
    std::vector<ObjFloor> objs;
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      if (table_->object_pages_on(id, Tier::kDram) == 0) continue;
      objs.push_back({floor(table_->extent(id).first_page), id});
    }
    std::sort(objs.begin(), objs.end(),
              [](const ObjFloor& a, const ObjFloor& b) { return a.lb < b.lb; });
    std::vector<PageId> run_pages;    // one object's DRAM pages, ascending
    std::vector<double> run_heats;    // batch_heat output for run_pages
    const auto push_candidate = [&](const Cold& c) {
      if (candidates.size() < to_free) {
        candidates.push_back(c);
        std::push_heap(candidates.begin(), candidates.end(), colder);
      } else if (colder(c, candidates.front())) {
        std::pop_heap(candidates.begin(), candidates.end(), colder);
        candidates.back() = c;
        std::push_heap(candidates.begin(), candidates.end(), colder);
      }
    };
    for (const ObjFloor& of : objs) {
      // Strict >: a page whose heat equals the bound could still win its
      // tie on page id, so equal bounds must be probed.
      if (candidates.size() >= to_free &&
          of.lb > candidates.front().accesses) {
        break;
      }
      run_pages.clear();
      table_->AppendTierPages(of.id, /*on_dram=*/true, run_pages);
      if (batch_heat) {
        run_heats.resize(run_pages.size());
        const double threshold =
            candidates.size() >= to_free
                ? candidates.front().accesses
                : std::numeric_limits<double>::infinity();
        batch_heat(run_pages, of.lb, threshold, run_heats);
        for (std::size_t k = 0; k < run_pages.size(); ++k) {
          // +inf marks a page screened out against `threshold`; it can
          // never displace a retained candidate, so skip the insert.
          if (run_heats[k] == std::numeric_limits<double>::infinity()) {
            continue;
          }
          push_candidate({run_pages[k], run_heats[k]});
        }
      } else {
        for (const PageId p : run_pages) {
          push_candidate({p, count_of(p)});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(), colder);
    sorted = candidates.size();
  } else {
    // Enumerate exactly the DRAM-resident pages via the residency bitsets
    // (same ascending page order the probe loop produces), then select
    // the `to_free` coldest: nth_element plus a sort of that prefix
    // yields the same eviction sequence as sorting everything — the
    // comparator is a total order — at O(n + k log k) instead of
    // O(n log n) with n = all DRAM pages per interval.
    candidates.reserve(table_->tier_used_bytes(Tier::kDram) /
                       table_->page_bytes());
    std::vector<PageId> obj_pages;
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      obj_pages.clear();
      table_->AppendTierPages(id, /*on_dram=*/true, obj_pages);
      for (const PageId p : obj_pages) {
        candidates.push_back({p, count_of(p)});
      }
    }
    if (candidates.size() > to_free) {
      const auto mid =
          candidates.begin() + static_cast<std::ptrdiff_t>(to_free);
      std::nth_element(candidates.begin(), mid, candidates.end(), colder);
      std::sort(candidates.begin(), mid, colder);
      sorted = to_free;
    } else {
      std::sort(candidates.begin(), candidates.end(), colder);
      sorted = candidates.size();
    }
  }

  std::uint64_t freed = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (freed >= to_free) break;
    if (i == sorted) {
      // Moves past the selected prefix are needed only when PM itself ran
      // out of room; continue in the same global order.
      std::sort(candidates.begin() + static_cast<std::ptrdiff_t>(i),
                candidates.end(), colder);
      sorted = candidates.size();
    }
    if (table_->MovePage(candidates[i].page, Tier::kPm)) ++freed;
  }
  if (pruned && freed < to_free) {
    // PM itself ran out of room for some selected pages (rare). The
    // unpruned gather would continue down the same global order, so
    // re-gather the not-yet-attempted DRAM pages — moved ones already left
    // DRAM; failed ones are excluded explicitly — and keep moving in that
    // order. Heat is a pure function of this interval's oracle state, so
    // the re-gathered keys match what one full gather would have held.
    std::vector<PageId> attempted;
    attempted.reserve(candidates.size());
    for (const Cold& c : candidates) attempted.push_back(c.page);
    std::sort(attempted.begin(), attempted.end());
    std::vector<Cold> rest;
    std::vector<PageId> obj_pages;
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      obj_pages.clear();
      table_->AppendTierPages(id, /*on_dram=*/true, obj_pages);
      for (const PageId p : obj_pages) {
        if (!std::binary_search(attempted.begin(), attempted.end(), p)) {
          rest.push_back({p, count_of(p)});
        }
      }
    }
    std::sort(rest.begin(), rest.end(), colder);
    for (const Cold& c : rest) {
      if (freed >= to_free) break;
      if (table_->MovePage(c.page, Tier::kPm)) ++freed;
    }
  }
  Account(Tier::kPm, freed);
  MERCH_METRIC_COUNT("merch_hm_evictions_total", freed);
  span.set_arg("pages", static_cast<std::int64_t>(freed));
  return freed;
}

MigrationStats MigrationEngine::TakeEpochStats() {
  MigrationStats out = epoch_;
  epoch_ = MigrationStats{};
  return out;
}

}  // namespace merch::hm
