#include "hm/migration.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::hm {

void MigrationEngine::Account(Tier to, std::uint64_t pages) {
  const std::uint64_t bytes = pages * table_->page_bytes();
  if (to == Tier::kDram) {
    MERCH_METRIC_COUNT("merch_hm_pages_to_dram_total", pages);
  } else {
    MERCH_METRIC_COUNT("merch_hm_pages_to_pm_total", pages);
  }
  if (to == Tier::kDram) {
    epoch_.pages_to_dram += pages;
    epoch_.bytes_to_dram += bytes;
    lifetime_.pages_to_dram += pages;
    lifetime_.bytes_to_dram += bytes;
  } else {
    epoch_.pages_to_pm += pages;
    epoch_.bytes_to_pm += bytes;
    lifetime_.pages_to_pm += pages;
    lifetime_.bytes_to_pm += bytes;
  }
}

std::uint64_t MigrationEngine::MigrateHottest(ObjectId obj, std::uint64_t k,
                                              Tier to) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.migrate_hottest");
  const std::uint64_t moved = table_->MoveHottest(obj, k, to);
  if (moved < k) {
    epoch_.failed_capacity += k - moved;
    lifetime_.failed_capacity += k - moved;
    MERCH_METRIC_COUNT("merch_hm_failed_capacity_total", k - moved);
  }
  Account(to, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::MigratePages(std::span<const PageId> pages,
                                            Tier to) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.migrate_batch");
  std::uint64_t moved = 0;
  for (const PageId p : pages) {
    if (table_->page_tier(p) == to) continue;
    if (table_->MovePage(p, to)) {
      ++moved;
    } else {
      ++epoch_.failed_capacity;
      ++lifetime_.failed_capacity;
      MERCH_METRIC_COUNT("merch_hm_failed_capacity_total", 1);
    }
  }
  Account(to, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::DemoteColdest(ObjectId obj, std::uint64_t k) {
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.demote_coldest");
  const std::uint64_t moved = table_->EvictColdest(obj, k, Tier::kDram);
  Account(Tier::kPm, moved);
  span.set_arg("pages", static_cast<std::int64_t>(moved));
  return moved;
}

std::uint64_t MigrationEngine::MakeRoomInDram(std::uint64_t pages_needed,
                                              const HeatFn& heat) {
  const std::uint64_t free_now = table_->tier_free_pages(Tier::kDram);
  if (free_now >= pages_needed) return 0;
  MERCH_TRACE_SPAN_VAR(span, obs::Category::kHm, "hm.make_room");
  const std::uint64_t to_free = pages_needed - free_now;

  // Gather DRAM-resident pages with their observed epoch counts, coldest
  // first. Object page ranges are heat-ordered, so the cold end of each
  // object is its range tail; we still order globally by observed epoch
  // accesses to mimic an LFU decision over profiling data. Ties are
  // common (saturated profiler heat collides on the 16-bit jitter), so
  // the order tie-breaks on page id: a total order makes the eviction
  // sequence independent of the selection algorithm below.
  struct Cold {
    PageId page;
    double accesses;
  };
  const auto colder = [](const Cold& a, const Cold& b) {
    if (a.accesses != b.accesses) return a.accesses < b.accesses;
    return a.page < b.page;
  };
  const auto count_of = [&](PageId p) {
    return heat ? heat(p)
                : static_cast<double>(table_->page(p).epoch_accesses);
  };
  std::vector<Cold> candidates;
  // Index of the first candidate not yet in sorted order.
  std::size_t sorted = 0;
  if (table_->legacy_scan()) {
    // Pre-index cost profile (bench baseline): probe every page of every
    // live object and sort the full candidate set.
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      const ObjectExtent& e = table_->extent(id);
      for (PageId p = e.first_page; p < e.first_page + e.num_pages; ++p) {
        if (table_->page(p).tier == Tier::kDram) {
          candidates.push_back({p, count_of(p)});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(), colder);
    sorted = candidates.size();
  } else {
    // Enumerate exactly the DRAM-resident pages via the residency bitsets
    // (same ascending page order the probe loop produces), then select
    // the `to_free` coldest: nth_element plus a sort of that prefix
    // yields the same eviction sequence as sorting everything — the
    // comparator is a total order — at O(n + k log k) instead of
    // O(n log n) with n = all DRAM pages per interval.
    candidates.reserve(table_->tier_used_bytes(Tier::kDram) /
                       table_->page_bytes());
    for (ObjectId id = 0; id < table_->num_objects(); ++id) {
      if (!table_->is_live(id)) continue;
      const ObjectExtent& e = table_->extent(id);
      for (std::uint64_t r = table_->FindRank(id, 0, /*on_dram=*/true);
           r < e.num_pages; r = table_->FindRank(id, r + 1, true)) {
        const PageId p = e.first_page + r;
        candidates.push_back({p, count_of(p)});
      }
    }
    if (candidates.size() > to_free) {
      const auto mid =
          candidates.begin() + static_cast<std::ptrdiff_t>(to_free);
      std::nth_element(candidates.begin(), mid, candidates.end(), colder);
      std::sort(candidates.begin(), mid, colder);
      sorted = to_free;
    } else {
      std::sort(candidates.begin(), candidates.end(), colder);
      sorted = candidates.size();
    }
  }

  std::uint64_t freed = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (freed >= to_free) break;
    if (i == sorted) {
      // Moves past the selected prefix are needed only when PM itself ran
      // out of room; continue in the same global order.
      std::sort(candidates.begin() + static_cast<std::ptrdiff_t>(i),
                candidates.end(), colder);
      sorted = candidates.size();
    }
    if (table_->MovePage(candidates[i].page, Tier::kPm)) ++freed;
  }
  Account(Tier::kPm, freed);
  MERCH_METRIC_COUNT("merch_hm_evictions_total", freed);
  span.set_arg("pages", static_cast<std::int64_t>(freed));
  return freed;
}

MigrationStats MigrationEngine::TakeEpochStats() {
  MigrationStats out = epoch_;
  epoch_ = MigrationStats{};
  return out;
}

}  // namespace merch::hm
