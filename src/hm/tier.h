// Memory tier descriptions for the heterogeneous-memory (HM) simulator.
//
// The paper's testbed is 192 GB DDR4 DRAM + 1.5 TB Intel Optane PM per
// machine (Section 7), with the PM/DRAM performance ratios given in
// Section 2 and the peak bandwidths annotated in Figure 6. We have no
// Optane hardware, so those published numbers parameterise a simulated HM
// (see DESIGN.md, substitution table).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace merch::hm {

enum class Tier : std::uint8_t {
  kDram = 0,  // fast, small
  kPm = 1,    // slow, large (Optane persistent memory)
};
inline constexpr std::size_t kNumTiers = 2;

inline const char* TierName(Tier t) {
  return t == Tier::kDram ? "DRAM" : "PM";
}

inline Tier OtherTier(Tier t) {
  return t == Tier::kDram ? Tier::kPm : Tier::kDram;
}

/// Performance/capacity description of one tier.
struct TierSpec {
  std::uint64_t capacity_bytes = 0;
  double read_bandwidth_gbps = 0;   // GB/s, peak sequential read
  double write_bandwidth_gbps = 0;  // GB/s, peak sequential write
  double seq_latency_ns = 0;        // sequential (prefetch-friendly) access
  double rand_latency_ns = 0;       // dependent random access
  /// Multiplier on latency for write accesses. Optane's write path (media
  /// write + small on-DIMM write buffer) is far slower than its read path;
  /// DRAM writes are roughly symmetric.
  double write_latency_factor = 1.0;
};

/// Full HM description: one spec per tier.
struct HmSpec {
  std::array<TierSpec, kNumTiers> tiers;

  const TierSpec& operator[](Tier t) const {
    return tiers[static_cast<std::size_t>(t)];
  }
  TierSpec& operator[](Tier t) { return tiers[static_cast<std::size_t>(t)]; }

  std::uint64_t dram_capacity() const { return (*this)[Tier::kDram].capacity_bytes; }
  std::uint64_t pm_capacity() const { return (*this)[Tier::kPm].capacity_bytes; }

  /// The paper's evaluation platform. DRAM: 192 GB, 180 GB/s peak
  /// (Fig. 6), ~80 ns sequential / ~100 ns random latency. PM: 1.5 TB,
  /// 52 GB/s read peak (Fig. 6), write bandwidth 4.74x lower than DRAM
  /// write, latencies 2.08x (seq) and 3.77x (random) longer than DRAM
  /// (Section 2 ratios for Optane PM 100 series).
  static HmSpec PaperOptane() {
    HmSpec spec;
    spec[Tier::kDram] = TierSpec{
        .capacity_bytes = 192 * GiB,
        .read_bandwidth_gbps = 180.0,
        .write_bandwidth_gbps = 140.0,
        .seq_latency_ns = 80.0,
        .rand_latency_ns = 100.0,
    };
    spec[Tier::kPm] = TierSpec{
        .capacity_bytes = 1536 * GiB,
        .read_bandwidth_gbps = 52.0,            // 180 / 3.46, Fig. 6 peak
        .write_bandwidth_gbps = 140.0 / 4.74,  // Section 2 write ratio
        .seq_latency_ns = 80.0 * 2.08,
        .rand_latency_ns = 100.0 * 3.77,
        .write_latency_factor = 2.0,
    };
    return spec;
  }

  /// A CXL-attached memory expander as the slow tier (paper Section 5.3,
  /// "Extensibility": Merchandiser ports to other HM systems by
  /// regenerating training data and re-selecting events). CXL.mem adds
  /// roughly one NUMA hop of latency (~2-2.5x DRAM) but keeps far higher
  /// bandwidth than Optane and symmetric writes.
  static HmSpec CxlLike() {
    HmSpec spec = PaperOptane();
    spec[Tier::kPm] = TierSpec{
        .capacity_bytes = 1536 * GiB,
        .read_bandwidth_gbps = 90.0,
        .write_bandwidth_gbps = 80.0,
        .seq_latency_ns = 80.0 * 2.2,
        .rand_latency_ns = 100.0 * 2.4,
        .write_latency_factor = 1.1,
    };
    return spec;
  }

  /// A small HM for unit tests: 16 MiB DRAM, 128 MiB PM, same ratios.
  static HmSpec Tiny() {
    HmSpec spec = PaperOptane();
    spec[Tier::kDram].capacity_bytes = 16 * MiB;
    spec[Tier::kPm].capacity_bytes = 128 * MiB;
    return spec;
  }
};

}  // namespace merch::hm
