#include "hm/page_table.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::hm {
namespace {

/// Lowest set bit of a 1-based Fenwick position.
constexpr std::uint64_t LowBit(std::uint64_t i) { return i & (~i + 1); }

}  // namespace

PageTable::PageTable(HmSpec spec, std::uint64_t page_bytes)
    : spec_(spec), page_bytes_(page_bytes) {
  assert(page_bytes_ > 0);
}

std::optional<ObjectId> PageTable::RegisterObject(std::uint64_t bytes,
                                                  Tier initial, TaskId owner) {
  const std::uint64_t npages = (bytes + page_bytes_ - 1) / page_bytes_;
  Tier tier = initial;
  if (tier_free_pages(tier) < npages) {
    tier = OtherTier(tier);
    if (tier_free_pages(tier) < npages) return std::nullopt;
  }
  const auto id = static_cast<ObjectId>(extents_.size());
  const PageId first = pages_.size();
  pages_.resize(pages_.size() + npages, PageEntry{.tier = tier});
  page_ref_.resize(page_ref_.size() + npages, PageRef{id, tier});
  used_pages_[static_cast<std::size_t>(tier)] += npages;
  extents_.push_back(ObjectExtent{.id = id,
                                  .owner = owner,
                                  .first_page = first,
                                  .num_pages = npages,
                                  .bytes = bytes});
  live_.push_back(true);
  const bool on_dram = tier == Tier::kDram;
  dram_pages_per_object_.push_back(on_dram ? npages : 0);
  ResidencyIndex ri;
  ri.bits.assign((npages + 63) / 64, on_dram ? ~0ull : 0ull);
  if (on_dram && (npages & 63) != 0) {
    ri.bits.back() = (1ull << (npages & 63)) - 1;  // clear past-end ranks
  }
  // A Fenwick tree over an all-equal array builds in O(n): position i
  // covers LowBit(i) ranks, each contributing 0 or 1.
  ri.tree.assign(npages + 1, 0);
  if (on_dram) {
    for (std::uint64_t i = 1; i <= npages; ++i) {
      ri.tree[i] = static_cast<std::uint32_t>(LowBit(i));
    }
  }
  residency_.push_back(std::move(ri));
  MERCH_METRIC_COUNT("merch_hm_objects_registered_total", 1);
  MERCH_METRIC_GAUGE_SET("merch_hm_pages", pages_.size());
  MERCH_TRACE_INSTANT_ARG(obs::Category::kHm, "hm.register_object", "pages",
                          npages);
  return id;
}

void PageTable::ReleaseObject(ObjectId id) {
  assert(id < extents_.size());
  if (!live_[id]) return;
  const ObjectExtent& e = extents_[id];
  for (PageId p = e.first_page; p < e.first_page + e.num_pages; ++p) {
    used_pages_[static_cast<std::size_t>(pages_[p].tier)] -= 1;
  }
  // The residency index keeps mirroring the (unchanged) page tiers; only
  // the live-object DRAM count is zeroed, like the capacity accounting.
  dram_pages_per_object_[id] = 0;
  live_[id] = false;
  MERCH_TRACE_INSTANT_ARG(obs::Category::kHm, "hm.release_object", "pages",
                          e.num_pages);
}

std::optional<ObjectId> PageTable::ObjectOfPageLegacy(PageId p) const {
  for (const ObjectExtent& e : extents_) {
    if (live_[e.id] && p >= e.first_page && p < e.first_page + e.num_pages) {
      return e.id;
    }
  }
  return std::nullopt;
}

std::uint64_t PageTable::object_pages_on(ObjectId id, Tier t) const {
  assert(id < extents_.size());
  const std::uint64_t on_dram = dram_pages_per_object_[id];
  return t == Tier::kDram ? on_dram : extents_[id].num_pages - on_dram;
}

std::uint64_t PageTable::dram_pages_in_rank_range(ObjectId id,
                                                  std::uint64_t r0,
                                                  std::uint64_t r1) const {
  assert(id < extents_.size());
  const std::vector<std::uint32_t>& tree = residency_[id].tree;
  r1 = std::min<std::uint64_t>(r1, extents_[id].num_pages);
  r0 = std::min(r0, r1);
  std::uint64_t sum = 0;
  for (std::uint64_t i = r1; i > 0; i -= LowBit(i)) sum += tree[i];
  for (std::uint64_t i = r0; i > 0; i -= LowBit(i)) sum -= tree[i];
  return sum;
}

void PageTable::SetResidency(ObjectId id, std::uint64_t rank, bool on_dram) {
  ResidencyIndex& ri = residency_[id];
  std::uint64_t& word = ri.bits[rank >> 6];
  const std::uint64_t mask = 1ull << (rank & 63);
  assert(((word & mask) != 0) != on_dram && "residency out of sync");
  word ^= mask;
  const std::uint32_t delta = on_dram ? 1u : ~0u;  // +1 / -1 mod 2^32
  for (std::uint64_t i = rank + 1; i < ri.tree.size(); i += LowBit(i)) {
    ri.tree[i] += delta;
  }
}

std::uint64_t PageTable::FindRank(ObjectId id, std::uint64_t start,
                                  bool on_dram) const {
  const std::uint64_t n = extents_[id].num_pages;
  const std::vector<std::uint64_t>& bits = residency_[id].bits;
  std::uint64_t w = start >> 6;
  while (w < bits.size()) {
    // Bits equal to the target become 1; mask off ranks before `start`.
    std::uint64_t match = on_dram ? bits[w] : ~bits[w];
    if (w == start >> 6) match &= ~0ull << (start & 63);
    if (match != 0) {
      const std::uint64_t rank = (w << 6) + std::countr_zero(match);
      return rank < n ? rank : n;
    }
    ++w;
  }
  return n;
}

void PageTable::AppendTierPages(ObjectId id, bool on_dram,
                                std::vector<PageId>& out) const {
  const ObjectExtent& e = extents_[id];
  const std::vector<std::uint64_t>& bits = residency_[id].bits;
  for (std::size_t w = 0; w < bits.size(); ++w) {
    // DRAM bits past num_pages stay clear by construction; the inverted
    // (PM) view turns them on, so the rank guard below stops the tail.
    std::uint64_t match = on_dram ? bits[w] : ~bits[w];
    while (match != 0) {
      const std::uint64_t rank =
          (w << 6) + static_cast<std::uint64_t>(std::countr_zero(match));
      if (rank >= e.num_pages) return;
      out.push_back(e.first_page + rank);
      match &= match - 1;
    }
  }
}

std::uint64_t PageTable::FindRankBefore(ObjectId id, std::uint64_t end,
                                        bool on_dram) const {
  const std::uint64_t n = extents_[id].num_pages;
  if (end == 0) return n;
  std::uint64_t w = (end - 1) >> 6;
  while (true) {
    std::uint64_t match = on_dram ? residency_[id].bits[w] : ~residency_[id].bits[w];
    if (w == (end - 1) >> 6) {
      const std::uint64_t top = (end - 1) & 63;  // highest admissible bit
      match &= top == 63 ? ~0ull : (1ull << (top + 1)) - 1;
    }
    // Past-end ranks in the last word read as "PM" in the raw bitset;
    // clamp so a !on_dram search cannot return them.
    if (match != 0) {
      const std::uint64_t rank = (w << 6) + 63 - std::countl_zero(match);
      if (rank < n) return rank;
      match &= (1ull << (n & 63)) - 1;
      if (match != 0) return (w << 6) + 63 - std::countl_zero(match);
    }
    if (w == 0) return n;
    --w;
  }
}

void PageTable::CommitMove(ObjectId owner, PageId p, Tier to) {
  PageEntry& pe = pages_[p];
  const Tier from = pe.tier;
  assert(from != to);
  used_pages_[static_cast<std::size_t>(from)] -= 1;
  used_pages_[static_cast<std::size_t>(to)] += 1;
  pe.tier = to;
  page_ref_[p].tier = to;
  SetResidency(owner, p - extents_[owner].first_page, to == Tier::kDram);
  if (live_[owner]) {
    dram_pages_per_object_[owner] += (to == Tier::kDram) ? 1 : -1;
  }
  NotifyMove(p, from, to);
}

bool PageTable::MovePage(PageId p, Tier to) {
  assert(p < pages_.size());
  if (pages_[p].tier == to) return true;
  if (tier_free_pages(to) == 0) return false;
  const std::optional<ObjectId> owner = OwnerOfPage(p);
  assert(owner.has_value() && "every page belongs to exactly one extent");
  CommitMove(*owner, p, to);
  return true;
}

std::uint64_t PageTable::MoveHottest(ObjectId id, std::uint64_t k, Tier to) {
  assert(id < extents_.size() && live_[id]);
  const ObjectExtent& e = extents_[id];
  std::uint64_t moved = 0;
  if (legacy_scan_) {
    // Pre-index cost profile (bench baseline): probe every page from the
    // hot end. Visits the same pages in the same order as the bitset walk.
    for (PageId p = e.first_page; p < e.first_page + e.num_pages && moved < k;
         ++p) {
      if (pages_[p].tier == to) continue;
      if (tier_free_pages(to) == 0) break;
      CommitMove(id, p, to);
      ++moved;
    }
    return moved;
  }
  const bool source_dram = to == Tier::kPm;  // pages not yet on `to`
  std::uint64_t rank = FindRank(id, 0, source_dram);
  while (rank < e.num_pages && moved < k) {
    if (tier_free_pages(to) == 0) break;
    CommitMove(id, e.first_page + rank, to);
    ++moved;
    rank = FindRank(id, rank + 1, source_dram);
  }
  return moved;
}

std::uint64_t PageTable::EvictColdest(ObjectId id, std::uint64_t k,
                                      Tier from) {
  assert(id < extents_.size() && live_[id]);
  const ObjectExtent& e = extents_[id];
  const Tier to = OtherTier(from);
  std::uint64_t moved = 0;
  if (legacy_scan_) {
    // Pre-index cost profile (bench baseline): probe every page from the
    // cold end, same visit order as the bitset walk.
    for (PageId p = e.first_page + e.num_pages;
         p > e.first_page && moved < k; --p) {
      if (pages_[p - 1].tier != from) continue;
      if (tier_free_pages(to) == 0) break;
      CommitMove(id, p - 1, to);
      ++moved;
    }
    return moved;
  }
  const bool source_dram = from == Tier::kDram;
  std::uint64_t rank = FindRankBefore(id, e.num_pages, source_dram);
  while (rank < e.num_pages && moved < k) {
    if (tier_free_pages(to) == 0) break;
    CommitMove(id, e.first_page + rank, to);
    ++moved;
    if (rank == 0) break;
    rank = FindRankBefore(id, rank, source_dram);
  }
  return moved;
}

std::vector<Tier> PageTable::SnapshotTiers() const {
  std::vector<Tier> tiers;
  tiers.reserve(pages_.size());
  for (const PageEntry& e : pages_) tiers.push_back(e.tier);
  return tiers;
}

void PageTable::RestoreTiers(std::span<const Tier> tiers) {
  assert(tiers.size() == pages_.size() && "snapshot from a different layout");
  used_pages_[0] = used_pages_[1] = 0;
  for (PageId p = 0; p < pages_.size(); ++p) {
    pages_[p].tier = tiers[p];
    page_ref_[p].tier = tiers[p];
    used_pages_[static_cast<std::size_t>(tiers[p])] += 1;
  }
  for (const ObjectExtent& e : extents_) {
    std::uint64_t on_dram = 0;
    ResidencyIndex& ri = residency_[e.id];
    std::fill(ri.bits.begin(), ri.bits.end(), 0ull);
    std::fill(ri.tree.begin(), ri.tree.end(), 0u);
    for (std::uint64_t rank = 0; rank < e.num_pages; ++rank) {
      if (tiers[e.first_page + rank] != Tier::kDram) continue;
      ++on_dram;
      ri.bits[rank >> 6] |= 1ull << (rank & 63);
      for (std::uint64_t i = rank + 1; i < ri.tree.size(); i += LowBit(i)) {
        ri.tree[i] += 1;
      }
    }
    dram_pages_per_object_[e.id] = live_[e.id] ? on_dram : 0;
  }
}

void PageTable::RecordAccesses(PageId p, std::uint64_t count) {
  assert(p < pages_.size());
  pages_[p].epoch_accesses += count;
  pages_[p].total_accesses += count;
}

void PageTable::ResetEpochCounters() {
  for (PageEntry& e : pages_) e.epoch_accesses = 0;
}

std::uint64_t PageTable::TotalEpochAccesses() const {
  std::uint64_t sum = 0;
  for (const PageEntry& e : pages_) sum += e.epoch_accesses;
  return sum;
}

}  // namespace merch::hm
