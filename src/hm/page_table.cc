#include "hm/page_table.h"

#include <cassert>

namespace merch::hm {

PageTable::PageTable(HmSpec spec, std::uint64_t page_bytes)
    : spec_(spec), page_bytes_(page_bytes) {
  assert(page_bytes_ > 0);
}

std::optional<ObjectId> PageTable::RegisterObject(std::uint64_t bytes,
                                                  Tier initial, TaskId owner) {
  const std::uint64_t npages = (bytes + page_bytes_ - 1) / page_bytes_;
  Tier tier = initial;
  if (tier_free_pages(tier) < npages) {
    tier = OtherTier(tier);
    if (tier_free_pages(tier) < npages) return std::nullopt;
  }
  const auto id = static_cast<ObjectId>(extents_.size());
  const PageId first = pages_.size();
  pages_.resize(pages_.size() + npages, PageEntry{.tier = tier});
  used_pages_[static_cast<std::size_t>(tier)] += npages;
  extents_.push_back(ObjectExtent{.id = id,
                                  .owner = owner,
                                  .first_page = first,
                                  .num_pages = npages,
                                  .bytes = bytes});
  live_.push_back(true);
  dram_pages_per_object_.push_back(tier == Tier::kDram ? npages : 0);
  return id;
}

void PageTable::ReleaseObject(ObjectId id) {
  assert(id < extents_.size());
  if (!live_[id]) return;
  const ObjectExtent& e = extents_[id];
  for (PageId p = e.first_page; p < e.first_page + e.num_pages; ++p) {
    used_pages_[static_cast<std::size_t>(pages_[p].tier)] -= 1;
  }
  dram_pages_per_object_[id] = 0;
  live_[id] = false;
}

std::optional<ObjectId> PageTable::ObjectOfPage(PageId p) const {
  for (const ObjectExtent& e : extents_) {
    if (live_[e.id] && p >= e.first_page && p < e.first_page + e.num_pages) {
      return e.id;
    }
  }
  return std::nullopt;
}

std::uint64_t PageTable::object_pages_on(ObjectId id, Tier t) const {
  assert(id < extents_.size());
  const std::uint64_t on_dram = dram_pages_per_object_[id];
  return t == Tier::kDram ? on_dram : extents_[id].num_pages - on_dram;
}

bool PageTable::MovePage(PageId p, Tier to) {
  assert(p < pages_.size());
  PageEntry& e = pages_[p];
  if (e.tier == to) return true;
  if (tier_free_pages(to) == 0) return false;
  used_pages_[static_cast<std::size_t>(e.tier)] -= 1;
  used_pages_[static_cast<std::size_t>(to)] += 1;
  const Tier from = e.tier == to ? OtherTier(to) : e.tier;
  e.tier = to;
  if (auto obj = ObjectOfPage(p)) {
    dram_pages_per_object_[*obj] += (to == Tier::kDram) ? 1 : -1;
  }
  NotifyMove(p, from, to);
  return true;
}

std::uint64_t PageTable::MoveHottest(ObjectId id, std::uint64_t k, Tier to) {
  assert(id < extents_.size() && live_[id]);
  const ObjectExtent& e = extents_[id];
  std::uint64_t moved = 0;
  for (PageId p = e.first_page; p < e.first_page + e.num_pages && moved < k;
       ++p) {
    PageEntry& pe = pages_[p];
    if (pe.tier == to) continue;
    if (tier_free_pages(to) == 0) break;
    used_pages_[static_cast<std::size_t>(pe.tier)] -= 1;
    used_pages_[static_cast<std::size_t>(to)] += 1;
    const Tier from = OtherTier(to);
    pe.tier = to;
    NotifyMove(p, from, to);
    ++moved;
  }
  if (to == Tier::kDram) {
    dram_pages_per_object_[id] += moved;
  } else {
    dram_pages_per_object_[id] -= moved;
  }
  return moved;
}

std::uint64_t PageTable::EvictColdest(ObjectId id, std::uint64_t k,
                                      Tier from) {
  assert(id < extents_.size() && live_[id]);
  const ObjectExtent& e = extents_[id];
  const Tier to = OtherTier(from);
  std::uint64_t moved = 0;
  for (PageId p = e.first_page + e.num_pages; p > e.first_page && moved < k;
       --p) {
    PageEntry& pe = pages_[p - 1];
    if (pe.tier != from) continue;
    if (tier_free_pages(to) == 0) break;
    used_pages_[static_cast<std::size_t>(pe.tier)] -= 1;
    used_pages_[static_cast<std::size_t>(to)] += 1;
    pe.tier = to;
    NotifyMove(p - 1, from, to);
    ++moved;
  }
  if (to == Tier::kDram) {
    dram_pages_per_object_[id] += moved;
  } else {
    dram_pages_per_object_[id] -= moved;
  }
  return moved;
}

void PageTable::RecordAccesses(PageId p, std::uint64_t count) {
  assert(p < pages_.size());
  pages_[p].epoch_accesses += count;
  pages_[p].total_accesses += count;
}

void PageTable::ResetEpochCounters() {
  for (PageEntry& e : pages_) e.epoch_accesses = 0;
}

std::uint64_t PageTable::TotalEpochAccesses() const {
  std::uint64_t sum = 0;
  for (const PageEntry& e : pages_) sum += e.epoch_accesses;
  return sum;
}

}  // namespace merch::hm
