// Structured trace recorder: lock-cheap per-thread ring buffers of typed
// span/instant events, exported as Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto) or as a compact text summary.
//
// Recording is two-level gated:
//   - compile time: building with -DMERCH_OBS=OFF removes every
//     MERCH_TRACE_* macro body, so instrumented code is bit-identical to
//     uninstrumented code (bench/obs_overhead checks the cost);
//   - run time: events are only recorded between TraceRecorder::Start()
//     and Stop(); a disabled recorder costs one relaxed atomic load per
//     macro.
//
// Each thread appends to its own fixed-capacity ring buffer under a
// per-buffer mutex that only the exporter ever contends, so emitting an
// event never blocks on other threads. When a ring wraps, the oldest
// events are dropped and counted (`dropped()`), never the newest —
// diagnosis usually needs the tail of the timeline.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace merch::obs {

/// Subsystem that emitted an event. Exported as the Chrome `cat` field so
/// traces can be filtered per layer.
enum class Category : std::uint8_t {
  kSim,      // sim::Engine epochs/regions/intervals
  kHm,       // hm::MigrationEngine / PageTable
  kService,  // service::PlacementService requests
  kCore,     // core::Merchandiser estimation / model / greedy
  kPool,     // service::ThreadPool queueing
  kCache,    // service::ResultCache lookups
  kNet,      // net::PlacementServer / ShardRouter wire traffic
  kApp,      // tools / benches / tests
};

const char* CategoryName(Category cat);

/// One recorded event. `name` and `arg_name` must outlive the recorder:
/// string literals, or strings interned via TraceRecorder::Intern.
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no argument
  std::int64_t arg = 0;
  std::uint64_t ts_ns = 0;   // nanoseconds since Start()
  std::uint64_t dur_ns = 0;  // spans only; 0 for instants
  std::uint64_t trace_id = 0;  // distributed trace id; 0 = not in a trace
  std::uint32_t tid = 0;     // small per-thread id (assigned at first use)
  Category cat = Category::kApp;
  bool span = false;  // true = complete span ("X"), false = instant ("i")
};

/// Per-process identity attached to an export so tools/trace_merge can
/// stitch files from different processes: the real pid replaces the
/// default `"pid": 1`, the process name becomes a Chrome "M" metadata
/// event, and `extra_json` (a complete JSON object, typically built by
/// obs/distributed/export.h) is emitted verbatim as a top-level
/// `"merchMeta"` member carrying peer clock offsets.
struct ExportMeta {
  std::string process_name;
  std::uint64_t pid = 1;
  std::string extra_json;  // "" = omit the merchMeta member
};

class TraceRecorder {
 public:
  /// The process-wide recorder.
  static TraceRecorder& Instance();

  /// Clear previously recorded events, rebase the clock, start recording.
  void Start();
  /// Stop recording. Recorded events stay available for export.
  void Stop();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since Start() (0 if never started).
  std::uint64_t NowNs() const;

  void RecordSpan(Category cat, const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns, const char* arg_name = nullptr,
                  std::int64_t arg = 0);
  void RecordInstant(Category cat, const char* name,
                     const char* arg_name = nullptr, std::int64_t arg = 0);

  /// Stable pointer for a dynamic event name (region names, app names).
  /// Interned strings live until process exit.
  const char* Intern(const std::string& s);

  /// Per-thread ring capacity in events. Takes effect for buffers created
  /// after the call; Start() recreates nothing, so set this first.
  void set_ring_capacity(std::size_t events);
  std::size_t ring_capacity() const;

  /// All retained events, merged across threads and sorted by timestamp.
  std::vector<TraceEvent> Snapshot() const;
  /// Events lost to ring wrap-around since Start().
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON (the `{"traceEvents": [...]}` object form).
  /// With `meta`, events carry the real pid, a process_name metadata
  /// event is emitted, and meta->extra_json becomes `"merchMeta"`.
  std::string ChromeJson(const ExportMeta* meta = nullptr) const;
  /// Per-(category, name) count / total / mean table, for terminals.
  std::string TextSummary() const;
  /// Write ChromeJson(meta) to `path`. Returns false (and sets `*error`)
  /// on I/O failure.
  bool WriteChromeJson(const std::string& path, std::string* error = nullptr,
                       const ExportMeta* meta = nullptr) const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> ring;  // capacity fixed at creation
    std::uint64_t written = 0;     // total events ever appended
    std::uint32_t tid = 0;
  };

  TraceRecorder() = default;

  ThreadBuffer& LocalBuffer();
  void Append(const TraceEvent& ev);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> t0_ns_{0};  // steady_clock epoch of Start()

  mutable std::mutex registry_mu_;  // guards buffers_, interned_, capacity_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::size_t ring_capacity_ = 1u << 16;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: captures the start time at construction and records one
/// complete ("X") event at scope exit. Does nothing unless the recorder
/// was enabled at construction *and* still is at destruction.
class SpanScope {
 public:
  SpanScope(Category cat, const char* name, const char* arg_name = nullptr,
            std::int64_t arg = 0)
      : name_(name), arg_name_(arg_name), arg_(arg), cat_(cat) {
    TraceRecorder& rec = TraceRecorder::Instance();
    armed_ = rec.enabled();
    if (armed_) start_ns_ = rec.NowNs();
  }
  ~SpanScope() {
    if (!armed_) return;
    TraceRecorder& rec = TraceRecorder::Instance();
    if (!rec.enabled()) return;
    rec.RecordSpan(cat_, name_, start_ns_, rec.NowNs() - start_ns_,
                   arg_name_, arg_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attach/replace the span's argument after construction (e.g. a result
  /// count known only at the end of the scope).
  void set_arg(const char* arg_name, std::int64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

 private:
  const char* name_;
  const char* arg_name_;
  std::int64_t arg_;
  std::uint64_t start_ns_ = 0;
  Category cat_;
  bool armed_ = false;
};

/// What MERCH_TRACE_SPAN_VAR declares under -DMERCH_OBS=OFF: keeps
/// `var.set_arg(...)` call sites compiling while the optimizer erases the
/// empty object entirely.
struct NullSpan {
  void set_arg(const char*, std::int64_t) {}
};

}  // namespace merch::obs

// ---------------------------------------------------------------- macros
//
// The only supported way to instrument hot paths: all of these compile to
// nothing under -DMERCH_OBS=OFF.

#define MERCH_OBS_CONCAT_(a, b) a##b
#define MERCH_OBS_CONCAT(a, b) MERCH_OBS_CONCAT_(a, b)

#if defined(MERCH_OBS_ENABLED)

/// Trace the enclosing scope as a complete span.
#define MERCH_TRACE_SPAN(cat, name)                                \
  ::merch::obs::SpanScope MERCH_OBS_CONCAT(merch_obs_span_,        \
                                           __COUNTER__)((cat), (name))

/// Span with a named integer argument, bound to a local so the code can
/// update it via set_arg before scope exit.
#define MERCH_TRACE_SPAN_VAR(var, cat, name) \
  ::merch::obs::SpanScope var((cat), (name))

/// Zero-duration instant event.
#define MERCH_TRACE_INSTANT(cat, name)                                   \
  do {                                                                   \
    ::merch::obs::TraceRecorder& merch_obs_rec =                         \
        ::merch::obs::TraceRecorder::Instance();                         \
    if (merch_obs_rec.enabled())                                         \
      merch_obs_rec.RecordInstant((cat), (name));                        \
  } while (0)

#define MERCH_TRACE_INSTANT_ARG(cat, name, argname, argval)              \
  do {                                                                   \
    ::merch::obs::TraceRecorder& merch_obs_rec =                         \
        ::merch::obs::TraceRecorder::Instance();                         \
    if (merch_obs_rec.enabled())                                         \
      merch_obs_rec.RecordInstant(                                       \
          (cat), (name), (argname),                                      \
          static_cast<std::int64_t>(argval));                            \
  } while (0)

#else  // !MERCH_OBS_ENABLED

#define MERCH_TRACE_SPAN(cat, name) \
  do {                              \
  } while (0)
#define MERCH_TRACE_SPAN_VAR(var, cat, name) \
  ::merch::obs::NullSpan var;                \
  (void)sizeof(var)
#define MERCH_TRACE_INSTANT(cat, name) \
  do {                                 \
  } while (0)
#define MERCH_TRACE_INSTANT_ARG(cat, name, argname, argval) \
  do {                                                      \
  } while (0)

#endif  // MERCH_OBS_ENABLED
