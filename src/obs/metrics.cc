#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace merch::obs {
namespace {

void AppendNumber(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  *out += buf;
}

void AppendCount(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

// Build identity, baked in by src/obs/CMakeLists.txt at configure time.
#if !defined(MERCH_VERSION)
#define MERCH_VERSION "0.0.0"
#endif
#if !defined(MERCH_GIT_SHA)
#define MERCH_GIT_SHA "unknown"
#endif

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::Observe(double v, std::uint64_t exemplar_trace_id) {
  // First bound >= v: Prometheus `le` semantics (v on a boundary counts
  // in that boundary's bucket).
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplars_[idx].trace_id.store(exemplar_trace_id,
                                   std::memory_order_relaxed);
    exemplars_[idx].value.store(v, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> Histogram::Exemplars() const {
  std::vector<std::pair<std::uint64_t, double>> out(exemplars_.size());
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    out[i] = {exemplars_[i].trace_id.load(std::memory_order_relaxed),
              exemplars_[i].value.load(std::memory_order_relaxed)};
  }
  return out;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
      0.1,    0.5,    1.0,   5.0,   10.0, 60.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->BucketCounts();
    hs.exemplars = h->Exemplars();
    hs.count = h->Count();
    hs.sum = h->Sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  // Build identity first, in every export: federation keys per-shard
  // provenance off it, and a scrape with nothing recorded yet still
  // identifies the process.
  out += "# TYPE merch_build_info gauge\n";
  out += "merch_build_info{version=\"" MERCH_VERSION
         "\",git_sha=\"" MERCH_GIT_SHA "\",obs=\"";
#if defined(MERCH_OBS_ENABLED)
  out += "on";
#else
  out += "off";
#endif
  out += "\"} 1\n";
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n" + name + " ";
    AppendCount(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n" + name + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    // OpenMetrics-style exemplar suffix on buckets that have one: the
    // hex trace_id links the observation to its distributed trace.
    const auto append_exemplar = [&](std::size_t i) {
      if (i >= h.exemplars.size() || h.exemplars[i].first == 0) return;
      char buf[64];
      std::snprintf(buf, sizeof buf, " # {trace_id=\"%" PRIx64 "\"} ",
                    h.exemplars[i].first);
      out += buf;
      AppendNumber(&out, h.exemplars[i].second);
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name + "_bucket{le=\"";
      AppendNumber(&out, h.bounds[i]);
      out += "\"} ";
      AppendCount(&out, cumulative);
      append_exemplar(i);
      out += "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} ";
    AppendCount(&out, h.count);
    append_exemplar(h.bounds.size());
    out += "\n" + h.name + "_sum ";
    AppendNumber(&out, h.sum);
    out += "\n" + h.name + "_count ";
    AppendCount(&out, h.count);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendCount(&out, value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendNumber(&out, value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      AppendNumber(&out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      AppendCount(&out, h.counts[i]);
    }
    out += "], \"count\": ";
    AppendCount(&out, h.count);
    out += ", \"sum\": ";
    AppendNumber(&out, h.sum);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) {
    e.trace_id.store(0, std::memory_order_relaxed);
    e.value.store(0.0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Set(0.0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

}  // namespace merch::obs
