#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace merch::obs {
namespace {

void AppendNumber(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  *out += buf;
}

void AppendCount(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::Observe(double v) {
  // First bound >= v: Prometheus `le` semantics (v on a boundary counts
  // in that boundary's bucket).
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
      0.1,    0.5,    1.0,   5.0,   10.0, 60.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->BucketCounts();
    hs.count = h->Count();
    hs.sum = h->Sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n" + name + " ";
    AppendCount(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n" + name + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name + "_bucket{le=\"";
      AppendNumber(&out, h.bounds[i]);
      out += "\"} ";
      AppendCount(&out, cumulative);
      out += "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} ";
    AppendCount(&out, h.count);
    out += "\n" + h.name + "_sum ";
    AppendNumber(&out, h.sum);
    out += "\n" + h.name + "_count ";
    AppendCount(&out, h.count);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendCount(&out, value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendNumber(&out, value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      AppendNumber(&out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      AppendCount(&out, h.counts[i]);
    }
    out += "], \"count\": ";
    AppendCount(&out, h.count);
    out += ", \"sum\": ";
    AppendNumber(&out, h.sum);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Set(0.0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

}  // namespace merch::obs
