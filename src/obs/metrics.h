// Process-wide metrics registry: named thread-safe counters, gauges, and
// fixed-bucket histograms with point-in-time snapshots, exported as JSON
// or Prometheus text exposition format.
//
// Instruments are created on first use and live until process exit, so a
// `Counter&` fetched once (the MERCH_METRIC_* macros cache it in a
// function-local static) is a single relaxed atomic op per update. Like
// the trace macros, every MERCH_METRIC_* call compiles to nothing under
// -DMERCH_OBS=OFF.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/distributed/context.h"  // MERCH_METRIC_OBSERVE_TRACED

namespace merch::obs {

/// Monotonic counter. Prometheus type `counter`.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value. Prometheus type `gauge`.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations `v <=
/// bounds[i]` and `v > bounds[i-1]`; everything above the last bound
/// lands in the implicit +Inf bucket. Prometheus type `histogram`.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; the +Inf bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  /// With a nonzero `exemplar_trace_id`, the observation also becomes
  /// the bucket's exemplar (latest writer wins — the two stores are
  /// individually relaxed, so a reader can pair an id with a neighbour
  /// observation's value; exemplars are diagnostic samples, not
  /// accounting), exported OpenMetrics-style so a slow bucket links to
  /// its distributed trace.
  void Observe(double v, std::uint64_t exemplar_trace_id = 0);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) per-bucket counts; size() == bounds().size()+1,
  /// the final entry being the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  /// Per-bucket (trace_id, value) exemplars; trace_id 0 = none yet.
  std::vector<std::pair<std::uint64_t, double>> Exemplars() const;
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  struct BucketExemplar {
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::vector<BucketExemplar> exemplars_;            // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for sub-second latencies, in seconds.
const std::vector<double>& DefaultLatencyBounds();

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // raw, bounds.size() + 1 entries
  // Per-bucket (trace_id, value); trace_id 0 = no exemplar recorded.
  std::vector<std::pair<std::uint64_t, double>> exemplars;
  std::uint64_t count = 0;
  double sum = 0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Find-or-create by name. Metric names must be unique across the three
  /// instrument kinds ([a-zA-Z_][a-zA-Z0-9_]* to stay Prometheus-legal).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` applies only on first creation; later callers get the
  /// existing instrument regardless of the bounds they pass.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Consistent-enough point-in-time copy (each instrument is read
  /// atomically; the set of instruments is read under the registry lock).
  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (one # TYPE line per metric).
  std::string PrometheusText() const;
  /// The same snapshot as a JSON object.
  std::string Json() const;

  /// Zero every instrument (tests and repeated bench passes). Instrument
  /// identities (references) remain valid.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace merch::obs

#if defined(MERCH_OBS_ENABLED)

/// Bump a named counter by `n`.
#define MERCH_METRIC_COUNT(name, n)                                     \
  do {                                                                  \
    static ::merch::obs::Counter& merch_obs_counter =                   \
        ::merch::obs::MetricsRegistry::Instance().GetCounter(name);     \
    merch_obs_counter.Add(static_cast<std::uint64_t>(n));               \
  } while (0)

/// Set a named gauge to `v`.
#define MERCH_METRIC_GAUGE_SET(name, v)                                 \
  do {                                                                  \
    static ::merch::obs::Gauge& merch_obs_gauge =                       \
        ::merch::obs::MetricsRegistry::Instance().GetGauge(name);       \
    merch_obs_gauge.Set(static_cast<double>(v));                        \
  } while (0)

/// Add a (possibly negative) delta to a named gauge.
#define MERCH_METRIC_GAUGE_ADD(name, d)                                 \
  do {                                                                  \
    static ::merch::obs::Gauge& merch_obs_gauge =                       \
        ::merch::obs::MetricsRegistry::Instance().GetGauge(name);       \
    merch_obs_gauge.Add(static_cast<double>(d));                        \
  } while (0)

/// Observe `v` in a named histogram with the default latency bounds.
#define MERCH_METRIC_OBSERVE(name, v)                                   \
  do {                                                                  \
    static ::merch::obs::Histogram& merch_obs_hist =                    \
        ::merch::obs::MetricsRegistry::Instance().GetHistogram(         \
            name, ::merch::obs::DefaultLatencyBounds());                \
    merch_obs_hist.Observe(static_cast<double>(v));                     \
  } while (0)

/// Observe `v` and, when a distributed trace context is active, record
/// the observation as the bucket's exemplar so the export links the
/// latency to its trace (obs/distributed/context.h).
#define MERCH_METRIC_OBSERVE_TRACED(name, v)                            \
  do {                                                                  \
    static ::merch::obs::Histogram& merch_obs_hist =                    \
        ::merch::obs::MetricsRegistry::Instance().GetHistogram(         \
            name, ::merch::obs::DefaultLatencyBounds());                \
    merch_obs_hist.Observe(static_cast<double>(v),                      \
                           ::merch::obs::CurrentTraceContext().trace_id); \
  } while (0)

#else  // !MERCH_OBS_ENABLED

#define MERCH_METRIC_COUNT(name, n) \
  do {                              \
  } while (0)
#define MERCH_METRIC_GAUGE_SET(name, v) \
  do {                                  \
  } while (0)
#define MERCH_METRIC_GAUGE_ADD(name, d) \
  do {                                  \
  } while (0)
#define MERCH_METRIC_OBSERVE(name, v) \
  do {                                \
  } while (0)
#define MERCH_METRIC_OBSERVE_TRACED(name, v) \
  do {                                       \
  } while (0)

#endif  // MERCH_OBS_ENABLED
