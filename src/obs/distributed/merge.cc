#include "obs/distributed/merge.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "obs/json.h"
#include "obs/validate.h"

namespace merch::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      *out += buf;
    } else {
      *out += static_cast<char>(c);
    }
  }
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  *out += buf;
}

/// Re-serialize a parsed JSON value (the merge rewrites `ts`, everything
/// else passes through).
void AppendJson(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendJsonNumber(out, v.number);
      break;
    case JsonValue::Kind::kString:
      *out += '"';
      AppendEscaped(out, v.str);
      *out += '"';
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) *out += ", ";
        first = false;
        AppendJson(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.fields) {
        if (!first) *out += ", ";
        first = false;
        *out += '"';
        AppendEscaped(out, key);
        *out += "\": ";
        AppendJson(value, out);
      }
      *out += '}';
      break;
    }
  }
}

struct FileInfo {
  JsonValue doc;
  std::string process_name;
  std::uint64_t pid = 0;
  std::vector<std::pair<std::uint64_t, std::int64_t>> peers;  // pid, offset
  double shift_us = 0;
  bool anchored = false;
};

/// One span eligible to anchor a flow arrow.
struct FlowPoint {
  std::uint64_t pid = 0;
  double tid = 0;
  double ts = 0;   // already shifted + rebased
  double dur = 0;
};

bool Fail(std::string* error, std::size_t file_index, const std::string& why) {
  if (error != nullptr) {
    *error = "input " + std::to_string(file_index) + ": " + why;
  }
  return false;
}

}  // namespace

bool MergeTraces(const std::vector<std::string>& jsons, std::string* out_json,
                 std::string* error, MergeSummary* summary) {
  if (jsons.empty()) {
    if (error != nullptr) *error = "no input traces";
    return false;
  }
  std::vector<FileInfo> files(jsons.size());
  std::map<std::uint64_t, std::size_t> by_pid;
  for (std::size_t i = 0; i < jsons.size(); ++i) {
    FileInfo& file = files[i];
    std::string parse_error;
    if (!ParseJson(jsons[i], &file.doc, &parse_error)) {
      return Fail(error, i, "not valid JSON: " + parse_error);
    }
    if (!file.doc.is_object() || file.doc.Find("traceEvents") == nullptr ||
        !file.doc.Find("traceEvents")->is_array()) {
      return Fail(error, i, "missing 'traceEvents' array");
    }
    const JsonValue* meta = file.doc.Find("merchMeta");
    if (meta == nullptr || !meta->is_object()) {
      return Fail(error, i,
                  "missing 'merchMeta' (not exported with process metadata; "
                  "see obs/distributed/export.h)");
    }
    const JsonValue* name = meta->Find("process_name");
    const JsonValue* pid = meta->Find("pid");
    if (name == nullptr || !name->is_string() || pid == nullptr ||
        !pid->is_number()) {
      return Fail(error, i, "merchMeta missing process_name/pid");
    }
    file.process_name = name->str;
    file.pid = static_cast<std::uint64_t>(pid->number);
    if (const JsonValue* peers = meta->Find("peers");
        peers != nullptr && peers->is_array()) {
      for (const JsonValue& peer : peers->items) {
        const JsonValue* peer_pid = peer.Find("pid");
        const JsonValue* offset = peer.Find("offset_ns");
        if (peer_pid == nullptr || !peer_pid->is_number() ||
            offset == nullptr || !offset->is_number()) {
          return Fail(error, i, "malformed merchMeta peer entry");
        }
        file.peers.emplace_back(static_cast<std::uint64_t>(peer_pid->number),
                                static_cast<std::int64_t>(offset->number));
      }
    }
    if (!by_pid.emplace(file.pid, i).second) {
      return Fail(error, i,
                  "duplicate pid " + std::to_string(file.pid) +
                      " (two inputs from the same process?)");
    }
  }

  // Root: a process no other file measured as a peer — the initiating
  // client. Fall back to the first input.
  std::set<std::uint64_t> referenced;
  for (const FileInfo& file : files) {
    for (const auto& [peer_pid, offset] : file.peers) {
      (void)offset;
      referenced.insert(peer_pid);
    }
  }
  std::size_t root = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (referenced.count(files[i].pid) == 0) {
      root = i;
      break;
    }
  }

  // Propagate shifts over the peer edges, both directions: if A measured
  // B at offset o (t_B + o = t_A), then shift_B = shift_A + o.
  files[root].anchored = true;
  std::vector<std::size_t> queue = {root};
  while (!queue.empty()) {
    const std::size_t at = queue.back();
    queue.pop_back();
    for (const auto& [peer_pid, offset] : files[at].peers) {
      const auto it = by_pid.find(peer_pid);
      if (it == by_pid.end() || files[it->second].anchored) continue;
      files[it->second].shift_us =
          files[at].shift_us + static_cast<double>(offset) / 1000.0;
      files[it->second].anchored = true;
      queue.push_back(it->second);
    }
    for (const auto& [other_pid, other_index] : by_pid) {
      (void)other_pid;
      if (files[other_index].anchored) continue;
      for (const auto& [peer_pid, offset] : files[other_index].peers) {
        if (peer_pid != files[at].pid) continue;
        files[other_index].shift_us =
            files[at].shift_us - static_cast<double>(offset) / 1000.0;
        files[other_index].anchored = true;
        queue.push_back(other_index);
        break;
      }
    }
  }

  // Rebase so the earliest shifted timestamp lands at 0 (per-process
  // clocks start at their own Start(), so raw shifted values can be
  // negative, which Chrome rejects).
  double min_ts = 0;
  bool have_ts = false;
  for (const FileInfo& file : files) {
    for (const JsonValue& ev : file.doc.Find("traceEvents")->items) {
      const JsonValue* ts = ev.Find("ts");
      if (ts == nullptr || !ts->is_number()) continue;
      const double shifted = ts->number + file.shift_us;
      if (!have_ts || shifted < min_ts) min_ts = shifted;
      have_ts = true;
    }
  }

  MergeSummary sum;
  sum.files = files.size();
  sum.root_process = files[root].process_name;
  for (const FileInfo& file : files) {
    if (!file.anchored) ++sum.unanchored;
  }

  std::map<std::uint64_t, std::map<std::uint64_t, FlowPoint>> flows_by_trace;
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  char buf[96];
  for (const FileInfo& file : files) {
    for (const JsonValue& ev : file.doc.Find("traceEvents")->items) {
      if (!ev.is_object()) continue;
      if (!first) out += ",";
      first = false;
      out += "\n{";
      bool first_field = true;
      double adjusted_ts = 0;
      bool has_ts = false;
      for (const auto& [key, value] : ev.fields) {
        if (!first_field) out += ", ";
        first_field = false;
        out += '"';
        AppendEscaped(&out, key);
        out += "\": ";
        if (key == "ts" && value.is_number()) {
          adjusted_ts = value.number + file.shift_us - min_ts;
          has_ts = true;
          std::snprintf(buf, sizeof buf, "%.3f", adjusted_ts);
          out += buf;
        } else {
          AppendJson(value, &out);
        }
      }
      out += "}";
      ++sum.events;

      // Candidate flow anchor: a complete span stamped with a trace id.
      const JsonValue* ph = ev.Find("ph");
      const JsonValue* args = ev.Find("args");
      if (has_ts && ph != nullptr && ph->is_string() && ph->str == "X" &&
          args != nullptr && args->is_object()) {
        const JsonValue* trace_id = args->Find("trace_id");
        if (trace_id != nullptr && trace_id->is_number() &&
            trace_id->number > 0) {
          const std::uint64_t id =
              static_cast<std::uint64_t>(trace_id->number);
          const JsonValue* tid = ev.Find("tid");
          const JsonValue* dur = ev.Find("dur");
          FlowPoint point;
          point.pid = file.pid;
          point.tid = tid != nullptr && tid->is_number() ? tid->number : 0;
          point.ts = adjusted_ts;
          point.dur = dur != nullptr && dur->is_number() ? dur->number : 0;
          // Earliest span per (trace, process): the arrow enters each
          // process where the request first touched it.
          auto [it, inserted] =
              flows_by_trace[id].emplace(file.pid, point);
          if (!inserted && point.ts < it->second.ts) it->second = point;
        }
      }
    }
  }

  // Flow arrows for every trace spanning at least two processes.
  for (const auto& [trace_id, by_process] : flows_by_trace) {
    if (by_process.size() < 2) continue;
    ++sum.linked_traces;
    std::vector<FlowPoint> chain;
    for (const auto& [pid, point] : by_process) {
      (void)pid;
      chain.push_back(point);
    }
    std::stable_sort(chain.begin(), chain.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts < b.ts;
                     });
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const FlowPoint& point = chain[k];
      const char* ph =
          k == 0 ? "s" : (k + 1 == chain.size() ? "f" : "t");
      // Nudge the binding point inside the span so the arrow attaches to
      // the slice rather than its edge.
      const double ts = point.ts + std::min(point.dur / 2.0, 1.0);
      if (!first) out += ",";
      first = false;
      out += "\n{\"name\": \"request\", \"cat\": \"net\", \"ph\": \"";
      out += ph;
      std::snprintf(buf, sizeof buf,
                    "\", \"id\": %" PRIu64 ", \"ts\": %.3f, \"pid\": %" PRIu64
                    ", \"tid\": ",
                    trace_id, ts, point.pid);
      out += buf;
      AppendJsonNumber(&out, point.tid);
      if (ph[0] == 'f') out += ", \"bp\": \"e\"";
      out += "}";
      ++sum.flows;
    }
  }
  out += "\n]}\n";

  const TraceValidation check = ValidateChromeTrace(out);
  if (!check.ok) {
    if (error != nullptr) {
      *error = "internal: merged trace failed validation: " + check.error;
    }
    return false;
  }

  if (summary != nullptr) *summary = sum;
  *out_json = std::move(out);
  return true;
}

}  // namespace merch::obs
