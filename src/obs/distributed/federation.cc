#include "obs/distributed/federation.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

namespace merch::obs {
namespace {

void AppendNumber(std::string* out, double v) {
  // Counter/bucket values are integral u64 well below 2^53: print them
  // without an exponent so the output byte-matches the per-shard
  // exporter. Everything else gets the exporter's %.9g.
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  *out += buf;
}

void AppendExemplar(std::string* out, const PromExemplar& ex) {
  if (ex.trace_id == 0) return;
  char buf[64];
  std::snprintf(buf, sizeof buf, " # {trace_id=\"%" PRIx64 "\"} ",
                ex.trace_id);
  *out += buf;
  char val[48];
  std::snprintf(val, sizeof val, "%.9g", ex.value);
  *out += val;
}

struct RawBucket {
  double le = 0;  // +Inf bucket holds INFINITY
  std::uint64_t cumulative = 0;
  PromExemplar exemplar;
};

struct RawHistogram {
  std::vector<RawBucket> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

bool Fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Consume a `{…}` label block starting at `*pos` (which must point at
/// '{'); returns the inner text and advances past the closing brace.
/// Understands quoted values so a '}' inside a label value is not a
/// terminator.
bool TakeLabelBlock(const std::string& line, std::size_t* pos,
                    std::string* inner) {
  std::size_t i = *pos + 1;
  bool in_string = false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '}') {
      *inner = line.substr(*pos + 1, i - *pos - 1);
      *pos = i + 1;
      return true;
    }
  }
  return false;
}

/// The value of label `key` inside a raw label block, or "" if absent.
std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const std::size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = labels.find('"', start);
  if (end == std::string::npos) return "";
  return labels.substr(start, end - start);
}

}  // namespace

bool ParsePrometheusText(const std::string& text, ParsedMetrics* out,
                         std::string* error) {
  *out = ParsedMetrics{};
  std::map<std::string, std::string> types;
  std::map<std::string, RawHistogram> raw_histograms;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t name_start = 7;
      const std::size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) {
        return Fail(error, line_no, "malformed # TYPE line");
      }
      types[line.substr(name_start, name_end - name_start)] =
          line.substr(name_end + 1);
      continue;
    }
    if (line[0] == '#') continue;  // other comments

    // Sample line: name[{labels}] value [# {labels} exemplar-value]
    std::size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    if (i == 0) return Fail(error, line_no, "expected metric name");
    const std::string name = line.substr(0, i);
    std::string labels;
    if (i < line.size() && line[i] == '{') {
      if (!TakeLabelBlock(line, &i, &labels)) {
        return Fail(error, line_no, "unterminated label block");
      }
    }
    while (i < line.size() && line[i] == ' ') ++i;
    char* value_end = nullptr;
    const double value = std::strtod(line.c_str() + i, &value_end);
    if (value_end == line.c_str() + i) {
      return Fail(error, line_no, "expected sample value");
    }
    i = static_cast<std::size_t>(value_end - line.c_str());

    PromExemplar exemplar;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '#') {
      ++i;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '{') {
        return Fail(error, line_no, "malformed exemplar");
      }
      std::string ex_labels;
      if (!TakeLabelBlock(line, &i, &ex_labels)) {
        return Fail(error, line_no, "unterminated exemplar labels");
      }
      const std::string id = LabelValue(ex_labels, "trace_id");
      exemplar.trace_id = std::strtoull(id.c_str(), nullptr, 16);
      while (i < line.size() && line[i] == ' ') ++i;
      exemplar.value = std::strtod(line.c_str() + i, nullptr);
    }

    if (name == "merch_build_info") {
      out->build_info_labels = labels;
      continue;
    }

    // Histogram series: name_bucket / name_sum / name_count where the
    // stem was declared `# TYPE <stem> histogram`.
    auto stem_of = [&](const char* suffix) -> std::string {
      const std::size_t len = std::strlen(suffix);
      if (name.size() <= len || name.compare(name.size() - len, len, suffix)) {
        return "";
      }
      const std::string stem = name.substr(0, name.size() - len);
      const auto it = types.find(stem);
      return it != types.end() && it->second == "histogram" ? stem : "";
    };
    if (const std::string stem = stem_of("_bucket"); !stem.empty()) {
      const std::string le = LabelValue(labels, "le");
      if (le.empty()) return Fail(error, line_no, "bucket without le label");
      RawBucket bucket;
      bucket.le = le == "+Inf" ? INFINITY : std::strtod(le.c_str(), nullptr);
      bucket.cumulative = static_cast<std::uint64_t>(value);
      bucket.exemplar = exemplar;
      raw_histograms[stem].buckets.push_back(bucket);
      continue;
    }
    if (const std::string stem = stem_of("_sum"); !stem.empty()) {
      raw_histograms[stem].sum = value;
      continue;
    }
    if (const std::string stem = stem_of("_count"); !stem.empty()) {
      raw_histograms[stem].count = static_cast<std::uint64_t>(value);
      continue;
    }

    const auto type_it = types.find(name);
    if (type_it == types.end()) {
      return Fail(error, line_no, "sample for undeclared metric '" + name + "'");
    }
    if (type_it->second == "counter") {
      out->counters[name] = value;
    } else if (type_it->second == "gauge") {
      out->gauges[name] = value;
    } else {
      return Fail(error, line_no,
                  "unsupported metric type '" + type_it->second + "'");
    }
  }

  for (auto& [name, raw] : raw_histograms) {
    PromHistogram h;
    for (std::size_t b = 0; b < raw.buckets.size(); ++b) {
      const RawBucket& bucket = raw.buckets[b];
      if (std::isinf(bucket.le)) {
        if (b + 1 != raw.buckets.size()) {
          return Fail(error, 0,
                      "histogram '" + name + "': +Inf bucket is not last");
        }
      } else {
        if (!h.bounds.empty() && bucket.le <= h.bounds.back()) {
          return Fail(error, 0,
                      "histogram '" + name + "': le bounds not ascending");
        }
        h.bounds.push_back(bucket.le);
      }
      h.cumulative.push_back(bucket.cumulative);
      h.exemplars.push_back(bucket.exemplar);
    }
    if (h.cumulative.size() != h.bounds.size() + 1) {
      return Fail(error, 0, "histogram '" + name + "': missing +Inf bucket");
    }
    h.count = raw.count;
    h.sum = raw.sum;
    out->histograms[name] = std::move(h);
  }
  return true;
}

bool FederateMetrics(const std::vector<ShardMetrics>& shards,
                     std::string* out_text, std::string* error) {
  std::string out;

  // Build info: one line per shard, shard label first.
  bool any_build_info = false;
  for (const ShardMetrics& shard : shards) {
    if (shard.metrics.build_info_labels.empty()) continue;
    if (!any_build_info) out += "# TYPE merch_build_info gauge\n";
    any_build_info = true;
    out += "merch_build_info{shard=\"" + shard.label + "\"," +
           shard.metrics.build_info_labels + "} 1\n";
  }

  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  std::set<std::string> histogram_names;
  for (const ShardMetrics& shard : shards) {
    for (const auto& [name, v] : shard.metrics.counters) {
      (void)v;
      counter_names.insert(name);
    }
    for (const auto& [name, v] : shard.metrics.gauges) {
      (void)v;
      gauge_names.insert(name);
    }
    for (const auto& [name, h] : shard.metrics.histograms) {
      (void)h;
      histogram_names.insert(name);
    }
  }

  const auto emit_scalar = [&](const std::string& name, const char* type,
                               const std::map<std::string, double>
                                   ParsedMetrics::* field) {
    out += "# TYPE " + name + " " + type + "\n";
    double total = 0;
    for (const ShardMetrics& shard : shards) {
      const auto& values = shard.metrics.*field;
      const auto it = values.find(name);
      if (it == values.end()) continue;
      out += name + "{shard=\"" + shard.label + "\"} ";
      AppendNumber(&out, it->second);
      out += "\n";
      total += it->second;
    }
    out += name + " ";
    AppendNumber(&out, total);
    out += "\n";
  };
  for (const std::string& name : counter_names) {
    emit_scalar(name, "counter", &ParsedMetrics::counters);
  }
  for (const std::string& name : gauge_names) {
    emit_scalar(name, "gauge", &ParsedMetrics::gauges);
  }

  for (const std::string& name : histogram_names) {
    PromHistogram merged;
    const std::string* first_shard = nullptr;
    for (const ShardMetrics& shard : shards) {
      const auto it = shard.metrics.histograms.find(name);
      if (it == shard.metrics.histograms.end()) continue;
      const PromHistogram& h = it->second;
      if (first_shard == nullptr) {
        merged = h;
        first_shard = &shard.label;
        continue;
      }
      if (h.bounds != merged.bounds) {
        if (error != nullptr) {
          const auto join = [](const std::vector<double>& bounds) {
            std::string s;
            char buf[48];
            for (std::size_t i = 0; i < bounds.size(); ++i) {
              if (i > 0) s += ",";
              std::snprintf(buf, sizeof buf, "%.9g", bounds[i]);
              s += buf;
            }
            return s;
          };
          *error = "histogram '" + name + "': shard \"" + *first_shard +
                   "\" bounds [" + join(merged.bounds) + "] != shard \"" +
                   shard.label + "\" bounds [" + join(h.bounds) +
                   "]; refusing to merge mismatched bucket layouts";
        }
        return false;
      }
      for (std::size_t b = 0; b < merged.cumulative.size(); ++b) {
        merged.cumulative[b] += h.cumulative[b];
        // Keep the most extreme exemplar: the whole point is linking the
        // slowest request in the fleet to its trace.
        if (h.exemplars[b].trace_id != 0 &&
            (merged.exemplars[b].trace_id == 0 ||
             h.exemplars[b].value > merged.exemplars[b].value)) {
          merged.exemplars[b] = h.exemplars[b];
        }
      }
      merged.count += h.count;
      merged.sum += h.sum;
    }

    out += "# TYPE " + name + " histogram\n";
    for (std::size_t b = 0; b < merged.cumulative.size(); ++b) {
      out += name + "_bucket{le=\"";
      if (b < merged.bounds.size()) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.9g", merged.bounds[b]);
        out += buf;
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      AppendNumber(&out, static_cast<double>(merged.cumulative[b]));
      AppendExemplar(&out, merged.exemplars[b]);
      out += "\n";
    }
    // Per-shard series before the fleet totals, so re-parsing the
    // federated text (labels are not keyed by the parser) lands on the
    // merged values.
    for (const ShardMetrics& shard : shards) {
      const auto it = shard.metrics.histograms.find(name);
      if (it == shard.metrics.histograms.end()) continue;
      out += name + "_count{shard=\"" + shard.label + "\"} ";
      AppendNumber(&out, static_cast<double>(it->second.count));
      out += "\n" + name + "_sum{shard=\"" + shard.label + "\"} ";
      AppendNumber(&out, it->second.sum);
      out += "\n";
    }
    out += name + "_sum ";
    AppendNumber(&out, merged.sum);
    out += "\n" + name + "_count ";
    AppendNumber(&out, static_cast<double>(merged.count));
    out += "\n";
  }

  *out_text = std::move(out);
  return true;
}

}  // namespace merch::obs
