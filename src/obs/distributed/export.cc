#include "obs/distributed/export.h"

#include <cinttypes>
#include <cstdio>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace merch::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      *out += buf;
    } else {
      *out += static_cast<char>(c);
    }
  }
}

}  // namespace

std::int64_t EstimateClockOffset(const std::vector<ClockSample>& samples) {
  bool have = false;
  std::uint64_t best_rtt = 0;
  std::int64_t best_offset = 0;
  for (const ClockSample& s : samples) {
    if (s.local_recv_ns < s.local_send_ns) continue;
    const std::uint64_t rtt = s.local_recv_ns - s.local_send_ns;
    if (have && rtt >= best_rtt) continue;
    const std::int64_t midpoint =
        static_cast<std::int64_t>(s.local_send_ns + rtt / 2);
    best_offset = midpoint - static_cast<std::int64_t>(s.peer_now_ns);
    best_rtt = rtt;
    have = true;
  }
  return best_offset;
}

ExportMeta BuildExportMeta(const ProcessExportMeta& meta) {
  ExportMeta out;
  out.process_name = meta.process_name;
  out.pid = meta.pid;
#if !defined(_WIN32)
  if (out.pid == 0) out.pid = static_cast<std::uint64_t>(::getpid());
#endif
  if (out.pid == 0) out.pid = 1;

  char buf[64];
  out.extra_json = "{\"process_name\": \"";
  AppendEscaped(&out.extra_json, meta.process_name);
  std::snprintf(buf, sizeof buf, "\", \"pid\": %" PRIu64 ", \"peers\": [",
                out.pid);
  out.extra_json += buf;
  bool first = true;
  for (const PeerClock& peer : meta.peers) {
    if (!first) out.extra_json += ", ";
    first = false;
    out.extra_json += "{\"name\": \"";
    AppendEscaped(&out.extra_json, peer.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"pid\": %" PRIu64 ", \"offset_ns\": %" PRId64 "}",
                  peer.pid, peer.offset_ns);
    out.extra_json += buf;
  }
  out.extra_json += "]}";
  return out;
}

bool WriteProcessTrace(const TraceRecorder& rec, const std::string& path,
                       const ProcessExportMeta& meta, std::string* error) {
  const ExportMeta lowered = BuildExportMeta(meta);
  return rec.WriteChromeJson(path, error, &lowered);
}

}  // namespace merch::obs
