// Per-process export metadata for distributed traces: which process an
// exported ring buffer belongs to, and how its trace clock relates to
// its peers'. Every process clock is "nanoseconds since
// TraceRecorder::Start()", so two processes' timestamps are unrelated
// until shifted by a measured offset; tools/trace_merge consumes the
// metadata written here to put all files on one timeline.
//
// The offset model is classic ping/pong (NTP with one sample kept): the
// pinger records send/receive times around a PING, the peer reports its
// own trace-clock reading in the v2 PONG payload, and the sample with
// the smallest round trip — the one with the least queueing noise —
// dates the peer reading at the midpoint of the round trip. The error
// is bounded by half that minimum RTT (loopback: microseconds, far
// below the millisecond-scale spans being aligned).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace merch::obs {

/// A measured peer clock relation: `peer trace time + offset_ns =
/// local trace time`.
struct PeerClock {
  std::string name;  // peer's process name, as reported in its PONG
  std::uint64_t pid = 0;
  std::int64_t offset_ns = 0;
};

/// One ping/pong measurement, all in trace-clock nanoseconds.
struct ClockSample {
  std::uint64_t local_send_ns = 0;  // local clock when PING left
  std::uint64_t local_recv_ns = 0;  // local clock when PONG arrived
  std::uint64_t peer_now_ns = 0;    // peer clock carried in the PONG
};

/// Offset from the minimum-RTT sample: midpoint(local send, local recv)
/// minus the peer reading. Empty input returns 0.
std::int64_t EstimateClockOffset(const std::vector<ClockSample>& samples);

/// Everything trace_merge needs to know about one process's export.
struct ProcessExportMeta {
  std::string process_name;
  std::uint64_t pid = 0;  // 0 = use the calling process's pid
  std::vector<PeerClock> peers;
};

/// Lower to the trace recorder's ExportMeta: real pid, process_name, and
/// a merchMeta JSON object `{"process_name":…, "pid":…, "peers":[…]}`.
ExportMeta BuildExportMeta(const ProcessExportMeta& meta);

/// WriteChromeJson with the process metadata attached.
bool WriteProcessTrace(const TraceRecorder& rec, const std::string& path,
                       const ProcessExportMeta& meta,
                       std::string* error = nullptr);

}  // namespace merch::obs
