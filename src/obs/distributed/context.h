// Cross-process trace context: the 16-byte identity (trace_id,
// parent_span_id) that ties spans recorded in different processes into
// one causal tree. The context travels on the wire in protocol-v2
// REQUEST/RESPONSE frames (src/net/frame.h) and lives in a thread-local
// between hops, so any span recorded while a TraceContextScope is active
// is stamped with the current trace_id automatically (see
// TraceRecorder::RecordSpan).
//
// Unlike the MERCH_TRACE_* macros this module is always compiled — the
// context is plain data and setting a thread-local is cheap — so the
// wire protocol can carry contexts even in a -DMERCH_OBS=OFF build
// (they just never reach a recorded span there).
#pragma once

#include <cstdint>

namespace merch::obs {

/// Identifiers are generated within 48 bits so they survive a round trip
/// through JSON numbers (IEEE-754 doubles are exact up to 2^53): the
/// Chrome-trace exporter writes trace ids as plain numbers and
/// tools/trace_merge reads them back.
inline constexpr std::uint64_t kTraceIdMask = (1ull << 48) - 1;

/// The propagated pair. trace_id == 0 means "no active trace": spans
/// recorded outside any context keep trace_id 0 and are left unlinked by
/// the merge tool.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// The calling thread's active context ({0, 0} when none).
TraceContext CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& ctx);

/// Nonzero 48-bit identifier, unique within and (probabilistically)
/// across processes: a per-process counter whitened with the pid and the
/// process start time.
std::uint64_t NewTraceId();
/// Same generator; span ids share the id space with trace ids.
std::uint64_t NewSpanId();

/// RAII: install `ctx` as the thread's current context, restore the
/// previous one on scope exit.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : saved_(CurrentTraceContext()) {
    SetCurrentTraceContext(ctx);
  }
  ~TraceContextScope() { SetCurrentTraceContext(saved_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace merch::obs
