// Cross-process trace merge: stitch per-process Chrome-trace exports
// (written via obs/distributed/export.h, so each carries merchMeta with
// pid/process_name/peer clock offsets) into one Perfetto-loadable
// timeline.
//
//   - Clock alignment: each file's timestamps are shifted into a common
//     frame by walking the measured peer offsets (peer time + offset =
//     measurer time) from a root process — the one no other file lists
//     as a peer, i.e. the client that initiated the requests. The whole
//     merged timeline is then rebased so the earliest event sits at 0.
//   - Flow events: spans that share a nonzero trace_id across two or
//     more processes get Chrome flow arrows ("s"/"t"/"f" with the
//     trace_id as flow id) from the earliest such span in each process
//     to the next, drawing the client → router → shard hop chain.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace merch::obs {

struct MergeSummary {
  std::size_t files = 0;
  std::size_t events = 0;         // events carried through
  std::size_t flows = 0;          // synthesized flow events
  std::size_t linked_traces = 0;  // trace ids seen in >= 2 processes
  std::size_t unanchored = 0;     // files with no offset path to the root
  std::string root_process;
};

/// Merge the parsed contents of `jsons` (one Chrome-trace JSON document
/// per process) into `*out_json`. Fails on unparseable input, missing
/// merchMeta, or duplicate pids.
bool MergeTraces(const std::vector<std::string>& jsons, std::string* out_json,
                 std::string* error, MergeSummary* summary = nullptr);

}  // namespace merch::obs
