// Metrics federation: parse the Prometheus text exposition produced by
// MetricsRegistry::PrometheusText (including OpenMetrics-style
// exemplars) and merge N shard exports into one fleet-level export.
//
// Merge semantics:
//   - counters and gauges: exact sums, plus one `{shard="…"}`-labelled
//     series per shard so the individual contributions stay visible;
//   - histograms: le-bucket-wise sums of the cumulative bucket counts,
//     which is only meaningful when every shard uses the same bucket
//     layout — mismatched layouts are a hard error, never a silent
//     mis-sum (the buckets would not be comparable);
//   - exemplars: per bucket, the largest-valued exemplar across shards
//     survives, so a p99 outlier keeps its trace_id through federation;
//   - merch_build_info: passed through per shard with the shard label
//     spliced in (summing build infos is meaningless).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace merch::obs {

/// Exemplar attached to one histogram bucket: the trace that produced
/// one recent observation in that bucket. trace_id 0 = no exemplar.
struct PromExemplar {
  std::uint64_t trace_id = 0;
  double value = 0;
};

struct PromHistogram {
  std::vector<double> bounds;              // finite le bounds, ascending
  std::vector<std::uint64_t> cumulative;   // bounds.size()+1; last = +Inf
  std::uint64_t count = 0;
  double sum = 0;
  std::vector<PromExemplar> exemplars;     // bounds.size()+1, per bucket
};

/// One parsed export. Values are doubles (counter values in this
/// codebase are u64 well below 2^53, so sums stay exact).
struct ParsedMetrics {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, PromHistogram> histograms;
  std::string build_info_labels;  // raw label block, "" if absent
};

/// Parse `text` (the subset of the exposition format this codebase
/// emits). Unknown or malformed lines fail with a line-numbered error.
bool ParsePrometheusText(const std::string& text, ParsedMetrics* out,
                         std::string* error);

struct ShardMetrics {
  std::string label;  // value for the `shard` label, e.g. "0", "router"
  ParsedMetrics metrics;
};

/// Render the federated export. Returns false (with a metric-naming
/// error) on mismatched histogram bucket layouts.
bool FederateMetrics(const std::vector<ShardMetrics>& shards,
                     std::string* out_text, std::string* error);

}  // namespace merch::obs
