#include "obs/distributed/context.h"

#include <atomic>
#include <chrono>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace merch::obs {
namespace {

thread_local TraceContext t_current;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t ProcessSeed() {
  // Computed once: pid ⊕ process start time. Two processes forked in the
  // same nanosecond still differ by pid.
  static const std::uint64_t seed = [] {
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#if defined(_WIN32)
    const std::uint64_t pid = static_cast<std::uint64_t>(_getpid());
#else
    const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
#endif
    return now ^ (pid << 32) ^ pid;
  }();
  return seed;
}

std::uint64_t NewId() {
  static std::atomic<std::uint64_t> counter{0};
  // Whiten a strictly increasing counter: ids from one process never
  // collide with each other, and the seed makes cross-process collisions
  // a 2^-48 lottery per pair.
  std::uint64_t id = 0;
  while (id == 0) {
    const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    id = SplitMix64(ProcessSeed() + n) & kTraceIdMask;
  }
  return id;
}

}  // namespace

TraceContext CurrentTraceContext() { return t_current; }

void SetCurrentTraceContext(const TraceContext& ctx) { t_current = ctx; }

std::uint64_t NewTraceId() { return NewId(); }

std::uint64_t NewSpanId() { return NewId(); }

}  // namespace merch::obs
