// Minimal JSON document parser, used to validate the observability
// exports (Chrome traces, metrics snapshots) in tests, in the
// tools/trace_check CLI, and in CI — without an external JSON dependency.
//
// Accepts strict RFC 8259 JSON (no comments, no trailing commas). Numbers
// are held as double; this is a validator/inspector, not a round-tripping
// store.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace merch::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                           // arrays
  std::vector<std::pair<std::string, JsonValue>> fields;  // objects

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// First field named `key` in an object, or nullptr.
  const JsonValue* Find(const std::string& key) const;
};

/// Parse `text` into `*out`. On failure returns false and describes the
/// first error (with byte offset) in `*error`.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace merch::obs
