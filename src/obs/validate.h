// Structural validation of Chrome trace_event JSON produced by the trace
// recorder — shared by tests/obs_test.cc, the tools/trace_check CLI, and
// the CI observability step.
#pragma once

#include <cstddef>
#include <set>
#include <string>

namespace merch::obs {

struct TraceValidation {
  bool ok = false;
  std::string error;  // first structural problem found
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::set<std::string> categories;  // distinct `cat` values seen
};

/// Checks that `json` is well-formed JSON shaped like a Chrome trace:
/// a top-level object with a `traceEvents` array whose entries each carry
/// a string `name`, a string `cat`, a one-char `ph` of "X" or "i", a
/// non-negative numeric `ts`, and (for "X" events) a non-negative `dur`.
TraceValidation ValidateChromeTrace(const std::string& json);

}  // namespace merch::obs
