// Structural validation of Chrome trace_event JSON produced by the trace
// recorder — shared by tests/obs_test.cc, the tools/trace_check CLI, and
// the CI observability step.
#pragma once

#include <cstddef>
#include <set>
#include <string>

namespace merch::obs {

struct TraceValidation {
  bool ok = false;
  std::string error;  // first structural problem found
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t flows = 0;     // flow events ("s"/"t"/"f") — merged traces
  std::size_t metadata = 0;  // "M" events (process_name); not in `events`
  std::set<std::string> categories;  // distinct `cat` values seen
};

/// Checks that `json` is well-formed JSON shaped like a Chrome trace:
/// a top-level object with a `traceEvents` array whose entries each carry
/// a string `name` and a `ph` of "X", "i", "M", or a flow phase
/// ("s"/"t"/"f"). "X"/"i"/flow events also need a string `cat` and a
/// non-negative numeric `ts`; "X" additionally a non-negative `dur`;
/// flow events a numeric `id` binding the arrow endpoints.
TraceValidation ValidateChromeTrace(const std::string& json);

}  // namespace merch::obs
