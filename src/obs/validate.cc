#include "obs/validate.h"

#include "obs/json.h"

namespace merch::obs {
namespace {

bool FailEvent(TraceValidation* v, std::size_t index,
               const std::string& why) {
  v->ok = false;
  v->error = "traceEvents[" + std::to_string(index) + "]: " + why;
  return false;
}

bool CheckEvent(const JsonValue& ev, std::size_t index, TraceValidation* v) {
  if (!ev.is_object()) return FailEvent(v, index, "not an object");
  const JsonValue* name = ev.Find("name");
  if (name == nullptr || !name->is_string() || name->str.empty()) {
    return FailEvent(v, index, "missing string 'name'");
  }
  const JsonValue* ph = ev.Find("ph");
  if (ph == nullptr || !ph->is_string()) {
    return FailEvent(v, index, "missing string 'ph'");
  }
  if (ph->str == "M") {
    // Process/thread metadata (e.g. process_name): no cat/ts required.
    ++v->metadata;
    return true;
  }
  const JsonValue* cat = ev.Find("cat");
  if (cat == nullptr || !cat->is_string() || cat->str.empty()) {
    return FailEvent(v, index, "missing string 'cat'");
  }
  const JsonValue* ts = ev.Find("ts");
  if (ts == nullptr || !ts->is_number() || ts->number < 0) {
    return FailEvent(v, index, "missing non-negative numeric 'ts'");
  }
  if (ph->str == "X") {
    const JsonValue* dur = ev.Find("dur");
    if (dur == nullptr || !dur->is_number() || dur->number < 0) {
      return FailEvent(v, index,
                       "'X' event missing non-negative numeric 'dur'");
    }
    ++v->spans;
  } else if (ph->str == "i") {
    ++v->instants;
  } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
    const JsonValue* id = ev.Find("id");
    if (id == nullptr || !id->is_number()) {
      return FailEvent(v, index, "flow event missing numeric 'id'");
    }
    ++v->flows;
  } else {
    return FailEvent(v, index, "unexpected ph '" + ph->str + "'");
  }
  v->categories.insert(cat->str);
  ++v->events;
  return true;
}

}  // namespace

TraceValidation ValidateChromeTrace(const std::string& json) {
  TraceValidation v;
  JsonValue root;
  std::string error;
  if (!ParseJson(json, &root, &error)) {
    v.error = "not valid JSON: " + error;
    return v;
  }
  if (!root.is_object()) {
    v.error = "top level is not an object";
    return v;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    v.error = "missing 'traceEvents' array";
    return v;
  }
  v.ok = true;
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    if (!CheckEvent(events->items[i], i, &v)) return v;
  }
  return v;
}

}  // namespace merch::obs
