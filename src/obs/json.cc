#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace merch::obs {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 64) return Fail("nesting too deep");
    bool ok = ParseValueInner(out);
    --depth_;
    return ok;
  }

  bool ParseValueInner(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          pos_ += 4;
          return true;
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          pos_ += 5;
          return true;
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          out->kind = JsonValue::Kind::kNull;
          pos_ += 4;
          return true;
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("invalid \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs pass through as two
            // three-byte sequences; good enough for a validator).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("invalid escape");
        }
        ++pos_;
      } else {
        *out += c;
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

}  // namespace merch::obs
