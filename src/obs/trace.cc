#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/distributed/context.h"

namespace merch::obs {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping for event names. Names are code-controlled, but a
/// workload or region name could carry anything.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

const char* CategoryName(Category cat) {
  switch (cat) {
    case Category::kSim:
      return "sim";
    case Category::kHm:
      return "hm";
    case Category::kService:
      return "service";
    case Category::kCore:
      return "core";
    case Category::kPool:
      return "pool";
    case Category::kCache:
      return "cache";
    case Category::kNet:
      return "net";
    case Category::kApp:
      return "app";
  }
  return "?";
}

TraceRecorder& TraceRecorder::Instance() {
  // Leaked on purpose: worker threads may emit events during static
  // destruction of other objects.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->written = 0;
  }
  t0_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_release);
}

std::uint64_t TraceRecorder::NowNs() const {
  const std::uint64_t t0 = t0_ns_.load(std::memory_order_relaxed);
  if (t0 == 0) return 0;
  const std::uint64_t now = SteadyNowNs();
  return now > t0 ? now - t0 : 0;
}

void TraceRecorder::set_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  ring_capacity_ = std::max<std::size_t>(16, events);
}

std::size_t TraceRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return ring_capacity_;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // The shared_ptr is co-owned by the registry, so a buffer outlives its
  // thread and its events still appear in exports after the thread joins.
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    buf->ring.resize(ring_capacity_);
    buf->tid = next_tid_++;
    buffers_.push_back(buf);
    return buf;
  }();
  return *local;
}

void TraceRecorder::Append(const TraceEvent& ev) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);  // contended only by exporters
  buf.ring[buf.written % buf.ring.size()] = ev;
  buf.ring[buf.written % buf.ring.size()].tid = buf.tid;
  ++buf.written;
}

void TraceRecorder::RecordSpan(Category cat, const char* name,
                               std::uint64_t start_ns, std::uint64_t dur_ns,
                               const char* arg_name, std::int64_t arg) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.trace_id = CurrentTraceContext().trace_id;
  ev.cat = cat;
  ev.span = true;
  Append(ev);
}

void TraceRecorder::RecordInstant(Category cat, const char* name,
                                  const char* arg_name, std::int64_t arg) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.ts_ns = NowNs();
  ev.trace_id = CurrentTraceContext().trace_id;
  ev.cat = cat;
  ev.span = false;
  Append(ev);
}

const char* TraceRecorder::Intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& existing : interned_) {
    if (*existing == s) return existing->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    const std::size_t cap = buf->ring.size();
    const std::size_t n = std::min<std::uint64_t>(buf->written, cap);
    // Oldest retained event first: on wrap-around the ring keeps the
    // newest `cap` events starting at written % cap.
    const std::size_t start =
        buf->written > cap ? buf->written % cap : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(buf->ring[(start + i) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    const std::uint64_t cap = buf->ring.size();
    if (buf->written > cap) total += buf->written - cap;
  }
  return total;
}

std::string TraceRecorder::ChromeJson(const ExportMeta* meta) const {
  const std::vector<TraceEvent> events = Snapshot();
  const std::uint64_t pid = meta != nullptr ? meta->pid : 1;
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[160];
  bool first = true;
  if (meta != nullptr && !meta->process_name.empty()) {
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                  "%" PRIu64 ", \"tid\": 0, \"args\": {\"name\": \"",
                  pid);
    out += buf;
    AppendJsonEscaped(&out, meta->process_name.c_str());
    out += "\"}}";
    first = false;
  }
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": \"";
    AppendJsonEscaped(&out, ev.name);
    out += "\", \"cat\": \"";
    out += CategoryName(ev.cat);
    // Chrome timestamps are microseconds; keep nanosecond precision in
    // the fraction.
    std::snprintf(buf, sizeof buf, "\", \"ph\": \"%s\", \"ts\": %.3f",
                  ev.span ? "X" : "i",
                  static_cast<double>(ev.ts_ns) / 1000.0);
    out += buf;
    if (ev.span) {
      std::snprintf(buf, sizeof buf, ", \"dur\": %.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out += buf;
    } else {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    }
    std::snprintf(buf, sizeof buf, ", \"pid\": %" PRIu64 ", \"tid\": %u",
                  pid, ev.tid);
    out += buf;
    // trace_id stays within 48 bits (obs/distributed/context.h), so a
    // plain JSON number round-trips exactly through double parsers.
    if (ev.arg_name != nullptr || ev.trace_id != 0) {
      out += ", \"args\": {";
      if (ev.arg_name != nullptr) {
        out += "\"";
        AppendJsonEscaped(&out, ev.arg_name);
        std::snprintf(buf, sizeof buf, "\": %" PRId64, ev.arg);
        out += buf;
        if (ev.trace_id != 0) out += ", ";
      }
      if (ev.trace_id != 0) {
        std::snprintf(buf, sizeof buf, "\"trace_id\": %" PRIu64, ev.trace_id);
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]";
  if (meta != nullptr && !meta->extra_json.empty()) {
    out += ", \"merchMeta\": ";
    out += meta->extra_json;
  }
  out += "}\n";
  return out;
}

std::string TraceRecorder::TextSummary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    bool span = false;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_name;
  for (const TraceEvent& ev : Snapshot()) {
    Agg& agg = by_name[{CategoryName(ev.cat), ev.name}];
    ++agg.count;
    agg.total_ns += ev.dur_ns;
    agg.span = agg.span || ev.span;
  }
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "%-9s %-28s %10s %12s %12s\n", "cat",
                "name", "count", "total-ms", "mean-us");
  out += line;
  for (const auto& [key, agg] : by_name) {
    const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
    const double mean_us =
        static_cast<double>(agg.total_ns) / 1e3 /
        static_cast<double>(agg.count);
    std::snprintf(line, sizeof line, "%-9s %-28s %10" PRIu64 " %12.3f %12.3f\n",
                  key.first.c_str(), key.second.c_str(), agg.count,
                  agg.span ? total_ms : 0.0, agg.span ? mean_us : 0.0);
    out += line;
  }
  const std::uint64_t lost = dropped();
  if (lost > 0) {
    std::snprintf(line, sizeof line,
                  "(%" PRIu64 " events dropped to ring wrap-around)\n", lost);
    out += line;
  }
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path, std::string* error,
                                    const ExportMeta* meta) const {
  const std::string json = ChromeJson(meta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if ((!ok || !closed) && error != nullptr) *error = "short write to " + path;
  return ok && closed;
}

}  // namespace merch::obs
