// Page-heat profiles: how an object's accesses distribute over its pages.
//
// Pages inside an object are indexed in heat order (index 0 = hottest; see
// hm/page_table.h). A HeatProfile gives the fraction of the object's
// accesses landing on each page. Uniform heat models dense sweeps; Zipf
// heat models the skewed hot/cold structure of sparse and pointer-based
// data, which is what makes hot-page detection (and its per-task fairness
// problems) interesting in the first place.
#pragma once

#include <cstdint>

namespace merch::trace {

class HeatProfile {
 public:
  enum class Kind { kUniform, kZipf };

  static HeatProfile Uniform() { return HeatProfile(Kind::kUniform, 0.0); }
  /// exponent > 0; 0.99 is a typical hot-page skew, 1.5 is extreme.
  static HeatProfile Zipf(double exponent) {
    return HeatProfile(Kind::kZipf, exponent);
  }

  Kind kind() const { return kind_; }
  double exponent() const { return exponent_; }

  /// Fraction of accesses hitting page `i` of an `n`-page object.
  double PageFraction(std::uint64_t i, std::uint64_t n) const;

  /// Fraction of accesses hitting the hottest `k` pages of an `n`-page
  /// object. Monotone in k; CumulativeFraction(n, n) == 1.
  double CumulativeFraction(std::uint64_t k, std::uint64_t n) const;

  /// Smallest k such that CumulativeFraction(k, n) >= target.
  std::uint64_t PagesForFraction(double target, std::uint64_t n) const;

 private:
  HeatProfile(Kind kind, double exponent) : kind_(kind), exponent_(exponent) {}

  /// Generalized harmonic number H(k, s) = sum_{j=1..k} j^-s, via
  /// Euler-Maclaurin so TiB-scale page counts stay O(1).
  double Harmonic(double k) const;

  /// Harmonic(n) through a one-entry cache keyed on n. Callers pass the
  /// object's page count, which is fixed per object, so per-page queries
  /// (profilers probe millions per interval) skip the pow/log chain.
  /// Returns exactly Harmonic(n). Not thread-safe; every consumer
  /// evaluates heat serially per workload.
  double HarmonicTotal(double n) const;

  Kind kind_;
  double exponent_;
  mutable double cached_n_ = -1.0;
  mutable double cached_hn_ = 0.0;
};

}  // namespace merch::trace
