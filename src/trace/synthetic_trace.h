// Synthetic page-access sources for testing and benchmarking profilers in
// isolation from the full simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "trace/access_source.h"
#include "trace/heat.h"

namespace merch::trace {

/// Describes one synthetic object: page count, owning task, heat profile,
/// and total accesses this epoch.
struct SyntheticObjectSpec {
  TaskId task = 0;
  std::uint64_t num_pages = 0;
  HeatProfile heat = HeatProfile::Uniform();
  double epoch_accesses = 0;
  hm::Tier tier = hm::Tier::kPm;
};

/// Materialises a page-access view from object specs. Pages are laid out
/// contiguously in spec order; per-page accesses follow each object's heat
/// profile exactly (no sampling noise — profilers add their own).
class SyntheticAccessSource final : public PageAccessSource {
 public:
  explicit SyntheticAccessSource(std::vector<SyntheticObjectSpec> objects);

  std::uint64_t num_pages() const override { return total_pages_; }
  double EpochAccesses(PageId p) const override;
  hm::Tier PageTier(PageId p) const override;
  ObjectId PageObject(PageId p) const override;
  TaskId PageTask(PageId p) const override;

  /// Ground truth: total accesses of object `id` this epoch.
  double ObjectAccesses(ObjectId id) const;
  /// Ground truth: total accesses attributed to `task` this epoch.
  double TaskAccesses(TaskId task) const;
  std::size_t num_objects() const { return objects_.size(); }

 private:
  struct Locator {
    ObjectId object;
    std::uint64_t index_in_object;
  };
  Locator Locate(PageId p) const;

  std::vector<SyntheticObjectSpec> objects_;
  std::vector<std::uint64_t> first_page_;  // per object
  std::uint64_t total_pages_ = 0;
};

}  // namespace merch::trace
