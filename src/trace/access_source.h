// Abstract view of per-page access activity for one profiling epoch.
//
// Profilers (src/profiler) are written against this interface so they work
// both over the simulator's analytic access oracle (large runs) and over
// synthetic or recorded page counters (tests).
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"
#include "hm/tier.h"

namespace merch::trace {

class PageAccessSource {
 public:
  virtual ~PageAccessSource() = default;

  virtual std::uint64_t num_pages() const = 0;

  /// Expected accesses to page `p` during the current epoch. Fractional
  /// values are allowed (analytic oracles spread object totals over pages).
  virtual double EpochAccesses(PageId p) const = 0;

  /// Fill `out[i] = EpochAccesses(pages[i])` (pages.size() == out.size()).
  /// The default delegates page by page; sources with per-object structure
  /// override it to hoist shared state across runs of pages from one
  /// object (eviction gathers probe extents in ascending-page runs).
  /// Values are bitwise those of the scalar calls.
  virtual void EpochAccessesBatch(std::span<const PageId> pages,
                                  std::span<double> out) const {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      out[i] = EpochAccesses(pages[i]);
    }
  }

  /// Tier currently holding page `p`.
  virtual hm::Tier PageTier(PageId p) const = 0;

  /// Object owning page `p`, or kInvalidObject for unmapped pages.
  virtual ObjectId PageObject(PageId p) const = 0;

  /// Task owning the object of page `p`, or kInvalidTask.
  virtual TaskId PageTask(PageId p) const = 0;
};

}  // namespace merch::trace
