// Memory access patterns (paper Section 4).
//
// Merchandiser classifies object-level accesses into four patterns —
// stream, strided, stencil, random — because the pattern determines (a) how
// program-level accesses translate into main-memory accesses (the caching
// effect captured by alpha in Eq. 1) and (b) how latency-tolerant the
// accesses are (prefetchability / memory-level parallelism).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace merch::trace {

enum class AccessPattern : std::uint8_t {
  kStream = 0,   // A[i] = B[i] + C[i]; includes delta, reduction, transpose
  kStrided = 1,  // A[i*stride]; constant stride known statically
  kStencil = 2,  // A[i] = A[i-1] + A[i+1]; loop-carried neighborhoods
  kRandom = 3,   // A[i] = B[C[i]]; gather/scatter/pointer chase
  kUnknown = 4,  // unclassifiable statically; treated as random (Section 4)
};

const char* PatternName(AccessPattern p);

/// Pattern-dependent microarchitectural traits used by the simulator's
/// ground-truth timing model. These are *simulator* constants — the
/// Merchandiser runtime never reads them (it learns behaviour from profiling
/// and the trained correlation function, exactly as the paper's system does).
struct PatternTraits {
  /// Average outstanding main-memory requests (memory-level parallelism).
  /// Prefetchable patterns overlap many misses; dependent random chains
  /// cannot.
  double mlp;
  /// Fraction of main-memory service time the core can hide under compute
  /// (prefetch distance / OoO window effectiveness).
  double overlap;
  /// Hardware-prefetcher miss ratio contribution (feeds the PRF_Miss PMC).
  double prefetch_miss;
  /// Whether latency per access uses the tier's sequential or random spec.
  bool sequential_latency;
  /// Whether the pattern *sweeps* its object (touches pages in rank order,
  /// once per kernel execution). Sweeping accesses only benefit from DRAM
  /// pages placed *ahead* of the sweep position — promoting a page after
  /// the sweep passed it is useless, which is why reactive hot-page
  /// tiering barely helps streaming workloads (paper Section 1).
  bool sweeping;
};

const PatternTraits& TraitsOf(AccessPattern p);

/// One object's access behaviour inside one kernel.
struct ObjectAccess {
  ObjectId object = kInvalidObject;
  AccessPattern pattern = AccessPattern::kStream;
  /// Program-level accesses (loads+stores executed by the code) to this
  /// object per kernel execution.
  std::uint64_t program_accesses = 0;
  /// Bytes touched per access (element size).
  std::uint32_t element_bytes = 8;
  /// Constant stride in elements (>=1); only meaningful for kStrided.
  std::uint32_t stride_elements = 1;
  /// Fraction of accesses that are reads (rest are writes).
  double read_fraction = 1.0;
};

}  // namespace merch::trace
