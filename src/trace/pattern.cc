#include "trace/pattern.h"

#include <array>

namespace merch::trace {

const char* PatternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::kStream:
      return "Stream";
    case AccessPattern::kStrided:
      return "Strided";
    case AccessPattern::kStencil:
      return "Stencil";
    case AccessPattern::kRandom:
      return "Random";
    case AccessPattern::kUnknown:
      return "Unknown";
  }
  return "?";
}

const PatternTraits& TraitsOf(AccessPattern p) {
  // Values chosen to reproduce the qualitative behaviour the paper relies
  // on: streams are bandwidth-bound and latency-tolerant; random access is
  // latency-bound with little overlap (hence benefits most from DRAM's
  // lower random latency, and caches — including Memory Mode's DRAM cache —
  // serve it poorly).
  static const std::array<PatternTraits, 5> kTraits = {{
      /*kStream*/ {.mlp = 16.0, .overlap = 0.80, .prefetch_miss = 0.05,
                   .sequential_latency = true, .sweeping = true},
      /*kStrided*/ {.mlp = 8.0, .overlap = 0.60, .prefetch_miss = 0.25,
                    .sequential_latency = true, .sweeping = true},
      /*kStencil*/ {.mlp = 12.0, .overlap = 0.70, .prefetch_miss = 0.12,
                    .sequential_latency = true, .sweeping = true},
      /*kRandom*/ {.mlp = 4.0, .overlap = 0.20, .prefetch_miss = 0.85,
                   .sequential_latency = false, .sweeping = false},
      /*kUnknown*/ {.mlp = 4.0, .overlap = 0.20, .prefetch_miss = 0.85,
                    .sequential_latency = false, .sweeping = false},
  }};
  return kTraits[static_cast<std::size_t>(p)];
}

}  // namespace merch::trace
