#include "trace/heat.h"

#include <cassert>
#include <cmath>

namespace merch::trace {

double HeatProfile::Harmonic(double k) const {
  // H(k, s) ~= integral + endpoint corrections (Euler-Maclaurin, two
  // correction terms). Accurate to <1e-6 relative for k >= 8; exact
  // summation below that.
  const double s = exponent_;
  if (k < 8.5) {
    double h = 0.0;
    for (int j = 1; j <= static_cast<int>(k + 0.5); ++j) {
      h += std::pow(j, -s);
    }
    return h;
  }
  double integral;
  if (std::abs(s - 1.0) < 1e-12) {
    integral = std::log(k);
  } else {
    integral = (std::pow(k, 1.0 - s) - 1.0) / (1.0 - s);
  }
  const double correction =
      0.5 * (1.0 + std::pow(k, -s)) + s / 12.0 * (1.0 - std::pow(k, -s - 1.0));
  return integral + correction;
}

double HeatProfile::HarmonicTotal(double n) const {
  if (n != cached_n_) {
    cached_n_ = n;
    cached_hn_ = Harmonic(n);
  }
  return cached_hn_;
}

double HeatProfile::PageFraction(std::uint64_t i, std::uint64_t n) const {
  assert(n > 0 && i < n);
  if (kind_ == Kind::kUniform) return 1.0 / static_cast<double>(n);
  const double hn = HarmonicTotal(static_cast<double>(n));
  return std::pow(static_cast<double>(i + 1), -exponent_) / hn;
}

double HeatProfile::CumulativeFraction(std::uint64_t k, std::uint64_t n) const {
  assert(n > 0);
  if (k == 0) return 0.0;
  if (k >= n) return 1.0;
  if (kind_ == Kind::kUniform) {
    return static_cast<double>(k) / static_cast<double>(n);
  }
  return Harmonic(static_cast<double>(k)) / HarmonicTotal(static_cast<double>(n));
}

std::uint64_t HeatProfile::PagesForFraction(double target,
                                            std::uint64_t n) const {
  assert(n > 0);
  if (target <= 0.0) return 0;
  if (target >= 1.0) return n;
  if (kind_ == Kind::kUniform) {
    return static_cast<std::uint64_t>(std::ceil(target * static_cast<double>(n)));
  }
  // Binary search the monotone CumulativeFraction.
  std::uint64_t lo = 0, hi = n;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (CumulativeFraction(mid, n) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace merch::trace
