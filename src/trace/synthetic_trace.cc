#include "trace/synthetic_trace.h"

#include <cassert>

namespace merch::trace {

SyntheticAccessSource::SyntheticAccessSource(
    std::vector<SyntheticObjectSpec> objects)
    : objects_(std::move(objects)) {
  first_page_.reserve(objects_.size());
  for (const SyntheticObjectSpec& o : objects_) {
    first_page_.push_back(total_pages_);
    total_pages_ += o.num_pages;
  }
}

SyntheticAccessSource::Locator SyntheticAccessSource::Locate(PageId p) const {
  assert(p < total_pages_);
  // Binary search over first_page_.
  std::size_t lo = 0, hi = objects_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (first_page_[mid] <= p) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return Locator{static_cast<ObjectId>(lo), p - first_page_[lo]};
}

double SyntheticAccessSource::EpochAccesses(PageId p) const {
  const Locator loc = Locate(p);
  const SyntheticObjectSpec& o = objects_[loc.object];
  return o.epoch_accesses * o.heat.PageFraction(loc.index_in_object, o.num_pages);
}

hm::Tier SyntheticAccessSource::PageTier(PageId p) const {
  return objects_[Locate(p).object].tier;
}

ObjectId SyntheticAccessSource::PageObject(PageId p) const {
  return Locate(p).object;
}

TaskId SyntheticAccessSource::PageTask(PageId p) const {
  return objects_[Locate(p).object].task;
}

double SyntheticAccessSource::ObjectAccesses(ObjectId id) const {
  assert(id < objects_.size());
  return objects_[id].epoch_accesses;
}

double SyntheticAccessSource::TaskAccesses(TaskId task) const {
  double sum = 0;
  for (const SyntheticObjectSpec& o : objects_) {
    if (o.task == task) sum += o.epoch_accesses;
  }
  return sum;
}

}  // namespace merch::trace
