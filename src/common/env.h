// Environment-variable escape hatches shared by the perf-sensitive
// subsystems (engine, ml, core decision path).
//
// Every optimisation that replaces a legacy code path keeps a runtime
// toggle so benchmarks can reproduce the pre-optimisation cost profile
// without a rebuild: MERCH_SWEEP_INDEX / MERCH_ENGINE_MEMO / MERCH_SIMD /
// MERCH_ARENA (sim), MERCH_FLAT_FOREST / MERCH_SIMD (ml),
// MERCH_GREEDY_HEAP / MERCH_POLICY_MEMO (core).
#pragma once

namespace merch::common {

/// Boolean escape hatch: unset/empty keeps `fallback`; "0"/"off"/"false"
/// disables; anything else enables.
bool EnvToggle(const char* name, bool fallback);

}  // namespace merch::common
