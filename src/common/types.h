// Core identifier and unit types shared by every Merchandiser module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace merch {

/// Identifies one task in a task-parallel application (one MPI rank or one
/// OpenMP worker owning a task; see paper Section 2).
using TaskId = std::uint32_t;

/// Identifies one user-registered data object (paper Section 4, User API).
using ObjectId = std::uint32_t;

/// Identifies one memory page in the simulated address space.
using PageId = std::uint64_t;

/// Identifies a kernel (static code region) inside a task program.
using KernelId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr ObjectId kInvalidObject = std::numeric_limits<ObjectId>::max();
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Byte-size helpers. The simulator works in bytes throughout; these keep
/// configuration sites readable.
inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

/// Small (4 KiB) page: unit of placement and migration.
inline constexpr std::uint64_t kPageBytes = 4 * KiB;
/// Huge (2 MiB) region: unit of Thermostat-style sampling (one 4 KiB page
/// sampled per 2 MiB region; paper Section 4).
inline constexpr std::uint64_t kHugeRegionBytes = 2 * MiB;
inline constexpr std::uint64_t kPagesPerHugeRegion =
    kHugeRegionBytes / kPageBytes;

/// Cache line size assumed by the access-count math (paper Section 4 uses
/// 64-byte lines in its alpha example).
inline constexpr std::uint64_t kCacheLineBytes = 64;

/// Pages needed to hold `bytes`, rounding up.
constexpr std::uint64_t PagesForBytes(std::uint64_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes;
}

/// Cache lines needed to hold `bytes`, rounding up. This is the rounding the
/// paper applies when an object size is not divisible by the line size.
constexpr std::uint64_t LinesForBytes(std::uint64_t bytes) {
  return (bytes + kCacheLineBytes - 1) / kCacheLineBytes;
}

/// Human-readable byte count ("1.5 TiB", "429.3 GiB", ...).
std::string FormatBytes(std::uint64_t bytes);

}  // namespace merch
