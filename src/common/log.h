// Minimal leveled logging. Benches and the runtime daemon use this to
// narrate decisions (migration quotas, greedy rounds) without depending on
// an external logging library.
#pragma once

#include <sstream>
#include <string>

namespace merch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users are not spammed; benches raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace merch

#define MERCH_LOG(level) ::merch::internal::LogLine(::merch::LogLevel::level)
