// Fixed-width text tables. Every bench binary prints the paper's table or
// figure data series through this, so bench_output.txt is self-describing.
#pragma once

#include <string>
#include <vector>

namespace merch {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string Num(double v, int precision = 3);
  /// Format as a percentage ("17.1%").
  static std::string Pct(double fraction, int precision = 1);

  /// Render with aligned columns, a header separator, and a trailing
  /// newline.
  std::string Render() const;

  /// Render directly to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace merch
