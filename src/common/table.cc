#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/types.h"

namespace merch {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << "| " << cell << std::string(widths[c] - cell.size(), ' ') << ' ';
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

std::string FormatBytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace merch
