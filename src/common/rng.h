// Deterministic pseudo-random number generation for simulation and ML.
//
// Everything in the repository that needs randomness takes an explicit Rng
// (or a seed) so simulations, training runs, and tests are reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace merch {

/// Complete generator state: the xoshiro words plus the Box-Muller spare.
/// Round-tripping through it resumes the exact output stream (the engine's
/// checkpoints depend on this being lossless).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// xoshiro256++ with splitmix64 seeding. Small, fast, and good enough for
/// workload synthesis and bootstrap sampling; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Derive an independent child generator (for per-task streams).
  Rng Fork();

  /// Fisher-Yates shuffle of indices [0, n). Returned vector holds the
  /// permutation.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Snapshot / restore the exact generator state.
  RngState state() const {
    return RngState{{s_[0], s_[1], s_[2], s_[3]}, have_cached_gaussian_,
                    cached_gaussian_};
  }
  void set_state(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_cached_gaussian_ = st.have_cached_gaussian;
    cached_gaussian_ = st.cached_gaussian;
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s) sampler over ranks [0, n). Used to synthesise skewed page heat
/// (hot-page distributions) and power-law graph degrees.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double Pmf(std::size_t k) const;

  std::size_t size() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  std::size_t n_;
  double exponent_;
  std::vector<double> cdf_;  // cumulative distribution over ranks
};

}  // namespace merch
