// Descriptive statistics used across the evaluation harness.
//
// The paper quantifies load balance with the coefficient of variation of
// task execution times (Section 7.2) and model quality with R-squared
// (Section 7.3); box plot summaries drive Figure 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace merch {

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // population variance
double StdDev(std::span<const double> xs);
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
double Sum(std::span<const double> xs);

/// Coefficient of variation: stddev / mean. The paper's load-balance metric
/// (smaller is more balanced). Returns 0 for empty or zero-mean input.
double CoefficientOfVariation(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::span<const double> xs, double p);

/// Five-number summary for box plots (Figure 5): whiskers at 1.5 IQR.
struct BoxStats {
  double min = 0;          // lowest non-outlier
  double q1 = 0;           // 25th percentile
  double median = 0;       // 50th percentile
  double q3 = 0;           // 75th percentile
  double max = 0;          // highest non-outlier
  std::size_t outliers = 0;  // points beyond the whiskers
};
BoxStats ComputeBoxStats(std::span<const double> xs);

/// Cosine similarity between two vectors (paper Section 5.2: similarity of
/// object-size vectors scales basic-block counts). Returns 0 when either
/// vector is all-zero.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of predictions vs. ground truth.
double RSquared(std::span<const double> truth, std::span<const double> pred);

/// Mean absolute percentage error based accuracy: 1 - mean(|t-p| / |t|),
/// clamped to [0, 1]. This is the "prediction accuracy" reported in the
/// paper's Table 4.
double MapeAccuracy(std::span<const double> truth,
                    std::span<const double> pred);

/// Mean squared error.
double MeanSquaredError(std::span<const double> truth,
                        std::span<const double> pred);

}  // namespace merch
