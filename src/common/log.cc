#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace merch {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[merch %s] %s\n", LevelName(level), msg.c_str());
}
}  // namespace internal

}  // namespace merch
