#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace merch {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // simulation purposes but we reject to keep distributions exact.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDoubleInRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = NextBelow(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm keeps this O(k) in expectation without building a full
  // permutation, which matters when sampling pages out of TiB-scale spaces.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<bool> used;  // only grows when n is small
  if (n <= 1u << 20) {
    used.assign(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = NextBelow(j + 1);
      if (!used[t]) {
        used[t] = true;
        out.push_back(t);
      } else {
        used[j] = true;
        out.push_back(j);
      }
    }
  } else {
    // For huge n, collisions are rare enough to retry.
    std::vector<std::size_t> seen;
    seen.reserve(k);
    while (out.size() < k) {
      const std::size_t t = NextBelow(n);
      bool dup = false;
      for (const std::size_t s : seen) {
        if (s == t) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen.push_back(t);
        out.push_back(t);
      }
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : n_(n), exponent_(exponent), cdf_(n) {
  assert(n > 0);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search the CDF.
  std::size_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(std::size_t k) const {
  assert(k < n_);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace merch
