#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace merch {

double Sum(std::span<const double> xs) {
  // Kahan summation: benches accumulate millions of epoch samples.
  double sum = 0.0, c = 0.0;
  for (const double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return Sum(xs) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double CoefficientOfVariation(std::span<const double> xs) {
  const double m = Mean(xs);
  if (m == 0.0) return 0.0;
  return StdDev(xs) / std::abs(m);
}

double Percentile(std::span<const double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats ComputeBoxStats(std::span<const double> xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.q1 = Percentile(xs, 25.0);
  b.median = Percentile(xs, 50.0);
  b.q3 = Percentile(xs, 75.0);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.min = b.q3;
  b.max = b.q1;
  for (const double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      ++b.outliers;
      continue;
    }
    b.min = std::min(b.min, x);
    b.max = std::max(b.max, x);
  }
  return b;
}

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double RSquared(std::span<const double> truth, std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  const double mean_t = Mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean_t) * (truth[i] - mean_t);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double MapeAccuracy(std::span<const double> truth,
                    std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::abs(truth[i] - pred[i]) / std::abs(truth[i]);
    ++counted;
  }
  if (counted == 0) return 0.0;
  const double mape = acc / static_cast<double>(counted);
  return std::clamp(1.0 - mape, 0.0, 1.0);
}

double MeanSquaredError(std::span<const double> truth,
                        std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - pred[i]) * (truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace merch
