#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace merch::common {

bool EnvToggle(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
         std::strcmp(v, "false") != 0;
}

}  // namespace merch::common
