#include "baselines/static_priority.h"

#include <algorithm>

namespace merch::baselines {

void StaticPriorityPolicy::OnRegionStart(sim::SimContext& ctx,
                                         std::size_t region) {
  const std::vector<std::size_t>* priority = &global_priority_;
  if (region < per_region_.size() && !per_region_[region].empty()) {
    priority = &per_region_[region];
  }
  Apply(ctx, *priority);
}

void StaticPriorityPolicy::Apply(sim::SimContext& ctx,
                                 const std::vector<std::size_t>& priority) {
  // Demote everything not in this region's priority list (lifetime ended),
  // then fill DRAM in priority order, leaving 2% headroom.
  const sim::Workload& w = ctx.workload();
  std::vector<bool> keep(w.objects.size(), false);
  for (const std::size_t obj : priority) {
    if (obj < keep.size()) keep[obj] = true;
  }
  for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
    if (keep[obj]) continue;
    const ObjectId handle = ctx.oracle().handle(obj);
    const std::uint64_t on_dram =
        ctx.pages().object_pages_on(handle, hm::Tier::kDram);
    if (on_dram > 0) ctx.migration().DemoteColdest(handle, on_dram);
  }
  const std::uint64_t dram_pages =
      ctx.pages().spec().dram_capacity() / ctx.pages().page_bytes();
  const auto budget =
      static_cast<std::uint64_t>(0.98 * static_cast<double>(dram_pages));
  for (const std::size_t obj : priority) {
    if (obj >= w.objects.size()) continue;
    const ObjectId handle = ctx.oracle().handle(obj);
    const std::uint64_t used = dram_pages - ctx.pages().tier_free_pages(hm::Tier::kDram);
    if (used >= budget) break;
    const std::uint64_t headroom = budget - used;
    const std::uint64_t want = ctx.pages().extent(handle).num_pages -
                               ctx.pages().object_pages_on(handle, hm::Tier::kDram);
    ctx.migration().MigrateHottest(handle, std::min(want, headroom),
                                   hm::Tier::kDram);
  }
}

}  // namespace merch::baselines
