#include "baselines/memory_optimizer.h"

namespace merch::baselines {

void MemoryOptimizerPolicy::OnInterval(sim::SimContext& ctx) {
  sim::AccessOracle& oracle = ctx.oracle();
  const auto hot = pte_.Profile(oracle);

  std::vector<PageId> batch;
  for (const profiler::HotPage& h : hot) {
    if (batch.size() >= config_.promote_batch) break;
    if (h.est_accesses < config_.hot_threshold) break;  // sorted descending
    if (oracle.PageTier(h.page) != hm::Tier::kPm) continue;
    batch.push_back(h.page);
  }
  if (batch.empty()) return;

  // LFU-evict cold DRAM pages when space is needed, then promote. No task
  // awareness anywhere, and the eviction ranking is the daemon's own
  // saturated estimate, not ground truth.
  const int scans = config_.pte.scans_per_interval;
  const std::uint64_t salt = ++interval_counter_;
  auto heat_fn = [&oracle, scans, salt](PageId p) {
    return profiler::SaturatedEvictionHeat(oracle, p, scans, salt);
  };
  auto floor_fn = [&oracle, scans](PageId first_page) {
    return profiler::SaturatedEvictionHeatFloor(
        oracle.EpochAccessesFloor(first_page), scans);
  };
  auto batch_fn = [&oracle, scans, salt](std::span<const PageId> pages,
                                         double obj_floor, double threshold,
                                         std::span<double> out) {
    profiler::SaturatedEvictionHeatBatch(oracle, pages, scans, salt,
                                         obj_floor, threshold, out);
  };
  ctx.migration().MakeRoomInDram(batch.size(), heat_fn, floor_fn, batch_fn);
  promoted_ += ctx.migration().MigratePages(batch, hm::Tier::kDram);
}

}  // namespace merch::baselines
