// Optane Memory Mode baseline — the "hardware-based solution".
//
// DRAM becomes a direct-mapped write-back cache managed entirely by the
// memory controller (paper Section 2); software placement is impossible.
// Each interval this policy re-evaluates the cache model over the
// interval's per-object activity, installs the resulting served-from-DRAM
// fractions, and charges the fill/write-back traffic to PM and DRAM.
#pragma once

#include <vector>

#include "cachesim/memory_mode.h"
#include "sim/policy.h"

namespace merch::baselines {

class MemoryModePolicy final : public sim::PlacementPolicy {
 public:
  MemoryModePolicy() = default;

  std::string name() const override { return "MemoryMode"; }
  bool uses_hardware_cache() const override { return true; }

  void OnSimulationStart(sim::SimContext& ctx) override;
  void OnInterval(sim::SimContext& ctx) override;

 private:
  /// Dominant (least cache-friendly) pattern per object across all kernels.
  std::vector<trace::AccessPattern> object_patterns_;
  /// Interval-to-interval scratch: the activity summary and the cache
  /// model's working buffers keep their capacity, so OnInterval stops
  /// allocating after the first interval.
  std::vector<cachesim::MemoryModeObject> objects_scratch_;
  cachesim::MemoryModeScratch mm_scratch_;
};

}  // namespace merch::baselines
