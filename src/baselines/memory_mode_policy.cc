#include "baselines/memory_mode_policy.h"

namespace merch::baselines {
namespace {

int Severity(trace::AccessPattern p) {
  using trace::AccessPattern;
  switch (p) {
    case AccessPattern::kStream:
      return 0;
    case AccessPattern::kStrided:
      return 1;
    case AccessPattern::kStencil:
      return 2;
    case AccessPattern::kUnknown:
      return 3;
    case AccessPattern::kRandom:
      return 4;
  }
  return 4;
}

}  // namespace

void MemoryModePolicy::OnSimulationStart(sim::SimContext& ctx) {
  const sim::Workload& w = ctx.workload();
  object_patterns_.assign(w.objects.size(), trace::AccessPattern::kStream);
  std::vector<bool> seen(w.objects.size(), false);
  for (const sim::Region& region : w.regions) {
    for (const sim::TaskProgram& tp : region.tasks) {
      for (const sim::Kernel& k : tp.kernels) {
        for (const trace::ObjectAccess& a : k.accesses) {
          if (!seen[a.object] ||
              Severity(a.pattern) > Severity(object_patterns_[a.object])) {
            object_patterns_[a.object] = a.pattern;
            seen[a.object] = true;
          }
        }
      }
    }
  }
}

void MemoryModePolicy::OnInterval(sim::SimContext& ctx) {
  const sim::Workload& w = ctx.workload();
  sim::AccessOracle& oracle = ctx.oracle();

  std::vector<cachesim::MemoryModeObject>& objects = objects_scratch_;
  objects.resize(w.objects.size());
  for (std::size_t i = 0; i < w.objects.size(); ++i) {
    objects[i].bytes = w.objects[i].bytes;
    objects[i].pattern = object_patterns_[i];
    objects[i].mm_accesses = oracle.ObjectEpochAccesses(i);
  }
  const cachesim::MemoryModeCache cache(ctx.machine().hm.dram_capacity());
  const cachesim::MemoryModeResult& result =
      cache.Evaluate(objects, ctx.pages().page_bytes(), &mm_scratch_);

  for (std::size_t i = 0; i < w.objects.size(); ++i) {
    // Objects idle this interval keep their previous fraction (their lines
    // stay cached until evicted by pressure, which Evaluate models via the
    // active-footprint coverage).
    if (objects[i].mm_accesses > 0) {
      ctx.SetHwDramFraction(i, result.dram_fraction[i]);
    }
  }
  ctx.AddBackgroundTraffic(result.writeback_bytes_to_pm, 0.0);
}

}  // namespace merch::baselines
