// Application-specific manual-placement baselines.
//
// The paper compares against two application-specific systems:
//  - Sparta [50]: placement for sparse tensor contraction that knows which
//    structures are reused (it beats generic tiering but "ignores the load
//    balancing caused by multiple matrix multiplications").
//  - WarpX-PM [68]: manual data placement for WarpX derived from lifetime
//    analysis of data objects (it slightly beats Merchandiser: expert
//    manual analysis is the ceiling).
//
// Both reduce to the same mechanism: a developer-supplied priority order
// of data objects, optionally varying per region (lifetime awareness),
// greedily packed into DRAM. The apps instantiate this policy with their
// domain knowledge.
#pragma once

#include <string>
#include <vector>

#include "sim/policy.h"

namespace merch::baselines {

class StaticPriorityPolicy final : public sim::PlacementPolicy {
 public:
  /// `priority`: object indices, most-important first. Objects listed are
  /// promoted fully (hot pages first) in order until DRAM is nearly full;
  /// unlisted objects stay on PM.
  StaticPriorityPolicy(std::string name, std::vector<std::size_t> priority)
      : name_(std::move(name)), global_priority_(std::move(priority)) {}

  /// Lifetime-aware variant: a priority list per region (WarpX-PM). Falls
  /// back to the global list for regions beyond the vector.
  StaticPriorityPolicy(std::string name,
                       std::vector<std::vector<std::size_t>> per_region,
                       std::vector<std::size_t> fallback = {})
      : name_(std::move(name)),
        global_priority_(std::move(fallback)),
        per_region_(std::move(per_region)) {}

  std::string name() const override { return name_; }

  void OnRegionStart(sim::SimContext& ctx, std::size_t region) override;

 private:
  void Apply(sim::SimContext& ctx, const std::vector<std::size_t>& priority);

  std::string name_;
  std::vector<std::size_t> global_priority_;
  std::vector<std::vector<std::size_t>> per_region_;
};

}  // namespace merch::baselines
