// Intel MemoryOptimizer baseline (paper Section 1/2; github
// intel/memory-optimizer) — the "industry-quality software-based solution".
//
// A userspace daemon that, every interval, samples a bounded set of pages,
// estimates hotness from PTE accessed-bit scans, promotes the hottest PM
// pages to DRAM and demotes cold DRAM pages when space runs out. It is
// deliberately task-agnostic: that is the property whose consequences the
// paper measures (load imbalance up, makespan barely down).
#pragma once

#include "profiler/pte_scan.h"
#include "profiler/thermostat.h"
#include "sim/policy.h"

namespace merch::baselines {

struct MemoryOptimizerConfig {
  profiler::PteScanProfiler::Config pte{};
  /// Hot pages promoted per interval at most.
  std::size_t promote_batch = 512;
  /// Only pages at least this hot (estimated interval accesses) move.
  double hot_threshold = 1.0;
  std::uint64_t seed = 31;
};

class MemoryOptimizerPolicy final : public sim::PlacementPolicy {
 public:
  explicit MemoryOptimizerPolicy(MemoryOptimizerConfig config = {})
      : config_(config), pte_(config.pte, config.seed) {}

  std::string name() const override { return "MemoryOptimizer"; }

  void OnInterval(sim::SimContext& ctx) override;

  std::uint64_t pages_promoted() const { return promoted_; }

 private:
  MemoryOptimizerConfig config_;
  profiler::PteScanProfiler pte_;
  std::uint64_t promoted_ = 0;
  std::uint64_t interval_counter_ = 0;
};

}  // namespace merch::baselines
