// PM-only baseline: never migrates anything. All objects start on PM, so
// this is the paper's "PM-only" normalisation baseline (Figure 4's 1.0
// line).
#pragma once

#include "sim/policy.h"

namespace merch::baselines {

class PmOnlyPolicy final : public sim::PlacementPolicy {
 public:
  std::string name() const override { return "PM-only"; }
};

}  // namespace merch::baselines
