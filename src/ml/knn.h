// k-nearest-neighbors regressor (paper Table 3: "KNR", n_neighbors=8).
// Brute-force with standardised features: the training sets here are a few
// thousand rows, where brute force beats any index.
#pragma once

#include "ml/model.h"

namespace merch::ml {

struct KnnConfig {
  std::size_t k = 8;
  /// Inverse-distance weighting (sklearn weights='distance' when true).
  bool distance_weighted = true;
};

class KNeighborsRegressor final : public Regressor {
 public:
  explicit KNeighborsRegressor(KnnConfig config = {}) : config_(config) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string name() const override { return "KNR"; }

 private:
  KnnConfig config_;
  Standardizer scaler_;
  Dataset train_;
};

}  // namespace merch::ml
