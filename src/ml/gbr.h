// Gradient-boosted regression trees with squared loss — the model the
// paper selects as its correlation function f(.) (highest R^2 in Table 3,
// base_estimator = DTR).
#pragma once

#include "ml/tree.h"

namespace merch::ml {

struct GbrConfig {
  std::size_t num_stages = 400;
  double learning_rate = 0.05;
  TreeConfig tree{.max_depth = 4, .min_samples_leaf = 3,
                  .min_samples_split = 6};
  /// Row subsampling per stage (stochastic gradient boosting).
  double subsample = 0.7;
};

class GradientBoostedRegressor final : public Regressor {
 public:
  explicit GradientBoostedRegressor(GbrConfig config = {},
                                    std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  /// Flattened single-pass walk over all stages (ml/flat_forest.h);
  /// bitwise equal to the per-row Predict loop. MERCH_FLAT_FOREST=0
  /// falls back to the per-row path.
  void PredictBatch(std::span<const double> rows, std::size_t num_features,
                    std::span<double> out) const override;
  /// Piecewise-constant collapse over the free feature (FlatForestPartial;
  /// bitwise equal to Predict). Returns nullptr under MERCH_FLAT_FOREST=0.
  std::unique_ptr<PartialModel> Specialize(std::span<const double> row,
                                           std::size_t var) const override;
  std::string name() const override { return "GBR"; }

  const FlatForest& flat_forest() const { return flat_; }

  /// Stage-summed impurity importance (the "Gini importance" used to rank
  /// hardware events in Section 5.1).
  std::vector<double> FeatureImportance() const;

 private:
  void CompileFlat();

  GbrConfig config_;
  Rng rng_;
  double base_prediction_ = 0;
  std::vector<DecisionTreeRegressor> stages_;
  FlatForest flat_;  // compiled at the end of Fit
};

}  // namespace merch::ml
