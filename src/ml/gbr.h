// Gradient-boosted regression trees with squared loss — the model the
// paper selects as its correlation function f(.) (highest R^2 in Table 3,
// base_estimator = DTR).
#pragma once

#include "ml/tree.h"

namespace merch::ml {

struct GbrConfig {
  std::size_t num_stages = 400;
  double learning_rate = 0.05;
  TreeConfig tree{.max_depth = 4, .min_samples_leaf = 3,
                  .min_samples_split = 6};
  /// Row subsampling per stage (stochastic gradient boosting).
  double subsample = 0.7;
};

class GradientBoostedRegressor final : public Regressor {
 public:
  explicit GradientBoostedRegressor(GbrConfig config = {},
                                    std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string name() const override { return "GBR"; }

  /// Stage-summed impurity importance (the "Gini importance" used to rank
  /// hardware events in Section 5.1).
  std::vector<double> FeatureImportance() const;

 private:
  GbrConfig config_;
  Rng rng_;
  double base_prediction_ = 0;
  std::vector<DecisionTreeRegressor> stages_;
};

}  // namespace merch::ml
