// Flattened structure-of-arrays forest for batched tree inference.
//
// The tree ensembles behind the correlation function (GBR: 400 stages,
// RFR: 20 trees) are the decision path's inner loop: every Eq. 2
// evaluation walks every tree. The per-tree representation
// (std::vector<DecisionTreeRegressor>, each with its own AoS node vector,
// reached through a virtual call) costs an indirection per tree and
// scatters hot node data across allocations. This module compiles an
// ensemble into contiguous per-field arrays (feature index / threshold /
// child offsets / leaf value) shared by all trees, and evaluates many
// feature rows per pass, tree-outer so each tree's nodes stay cache-hot
// across the whole batch.
//
// Bit-identity contract: for every row, PredictBatch computes
//
//   y = base; for each tree (in order): y += tree_scale * leaf(tree, row);
//   return divisor == 1.0 ? y : y / divisor
//
// with the same node-walk comparison (x[feature] <= threshold ? left :
// right) as DecisionTreeRegressor::Predict. With (base, tree_scale,
// divisor) set per ensemble this reproduces the scalar GBR accumulation
// (y = base_prediction; y += learning_rate * tree.Predict(x)) and the RFR
// average (sum += tree.Predict(x); sum / num_trees) operation for
// operation, so flattened predictions are bitwise equal to the pointer
// walk (tests/decision_equiv_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/model.h"

namespace merch::ml {

struct FlatForest {
  /// Per-node arrays, all trees concatenated. feature[i] < 0 marks a leaf
  /// (value[i] is the prediction); otherwise threshold[i] splits and
  /// left/right[i] are global node indices.
  std::vector<std::int32_t> feature;
  std::vector<double> threshold;
  std::vector<double> value;
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  /// Root node index per tree, in ensemble order.
  std::vector<std::int32_t> roots;

  /// Accumulation constants (see file comment).
  double base = 0.0;
  double tree_scale = 1.0;
  double divisor = 1.0;

  /// MERCH_SIMD escape hatch, resolved per instance at construction (and
  /// re-resolved by Clear, so rebuilt forests honour the current
  /// environment): walk four rows per tree in lock-step. Each row keeps
  /// its own node chain and its own accumulator, so the interleaving is
  /// pure instruction-level parallelism — per-row results and the visit
  /// count are bitwise those of the one-row walk.
  bool simd = true;

  std::size_t num_trees() const { return roots.size(); }
  std::size_t num_nodes() const { return feature.size(); }
  bool empty() const { return roots.empty(); }

  void Clear();

  /// Evaluates every tree for each of the `n = out.size()` rows stored
  /// row-major in `rows` (rows.size() == n * num_features). Bitwise equal
  /// to the scalar ensemble walk (see file comment).
  void PredictBatch(std::span<const double> rows, std::size_t num_features,
                    std::span<double> out) const;

  /// Single-row convenience; same accumulation as PredictBatch.
  double PredictOne(std::span<const double> x) const;
};

/// FlatForest specialized on a row with feature `var` left free (the
/// PartialModel contract). Construction resolves every fixed-feature
/// split from the row; only splits on `var` remain undecided, so the
/// whole ensemble collapses to a piecewise-constant function of x whose
/// breakpoints are the `var` thresholds on reachable paths. A second
/// walk propagates interval-index ranges down each tree and accumulates
/// every interval's value tree-outer — per interval that is base, then
/// += tree_scale * leaf in tree order, then the divisor — i.e. the exact
/// per-row operation sequence of PredictBatch, so Predict(x) is bitwise
/// equal to a full forest evaluation with row[var] = x. Per-call cost is
/// one binary search; no forest walk ever happens after construction.
class FlatForestPartial final : public PartialModel {
 public:
  /// `var` < row.size(). Copies everything it needs; the forest and row
  /// need not outlive construction.
  FlatForestPartial(const FlatForest* forest, std::span<const double> row,
                    std::size_t var);

  double Predict(double x) const override;

  std::size_t num_intervals() const { return values_.size(); }

 private:
  /// Sorted unique thresholds tested against `var` on reachable paths;
  /// interval i covers (breakpoints_[i-1], breakpoints_[i]] and the last
  /// interval is open-ended.
  std::vector<double> breakpoints_;
  std::vector<double> values_;  // per interval
};

}  // namespace merch::ml
