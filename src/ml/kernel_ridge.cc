#include "ml/kernel_ridge.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace merch::ml {
namespace {

/// In-place Cholesky solve of (A)x = b for symmetric positive-definite A
/// (row-major n x n). Returns false if A is not SPD.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b,
                   std::size_t n) {
  // Decompose A = L L^T (lower triangle stored in-place).
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward substitution L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back substitution L^T x = z.
  for (std::size_t i = n; i-- > 0;) {
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= a[k * n + i] * b[k];
    b[i] = v / a[i * n + i];
  }
  return true;
}

}  // namespace

double KernelRidgeRegressor::Kernel(std::span<const double> a,
                                    std::span<const double> b) const {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::exp(-gamma_ * d);
}

void KernelRidgeRegressor::Fit(const Dataset& data) {
  alpha_.clear();
  if (data.empty()) return;
  scaler_.Fit(data);
  train_ = scaler_.TransformAll(data);
  gamma_ = config_.gamma > 0
               ? config_.gamma
               : 1.0 / static_cast<double>(data.num_features());
  y_mean_ = Mean(data.targets());

  const std::size_t n = train_.size();
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = Kernel(train_.row(i), train_.row(j));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += config_.ridge_lambda;
  }
  alpha_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alpha_[i] = train_.target(i) - y_mean_;
  const bool ok = CholeskySolve(k, alpha_, n);
  assert(ok && "kernel matrix not SPD; increase ridge_lambda");
  (void)ok;
}

double KernelRidgeRegressor::Predict(std::span<const double> x) const {
  if (alpha_.empty()) return y_mean_;
  const auto q = scaler_.Transform(x);
  double y = y_mean_;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    y += alpha_[i] * Kernel(train_.row(i), q);
  }
  return y;
}

}  // namespace merch::ml
