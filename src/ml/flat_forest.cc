#include "ml/flat_forest.h"

#include <algorithm>

#include "common/env.h"
#include "obs/metrics.h"

namespace merch::ml {

void FlatForest::Clear() {
  feature.clear();
  threshold.clear();
  value.clear();
  left.clear();
  right.clear();
  roots.clear();
  base = 0.0;
  tree_scale = 1.0;
  divisor = 1.0;
  simd = common::EnvToggle("MERCH_SIMD", true);
}

void FlatForest::PredictBatch(std::span<const double> rows,
                              std::size_t num_features,
                              std::span<double> out) const {
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = base;
  const std::int32_t* feat = feature.data();
  const double* thresh = threshold.data();
  const std::int32_t* lo = left.data();
  const std::int32_t* hi = right.data();
  const double* val = value.data();
  std::uint64_t visits = 0;
  // Tree-outer: one tree's nodes stay cache-resident across the batch.
  // Per-row accumulation order equals the scalar ensemble walk (tree
  // order), so results are bitwise identical.
  for (const std::int32_t root : roots) {
    std::size_t i = 0;
    if (simd) {
      // Four rows per tree in lock-step: four independent node chains hide
      // each other's node-load latency. Rows never interact — each keeps
      // its own accumulator — so lane width cannot change a bit, and the
      // remainder rows below take the one-row walk unchanged.
      constexpr std::size_t kLanes = 4;
      for (; i + kLanes <= n; i += kLanes) {
        std::int32_t node[kLanes];
        std::int32_t f[kLanes];
        const double* x[kLanes];
        for (std::size_t k = 0; k < kLanes; ++k) {
          node[k] = root;
          f[k] = feat[root];
          x[k] = rows.data() + (i + k) * num_features;
        }
        while (f[0] >= 0 || f[1] >= 0 || f[2] >= 0 || f[3] >= 0) {
          for (std::size_t k = 0; k < kLanes; ++k) {
            if (f[k] >= 0) {
              node[k] = x[k][f[k]] <= thresh[node[k]] ? lo[node[k]]
                                                      : hi[node[k]];
              f[k] = feat[node[k]];
              ++visits;
            }
          }
        }
        for (std::size_t k = 0; k < kLanes; ++k) {
          out[i + k] += tree_scale * val[node[k]];
        }
      }
    }
    for (; i < n; ++i) {
      const double* x = rows.data() + i * num_features;
      std::int32_t node = root;
      std::int32_t f = feat[node];
      while (f >= 0) {
        node = x[f] <= thresh[node] ? lo[node] : hi[node];
        f = feat[node];
        ++visits;
      }
      out[i] += tree_scale * val[node];
    }
  }
  MERCH_METRIC_COUNT("merch_ml_flat_forest_node_visits_total", visits);
  if (divisor != 1.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] /= divisor;
  }
}

double FlatForest::PredictOne(std::span<const double> x) const {
  double y = 0;
  PredictBatch(x, x.size(), std::span<double>(&y, 1));
  return y;
}

FlatForestPartial::FlatForestPartial(const FlatForest* forest,
                                     std::span<const double> row,
                                     std::size_t var) {
  const std::int32_t* feat = forest->feature.data();
  const double* thresh = forest->threshold.data();
  const std::int32_t* lo = forest->left.data();
  const std::int32_t* hi = forest->right.data();
  const double* val = forest->value.data();

  // Pass 1: fixed-feature splits are decided by the row; splits on `var`
  // fork, and their thresholds become the global breakpoints of the
  // piecewise-constant collapsed function.
  std::uint64_t visits = 0;
  std::vector<std::int32_t> stack;
  for (const std::int32_t root : forest->roots) {
    stack.push_back(root);
    while (!stack.empty()) {
      std::int32_t node = stack.back();
      stack.pop_back();
      std::int32_t f = feat[node];
      while (f >= 0) {
        ++visits;
        if (static_cast<std::size_t>(f) == var) {
          breakpoints_.push_back(thresh[node]);
          stack.push_back(hi[node]);
          node = lo[node];
        } else {
          node = row[f] <= thresh[node] ? lo[node] : hi[node];
        }
        f = feat[node];
      }
    }
  }
  std::sort(breakpoints_.begin(), breakpoints_.end());
  breakpoints_.erase(std::unique(breakpoints_.begin(), breakpoints_.end()),
                     breakpoints_.end());

  // Pass 2: propagate interval-index ranges down each tree and accumulate
  // leaf contributions. Tree-outer with per-interval `+= tree_scale * leaf`
  // reproduces PredictBatch's accumulation order exactly (each tree
  // contributes exactly one leaf to every interval), so values_ is
  // bitwise what PredictBatch would return for one representative row per
  // interval. Interval i covers (b[i-1], b[i]]: its representative
  // satisfies x <= t identically for every breakpoint threshold t, which
  // is why one value is exact for the whole interval.
  const std::size_t num_intervals = breakpoints_.size() + 1;
  values_.assign(num_intervals, forest->base);
  struct Frame {
    std::int32_t node;
    std::uint32_t lo_idx;  // interval-index range [lo_idx, hi_idx)
    std::uint32_t hi_idx;
  };
  std::vector<Frame> frames;
  for (const std::int32_t root : forest->roots) {
    frames.push_back({root, 0, static_cast<std::uint32_t>(num_intervals)});
    while (!frames.empty()) {
      Frame fr = frames.back();
      frames.pop_back();
      std::int32_t f = feat[fr.node];
      while (f >= 0) {
        ++visits;
        if (static_cast<std::size_t>(f) == var) {
          // Intervals 0..p have representatives <= t (interval p's
          // representative IS t); intervals past p exceed it.
          const std::uint32_t p = static_cast<std::uint32_t>(
              std::lower_bound(breakpoints_.begin(), breakpoints_.end(),
                               thresh[fr.node]) -
              breakpoints_.begin());
          const std::uint32_t split = std::min(fr.hi_idx, p + 1);
          if (split < fr.hi_idx) {
            frames.push_back({hi[fr.node], split, fr.hi_idx});
          }
          fr.hi_idx = split;
          fr.node = lo[fr.node];
          if (fr.lo_idx >= fr.hi_idx) break;  // empty range, dead branch
        } else {
          fr.node = row[f] <= thresh[fr.node] ? lo[fr.node] : hi[fr.node];
        }
        f = feat[fr.node];
      }
      if (f < 0 && fr.lo_idx < fr.hi_idx) {
        const double contrib = forest->tree_scale * val[fr.node];
        for (std::uint32_t i = fr.lo_idx; i < fr.hi_idx; ++i) {
          values_[i] += contrib;
        }
      }
    }
  }
  if (forest->divisor != 1.0) {
    for (double& v : values_) v /= forest->divisor;
  }
  MERCH_METRIC_COUNT("merch_ml_flat_forest_node_visits_total", visits);
}

double FlatForestPartial::Predict(double x) const {
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(breakpoints_.begin(), breakpoints_.end(), x) -
      breakpoints_.begin());
  return values_[idx];
}

}  // namespace merch::ml
