#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace merch::ml {

void KNeighborsRegressor::Fit(const Dataset& data) {
  scaler_.Fit(data);
  train_ = scaler_.TransformAll(data);
}

double KNeighborsRegressor::Predict(std::span<const double> x) const {
  if (train_.empty()) return 0.0;
  const std::vector<double> q = scaler_.Transform(x);
  struct Neighbor {
    double dist_sq;
    double y;
  };
  std::vector<Neighbor> all;
  all.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    const auto r = train_.row(i);
    double d = 0;
    for (std::size_t f = 0; f < q.size(); ++f) {
      d += (r[f] - q[f]) * (r[f] - q[f]);
    }
    all.push_back({d, train_.target(i)});
  }
  const std::size_t k = std::min(config_.k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.dist_sq < b.dist_sq;
                    });
  if (!config_.distance_weighted) {
    double sum = 0;
    for (std::size_t i = 0; i < k; ++i) sum += all[i].y;
    return sum / static_cast<double>(k);
  }
  double wsum = 0, ysum = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(all[i].dist_sq) + 1e-9);
    wsum += w;
    ysum += w * all[i].y;
  }
  return ysum / wsum;
}

}  // namespace merch::ml
