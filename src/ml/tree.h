// CART regression tree (variance-reduction splitting).
//
// Used directly as the paper's "DTR" and as the weak learner inside the
// random forest and gradient-boosted regressors. Also exposes impurity-
// based feature importance, the "Gini importance" the paper uses to rank
// hardware events (Section 5.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/flat_forest.h"
#include "ml/model.h"

namespace merch::ml {

struct TreeConfig {
  int max_depth = 10;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features considered per split; 0 = all (forests pass a subset size).
  std::size_t max_features = 0;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {}, std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  /// Per-row walk over the contiguous node vector; bitwise equal to
  /// Predict on every row (no ensemble accumulation for a single tree).
  void PredictBatch(std::span<const double> rows, std::size_t num_features,
                    std::span<double> out) const override;
  std::string name() const override { return "DTR"; }

  /// Fit on externally supplied targets (gradient boosting fits trees to
  /// residuals without copying features).
  void FitResiduals(const Dataset& data, std::span<const double> residuals);

  /// Per-feature impurity decrease, normalised to sum 1.
  std::vector<double> FeatureImportance() const;

  /// Appends this tree to a flattened ensemble (child indices rebased to
  /// the forest's global node array). Build always places the root at
  /// local index 0.
  void AppendToForest(FlatForest* forest) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    // Leaf iff feature == SIZE_MAX.
    std::size_t feature = static_cast<std::size_t>(-1);
    double threshold = 0;
    double value = 0;       // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t Build(const Dataset& data, std::span<const double> targets,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth);

  TreeConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;  // raw impurity decrease per feature
  std::size_t num_features_ = 0;
};

}  // namespace merch::ml
