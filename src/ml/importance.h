// Feature-importance utilities for the event-selection study.
//
// The paper ranks hardware events by Gini importance and drops the least
// important event until accuracy degrades (Section 5.1); Figure 7 sweeps
// model accuracy against the number of retained events. Impurity ("Gini")
// importance comes from the tree ensembles directly; permutation
// importance is provided as a model-agnostic cross-check.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace merch::ml {

/// Model-agnostic permutation importance: R^2 drop when each feature is
/// shuffled on the evaluation set. `repeats` shuffles are averaged.
std::vector<double> PermutationImportance(const Regressor& model,
                                          const Dataset& eval, Rng& rng,
                                          int repeats = 3);

/// Feature indices sorted by importance, descending.
std::vector<std::size_t> RankFeatures(const std::vector<double>& importance);

/// Recursive feature elimination (the paper's selection loop): train
/// `make_model()` on progressively smaller feature sets, dropping the
/// least-important feature each round. Returns, for every feature count
/// from num_features down to 1, the test R^2 and the retained features.
struct EliminationStep {
  std::size_t num_features = 0;
  double test_r2 = 0;
  std::vector<std::size_t> features;  // retained, original indices
};

std::vector<EliminationStep> RecursiveFeatureElimination(
    const Dataset& train, const Dataset& test,
    const std::function<std::unique_ptr<Regressor>()>& make_model, Rng& rng);

}  // namespace merch::ml
