// RBF kernel ridge regression — our stand-in for the paper's "SVR"
// (kernel='rbf'). Kernel ridge shares the RBF hypothesis space with
// epsilon-SVR and behaves near-identically on dense low-noise regression
// tasks while training with one Cholesky solve.
#pragma once

#include "ml/model.h"

namespace merch::ml {

struct KernelRidgeConfig {
  double ridge_lambda = 1e-3;
  /// RBF gamma; 0 = 1 / num_features (sklearn 'scale'-like default on
  /// standardised inputs).
  double gamma = 0.0;
};

class KernelRidgeRegressor final : public Regressor {
 public:
  explicit KernelRidgeRegressor(KernelRidgeConfig config = {})
      : config_(config) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string name() const override { return "SVR"; }

 private:
  double Kernel(std::span<const double> a, std::span<const double> b) const;

  KernelRidgeConfig config_;
  double gamma_ = 1.0;
  Standardizer scaler_;
  Dataset train_;
  std::vector<double> alpha_;  // dual coefficients
  double y_mean_ = 0;
};

}  // namespace merch::ml
