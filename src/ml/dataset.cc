#include "ml/dataset.h"

#include <cassert>
#include <cmath>

namespace merch::ml {

void Dataset::Add(std::vector<double> x, double y) {
  if (num_features_ == 0) num_features_ = x.size();
  assert(x.size() == num_features_);
  X_.insert(X_.end(), x.begin(), x.end());
  y_.push_back(y);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng& rng) const {
  const auto perm = rng.Permutation(size());
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));
  Dataset train(num_features_), test(num_features_);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto r = row(perm[i]);
    std::vector<double> x(r.begin(), r.end());
    if (i < n_train) {
      train.Add(std::move(x), y_[perm[i]]);
    } else {
      test.Add(std::move(x), y_[perm[i]]);
    }
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_);
  for (const std::size_t i : indices) {
    const auto r = row(i);
    out.Add(std::vector<double>(r.begin(), r.end()), y_[i]);
  }
  return out;
}

Dataset Dataset::SelectFeatures(std::span<const std::size_t> features) const {
  Dataset out(features.size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    std::vector<double> x;
    x.reserve(features.size());
    for (const std::size_t f : features) x.push_back(r[f]);
    out.Add(std::move(x), y_[i]);
  }
  return out;
}

Dataset Dataset::PermuteFeature(std::size_t feature, Rng& rng) const {
  assert(feature < num_features_);
  const auto perm = rng.Permutation(size());
  Dataset out(num_features_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    std::vector<double> x(r.begin(), r.end());
    x[feature] = row(perm[i])[feature];
    out.Add(std::move(x), y_[i]);
  }
  return out;
}

void Standardizer::Fit(const Dataset& data) {
  const std::size_t nf = data.num_features();
  mean_.assign(nf, 0.0);
  inv_std_.assign(nf, 1.0);
  if (data.empty()) return;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto r = data.row(i);
    for (std::size_t f = 0; f < nf; ++f) mean_[f] += r[f];
  }
  for (double& m : mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(nf, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto r = data.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      var[f] += (r[f] - mean_[f]) * (r[f] - mean_[f]);
    }
  }
  for (std::size_t f = 0; f < nf; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(data.size()));
    inv_std_[f] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Standardizer::Transform(std::span<const double> x) const {
  assert(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) {
    out[f] = (x[f] - mean_[f]) * inv_std_[f];
  }
  return out;
}

Dataset Standardizer::TransformAll(const Dataset& data) const {
  Dataset out(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.Add(Transform(data.row(i)), data.target(i));
  }
  return out;
}

}  // namespace merch::ml
