// Multi-layer perceptron regressor (paper Table 3: "ANN",
// hidden_layer=(200, 20), alpha=1e-5). ReLU activations, Adam optimiser,
// mini-batch training, standardised inputs and target.
#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace merch::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden = {200, 20};
  double l2_alpha = 1e-5;
  double learning_rate = 1e-3;
  std::size_t batch_size = 32;
  std::size_t epochs = 200;
};

class MLPRegressor final : public Regressor {
 public:
  explicit MLPRegressor(MlpConfig config = {}, std::uint64_t seed = 7)
      : config_(std::move(config)), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string name() const override { return "ANN"; }

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;  // out x in, row major
    std::vector<double> b;  // out
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  std::vector<double> Forward(std::span<const double> x,
                              std::vector<std::vector<double>>* activations)
      const;

  MlpConfig config_;
  Rng rng_;
  Standardizer scaler_;
  double y_mean_ = 0, y_std_ = 1;
  std::vector<Layer> layers_;
};

}  // namespace merch::ml
