// In-memory regression dataset + feature standardisation.
//
// The correlation-function training data (paper Section 5.1) is a few
// thousand samples of ~25 features, so simple row-major storage is right.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace merch::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features) : num_features_(num_features) {}

  void Add(std::vector<double> x, double y);

  std::size_t size() const { return y_.size(); }
  std::size_t num_features() const { return num_features_; }
  bool empty() const { return y_.empty(); }

  std::span<const double> row(std::size_t i) const {
    return {X_.data() + i * num_features_, num_features_};
  }
  double target(std::size_t i) const { return y_[i]; }
  std::span<const double> targets() const { return y_; }
  /// The row-major feature block (size() * num_features() doubles) — the
  /// layout PredictBatch consumes directly.
  std::span<const double> raw() const { return X_; }

  /// Random train/test split (paper uses 70/30, Section 7.3).
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng& rng) const;

  /// Subset by row indices (bootstrap sampling for forests).
  Dataset Subset(std::span<const std::size_t> indices) const;

  /// Copy with a subset of feature columns (event-selection study,
  /// Figure 7).
  Dataset SelectFeatures(std::span<const std::size_t> features) const;

  /// Copy with one feature column randomly permuted (permutation
  /// importance).
  Dataset PermuteFeature(std::size_t feature, Rng& rng) const;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> X_;  // row major, size() * num_features_
  std::vector<double> y_;
};

/// Z-score standardiser fitted on training data, applied everywhere.
class Standardizer {
 public:
  void Fit(const Dataset& data);
  std::vector<double> Transform(std::span<const double> x) const;
  Dataset TransformAll(const Dataset& data) const;

  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace merch::ml
