#include "ml/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace merch::ml {
namespace {

struct SplitResult {
  std::size_t feature = static_cast<std::size_t>(-1);
  double threshold = 0;
  double gain = 0;  // impurity (SSE) decrease
  std::size_t split_point = 0;  // index into the sorted order
};

}  // namespace

void DecisionTreeRegressor::Fit(const Dataset& data) {
  FitResiduals(data, data.targets());
}

void DecisionTreeRegressor::FitResiduals(const Dataset& data,
                                         std::span<const double> targets) {
  assert(data.size() == targets.size());
  nodes_.clear();
  num_features_ = data.num_features();
  importance_.assign(num_features_, 0.0);
  if (data.empty()) {
    nodes_.push_back(Node{.value = 0.0});
    return;
  }
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  Build(data, targets, indices, 0, data.size(), 0);
}

std::int32_t DecisionTreeRegressor::Build(const Dataset& data,
                                          std::span<const double> targets,
                                          std::vector<std::size_t>& indices,
                                          std::size_t begin, std::size_t end,
                                          int depth) {
  const std::size_t n = end - begin;
  double sum = 0, sum_sq = 0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += targets[indices[i]];
    sum_sq += targets[indices[i]] * targets[indices[i]];
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sum_sq - sum * mean;

  const auto make_leaf = [&]() -> std::int32_t {
    nodes_.push_back(Node{.value = mean});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset (forest mode).
  std::vector<std::size_t> features(num_features_);
  std::iota(features.begin(), features.end(), 0);
  if (config_.max_features > 0 && config_.max_features < num_features_) {
    for (std::size_t i = 0; i < config_.max_features; ++i) {
      const std::size_t j = i + rng_.NextBelow(num_features_ - i);
      std::swap(features[i], features[j]);
    }
    features.resize(config_.max_features);
  }

  SplitResult best;
  std::vector<std::size_t> order(indices.begin() + begin, indices.begin() + end);
  std::vector<std::size_t> best_order;
  for (const std::size_t f : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });
    // Scan split positions; prefix sums give left/right SSE in O(1).
    double left_sum = 0, left_sq = 0;
    for (std::size_t k = 1; k < n; ++k) {
      const double y = targets[order[k - 1]];
      left_sum += y;
      left_sq += y * y;
      const double xv_prev = data.row(order[k - 1])[f];
      const double xv = data.row(order[k])[f];
      if (xv <= xv_prev) continue;  // no boundary between equal values
      if (k < config_.min_samples_leaf || n - k < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(k);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(n - k);
      const double gain = sse - left_sse - right_sse;
      if (gain > best.gain) {
        best = SplitResult{f, 0.5 * (xv_prev + xv), gain, k};
        best_order = order;
      }
    }
  }

  if (best.feature == static_cast<std::size_t>(-1)) return make_leaf();

  importance_[best.feature] += best.gain;
  std::copy(best_order.begin(), best_order.end(), indices.begin() + begin);

  const std::size_t node_index = nodes_.size();
  nodes_.push_back(Node{.feature = best.feature, .threshold = best.threshold,
                        .value = mean});
  const std::int32_t left =
      Build(data, targets, indices, begin, begin + best.split_point, depth + 1);
  const std::int32_t right =
      Build(data, targets, indices, begin + best.split_point, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return static_cast<std::int32_t>(node_index);
}

double DecisionTreeRegressor::Predict(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  // Root is node 0 (Build pushes the root before its children... note the
  // root is pushed first only when it splits; a pure-leaf fit also lands at
  // index 0).
  std::size_t i = 0;
  for (;;) {
    const Node& n = nodes_[i];
    if (n.feature == static_cast<std::size_t>(-1)) return n.value;
    i = static_cast<std::size_t>(x[n.feature] <= n.threshold ? n.left
                                                             : n.right);
  }
}

void DecisionTreeRegressor::PredictBatch(std::span<const double> rows,
                                         std::size_t num_features,
                                         std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Predict(rows.subspan(i * num_features, num_features));
  }
}

void DecisionTreeRegressor::AppendToForest(FlatForest* forest) const {
  const auto offset = static_cast<std::int32_t>(forest->num_nodes());
  forest->roots.push_back(offset);  // root is local node 0 (see Predict)
  if (nodes_.empty()) {  // unfitted tree predicts 0.0
    forest->feature.push_back(-1);
    forest->threshold.push_back(0.0);
    forest->value.push_back(0.0);
    forest->left.push_back(-1);
    forest->right.push_back(-1);
    return;
  }
  for (const Node& n : nodes_) {
    const bool leaf = n.feature == static_cast<std::size_t>(-1);
    forest->feature.push_back(leaf ? -1 : static_cast<std::int32_t>(n.feature));
    forest->threshold.push_back(n.threshold);
    forest->value.push_back(n.value);
    forest->left.push_back(leaf ? -1 : n.left + offset);
    forest->right.push_back(leaf ? -1 : n.right + offset);
  }
}

std::vector<double> DecisionTreeRegressor::FeatureImportance() const {
  std::vector<double> out = importance_;
  double total = 0;
  for (const double v : out) total += v;
  if (total > 0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace merch::ml
