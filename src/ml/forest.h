// Random forest regressor: bagged CART trees with per-split feature
// subsampling (paper Table 3: "RFR", n_estimators=20, max_depth=10).
#pragma once

#include <memory>

#include "ml/tree.h"

namespace merch::ml {

struct ForestConfig {
  std::size_t num_trees = 20;
  TreeConfig tree;
  /// Per-split feature candidates as a fraction of features; 0 = sqrt(F).
  double feature_fraction = 0.0;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {},
                                 std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  /// Flattened single-pass walk over all trees (ml/flat_forest.h);
  /// bitwise equal to the per-row Predict loop. MERCH_FLAT_FOREST=0
  /// falls back to the per-row path.
  void PredictBatch(std::span<const double> rows, std::size_t num_features,
                    std::span<double> out) const override;
  /// Piecewise-constant collapse over the free feature (FlatForestPartial;
  /// bitwise equal to Predict). Returns nullptr under MERCH_FLAT_FOREST=0.
  std::unique_ptr<PartialModel> Specialize(std::span<const double> row,
                                           std::size_t var) const override;
  std::string name() const override { return "RFR"; }

  const FlatForest& flat_forest() const { return flat_; }

  /// Mean impurity importance over trees.
  std::vector<double> FeatureImportance() const;

 private:
  void CompileFlat();

  ForestConfig config_;
  Rng rng_;
  std::vector<DecisionTreeRegressor> trees_;
  FlatForest flat_;  // compiled at the end of Fit
};

}  // namespace merch::ml
