// Random forest regressor: bagged CART trees with per-split feature
// subsampling (paper Table 3: "RFR", n_estimators=20, max_depth=10).
#pragma once

#include <memory>

#include "ml/tree.h"

namespace merch::ml {

struct ForestConfig {
  std::size_t num_trees = 20;
  TreeConfig tree;
  /// Per-split feature candidates as a fraction of features; 0 = sqrt(F).
  double feature_fraction = 0.0;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {},
                                 std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string name() const override { return "RFR"; }

  /// Mean impurity importance over trees.
  std::vector<double> FeatureImportance() const;

 private:
  ForestConfig config_;
  Rng rng_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace merch::ml
