// Common regressor interface for the Table 3 model family.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace merch::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void Fit(const Dataset& data) = 0;
  virtual double Predict(std::span<const double> x) const = 0;
  virtual std::string name() const = 0;

  std::vector<double> PredictAll(const Dataset& data) const;
  /// R-squared on a dataset (paper's Table 3 metric).
  double Score(const Dataset& data) const;
};

/// Factory covering the paper's Table 3 with its listed hyperparameters:
/// "DTR" (max_depth=10), "SVR" (rbf kernel ridge), "KNR" (k=8),
/// "RFR" (20 trees, depth 10), "GBR", "ANN" (MLP 200x20, alpha=1e-5).
std::unique_ptr<Regressor> MakeRegressor(const std::string& kind,
                                         std::uint64_t seed = 7);

/// All Table 3 model kinds in paper order.
const std::vector<std::string>& AllRegressorKinds();

}  // namespace merch::ml
