// Common regressor interface for the Table 3 model family.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace merch::ml {

/// A model partially evaluated on a fixed feature row with one feature
/// left free: Predict(x) is bitwise equal to the full model's
/// Predict(row) with row[var] = x. Built once per (row, var) and queried
/// many times — the correlation function's decision-loop pattern, where
/// the PMC features are fixed per task and only the DRAM ratio varies.
/// Predict is const and must be safe for concurrent calls (instances are
/// shared through caches).
class PartialModel {
 public:
  virtual ~PartialModel() = default;
  virtual double Predict(double x) const = 0;
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void Fit(const Dataset& data) = 0;
  virtual double Predict(std::span<const double> x) const = 0;
  virtual std::string name() const = 0;

  /// Predicts `out.size()` feature rows stored row-major in `rows`
  /// (rows.size() == out.size() * num_features). The default loops
  /// Predict; tree ensembles override with a flattened single-pass walk
  /// that is bitwise identical to the per-row path (ml/flat_forest.h).
  virtual void PredictBatch(std::span<const double> rows,
                            std::size_t num_features,
                            std::span<double> out) const;

  /// Specialize the model on `row` with feature index `var` left free
  /// (see PartialModel). Returns nullptr when the model has no
  /// accelerated specialization — callers fall back to full Predict
  /// calls. Tree ensembles resolve every fixed-feature split up front,
  /// collapsing to a piecewise-constant function of the free feature.
  virtual std::unique_ptr<PartialModel> Specialize(
      std::span<const double> row, std::size_t var) const {
    (void)row;
    (void)var;
    return nullptr;
  }

  /// Batched prediction over a dataset (routes through PredictBatch).
  std::vector<double> PredictAll(const Dataset& data) const;
  /// R-squared on a dataset (paper's Table 3 metric).
  double Score(const Dataset& data) const;
};

/// Factory covering the paper's Table 3 with its listed hyperparameters:
/// "DTR" (max_depth=10), "SVR" (rbf kernel ridge), "KNR" (k=8),
/// "RFR" (20 trees, depth 10), "GBR", "ANN" (MLP 200x20, alpha=1e-5).
std::unique_ptr<Regressor> MakeRegressor(const std::string& kind,
                                         std::uint64_t seed = 7);

/// All Table 3 model kinds in paper order.
const std::vector<std::string>& AllRegressorKinds();

}  // namespace merch::ml
