#include "ml/forest.h"

#include <cmath>

#include "common/env.h"

namespace merch::ml {

void RandomForestRegressor::Fit(const Dataset& data) {
  trees_.clear();
  if (data.empty()) {
    CompileFlat();
    return;
  }
  TreeConfig tc = config_.tree;
  if (config_.feature_fraction > 0) {
    tc.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.feature_fraction *
                                    static_cast<double>(data.num_features())));
  } else {
    tc.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(data.num_features()))));
  }
  trees_.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::size_t> idx(data.size());
    for (auto& i : idx) i = rng_.NextBelow(data.size());
    const Dataset boot = data.Subset(idx);
    DecisionTreeRegressor tree(tc, rng_.NextU64());
    tree.Fit(boot);
    trees_.push_back(std::move(tree));
  }
  CompileFlat();
}

void RandomForestRegressor::CompileFlat() {
  flat_.Clear();
  // Scalar path: sum += tree.Predict(x); sum / num_trees. base 0 and
  // tree_scale 1 reproduce the sum bitwise (1.0 * leaf is exact), the
  // divisor reproduces the average.
  flat_.divisor = trees_.empty() ? 1.0 : static_cast<double>(trees_.size());
  for (const DecisionTreeRegressor& tree : trees_) {
    tree.AppendToForest(&flat_);
  }
}

double RandomForestRegressor::Predict(std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0;
  for (const auto& t : trees_) sum += t.Predict(x);
  return sum / static_cast<double>(trees_.size());
}

void RandomForestRegressor::PredictBatch(std::span<const double> rows,
                                         std::size_t num_features,
                                         std::span<double> out) const {
  if (!common::EnvToggle("MERCH_FLAT_FOREST", true)) {
    Regressor::PredictBatch(rows, num_features, out);  // per-row walk
    return;
  }
  flat_.PredictBatch(rows, num_features, out);
}

std::unique_ptr<PartialModel> RandomForestRegressor::Specialize(
    std::span<const double> row, std::size_t var) const {
  if (flat_.empty() || !common::EnvToggle("MERCH_FLAT_FOREST", true)) {
    return nullptr;
  }
  return std::make_unique<FlatForestPartial>(&flat_, row, var);
}

std::vector<double> RandomForestRegressor::FeatureImportance() const {
  if (trees_.empty()) return {};
  std::vector<double> acc = trees_[0].FeatureImportance();
  for (std::size_t t = 1; t < trees_.size(); ++t) {
    const auto imp = trees_[t].FeatureImportance();
    for (std::size_t f = 0; f < acc.size(); ++f) acc[f] += imp[f];
  }
  double total = 0;
  for (const double v : acc) total += v;
  if (total > 0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

}  // namespace merch::ml
