#include "ml/model.h"

#include <stdexcept>

#include "common/stats.h"
#include "ml/forest.h"
#include "ml/gbr.h"
#include "ml/kernel_ridge.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace merch::ml {

void Regressor::PredictBatch(std::span<const double> rows,
                             std::size_t num_features,
                             std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Predict(rows.subspan(i * num_features, num_features));
  }
}

std::vector<double> Regressor::PredictAll(const Dataset& data) const {
  std::vector<double> out(data.size());
  PredictBatch(data.raw(), data.num_features(), out);
  return out;
}

double Regressor::Score(const Dataset& data) const {
  const auto pred = PredictAll(data);
  return RSquared(data.targets(), pred);
}

std::unique_ptr<Regressor> MakeRegressor(const std::string& kind,
                                         std::uint64_t seed) {
  if (kind == "DTR") {
    return std::make_unique<DecisionTreeRegressor>(TreeConfig{.max_depth = 10},
                                                   seed);
  }
  if (kind == "SVR") {
    return std::make_unique<KernelRidgeRegressor>();
  }
  if (kind == "KNR") {
    return std::make_unique<KNeighborsRegressor>(KnnConfig{.k = 8});
  }
  if (kind == "RFR") {
    return std::make_unique<RandomForestRegressor>(
        ForestConfig{.num_trees = 20, .tree = TreeConfig{.max_depth = 10}},
        seed);
  }
  if (kind == "GBR") {
    return std::make_unique<GradientBoostedRegressor>(GbrConfig{}, seed);
  }
  if (kind == "ANN") {
    return std::make_unique<MLPRegressor>(MlpConfig{}, seed);
  }
  throw std::invalid_argument("unknown regressor kind: " + kind);
}

const std::vector<std::string>& AllRegressorKinds() {
  static const std::vector<std::string> kKinds = {"DTR", "SVR", "KNR",
                                                  "RFR", "GBR", "ANN"};
  return kKinds;
}

}  // namespace merch::ml
