#include "ml/importance.h"

#include <algorithm>
#include <numeric>

#include "ml/gbr.h"

namespace merch::ml {

std::vector<double> PermutationImportance(const Regressor& model,
                                          const Dataset& eval, Rng& rng,
                                          int repeats) {
  const double base = model.Score(eval);
  std::vector<double> out(eval.num_features(), 0.0);
  for (std::size_t f = 0; f < eval.num_features(); ++f) {
    double drop = 0;
    for (int r = 0; r < repeats; ++r) {
      const Dataset permuted = eval.PermuteFeature(f, rng);
      drop += base - model.Score(permuted);
    }
    out[f] = std::max(0.0, drop / repeats);
  }
  return out;
}

std::vector<std::size_t> RankFeatures(const std::vector<double>& importance) {
  std::vector<std::size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return importance[a] > importance[b];
                   });
  return order;
}

std::vector<EliminationStep> RecursiveFeatureElimination(
    const Dataset& train, const Dataset& test,
    const std::function<std::unique_ptr<Regressor>()>& make_model, Rng& rng) {
  std::vector<std::size_t> features(train.num_features());
  std::iota(features.begin(), features.end(), 0);

  std::vector<EliminationStep> steps;
  while (!features.empty()) {
    const Dataset sub_train = train.SelectFeatures(features);
    const Dataset sub_test = test.SelectFeatures(features);
    auto model = make_model();
    model->Fit(sub_train);

    EliminationStep step;
    step.num_features = features.size();
    step.test_r2 = model->Score(sub_test);
    step.features = features;
    steps.push_back(step);

    if (features.size() == 1) break;

    // Importance within the current subset: prefer the ensemble's impurity
    // importance when available, fall back to permutation importance.
    std::vector<double> imp;
    if (auto* gbr = dynamic_cast<GradientBoostedRegressor*>(model.get())) {
      imp = gbr->FeatureImportance();
    }
    if (imp.empty()) {
      imp = PermutationImportance(*model, sub_test, rng, 2);
    }
    const auto rank = RankFeatures(imp);
    const std::size_t drop_local = rank.back();
    features.erase(features.begin() + static_cast<long>(drop_local));
  }
  return steps;
}

}  // namespace merch::ml
