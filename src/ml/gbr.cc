#include "ml/gbr.h"

#include <numeric>

#include "common/stats.h"

namespace merch::ml {

void GradientBoostedRegressor::Fit(const Dataset& data) {
  stages_.clear();
  if (data.empty()) {
    base_prediction_ = 0;
    return;
  }
  base_prediction_ = Mean(data.targets());
  std::vector<double> residuals(data.size());
  std::vector<double> current(data.size(), base_prediction_);

  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.subsample *
                                  static_cast<double>(data.size())));
  stages_.reserve(config_.num_stages);
  for (std::size_t stage = 0; stage < config_.num_stages; ++stage) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals[i] = data.target(i) - current[i];
    }
    DecisionTreeRegressor tree(config_.tree, rng_.NextU64());
    if (n_sub < data.size()) {
      const auto idx = rng_.SampleWithoutReplacement(data.size(), n_sub);
      Dataset sub(data.num_features());
      std::vector<double> sub_res;
      sub_res.reserve(idx.size());
      for (const std::size_t i : idx) {
        const auto r = data.row(i);
        sub.Add(std::vector<double>(r.begin(), r.end()), residuals[i]);
      }
      tree.Fit(sub);
    } else {
      tree.FitResiduals(data, residuals);
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      current[i] += config_.learning_rate * tree.Predict(data.row(i));
    }
    stages_.push_back(std::move(tree));
  }
}

double GradientBoostedRegressor::Predict(std::span<const double> x) const {
  double y = base_prediction_;
  for (const auto& tree : stages_) {
    y += config_.learning_rate * tree.Predict(x);
  }
  return y;
}

std::vector<double> GradientBoostedRegressor::FeatureImportance() const {
  if (stages_.empty()) return {};
  std::vector<double> acc = stages_[0].FeatureImportance();
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    const auto imp = stages_[s].FeatureImportance();
    for (std::size_t f = 0; f < acc.size() && f < imp.size(); ++f) {
      acc[f] += imp[f];
    }
  }
  double total = std::accumulate(acc.begin(), acc.end(), 0.0);
  if (total > 0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

}  // namespace merch::ml
