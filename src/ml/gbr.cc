#include "ml/gbr.h"

#include <numeric>

#include "common/env.h"
#include "common/stats.h"

namespace merch::ml {

void GradientBoostedRegressor::Fit(const Dataset& data) {
  stages_.clear();
  if (data.empty()) {
    base_prediction_ = 0;
    CompileFlat();
    return;
  }
  base_prediction_ = Mean(data.targets());
  std::vector<double> residuals(data.size());
  std::vector<double> current(data.size(), base_prediction_);
  std::vector<double> stage_pred(data.size());

  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.subsample *
                                  static_cast<double>(data.size())));
  stages_.reserve(config_.num_stages);
  for (std::size_t stage = 0; stage < config_.num_stages; ++stage) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals[i] = data.target(i) - current[i];
    }
    DecisionTreeRegressor tree(config_.tree, rng_.NextU64());
    if (n_sub < data.size()) {
      const auto idx = rng_.SampleWithoutReplacement(data.size(), n_sub);
      Dataset sub(data.num_features());
      std::vector<double> sub_res;
      sub_res.reserve(idx.size());
      for (const std::size_t i : idx) {
        const auto r = data.row(i);
        sub.Add(std::vector<double>(r.begin(), r.end()), residuals[i]);
      }
      tree.Fit(sub);
    } else {
      tree.FitResiduals(data, residuals);
    }
    // Batched stage update: one pass over the row block instead of a
    // virtual Predict per row (tree.PredictBatch is the same per-row walk,
    // so `current` evolves bitwise identically).
    tree.PredictBatch(data.raw(), data.num_features(), stage_pred);
    for (std::size_t i = 0; i < data.size(); ++i) {
      current[i] += config_.learning_rate * stage_pred[i];
    }
    stages_.push_back(std::move(tree));
  }
  CompileFlat();
}

void GradientBoostedRegressor::CompileFlat() {
  flat_.Clear();
  flat_.base = base_prediction_;
  flat_.tree_scale = config_.learning_rate;
  for (const DecisionTreeRegressor& tree : stages_) {
    tree.AppendToForest(&flat_);
  }
}

double GradientBoostedRegressor::Predict(std::span<const double> x) const {
  double y = base_prediction_;
  for (const auto& tree : stages_) {
    y += config_.learning_rate * tree.Predict(x);
  }
  return y;
}

void GradientBoostedRegressor::PredictBatch(std::span<const double> rows,
                                            std::size_t num_features,
                                            std::span<double> out) const {
  if (!common::EnvToggle("MERCH_FLAT_FOREST", true)) {
    Regressor::PredictBatch(rows, num_features, out);  // per-row walk
    return;
  }
  flat_.PredictBatch(rows, num_features, out);
}

std::unique_ptr<PartialModel> GradientBoostedRegressor::Specialize(
    std::span<const double> row, std::size_t var) const {
  if (flat_.empty() || !common::EnvToggle("MERCH_FLAT_FOREST", true)) {
    return nullptr;
  }
  return std::make_unique<FlatForestPartial>(&flat_, row, var);
}

std::vector<double> GradientBoostedRegressor::FeatureImportance() const {
  if (stages_.empty()) return {};
  std::vector<double> acc = stages_[0].FeatureImportance();
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    const auto imp = stages_[s].FeatureImportance();
    for (std::size_t f = 0; f < acc.size() && f < imp.size(); ++f) {
      acc[f] += imp[f];
    }
  }
  double total = std::accumulate(acc.begin(), acc.end(), 0.0);
  if (total > 0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

}  // namespace merch::ml
