#include "ml/mlp.h"

#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace merch::ml {
namespace {
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

std::vector<double> MLPRegressor::Forward(
    std::span<const double> x,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> a(x.begin(), x.end());
  if (activations != nullptr) activations->push_back(a);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> z(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double acc = layer.b[o];
      const double* wrow = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * a[i];
      // ReLU on hidden layers; linear output.
      z[o] = (li + 1 < layers_.size()) ? std::max(0.0, acc) : acc;
    }
    a = std::move(z);
    if (activations != nullptr) activations->push_back(a);
  }
  return a;
}

void MLPRegressor::Fit(const Dataset& data) {
  layers_.clear();
  if (data.empty()) return;
  scaler_.Fit(data);
  const Dataset scaled = scaler_.TransformAll(data);
  y_mean_ = Mean(data.targets());
  y_std_ = StdDev(data.targets());
  if (y_std_ < 1e-12) y_std_ = 1.0;

  // Build layers: input -> hidden... -> 1, He initialisation.
  std::vector<std::size_t> dims;
  dims.push_back(data.num_features());
  for (const std::size_t h : config_.hidden) dims.push_back(h);
  dims.push_back(1);
  for (std::size_t li = 0; li + 1 < dims.size(); ++li) {
    Layer layer;
    layer.in = dims[li];
    layer.out = dims[li + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng_.NextGaussian(0.0, scale);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.out, 0.0);
    layer.vb.assign(layer.out, 0.0);
    layers_.push_back(std::move(layer));
  }

  std::size_t adam_t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto perm = rng_.Permutation(scaled.size());
    for (std::size_t start = 0; start < perm.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(perm.size(), start + config_.batch_size);
      // Accumulate batch gradients.
      std::vector<std::vector<double>> grad_w(layers_.size());
      std::vector<std::vector<double>> grad_b(layers_.size());
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        grad_w[li].assign(layers_[li].w.size(), 0.0);
        grad_b[li].assign(layers_[li].out, 0.0);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = perm[bi];
        std::vector<std::vector<double>> acts;
        const auto out = Forward(scaled.row(i), &acts);
        const double target = (scaled.target(i) - y_mean_) / y_std_;
        // Backprop, squared loss: dL/dout = out - target.
        std::vector<double> delta = {out[0] - target};
        for (std::size_t li = layers_.size(); li-- > 0;) {
          const Layer& layer = layers_[li];
          const std::vector<double>& a_in = acts[li];
          const std::vector<double>& a_out = acts[li + 1];
          std::vector<double> delta_prev(layer.in, 0.0);
          for (std::size_t o = 0; o < layer.out; ++o) {
            // ReLU derivative (output layer is linear; a_out>0 check only
            // applies to hidden layers).
            double d = delta[o];
            if (li + 1 < layers_.size() && a_out[o] <= 0.0) d = 0.0;
            grad_b[li][o] += d;
            double* gw = grad_w[li].data() + o * layer.in;
            const double* wrow = layer.w.data() + o * layer.in;
            for (std::size_t ii = 0; ii < layer.in; ++ii) {
              gw[ii] += d * a_in[ii];
              delta_prev[ii] += d * wrow[ii];
            }
          }
          delta = std::move(delta_prev);
        }
      }
      // Adam update.
      ++adam_t;
      const double batch_n = static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(adam_t));
      const double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(adam_t));
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        for (std::size_t wi = 0; wi < layer.w.size(); ++wi) {
          const double g =
              grad_w[li][wi] / batch_n + config_.l2_alpha * layer.w[wi];
          layer.mw[wi] = kAdamBeta1 * layer.mw[wi] + (1 - kAdamBeta1) * g;
          layer.vw[wi] = kAdamBeta2 * layer.vw[wi] + (1 - kAdamBeta2) * g * g;
          layer.w[wi] -= config_.learning_rate * (layer.mw[wi] / bc1) /
                         (std::sqrt(layer.vw[wi] / bc2) + kAdamEps);
        }
        for (std::size_t bi2 = 0; bi2 < layer.b.size(); ++bi2) {
          const double g = grad_b[li][bi2] / batch_n;
          layer.mb[bi2] = kAdamBeta1 * layer.mb[bi2] + (1 - kAdamBeta1) * g;
          layer.vb[bi2] = kAdamBeta2 * layer.vb[bi2] + (1 - kAdamBeta2) * g * g;
          layer.b[bi2] -= config_.learning_rate * (layer.mb[bi2] / bc1) /
                          (std::sqrt(layer.vb[bi2] / bc2) + kAdamEps);
        }
      }
    }
  }
}

double MLPRegressor::Predict(std::span<const double> x) const {
  if (layers_.empty()) return y_mean_;
  const auto scaled = scaler_.Transform(x);
  const auto out = Forward(scaled, nullptr);
  return out[0] * y_std_ + y_mean_;
}

}  // namespace merch::ml
