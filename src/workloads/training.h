// Correlation-function training-data generation (paper Section 5.1).
//
// For each code sample: run on PM only and DRAM only (the bounds), then
// under `placements_per_region` fixed data placements; for each placement,
// invert Eq. 2 to obtain the target value of f:
//
//   f = (T_hybrid - T_dram_only * r) / (T_pm_only * (1 - r))
//
// The feature vector is the sample's PMC vector collected with a *seed
// input* (a different input size than the one generating targets, exactly
// as the paper separates seed and training inputs) concatenated with r.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "sim/machine.h"
#include "sim/pmc.h"
#include "workloads/code_region.h"

namespace merch::workloads {

struct TrainingConfig {
  std::size_t num_regions = 281;          // paper's CERE region count
  std::size_t placements_per_region = 10; // paper: 10 data placements
  double seed_input_scale = 0.6;          // PMC-collection input vs training
  std::uint64_t seed = 2023;
  sim::MachineSpec machine = sim::MachineSpec::Paper();
};

struct TrainingSample {
  sim::EventVector pmcs{};
  double r_dram = 0;
  double f_target = 0;
};

/// Generate raw samples by simulation.
std::vector<TrainingSample> GenerateTrainingSamples(const TrainingConfig& cfg);

/// Pack samples into an ml::Dataset. Feature layout: the PMC events in
/// `event_subset` order (empty = all kNumPmcEvents events), then r_dram as
/// the final feature. Target: f.
ml::Dataset ToDataset(const std::vector<TrainingSample>& samples,
                      const std::vector<std::size_t>& event_subset = {});

/// Feature vector for one prediction query, matching ToDataset's layout.
std::vector<double> MakeFeatureRow(const sim::EventVector& pmcs, double r_dram,
                                   const std::vector<std::size_t>& event_subset = {});

}  // namespace merch::workloads
