#include "workloads/code_region.h"

#include <algorithm>
#include <cmath>

namespace merch::workloads {

std::vector<CodeRegionSpec> GenerateCodeRegionSpecs(std::size_t count,
                                                    Rng& rng) {
  std::vector<CodeRegionSpec> specs;
  specs.reserve(count);
  const trace::AccessPattern patterns[] = {
      trace::AccessPattern::kStream, trace::AccessPattern::kStrided,
      trace::AccessPattern::kStencil, trace::AccessPattern::kRandom};
  for (std::size_t i = 0; i < count; ++i) {
    CodeRegionSpec spec;
    spec.name = "region_" + std::to_string(i);
    const int num_objects = static_cast<int>(rng.NextInRange(1, 4));
    for (int o = 0; o < num_objects; ++o) {
      RegionObjectSpec obj;
      obj.pattern = patterns[rng.NextBelow(4)];
      // Log-uniform sizes, 32 MiB .. 32 GiB: below LLC scale is
      // uninteresting for placement, above tens of GiB just scales time.
      const double log_mib = rng.NextDoubleInRange(5.0, 15.0);  // 2^5..2^15 MiB
      obj.bytes = static_cast<std::uint64_t>(std::pow(2.0, log_mib)) * MiB;
      obj.accesses_per_byte = rng.NextDoubleInRange(0.05, 1.5);
      obj.element_bytes = rng.NextBernoulli(0.5) ? 8 : 4;
      obj.stride_elements =
          obj.pattern == trace::AccessPattern::kStrided
              ? static_cast<std::uint32_t>(rng.NextInRange(2, 32))
              : 1;
      obj.read_fraction = rng.NextDoubleInRange(0.5, 1.0);
      spec.objects.push_back(obj);
    }
    // Arithmetic intensity spans memory-bound (<1) to compute-bound (>20).
    spec.instructions_per_access = std::pow(10.0, rng.NextDoubleInRange(-0.3, 1.6));
    spec.branch_fraction = rng.NextDoubleInRange(0.01, 0.20);
    spec.vector_fraction = rng.NextDoubleInRange(0.0, 0.6);
    specs.push_back(std::move(spec));
  }
  return specs;
}

sim::Workload BuildCodeRegionWorkload(const CodeRegionSpec& spec,
                                      double input_scale) {
  sim::Workload w;
  w.name = spec.name;

  sim::Kernel kernel;
  kernel.name = spec.name + "_loop";
  kernel.branch_fraction = spec.branch_fraction;
  kernel.vector_fraction = spec.vector_fraction;

  double total_accesses = 0;
  for (std::size_t i = 0; i < spec.objects.size(); ++i) {
    const RegionObjectSpec& os = spec.objects[i];
    const auto bytes = static_cast<std::uint64_t>(
        std::max(1.0, static_cast<double>(os.bytes) * input_scale));
    sim::ObjectDecl decl;
    decl.name = spec.name + "_obj" + std::to_string(i);
    decl.bytes = bytes;
    decl.owner = 0;
    // Random-pattern objects get skewed page heat (hot lines), sequential
    // patterns uniform heat — matching how real data behaves.
    decl.heat = os.pattern == trace::AccessPattern::kRandom
                    ? trace::HeatProfile::Zipf(0.9)
                    : trace::HeatProfile::Uniform();
    w.objects.push_back(decl);

    trace::ObjectAccess a;
    a.object = static_cast<ObjectId>(i);
    a.pattern = os.pattern;
    a.program_accesses = static_cast<std::uint64_t>(
        os.accesses_per_byte * static_cast<double>(bytes));
    a.element_bytes = os.element_bytes;
    a.stride_elements = os.stride_elements;
    a.read_fraction = os.read_fraction;
    kernel.accesses.push_back(a);
    total_accesses += static_cast<double>(a.program_accesses);
  }
  kernel.instructions = static_cast<std::uint64_t>(
      spec.instructions_per_access * total_accesses);

  sim::Region region;
  region.name = "main";
  region.tasks.push_back(sim::TaskProgram{.task = 0, .kernels = {kernel}});
  for (const sim::ObjectDecl& o : w.objects) {
    region.active_bytes.push_back(o.bytes);
  }
  w.regions.push_back(std::move(region));
  return w;
}

}  // namespace merch::workloads
