#include "workloads/training.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "sim/engine.h"
#include "sim/fixed_fraction.h"

namespace merch::workloads {
namespace {

/// Simulation knobs for the small single-kernel code samples: fine epochs
/// are unnecessary, and every sample must be cheap (thousands of runs).
sim::SimConfig SampleSimConfig(std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.05;
  cfg.interval_seconds = 1e9;  // no profiling interval work
  cfg.page_bytes = 2 * MiB;
  cfg.pmc_noise = 0.02;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

std::vector<TrainingSample> GenerateTrainingSamples(const TrainingConfig& cfg) {
  Rng rng(cfg.seed);
  const auto specs = GenerateCodeRegionSpecs(cfg.num_regions, rng);

  std::vector<TrainingSample> samples;
  samples.reserve(cfg.num_regions * cfg.placements_per_region);

  std::size_t region_i = 0;
  for (const CodeRegionSpec& spec : specs) {
    ++region_i;
    const sim::Workload train_wl = BuildCodeRegionWorkload(spec, 1.0);
    const sim::Workload seed_wl =
        BuildCodeRegionWorkload(spec, cfg.seed_input_scale);

    // Bounds.
    const auto pm_run = sim::SimulateHomogeneous(
        train_wl, cfg.machine, hm::Tier::kPm, SampleSimConfig(rng.NextU64()));
    const auto dram_run = sim::SimulateHomogeneous(
        train_wl, cfg.machine, hm::Tier::kDram, SampleSimConfig(rng.NextU64()));
    const double t_pm = pm_run.total_seconds;
    const double t_dram = dram_run.total_seconds;
    if (t_pm <= 0 || t_dram <= 0 || t_pm <= t_dram * 1.0001) {
      // Fully compute-bound sample: placement is irrelevant; f would be
      // ill-conditioned. Skip (the paper's region set also spans such
      // loops; they contribute nothing to a placement model).
      continue;
    }

    // Seed-input PMC collection on PM only (the paper collects workload
    // characteristics from one execution of a specific data placement).
    const auto seed_run = sim::SimulateHomogeneous(
        seed_wl, cfg.machine, hm::Tier::kPm, SampleSimConfig(rng.NextU64()));
    const sim::EventVector pmcs = seed_run.regions.at(0).tasks.at(0).pmcs;

    for (std::size_t p = 0; p < cfg.placements_per_region; ++p) {
      // Spread requested fractions over (0, 0.9]; jitter them so the
      // model sees r values off the grid. The grid stays clear of r -> 1
      // because the Eq. 2 inversion divides by (1 - r): targets computed
      // at extreme r amplify measurement noise into useless labels (and a
      // placement that serves ~everything from DRAM needs no model).
      const double base_frac = 0.9 *
          (static_cast<double>(p) + 0.5) /
          static_cast<double>(cfg.placements_per_region);
      const double frac =
          std::clamp(base_frac + rng.NextDoubleInRange(-0.04, 0.04), 0.02, 0.90);

      sim::FixedFractionPolicy policy =
          sim::FixedFractionPolicy::Uniform(train_wl.objects.size(), frac);
      sim::Engine engine(train_wl, cfg.machine, SampleSimConfig(rng.NextU64()),
                         &policy);
      const sim::SimResult hybrid = engine.Run();
      const double t_hybrid = hybrid.total_seconds;

      // Achieved r: heat-weighted DRAM share of main-memory accesses.
      const auto& task = hybrid.regions.at(0).tasks.at(0);
      double dram_acc = 0, total_acc = 0;
      for (std::size_t obj = 0; obj < task.object_mm_accesses.size(); ++obj) {
        const double share = obj < policy.achieved().size()
                                 ? policy.achieved()[obj]
                                 : frac;
        dram_acc += task.object_mm_accesses[obj] * share;
        total_acc += task.object_mm_accesses[obj];
      }
      if (total_acc <= 0) continue;
      const double r = std::clamp(dram_acc / total_acc, 0.0, 0.995);

      TrainingSample s;
      s.pmcs = pmcs;
      s.r_dram = r;
      // Clamp pathological inversions (t_hybrid measured slightly outside
      // the homogeneous bounds maps to f < 0 or huge f).
      s.f_target = std::clamp(
          (t_hybrid - t_dram * r) / (t_pm * (1.0 - r)), 0.0, 3.0);
      samples.push_back(s);
    }
    if (region_i % 50 == 0) {
      MERCH_LOG(kInfo) << "training data: " << region_i << "/" << specs.size()
                       << " regions, " << samples.size() << " samples";
    }
  }
  return samples;
}

ml::Dataset ToDataset(const std::vector<TrainingSample>& samples,
                      const std::vector<std::size_t>& event_subset) {
  ml::Dataset data;
  for (const TrainingSample& s : samples) {
    data.Add(MakeFeatureRow(s.pmcs, s.r_dram, event_subset), s.f_target);
  }
  return data;
}

std::vector<double> MakeFeatureRow(const sim::EventVector& pmcs, double r_dram,
                                   const std::vector<std::size_t>& event_subset) {
  std::vector<double> row;
  if (event_subset.empty()) {
    row.assign(pmcs.begin(), pmcs.end());
  } else {
    row.reserve(event_subset.size() + 1);
    for (const std::size_t e : event_subset) row.push_back(pmcs.at(e));
  }
  row.push_back(r_dram);
  return row;
}

}  // namespace merch::workloads
