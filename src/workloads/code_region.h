// Synthetic code regions — the CERE stand-in.
//
// The paper extracts 281 loop regions from NAS and SPEC 2006 FP with CERE
// and uses them as code samples for training the correlation function
// (Section 5.1). We have neither tool offline, so we synthesise regions
// spanning the same behaviour space: 1-4 objects per region, random
// pattern mix, object sizes from cache-resident to tens of GiB, arithmetic
// intensity from memory-bound to compute-bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/workload.h"

namespace merch::workloads {

struct RegionObjectSpec {
  trace::AccessPattern pattern = trace::AccessPattern::kStream;
  std::uint64_t bytes = 0;
  double accesses_per_byte = 1.0;  // program-level access intensity
  std::uint32_t element_bytes = 8;
  std::uint32_t stride_elements = 1;
  double read_fraction = 0.8;
};

struct CodeRegionSpec {
  std::string name;
  std::vector<RegionObjectSpec> objects;
  /// Non-memory instructions per program-level access (arithmetic
  /// intensity knob).
  double instructions_per_access = 4.0;
  double branch_fraction = 0.05;
  double vector_fraction = 0.2;
};

/// Random but reproducible set of diverse code-region specs.
std::vector<CodeRegionSpec> GenerateCodeRegionSpecs(std::size_t count,
                                                    Rng& rng);

/// Single-task single-kernel workload for one region. `input_scale` scales
/// object sizes and access counts together (the paper collects PMCs with a
/// *seed input* different from the training input).
sim::Workload BuildCodeRegionWorkload(const CodeRegionSpec& spec,
                                      double input_scale = 1.0);

}  // namespace merch::workloads
