#include "analysis/depgraph.h"

#include <algorithm>

#include "common/types.h"

namespace merch::analysis {
namespace {

/// Emit every dependence of `kind` between `src`'s summaries in
/// `src_list` and `dst`'s in `dst_list` (same-object hull intersections).
void Intersect(const TaskGraph& g, std::size_t src, std::size_t dst,
               const std::vector<AccessSummary>& src_list,
               const std::vector<AccessSummary>& dst_list, DepKind kind,
               bool declared, std::vector<DepEdge>* out) {
  std::size_t i = 0, j = 0;
  while (i < src_list.size() && j < dst_list.size()) {
    if (src_list[i].object < dst_list[j].object) {
      ++i;
    } else if (dst_list[j].object < src_list[i].object) {
      ++j;
    } else {
      const AccessSummary& a = src_list[i];
      const AccessSummary& b = dst_list[j];
      const std::uint64_t overlap = IntervalOverlap(a.bytes, b.bytes);
      if (overlap > 0) {
        DepEdge e;
        e.from = src;
        e.to = dst;
        e.from_task = g.summary.tasks[src].task;
        e.to_task = g.summary.tasks[dst].task;
        e.kind = kind;
        e.object = a.object;
        e.overlap_bytes = overlap;
        e.exact = !a.widened && !b.widened;
        e.declared = declared;
        out->push_back(e);
      }
      ++i;
      ++j;
    }
  }
}

/// All three conflict kinds from `src` to `dst` (src happens-first).
void IntersectPair(const TaskGraph& g, std::size_t src, std::size_t dst,
                   bool declared, std::vector<DepEdge>* out) {
  const TaskSummary& s = g.summary.tasks[src];
  const TaskSummary& d = g.summary.tasks[dst];
  Intersect(g, src, dst, s.writes, d.reads, DepKind::kRaw, declared, out);
  Intersect(g, src, dst, s.reads, d.writes, DepKind::kWar, declared, out);
  Intersect(g, src, dst, s.writes, d.writes, DepKind::kWaw, declared, out);
}

}  // namespace

const char* DepKindName(DepKind k) {
  switch (k) {
    case DepKind::kRaw:
      return "RAW";
    case DepKind::kWar:
      return "WAR";
    case DepKind::kWaw:
      return "WAW";
  }
  return "RAW";
}

bool TaskGraph::Ordered(std::size_t a, std::size_t b) const {
  if (a >= reach_.size() || b >= reach_.size()) return false;
  return reach_[a][b] || reach_[b][a];
}

std::size_t TaskGraph::IndexOf(TaskId t) const {
  for (std::size_t i = 0; i < summary.tasks.size(); ++i) {
    if (summary.tasks[i].task == t) return i;
  }
  return SIZE_MAX;
}

TaskGraph BuildTaskGraph(const Module& module, ModuleSummary summary) {
  TaskGraph g;
  g.summary = std::move(summary);
  const std::size_t n = g.summary.tasks.size();

  // Declared `after` edges (predecessor -> successor); unknown ids are
  // skipped here and reported by LintDependences.
  std::vector<std::vector<std::size_t>> succs(n);
  for (std::size_t si = 0; si < n; ++si) {
    for (const TaskId pred : g.summary.tasks[si].after) {
      const std::size_t pi = g.IndexOf(pred);
      if (pi == SIZE_MAX || pi == si) continue;
      g.declared.push_back({pi, si});
      succs[pi].push_back(si);
    }
  }

  // Happens-before closure (DFS per source; task counts are small). A
  // task reaching itself through declared edges marks the graph cyclic.
  g.reach_.assign(n, std::vector<bool>(n, false));
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<std::size_t> stack = succs[src];
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      if (cur == src) {
        g.cyclic = true;
        continue;
      }
      if (g.reach_[src][cur]) continue;
      g.reach_[src][cur] = true;
      stack.insert(stack.end(), succs[cur].begin(), succs[cur].end());
    }
    if (g.reach_[src][src]) g.cyclic = true;
  }

  // Pairwise summary intersection. Ordered pairs get edges in
  // happens-before direction; unordered pairs in declaration order (both
  // conflict directions collapse onto one pair orientation so each
  // conflicting object yields one edge per kind).
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (g.reach_[a][b]) {
        IntersectPair(g, a, b, /*declared=*/true, &g.edges);
      } else if (g.reach_[b][a]) {
        IntersectPair(g, b, a, /*declared=*/true, &g.edges);
      } else {
        IntersectPair(g, a, b, /*declared=*/false, &g.edges);
      }
    }
  }
  return g;
}

std::vector<Finding> LintDependences(const Module& module,
                                     const TaskGraph& graph,
                                     const hm::HmSpec& hm) {
  std::vector<Finding> out;
  auto add = [&out](Severity sev, std::string code, std::string object,
                    SourceLoc loc, std::string message) {
    out.push_back({sev, std::move(code), std::move(message),
                   std::move(object), loc});
  };
  const std::size_t n = graph.summary.tasks.size();

  // Structural problems with the declared ordering first.
  for (std::size_t si = 0; si < n; ++si) {
    const TaskSummary& ts = graph.summary.tasks[si];
    for (const TaskId pred : ts.after) {
      if (graph.IndexOf(pred) == SIZE_MAX) {
        add(Severity::kError, "unknown-predecessor", "", ts.loc,
            "task " + std::to_string(ts.task) + " declares 'after " +
                std::to_string(pred) + "' but no task " +
                std::to_string(pred) + " exists");
      }
    }
  }
  if (graph.cyclic) {
    add(Severity::kError, "dependence-cycle", "", SourceLoc{},
        "declared 'after' edges form a cycle — the task ordering is "
        "undefined, race analysis suppressed");
    return out;
  }

  // Races: conflicting pairs with no declared ordering path.
  for (const DepEdge& e : graph.edges) {
    if (e.declared) continue;
    const std::string obj = e.object < module.objects.size()
                                ? module.objects[e.object].name
                                : "?";
    const SourceLoc loc = e.object < module.objects.size()
                              ? module.objects[e.object].loc
                              : SourceLoc{};
    const std::string pair = "tasks " + std::to_string(e.from_task) +
                             " and " + std::to_string(e.to_task);
    const std::string evidence =
        std::string(DepKindName(e.kind)) + " conflict on '" + obj + "' (" +
        FormatBytes(e.overlap_bytes) + " overlapping)";
    if (!module.fork_join) {
      if (e.exact) {
        add(Severity::kError, "data-race", obj, loc,
            pair + " are unordered but have a provable " + evidence +
                " — declare an ordering ('task N after M') or make the "
                "slices disjoint (base=)");
      } else {
        add(Severity::kWarning, "potential-race", obj, loc,
            pair + " are unordered with a may-" + evidence +
                " through an indirect/opaque footprint — verify the "
                "runtime index sets are disjoint or declare an ordering");
      }
      continue;
    }
    // Fork-join bridged module: shared streams are partitioned by the
    // runtime; only an exact conflicting write into another task's owned
    // object is a builder bug.
    const TaskId owner = e.object < module.objects.size()
                             ? module.objects[e.object].owner
                             : kInvalidTask;
    const bool foreign_write =
        owner != kInvalidTask &&
        ((e.kind == DepKind::kRaw && e.from_task != owner) ||   // writer=from
         (e.kind == DepKind::kWar && e.to_task != owner) ||     // writer=to
         (e.kind == DepKind::kWaw &&
          (e.from_task != owner || e.to_task != owner)));
    if (foreign_write && e.exact) {
      add(Severity::kError, "data-race", obj, loc,
          pair + " run concurrently in a fork-join region and a non-owner "
                 "task provably writes task-" +
              std::to_string(owner) + "-owned '" + obj + "' (" + evidence +
              ")");
    } else {
      add(Severity::kNote, "assumed-partitioned", obj, loc,
          pair + " share a fork-join " + evidence +
              " — assumed partitioned by the runtime");
    }
  }

  // Over-synchronization: a direct declared edge whose endpoint tasks
  // share no conflicting bytes at all.
  for (const auto& [pi, si] : graph.declared) {
    bool conflicts = false;
    for (const DepEdge& e : graph.edges) {
      if ((e.from == pi && e.to == si) || (e.from == si && e.to == pi)) {
        conflicts = true;
        break;
      }
    }
    if (conflicts) continue;
    const TaskSummary& p = graph.summary.tasks[pi];
    const TaskSummary& s = graph.summary.tasks[si];
    add(Severity::kWarning, "over-synchronization", "", s.loc,
        "task " + std::to_string(s.task) + " declares 'after " +
            std::to_string(p.task) +
            "' but the tasks share no conflicting data — the edge "
            "serializes work that could run concurrently");
  }

  // Placement interference: concurrent tasks whose combined DRAM-hungry
  // footprints cannot fit the fast tier together.
  const std::uint64_t fast = hm.dram_capacity();
  if (fast > 0) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (graph.Ordered(a, b)) continue;
        const TaskSummary& ta = graph.summary.tasks[a];
        const TaskSummary& tb = graph.summary.tasks[b];
        const std::uint64_t combined =
            ta.dram_hungry_bytes + tb.dram_hungry_bytes;
        if (combined <= fast) continue;
        add(Severity::kWarning, "placement-interference", "", tb.loc,
            "concurrent tasks " + std::to_string(ta.task) + " and " +
                std::to_string(tb.task) + " want " + FormatBytes(combined) +
                " of DRAM-hungry data together but the fast tier holds " +
                FormatBytes(fast) +
                " — one of them will run from the slow tier (the load "
                "imbalance Algorithm 1 fights at runtime)");
      }
    }
  }
  return out;
}

}  // namespace merch::analysis
